#!/usr/bin/env python3
"""Remote robotic surgery: the paper's motivating application.

A surgeon in New York operates on a patient in San Jose.  The haptic
control loop needs 130 ms round trip -- a 65 ms one-way deadline -- with
a packet every 10 ms, and every missed packet is felt at the instrument.

This example injects a *destination problem* (the San Jose site's links
degrade, the situation the paper's analysis found most common) and
replays every packet around the episode under each routing scheme,
printing the on-time delivery rate over time -- the paper's case-study
figure as text.

Run:  python examples/remote_surgery.py
"""

from repro import (
    FlowSpec,
    ReplayConfig,
    ServiceSpec,
    build_reference_topology,
)
from repro.analysis.casestudy import bucketed_delivery, run_case_study
from repro.netmodel.conditions import ConditionTimeline, Contribution, LinkState
from repro.netmodel.events import Burst, EventKind, LinkDegradation, ProblemEvent
from repro.routing.registry import STANDARD_SCHEME_NAMES
from repro.util.rng import DeterministicStream

SURGERY_FLOW = FlowSpec("NYC", "SJC")
SERVICE = ServiceSpec(deadline_ms=65.0, send_interval_ms=10.0, rtt_budget_ms=130.0)

EVENT_START_S = 60.0
EVENT_DURATION_S = 120.0
RUN_DURATION_S = 240.0


def make_destination_problem(topology) -> tuple[ProblemEvent, ConditionTimeline]:
    """A sustained problem around SJC: every adjacent link at partial loss."""
    stream = DeterministicStream(2024, "surgery")
    degradations = []
    for edge in topology.adjacent_edges("SJC"):
        loss = stream.uniform_between(0.45, 0.85, "loss", edge)
        degradations.append(LinkDegradation(edge, LinkState(loss_rate=loss)))
    burst = Burst(EVENT_START_S, EVENT_DURATION_S, tuple(degradations))
    event = ProblemEvent(
        EventKind.NODE, "SJC", EVENT_START_S, EVENT_DURATION_S, (burst,)
    )
    timeline = ConditionTimeline(topology, RUN_DURATION_S, event.contributions())
    return event, timeline


def main() -> None:
    topology = build_reference_topology()
    event, timeline = make_destination_problem(topology)
    print(
        f"Surgery flow {SURGERY_FLOW.name}: packet every "
        f"{SERVICE.send_interval_ms:g} ms, deadline {SERVICE.deadline_ms:g} ms one-way\n"
    )
    print(
        f"Destination problem at SJC from t={EVENT_START_S:g}s to "
        f"t={EVENT_START_S + EVENT_DURATION_S:g}s; per-link loss rates:"
    )
    for degradation in event.bursts[0].degradations:
        print(
            f"  {degradation.edge[0]} -> {degradation.edge[1]}: "
            f"{100 * degradation.state.loss_rate:.0f}% loss"
        )

    study = run_case_study(
        topology,
        timeline,
        SURGERY_FLOW,
        event,
        SERVICE,
        scheme_names=STANDARD_SCHEME_NAMES,
        config=ReplayConfig(detection_delay_s=1.0),
        seed=5,
        lead_s=30.0,
        tail_s=30.0,
    )

    print("\nOn-time delivery per 10-second window (1.00 = all packets on time):")
    series = {
        name: dict(bucketed_delivery(outcome, bucket_s=10.0))
        for name, outcome in study.outcomes.items()
    }
    buckets = sorted(next(iter(series.values())).keys())
    header = "t(s)    " + "  ".join(f"{name[:12]:>12s}" for name in series)
    print(header)
    for bucket in buckets:
        marker = (
            "*" if EVENT_START_S <= bucket < EVENT_START_S + EVENT_DURATION_S else " "
        )
        row = f"{bucket:6.0f}{marker} " + "  ".join(
            f"{series[name].get(bucket, float('nan')):12.3f}" for name in series
        )
        print(row)
    print("(* = destination problem active)\n")

    print("Whole-run summary:")
    for name, outcome in study.outcomes.items():
        print(
            f"  {name:22s} sent={outcome.packets:5d} on-time={outcome.delivered_on_time:5d} "
            f"lost={outcome.lost:4d} late={outcome.late:3d} "
            f"messages/packet={outcome.total_messages / outcome.packets:5.2f}"
        )


if __name__ == "__main__":
    main()
