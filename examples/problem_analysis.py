#!/usr/bin/env python3
"""Reproduce the paper's network-data analysis (experiment E1).

The paper's key empirical finding (claim C3): two disjoint paths handle
most problems, and the cases they do *not* handle concentrate around
flow sources and destinations.  This example generates a week of
synthetic conditions and answers the question two ways:

1. the raw distribution of problem events from each flow's perspective
   (most events are "middle" -- there is a lot of network that is not an
   endpoint); and
2. the *unavailability attribution*: among the seconds where two disjoint
   paths actually failed to deliver on time, which problem type was
   active -- this is where the endpoint concentration shows.

Run:  python examples/problem_analysis.py
"""

from collections import Counter

from repro import (
    ReplayConfig,
    Scenario,
    ServiceSpec,
    build_reference_topology,
    generate_timeline,
    reference_flows,
    run_replay,
)
from repro.analysis import (
    attribute_unavailability,
    classification_distribution,
    classify_events_for_flows,
    format_classification_table,
)

WEEK_S = 7 * 86_400.0


def main() -> None:
    topology = build_reference_topology()
    flows = reference_flows()
    service = ServiceSpec()
    scenario = Scenario(duration_s=WEEK_S)
    events, timeline = generate_timeline(topology, scenario, seed=7)
    print(f"one simulated week: {len(events)} problem events\n")

    # 1. Raw event classification (every event, per flow it could touch).
    problems = classify_events_for_flows(
        topology, flows, events, service.deadline_ms
    )
    counts = Counter(problem.category for problem in problems)
    print(
        format_classification_table(
            classification_distribution(problems),
            counts,
            title="All potential problems, per flow perspective",
        )
    )

    # 2. Where do two disjoint paths actually fail?  Replay the scheme
    #    and attribute its unavailable seconds to the problem active at
    #    the time.
    print("\nreplaying static-two-disjoint to attribute its failures...")
    result = run_replay(
        topology,
        timeline,
        flows,
        service,
        scheme_names=("static-two-disjoint",),
        config=ReplayConfig(detection_delay_s=1.0, collect_windows=True),
    )
    attribution = attribute_unavailability(
        topology, timeline, result, scheme="static-two-disjoint"
    )
    total = sum(attribution.values())
    print("\nUnavailability of two disjoint paths, by concurrent problem type:")
    for category in ("destination", "source", "source+destination", "middle", "none"):
        seconds = attribution[category]
        share = 100 * seconds / total if total else 0.0
        print(f"  {category:20s} {seconds:9.1f} s   {share:5.1f}%")
    endpoint = (
        attribution["destination"]
        + attribution["source"]
        + attribution["source+destination"]
    )
    print(
        f"\n=> {100 * endpoint / total:.1f}% of two-disjoint-path unavailability "
        "coincides with a source/destination problem (paper claim C3)."
    )


if __name__ == "__main__":
    main()
