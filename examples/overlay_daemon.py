#!/usr/bin/env python3
"""Deploy the message-level overlay and watch it react to a problem.

Unlike the trace-replay engines (which score schemes analytically), this
example runs the full protocol stack: 12 overlay daemons exchanging
hellos, estimating per-link loss, flooding link-state updates, and
forwarding data packets on dissemination graphs -- every message
individually simulated.  A destination problem is injected mid-run and
the output shows the monitoring pipeline detect it and the routing daemon
switch to the precomputed destination-problem graph.

Run:  python examples/overlay_daemon.py
"""

from repro import FlowSpec, ServiceSpec, build_reference_topology
from repro.netmodel.conditions import ConditionTimeline, Contribution, LinkState
from repro.overlay import build_overlay

FLOW = FlowSpec("WAS", "SEA")
PROBLEM_START_S = 20.0
PROBLEM_END_S = 80.0
RUN_S = 110.0


def main() -> None:
    topology = build_reference_topology()

    # Inject a sustained destination problem at SEA.
    contributions = [
        Contribution(edge, PROBLEM_START_S, PROBLEM_END_S, LinkState(loss_rate=0.7))
        for edge in topology.adjacent_edges("SEA")
    ]
    timeline = ConditionTimeline(topology, RUN_S, contributions)

    harness = build_overlay(
        topology,
        timeline,
        flows=[FLOW],
        service=ServiceSpec(),
        scheme="targeted",
        seed=42,
        update_interval_s=0.25,
    )
    harness.start()

    daemon = harness.daemons[FLOW.name]
    previous_graph = daemon.current_graph
    print(f"flow {FLOW.name}, scheme=targeted")
    print(f"t=  0.0s installed graph: {previous_graph.name} "
          f"({previous_graph.num_edges} edges)")

    # Advance in 1-second steps so we can narrate graph switches.
    checkpoints = [PROBLEM_START_S, PROBLEM_END_S, RUN_S]
    step = 1.0
    clock = 0.0
    while clock < RUN_S:
        harness.run(step)
        clock += step
        if daemon.current_graph != previous_graph:
            previous_graph = daemon.current_graph
            print(
                f"t={harness.kernel.now:6.1f}s switched to: {previous_graph.name} "
                f"({previous_graph.num_edges} edges)"
            )
        if any(abs(clock - c) < step / 2 for c in checkpoints):
            report = harness.reports[FLOW.name]
            print(
                f"t={harness.kernel.now:6.1f}s -- sent={report.sent} "
                f"on_time={report.on_time} lost={report.lost} "
                f"({100 * report.on_time_fraction:.1f}% on time)"
            )

    print("\nfinal per-node protocol counters (source and destination):")
    for node_id in (FLOW.source, FLOW.destination):
        print(f"  {node_id}: {harness.nodes[node_id].stats}")
    print(
        f"\nnetwork totals: {harness.network.total_sent()} messages sent, "
        f"{harness.network.total_dropped()} dropped by lossy links"
    )
    switches = daemon.graph_switches
    print(f"routing daemon performed {switches} graph switches")


if __name__ == "__main__":
    main()
