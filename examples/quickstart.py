#!/usr/bin/env python3
"""Quickstart: dissemination graphs in five minutes.

Builds the reference 12-node overlay, shows every dissemination-graph
family for one transcontinental flow, then replays one simulated day of
network conditions under all six routing schemes and prints the paper's
headline table.

Run:  python examples/quickstart.py
"""

from repro import (
    ReplayConfig,
    Scenario,
    ServiceSpec,
    build_reference_topology,
    generate_timeline,
    reference_flows,
    run_replay,
)
from repro.analysis import format_cost_table, format_scheme_performance_table
from repro.core.builders import (
    destination_problem_graph,
    single_path_graph,
    time_constrained_flooding_graph,
    two_disjoint_paths_graph,
)

DAY_S = 86_400.0


def show_graph_families() -> None:
    """Part 1: the unified routing framework (paper Section III)."""
    topology = build_reference_topology()
    source, destination = "NYC", "SJC"
    print(f"== Dissemination-graph families for {source} -> {destination} ==\n")
    families = [
        single_path_graph(topology, source, destination),
        two_disjoint_paths_graph(topology, source, destination),
        destination_problem_graph(topology, source, destination, deadline_ms=65.0),
        time_constrained_flooding_graph(topology, source, destination, 65.0),
    ]
    latency = topology.latency
    for graph in families:
        arrival = graph.delivery_latency(latency)
        print(
            f"{graph.name:28s} cost = {graph.num_edges:2d} messages/packet, "
            f"best-case delivery = {arrival:.1f} ms"
        )
        for edge in graph.sorted_edges():
            print(f"    {edge[0]} -> {edge[1]}")
        print()


def replay_one_day() -> None:
    """Part 2: replay a day of synthetic conditions under every scheme."""
    print("== One simulated day, 16 transcontinental flows, 6 schemes ==\n")
    topology = build_reference_topology()
    service = ServiceSpec()  # 65 ms one-way deadline, packet every 10 ms
    events, timeline = generate_timeline(
        topology, Scenario(duration_s=DAY_S), seed=7
    )
    print(f"generated {len(events)} problem events\n")
    result = run_replay(
        topology,
        timeline,
        reference_flows(),
        service,
        config=ReplayConfig(detection_delay_s=1.0),
    )
    print(format_scheme_performance_table(result))
    print()
    print(format_cost_table(result))


if __name__ == "__main__":
    show_graph_families()
    replay_one_day()
