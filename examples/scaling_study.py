#!/usr/bin/env python3
"""Does targeted redundancy survive on other overlays?

The paper evaluates a single 12-site commercial topology.  This example
generates synthetic biconnected continental overlays of growing size
(the generator guarantees two node-disjoint paths between every pair)
and reruns the headline comparison on each — showing the approach's
advantage is a property of the method, not of one layout, and that the
cost argument *improves* with size: flooding's price grows with the
network while the targeted graphs stay near the two-path price.

Run:  python examples/scaling_study.py           (about a minute)
"""

from repro import ReplayConfig, ServiceSpec
from repro.analysis.metrics import gap_coverage
from repro.netmodel.scenarios import DAY_S, Scenario, generate_timeline
from repro.netmodel.topologies import (
    coast_to_coast_flows,
    synthetic_continental_topology,
)
from repro.simulation.interval import run_replay

SIZES = (12, 16, 20)
TRACE_DAYS = 2.0
SCHEMES = (
    "dynamic-single",
    "static-two-disjoint",
    "dynamic-two-disjoint",
    "targeted",
    "flooding",
)


def main() -> None:
    service = ServiceSpec()
    print(
        f"{'overlay':>10s} {'links':>6s} {'static-2':>9s} {'dynamic-2':>10s} "
        f"{'targeted':>9s} {'targeted $':>11s} {'flooding $':>11s}"
    )
    for size in SIZES:
        topology = synthetic_continental_topology(size, seed=size)
        flows = coast_to_coast_flows(topology, 8)
        _events, timeline = generate_timeline(
            topology, Scenario(duration_s=TRACE_DAYS * DAY_S), seed=7
        )
        result = run_replay(
            topology,
            timeline,
            flows,
            service,
            scheme_names=SCHEMES,
            config=ReplayConfig(detection_delay_s=1.0),
        )
        print(
            f"{size:>7d} st {topology.num_edges // 2:6d} "
            f"{100 * gap_coverage(result, 'static-two-disjoint'):8.1f}% "
            f"{100 * gap_coverage(result, 'dynamic-two-disjoint'):9.1f}% "
            f"{100 * gap_coverage(result, 'targeted'):8.1f}% "
            f"{result.totals('targeted').average_cost_messages:10.2f} "
            f"{result.totals('flooding').average_cost_messages:10.2f}"
        )
    print(
        "\n($ columns: messages per packet — flooding's cost grows with the\n"
        " overlay while targeted redundancy stays near the two-path price)"
    )


if __name__ == "__main__":
    main()
