#!/usr/bin/env python3
"""The paper's data pipeline, end to end.

The evaluation data in the paper was recorded by the overlay itself:
every daemon's link monitoring produced loss/latency estimates that were
logged and later replayed against candidate routing schemes.  This
example closes that loop:

1. define ground-truth conditions (a destination problem at LAX);
2. run the message-level overlay under them and record what the daemons'
   own monitoring *measures* (probe-based estimates, sampled every 5 s);
3. replay routing schemes against both the ground truth and the measured
   trace and compare.

The differences you see are the artefacts every trace-driven evaluation
carries: onset smeared by the estimation window, severities quantised by
the sampling cadence.

Run:  python examples/trace_collection.py
"""

from repro import FlowSpec, ReplayConfig, ServiceSpec, build_reference_topology
from repro.netmodel.conditions import ConditionTimeline, Contribution, LinkState
from repro.overlay.collect import collect_measured_trace
from repro.routing.registry import make_policy
from repro.simulation.interval import replay_flow

FLOW = FlowSpec("WAS", "LAX")
RUN_S = 180.0
EPISODE = (40.0, 140.0)
SCHEMES = ("static-single", "static-two-disjoint", "targeted")


def main() -> None:
    topology = build_reference_topology()
    ground_truth = ConditionTimeline(
        topology,
        RUN_S,
        [
            Contribution(edge, EPISODE[0], EPISODE[1], LinkState(loss_rate=0.55))
            for edge in topology.adjacent_edges("LAX")
        ],
    )

    print("running the overlay to record its own measurements...")
    measured, samples = collect_measured_trace(
        topology, ground_truth, sample_interval_s=5.0, seed=11
    )
    degraded_samples = [s for s in samples if s.loss_rate > 0.05]
    print(
        f"collected {len(samples)} link samples "
        f"({len(degraded_samples)} showing loss) from "
        f"{topology.num_nodes} daemons\n"
    )

    print("what the monitoring measured on LAX's links mid-episode:")
    probe_time = (EPISODE[0] + EPISODE[1]) / 2
    for edge in topology.adjacent_edges("LAX"):
        truth = ground_truth.loss_at(edge, probe_time)
        seen = measured.loss_at(edge, probe_time)
        print(
            f"  {edge[0]:>3s} -> {edge[1]:<3s} truth {100 * truth:4.0f}%  "
            f"measured {100 * seen:4.0f}%"
        )

    print(
        "  (measured > truth: probes measure the round trip, so with both\n"
        "   directions degraded the estimate approaches 1-(1-p)^2 -- the\n"
        "   attribution bias described in docs/PROTOCOLS.md section 1)"
    )

    print("\nreplaying schemes against both traces "
          "(unavailable seconds over the run):")
    print(f"{'scheme':22s} {'ground truth':>14s} {'measured':>10s}")
    config = ReplayConfig(detection_delay_s=1.0)
    service = ServiceSpec()
    for scheme in SCHEMES:
        row = [scheme]
        for timeline in (ground_truth, measured):
            stats = replay_flow(
                topology, timeline, FLOW, service, make_policy(scheme), config
            )
            row.append(stats.unavailable_s)
        print(f"{row[0]:22s} {row[1]:14.1f} {row[2]:10.1f}")
    print(
        "\nThe measured trace tells the same story as ground truth "
        "(same ordering, same problem window), with the onset smeared by "
        "the probe window -- exactly the bias the paper's recorded data "
        "carries."
    )


if __name__ == "__main__":
    main()
