"""Graceful-degradation accounting: worst window, TTR, the E21 matrix."""

from __future__ import annotations

import pytest

from repro.analysis.degradation import (
    degradation_rows,
    hard_events,
    time_to_recover,
    worst_window_on_time,
)
from repro.analysis.reporting import format_degradation_table
from repro.netmodel.conditions import LinkState
from repro.netmodel.events import Burst, EventKind, LinkDegradation, ProblemEvent
from repro.netmodel.topology import FlowSpec, ServiceSpec
from repro.simulation.results import FlowSchemeStats, ReplayConfig, ReplayResult
from repro.util.validation import ValidationError

FLOW = FlowSpec(source="S", destination="T")


def _stats(segments, scheme: str = "targeted") -> FlowSchemeStats:
    """segments: (start, end, on_time) triples, contiguous."""
    stats = FlowSchemeStats(flow=FLOW, scheme=scheme)
    for start, end, on_time in segments:
        stats.add_window(
            start, end, "g", 2, on_time, 1.0 - on_time, 0.0, collect=True
        )
    return stats


def _outage(edge, start: float, duration: float, loss: float = 1.0):
    return ProblemEvent(
        kind=EventKind.LINK,
        location=edge,
        start_s=start,
        duration_s=duration,
        bursts=(
            Burst(
                start,
                duration,
                (LinkDegradation(edge, LinkState(loss_rate=loss)),),
            ),
        ),
    )


class TestWorstWindow:
    def test_flat_record_returns_its_level(self):
        stats = _stats([(0.0, 100.0, 0.9)])
        assert worst_window_on_time(stats, 10.0) == pytest.approx(0.9)

    def test_finds_the_dip(self):
        stats = _stats(
            [(0.0, 40.0, 1.0), (40.0, 50.0, 0.0), (50.0, 100.0, 1.0)]
        )
        # A 10 s window aligned with the outage averages exactly zero.
        assert worst_window_on_time(stats, 10.0) == pytest.approx(0.0)
        # A 20 s window can cover at most 10 bad seconds.
        assert worst_window_on_time(stats, 20.0) == pytest.approx(0.5)

    def test_short_replay_returns_overall_average(self):
        stats = _stats([(0.0, 4.0, 1.0), (4.0, 8.0, 0.5)])
        assert worst_window_on_time(stats, 10.0) == pytest.approx(0.75)

    def test_requires_window_records(self):
        stats = FlowSchemeStats(flow=FLOW, scheme="targeted")
        stats.add_window(0.0, 10.0, "g", 2, 1.0, 0.0, 0.0, collect=False)
        with pytest.raises(ValidationError, match="collect_windows=True"):
            worst_window_on_time(stats, 5.0)

    def test_rejects_bad_window(self):
        with pytest.raises(ValidationError):
            worst_window_on_time(_stats([(0.0, 10.0, 1.0)]), 0.0)


class TestHardEvents:
    def test_filters_full_loss_only(self):
        soft = _outage(("a", "b"), 0.0, 5.0, loss=0.4)
        hard = _outage(("a", "b"), 10.0, 5.0, loss=1.0)
        assert hard_events([soft, hard]) == [hard]


class TestTimeToRecover:
    def test_healthy_at_repair_is_zero(self):
        stats = _stats([(0.0, 20.0, 1.0)])
        event = _outage(("a", "b"), 2.0, 3.0)
        assert time_to_recover(stats, [event]) == [0.0]

    def test_gap_until_threshold(self):
        stats = _stats(
            [(0.0, 5.0, 1.0), (5.0, 12.0, 0.2), (12.0, 20.0, 1.0)]
        )
        event = _outage(("a", "b"), 5.0, 3.0)  # repairs at 8, healthy at 12
        assert time_to_recover(stats, [event]) == [pytest.approx(4.0)]

    def test_never_recovering_is_censored_at_horizon(self):
        stats = _stats([(0.0, 10.0, 1.0), (10.0, 20.0, 0.0)])
        event = _outage(("a", "b"), 10.0, 2.0)
        assert time_to_recover(stats, [event]) == [pytest.approx(8.0)]

    def test_soft_events_contribute_nothing(self):
        stats = _stats([(0.0, 20.0, 0.5)])
        event = _outage(("a", "b"), 2.0, 3.0, loss=0.4)
        assert time_to_recover(stats, [event]) == []


class TestDegradationRows:
    def _result(self) -> ReplayResult:
        result = ReplayResult(ServiceSpec(), ReplayConfig(collect_windows=True))
        result.add(
            _stats(
                [(0.0, 40.0, 1.0), (40.0, 50.0, 0.0), (50.0, 100.0, 1.0)],
                scheme="static-single",
            )
        )
        result.add(
            _stats(
                [(0.0, 40.0, 1.0), (40.0, 50.0, 0.8), (50.0, 100.0, 1.0)],
                scheme="targeted",
            )
        )
        result.add(_stats([(0.0, 100.0, 1.0)], scheme="flooding"))
        return result

    def test_matrix_columns(self):
        events = [_outage(("a", "b"), 40.0, 10.0)]
        rows = degradation_rows(
            self._result(),
            events,
            window_s=10.0,
            baseline="static-single",
            optimal="flooding",
        )
        by_scheme = {row["scheme"]: row for row in rows}
        assert by_scheme["static-single"]["gap_coverage"] == 0.0
        assert by_scheme["flooding"]["gap_coverage"] == 1.0
        assert by_scheme["targeted"]["gap_coverage"] == pytest.approx(0.8)
        assert by_scheme["targeted"]["worst_window_on_time"] == pytest.approx(0.8)
        assert by_scheme["targeted"]["unavailable_s"] == pytest.approx(2.0)
        assert by_scheme["static-single"]["ttr_max_s"] == pytest.approx(0.0)

    def test_quiet_world_has_no_gap_coverage(self):
        result = ReplayResult(ServiceSpec(), ReplayConfig(collect_windows=True))
        result.add(_stats([(0.0, 10.0, 1.0)], scheme="static-single"))
        result.add(_stats([(0.0, 10.0, 1.0)], scheme="flooding"))
        rows = degradation_rows(
            result, [], baseline="static-single", optimal="flooding"
        )
        assert all(row["gap_coverage"] is None for row in rows)
        assert all(row["ttr_mean_s"] is None for row in rows)

    def test_table_renders_none_as_dash(self):
        rows = degradation_rows(
            self._result(),
            [],
            baseline="static-single",
            optimal="flooding",
        )
        table = format_degradation_table(rows)
        assert "targeted" in table
        assert "-" in table
