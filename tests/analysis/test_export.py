"""CSV exporters."""

from __future__ import annotations

import csv

import pytest

from repro.analysis.cdf import latency_profile
from repro.analysis.export import (
    export_delivery_series,
    export_latency_cdf,
    export_per_flow_coverage,
    export_scheme_performance,
)
from repro.netmodel.topology import FlowSpec, ServiceSpec
from repro.simulation.packet_sim import PacketRecord, PacketSimOutcome
from repro.simulation.results import FlowSchemeStats, ReplayConfig, ReplayResult

FLOW = FlowSpec("S", "T")


def read_csv(path):
    with open(path, newline="") as handle:
        return list(csv.reader(handle))


def build_result():
    result = ReplayResult(ServiceSpec(), ReplayConfig())
    for scheme, unavailable, edges in (
        ("dynamic-single", 100.0, 2),
        ("static-two-disjoint", 60.0, 6),
        ("dynamic-two-disjoint", 40.0, 6),
        ("targeted", 22.0, 7),
        ("flooding", 20.0, 30),
    ):
        entry = FlowSchemeStats(flow=FLOW, scheme=scheme)
        entry.add_window(0.0, 1000.0 - unavailable, "g", edges, 1.0, 0.0, 0.0)
        entry.add_window(1000.0 - unavailable, 1000.0, "g", edges, 0.0, 1.0, 0.0)
        result.add(entry)
    return result


def outcome(scheme, arrivals):
    records = [
        PacketRecord(i, i * 0.01, a, a is not None and a <= 15.0, 2, "g")
        for i, a in enumerate(arrivals)
    ]
    return PacketSimOutcome(FLOW, scheme, records)


class TestSchemePerformanceExport:
    def test_rows_and_header(self, tmp_path):
        path = tmp_path / "e2.csv"
        export_scheme_performance(build_result(), path)
        rows = read_csv(path)
        assert rows[0][0] == "scheme"
        assert len(rows) == 6  # header + 5 schemes
        targeted = next(row for row in rows if row[0] == "targeted")
        assert float(targeted[1]) == pytest.approx(22.0)
        assert float(targeted[5]) == pytest.approx((100 - 22) / (100 - 20))

    def test_values_parse_as_floats(self, tmp_path):
        path = tmp_path / "e2.csv"
        export_scheme_performance(build_result(), path)
        for row in read_csv(path)[1:]:
            float(row[1]), float(row[4]), float(row[6])


class TestPerFlowExport:
    def test_one_row_per_flow(self, tmp_path):
        path = tmp_path / "e5.csv"
        export_per_flow_coverage(build_result(), path)
        rows = read_csv(path)
        assert rows[0] == [
            "flow",
            "static-two-disjoint",
            "dynamic-two-disjoint",
            "targeted",
        ]
        assert rows[1][0] == "S->T"
        assert float(rows[1][3]) == pytest.approx((100 - 22) / (100 - 20))

    def test_empty_schemes_rejected(self, tmp_path):
        with pytest.raises(Exception):
            export_per_flow_coverage(build_result(), tmp_path / "x.csv", schemes=())


class TestCdfExport:
    def test_long_format(self, tmp_path):
        profiles = {
            "a": latency_profile(outcome("a", [10.0, 12.0])),
            "b": latency_profile(outcome("b", [11.0])),
        }
        path = tmp_path / "e6.csv"
        export_latency_cdf(profiles, path)
        rows = read_csv(path)
        assert rows[0] == ["scheme", "latency_ms", "cumulative_fraction"]
        assert len(rows) == 4  # header + 2 points for a + 1 for b
        assert rows[1][0] == "a"


class TestDeliverySeriesExport:
    def test_buckets_and_columns(self, tmp_path):
        outcomes = {
            "single": outcome("single", [10.0] * 1000 + [None] * 1000),
            "targeted": outcome("targeted", [10.0] * 2000),
        }
        path = tmp_path / "e4.csv"
        export_delivery_series(outcomes, path, bucket_s=5.0)
        rows = read_csv(path)
        assert rows[0] == ["bucket_start_s", "single", "targeted"]
        # First bucket: both perfect; later: single degrades.
        assert float(rows[1][2]) == 1.0
        assert float(rows[-1][1]) == 0.0

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(Exception):
            export_delivery_series({}, tmp_path / "x.csv")
