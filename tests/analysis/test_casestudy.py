"""Case-study machinery (experiment E4)."""

from __future__ import annotations

import pytest

from repro.analysis.casestudy import bucketed_delivery, find_episode, run_case_study
from repro.netmodel.conditions import ConditionTimeline, LinkState
from repro.netmodel.events import Burst, EventKind, LinkDegradation, ProblemEvent
from repro.netmodel.topology import FlowSpec, ServiceSpec

FLOW = FlowSpec("NYC", "SJC")


def destination_event(topology, start=60.0, duration=90.0):
    degradations = tuple(
        LinkDegradation(edge, LinkState(loss_rate=0.7))
        for edge in topology.adjacent_edges("SJC")
    )
    return ProblemEvent(
        EventKind.NODE, "SJC", start, duration, (Burst(start, duration, degradations),)
    )


class TestFindEpisode:
    def test_finds_destination_event(self, reference_topology, flows):
        event = destination_event(reference_topology)
        found = find_episode([event], flows, at="destination")
        assert found is not None
        episode, flow = found
        assert episode is event
        assert flow.destination == "SJC"

    def test_respects_min_duration(self, reference_topology, flows):
        event = destination_event(reference_topology, duration=10.0)
        assert find_episode([event], flows, min_duration_s=60.0) is None

    def test_source_selector(self, reference_topology, flows):
        degradations = tuple(
            LinkDegradation(edge, LinkState(loss_rate=0.7))
            for edge in reference_topology.adjacent_edges("NYC")
        )
        event = ProblemEvent(
            EventKind.NODE, "NYC", 10.0, 90.0, (Burst(10.0, 90.0, degradations),)
        )
        found = find_episode([event], flows, at="source")
        assert found is not None
        assert found[1].source == "NYC"

    def test_bad_selector(self, reference_topology, flows):
        with pytest.raises(Exception):
            find_episode([], flows, at="sideways")


class TestRunCaseStudy:
    def test_schemes_ranked_during_event(self, reference_topology):
        event = destination_event(reference_topology)
        timeline = ConditionTimeline(
            reference_topology, 240.0, event.contributions()
        )
        study = run_case_study(
            reference_topology,
            timeline,
            FLOW,
            event,
            ServiceSpec(),
            scheme_names=("static-single", "static-two-disjoint", "targeted", "flooding"),
            seed=2,
        )
        fractions = {
            name: outcome.on_time_fraction for name, outcome in study.outcomes.items()
        }
        assert fractions["static-single"] < fractions["static-two-disjoint"]
        assert fractions["static-two-disjoint"] < fractions["targeted"]
        assert fractions["targeted"] <= fractions["flooding"] + 1e-9

    def test_window_brackets_event(self, reference_topology):
        event = destination_event(reference_topology)
        timeline = ConditionTimeline(
            reference_topology, 240.0, event.contributions()
        )
        study = run_case_study(
            reference_topology,
            timeline,
            FLOW,
            event,
            ServiceSpec(),
            scheme_names=("flooding",),
            lead_s=30.0,
            tail_s=30.0,
        )
        assert study.window_start_s == pytest.approx(30.0)
        assert study.window_end_s == pytest.approx(180.0)


class TestBucketedDelivery:
    def test_buckets_cover_window(self, reference_topology):
        event = destination_event(reference_topology)
        timeline = ConditionTimeline(
            reference_topology, 240.0, event.contributions()
        )
        study = run_case_study(
            reference_topology,
            timeline,
            FLOW,
            event,
            ServiceSpec(),
            scheme_names=("flooding",),
        )
        series = bucketed_delivery(study.outcomes["flooding"], bucket_s=10.0)
        assert series
        assert all(0.0 <= rate <= 1.0 for _t, rate in series)
        # Pre-event buckets are perfect; in-event buckets are degraded.
        pre_event = [rate for t, rate in series if t < 50.0]
        in_event = [rate for t, rate in series if 60.0 <= t < 140.0]
        assert all(rate == 1.0 for rate in pre_event)
        assert all(rate < 1.0 for rate in in_event)

    def test_empty_outcome(self):
        from repro.simulation.packet_sim import PacketSimOutcome

        assert bucketed_delivery(PacketSimOutcome(FLOW, "x", [])) == []
