"""Multi-seed robustness machinery."""

from __future__ import annotations

import pytest

from repro.analysis.robustness import run_seed_sweep, summarize
from repro.netmodel.scenarios import DAY_S, Scenario
from repro.netmodel.topology import ServiceSpec, reference_flows


@pytest.fixture(scope="module")
def sweep(reference_topology):
    return run_seed_sweep(
        reference_topology,
        Scenario(duration_s=1 * DAY_S),
        reference_flows()[:4],
        ServiceSpec(),
        seeds=(7, 8),
    )


class TestSeedSweep:
    def test_one_outcome_per_seed(self, sweep):
        assert [outcome.seed for outcome in sweep] == [7, 8]

    def test_coverage_for_non_anchor_schemes(self, sweep):
        for outcome in sweep:
            assert set(outcome.gap_coverage) == {
                "static-single",
                "static-two-disjoint",
                "dynamic-two-disjoint",
                "targeted",
            }

    def test_targeted_leads_each_seed(self, sweep):
        for outcome in sweep:
            assert outcome.gap_coverage["targeted"] == max(
                outcome.gap_coverage.values()
            )

    def test_cost_overhead_recorded(self, sweep):
        for outcome in sweep:
            assert -0.01 < outcome.cost_overhead_targeted < 0.2

    def test_empty_seeds_rejected(self, reference_topology):
        with pytest.raises(Exception):
            run_seed_sweep(
                reference_topology,
                Scenario(duration_s=DAY_S),
                reference_flows()[:1],
                ServiceSpec(),
                seeds=(),
            )


class TestSummarize:
    def test_aggregates(self, sweep):
        summaries = {s.scheme: s for s in summarize(sweep)}
        targeted = summaries["targeted"]
        assert targeted.seeds == 2
        assert targeted.min_coverage <= targeted.mean_coverage <= targeted.max_coverage

    def test_empty_rejected(self):
        with pytest.raises(Exception):
            summarize([])
