"""Problem classification analyses (experiment E1)."""

from __future__ import annotations

import pytest

from repro.analysis.classify import (
    attribute_unavailability,
    classification_distribution,
    classifier_verdicts,
    classify_events_for_flows,
)
from repro.core.detection import ProblemType
from repro.netmodel.conditions import ConditionTimeline, LinkState
from repro.netmodel.events import Burst, EventKind, LinkDegradation, ProblemEvent
from repro.netmodel.topology import FlowSpec
from repro.routing.registry import make_policy
from repro.simulation.interval import run_replay
from repro.simulation.results import ReplayConfig
from repro.netmodel.topology import ServiceSpec

FLOW = FlowSpec("NYC", "SJC")
DEADLINE = 65.0


def node_event(topology, node, start=10.0, duration=30.0, rate=0.6):
    degradations = tuple(
        LinkDegradation(edge, LinkState(loss_rate=rate))
        for edge in topology.adjacent_edges(node)
    )
    return ProblemEvent(
        EventKind.NODE,
        node,
        start,
        duration,
        (Burst(start, duration, degradations),),
    )


def link_event(edge, start=10.0, duration=30.0, rate=0.6):
    return ProblemEvent(
        EventKind.LINK,
        edge,
        start,
        duration,
        (Burst(start, duration, (LinkDegradation(edge, LinkState(loss_rate=rate)),)),),
    )


class TestGroundTruthClassification:
    def test_destination_node_event(self, reference_topology):
        events = [node_event(reference_topology, "SJC")]
        problems = classify_events_for_flows(
            reference_topology, [FLOW], events, DEADLINE
        )
        assert len(problems) == 1
        assert problems[0].category == "destination"

    def test_source_node_event(self, reference_topology):
        events = [node_event(reference_topology, "NYC")]
        problems = classify_events_for_flows(
            reference_topology, [FLOW], events, DEADLINE
        )
        assert problems[0].category == "source"

    def test_middle_node_event(self, reference_topology):
        events = [node_event(reference_topology, "CHI")]
        problems = classify_events_for_flows(
            reference_topology, [FLOW], events, DEADLINE
        )
        assert problems[0].category == "middle"

    def test_middle_link_event(self, reference_topology):
        events = [link_event(("CHI", "DEN"))]
        problems = classify_events_for_flows(
            reference_topology, [FLOW], events, DEADLINE
        )
        assert problems[0].category == "middle"

    def test_endpoint_adjacent_link_event(self, reference_topology):
        events = [link_event(("DEN", "SJC"))]
        problems = classify_events_for_flows(
            reference_topology, [FLOW], events, DEADLINE
        )
        assert problems[0].category == "destination"

    def test_irrelevant_event_skipped(self, reference_topology):
        # Trans-Atlantic link cannot carry a timely NYC->SJC route.
        events = [link_event(("LON", "FRA"))]
        problems = classify_events_for_flows(
            reference_topology, [FLOW], events, DEADLINE
        )
        assert problems == []

    def test_latency_events_not_problems(self, reference_topology):
        burst = Burst(
            10.0,
            30.0,
            (
                LinkDegradation(
                    ("CHI", "DEN"), LinkState(extra_latency_ms=50.0)
                ),
            ),
        )
        events = [
            ProblemEvent(EventKind.LATENCY, ("CHI", "DEN"), 10.0, 30.0, (burst,))
        ]
        assert (
            classify_events_for_flows(reference_topology, [FLOW], events, DEADLINE)
            == []
        )

    def test_distribution_sums_to_one(self, reference_topology):
        events = [
            node_event(reference_topology, "SJC"),
            node_event(reference_topology, "NYC"),
            link_event(("CHI", "DEN")),
        ]
        problems = classify_events_for_flows(
            reference_topology, [FLOW], events, DEADLINE
        )
        distribution = classification_distribution(problems)
        assert sum(distribution.values()) == pytest.approx(1.0)

    def test_empty_distribution(self):
        distribution = classification_distribution([])
        assert all(value == 0.0 for value in distribution.values())


class TestOnlineVerdicts:
    def test_agrees_with_ground_truth_on_node_events(self, reference_topology):
        events = [
            node_event(reference_topology, "SJC"),
            node_event(reference_topology, "NYC", start=100.0),
        ]
        contributions = [c for e in events for c in e.contributions()]
        timeline = ConditionTimeline(reference_topology, 200.0, contributions)
        problems = classify_events_for_flows(
            reference_topology, [FLOW], events, DEADLINE
        )
        verdicts = classifier_verdicts(reference_topology, timeline, problems)
        expected = {
            "destination": ProblemType.DESTINATION,
            "source": ProblemType.SOURCE,
        }
        for problem, verdict in verdicts:
            assert verdict == expected[problem.category]


class TestUnavailabilityAttribution:
    def test_endpoint_concentration(self, reference_topology):
        """Claim C3 in miniature: a destination event plus a middle link
        event -- two-disjoint unavailability must concentrate at the
        destination (the middle event is routed around for free)."""
        events = [
            node_event(reference_topology, "SJC", start=10.0, duration=50.0, rate=0.7),
            link_event(("CHI", "DEN"), start=100.0, duration=50.0, rate=0.9),
        ]
        contributions = [c for e in events for c in e.contributions()]
        timeline = ConditionTimeline(reference_topology, 300.0, contributions)
        result = run_replay(
            reference_topology,
            timeline,
            [FLOW],
            ServiceSpec(),
            scheme_names=("static-two-disjoint",),
            config=ReplayConfig(collect_windows=True),
        )
        attribution = attribute_unavailability(
            reference_topology, timeline, result
        )
        assert attribution["destination"] > 0.0
        assert attribution["middle"] == 0.0  # one middle link never breaks a pair
        total = sum(attribution.values())
        assert attribution["destination"] / total > 0.99

    def test_requires_windows(self, reference_topology):
        timeline = ConditionTimeline(reference_topology, 10.0)
        result = run_replay(
            reference_topology,
            timeline,
            [FLOW],
            ServiceSpec(),
            scheme_names=("static-two-disjoint",),
            config=ReplayConfig(collect_windows=False),
        )
        with pytest.raises(ValueError, match="collect_windows"):
            attribute_unavailability(reference_topology, timeline, result)
