"""Gap coverage and performance rows."""

from __future__ import annotations

import pytest

from repro.analysis.metrics import (
    gap_coverage,
    per_flow_gap_coverage,
    scheme_performance_rows,
)
from repro.netmodel.topology import FlowSpec, ServiceSpec
from repro.simulation.results import FlowSchemeStats, ReplayConfig, ReplayResult
from repro.util.validation import ValidationError

FLOW_A = FlowSpec("S", "T")
FLOW_B = FlowSpec("S", "U")


def stats(flow, scheme, unavailable, duration=100.0, edges=2):
    entry = FlowSchemeStats(flow=flow, scheme=scheme)
    clean = duration - unavailable
    if clean > 0:
        entry.add_window(0.0, clean, "g", edges, 1.0, 0.0, 0.0)
    if unavailable > 0:
        entry.add_window(clean, duration, "g", edges, 0.0, 1.0, 0.0)
    return entry


def build_result(values_a, values_b):
    """values: scheme -> unavailable seconds for each flow."""
    result = ReplayResult(ServiceSpec(), ReplayConfig())
    for scheme, unavailable in values_a.items():
        result.add(stats(FLOW_A, scheme, unavailable))
    for scheme, unavailable in values_b.items():
        result.add(stats(FLOW_B, scheme, unavailable))
    return result


class TestGapCoverage:
    def test_half_coverage(self):
        result = build_result(
            {"dynamic-single": 100.0, "mid": 60.0, "flooding": 20.0},
            {"dynamic-single": 0.0, "mid": 0.0, "flooding": 0.0},
        )
        assert gap_coverage(result, "mid") == pytest.approx(0.5)

    def test_baseline_zero_optimal_one(self):
        result = build_result(
            {"dynamic-single": 100.0, "flooding": 20.0},
            {"dynamic-single": 0.0, "flooding": 0.0},
        )
        assert gap_coverage(result, "dynamic-single") == 0.0
        assert gap_coverage(result, "flooding") == 1.0

    def test_worse_than_baseline_negative(self):
        result = build_result(
            {"dynamic-single": 50.0, "bad": 80.0, "flooding": 10.0},
            {"dynamic-single": 0.0, "bad": 0.0, "flooding": 0.0},
        )
        assert gap_coverage(result, "bad") < 0.0

    def test_no_gap_rejected(self):
        result = build_result(
            {"dynamic-single": 10.0, "flooding": 10.0},
            {"dynamic-single": 0.0, "flooding": 0.0},
        )
        with pytest.raises(ValidationError):
            gap_coverage(result, "flooding")

    def test_custom_baseline(self):
        result = build_result(
            {"static-single": 200.0, "mid": 110.0, "flooding": 20.0},
            {"static-single": 0.0, "mid": 0.0, "flooding": 0.0},
        )
        assert gap_coverage(result, "mid", baseline="static-single") == pytest.approx(
            0.5
        )


class TestPerFlowGapCoverage:
    def test_flow_without_gap_is_none(self):
        result = build_result(
            {"dynamic-single": 100.0, "mid": 50.0, "flooding": 0.0},
            {"dynamic-single": 0.0, "mid": 0.0, "flooding": 0.0},
        )
        coverage = per_flow_gap_coverage(result, "mid")
        assert coverage["S->T"] == pytest.approx(0.5)
        assert coverage["S->U"] is None


class TestPerformanceRows:
    def test_rows_complete(self):
        result = build_result(
            {"dynamic-single": 100.0, "mid": 40.0, "flooding": 20.0},
            {"dynamic-single": 20.0, "mid": 10.0, "flooding": 0.0},
        )
        rows = {row["scheme"]: row for row in scheme_performance_rows(result)}
        assert rows["mid"]["unavailable_s"] == pytest.approx(50.0)
        assert rows["mid"]["gap_coverage"] == pytest.approx(0.7)
        assert rows["dynamic-single"]["gap_coverage"] == 0.0
        assert rows["flooding"]["gap_coverage"] == 1.0
        assert rows["mid"]["availability"] == pytest.approx(1 - 50.0 / 200.0)
