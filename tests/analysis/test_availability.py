"""Outage-episode extraction and summaries."""

from __future__ import annotations

import pytest

from repro.analysis.availability import outage_episodes, summarize_outages
from repro.netmodel.topology import FlowSpec, ServiceSpec
from repro.simulation.results import FlowSchemeStats, ReplayConfig, ReplayResult

FLOW = FlowSpec("S", "T")


def stats_with_windows(pattern, scheme="x"):
    """``pattern``: list of (duration, on_time_probability)."""
    stats = FlowSchemeStats(flow=FLOW, scheme=scheme)
    clock = 0.0
    for duration, on_time in pattern:
        lost = 1.0 - on_time
        stats.add_window(
            clock, clock + duration, "g", 2, on_time, lost, 0.0, collect=True
        )
        clock += duration
    return stats


class TestEpisodeExtraction:
    def test_no_outage(self):
        stats = stats_with_windows([(100.0, 1.0)])
        assert outage_episodes(stats) == []

    def test_single_episode(self):
        stats = stats_with_windows([(40.0, 1.0), (10.0, 0.5), (50.0, 1.0)])
        episodes = outage_episodes(stats)
        assert len(episodes) == 1
        episode = episodes[0]
        assert episode.start_s == 40.0
        assert episode.end_s == 50.0
        assert episode.duration_s == 10.0
        assert episode.worst_on_time_probability == 0.5
        assert episode.unavailable_s == pytest.approx(5.0)

    def test_adjacent_degraded_windows_merge(self):
        stats = stats_with_windows(
            [(40.0, 1.0), (5.0, 0.5), (5.0, 0.8), (50.0, 1.0)]
        )
        episodes = outage_episodes(stats)
        assert len(episodes) == 1
        assert episodes[0].duration_s == 10.0
        assert episodes[0].worst_on_time_probability == 0.5

    def test_separate_episodes(self):
        stats = stats_with_windows(
            [(10.0, 1.0), (5.0, 0.0), (10.0, 1.0), (5.0, 0.2), (10.0, 1.0)]
        )
        episodes = outage_episodes(stats)
        assert len(episodes) == 2

    def test_trailing_episode_closed(self):
        stats = stats_with_windows([(10.0, 1.0), (5.0, 0.0)])
        episodes = outage_episodes(stats)
        assert len(episodes) == 1
        assert episodes[0].end_s == 15.0

    def test_threshold(self):
        stats = stats_with_windows([(10.0, 0.9995)])
        assert outage_episodes(stats, threshold=0.999) == []
        assert len(outage_episodes(stats, threshold=0.9999)) == 1

    def test_requires_windows(self):
        stats = FlowSchemeStats(flow=FLOW, scheme="x")
        with pytest.raises(Exception):
            outage_episodes(stats)


class TestSummaries:
    def build_result(self):
        result = ReplayResult(ServiceSpec(), ReplayConfig(collect_windows=True))
        result.add(
            stats_with_windows(
                [(10.0, 1.0), (5.0, 0.0), (10.0, 1.0), (20.0, 0.5), (10.0, 1.0)],
                scheme="bursty",
            )
        )
        clean = stats_with_windows([(55.0, 1.0)], scheme="clean")
        result.add(clean)
        return result

    def test_summary_statistics(self):
        summaries = {s.scheme: s for s in summarize_outages(self.build_result())}
        bursty = summaries["bursty"]
        assert bursty.episodes == 2
        assert bursty.max_duration_s == 20.0
        assert bursty.mean_duration_s == pytest.approx(12.5)
        assert bursty.total_unavailable_s == pytest.approx(5.0 + 10.0)

    def test_clean_scheme_zeroes(self):
        summaries = {s.scheme: s for s in summarize_outages(self.build_result())}
        assert summaries["clean"].episodes == 0
        assert summaries["clean"].max_duration_s == 0.0

    def test_integration_with_replay(self, diamond):
        from repro.netmodel.conditions import (
            ConditionTimeline,
            Contribution,
            LinkState,
        )
        from repro.routing.registry import make_policy
        from repro.simulation.interval import replay_flow

        timeline = ConditionTimeline(
            diamond,
            200.0,
            [
                Contribution(("S", "A"), 50.0, 80.0, LinkState(loss_rate=1.0)),
                Contribution(("S", "A"), 120.0, 130.0, LinkState(loss_rate=1.0)),
            ],
        )
        service = ServiceSpec(
            deadline_ms=15.0, send_interval_ms=10.0, rtt_budget_ms=30.0
        )
        stats = replay_flow(
            diamond, timeline, FLOW, service, make_policy("static-single"),
            ReplayConfig(collect_windows=True),
        )
        episodes = outage_episodes(stats)
        assert len(episodes) == 2
        assert episodes[0].duration_s == pytest.approx(30.0)
        assert episodes[1].duration_s == pytest.approx(10.0)
