"""Report rendering (sanity: tables contain the right rows/columns)."""

from __future__ import annotations

from repro.analysis.reporting import (
    format_classification_table,
    format_cost_table,
    format_per_flow_table,
    format_scheme_performance_table,
)
from repro.netmodel.topology import FlowSpec, ServiceSpec
from repro.simulation.results import FlowSchemeStats, ReplayConfig, ReplayResult

FLOW = FlowSpec("S", "T")


def build_result():
    result = ReplayResult(ServiceSpec(), ReplayConfig())
    for scheme, unavailable, edges in (
        ("dynamic-single", 100.0, 2),
        ("static-two-disjoint", 60.0, 6),
        ("targeted", 22.0, 7),
        ("flooding", 20.0, 30),
    ):
        entry = FlowSchemeStats(flow=FLOW, scheme=scheme)
        entry.add_window(0.0, 1000.0 - unavailable, "g", edges, 1.0, 0.0, 0.0)
        entry.add_window(1000.0 - unavailable, 1000.0, "g", edges, 0.0, 1.0, 0.0)
        result.add(entry)
    return result


class TestPerformanceTable:
    def test_contains_all_schemes(self):
        table = format_scheme_performance_table(build_result())
        for scheme in ("dynamic-single", "targeted", "flooding"):
            assert scheme in table

    def test_gap_coverage_column(self):
        table = format_scheme_performance_table(build_result())
        # targeted covers (100-22)/(100-20) = 97.5% of the gap.
        assert "97.5" in table

    def test_custom_baseline(self):
        table = format_scheme_performance_table(
            build_result(), baseline="static-two-disjoint"
        )
        assert "static-two-disjoint" in table


class TestCostTable:
    def test_overhead_column(self):
        table = format_cost_table(build_result())
        assert "+16.7%" in table  # 7 vs 6 edges
        assert "flooding" in table


class TestClassificationTable:
    def test_categories_rendered(self):
        table = format_classification_table(
            {"destination": 0.6, "source": 0.3, "middle": 0.1},
            counts={"destination": 6, "source": 3, "middle": 1},
        )
        assert "destination" in table
        assert "60.0%" in table
        assert "6" in table

    def test_without_counts(self):
        table = format_classification_table({"destination": 1.0})
        assert "events" not in table


class TestPerFlowTable:
    def test_one_row_per_flow(self):
        table = format_per_flow_table(
            build_result(), schemes=("static-two-disjoint", "targeted")
        )
        assert "S->T" in table
        assert "targeted" in table
