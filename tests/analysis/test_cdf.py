"""Latency profiles and CDFs (experiment E6 machinery)."""

from __future__ import annotations

import math

import pytest

from repro.analysis.cdf import cdf_at, latency_profile
from repro.netmodel.topology import FlowSpec
from repro.simulation.packet_sim import PacketRecord, PacketSimOutcome

FLOW = FlowSpec("S", "T")


def record(seq, arrival, deadline=15.0, messages=2):
    on_time = arrival is not None and arrival <= deadline
    return PacketRecord(seq, seq * 0.01, arrival, on_time, messages, "g")


def outcome(arrivals):
    records = [record(i, arrival) for i, arrival in enumerate(arrivals)]
    return PacketSimOutcome(FLOW, "scheme-x", records)


class TestLatencyProfile:
    def test_basic_stats(self):
        profile = latency_profile(outcome([10.0, 12.0, 14.0, None]))
        assert profile.packets == 4
        assert profile.delivered == 3
        assert profile.lost_fraction == pytest.approx(0.25)
        assert profile.p50_ms == pytest.approx(12.0)
        assert profile.max_ms == 14.0
        assert profile.on_time_fraction == pytest.approx(0.75)

    def test_all_lost(self):
        profile = latency_profile(outcome([None, None]))
        assert profile.delivered == 0
        assert profile.lost_fraction == 1.0
        assert math.isnan(profile.p50_ms)

    def test_empty(self):
        profile = latency_profile(outcome([]))
        assert profile.packets == 0
        assert profile.on_time_fraction == 1.0

    def test_cdf_monotone(self):
        profile = latency_profile(outcome([5.0, 1.0, 3.0, 3.0]))
        fractions = [fraction for _value, fraction in profile.cdf]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0


class TestCdfAt:
    def test_lookup(self):
        profile = latency_profile(outcome([10.0, 20.0, 30.0, 40.0]))
        assert cdf_at(profile, 5.0) == 0.0
        assert cdf_at(profile, 20.0) == pytest.approx(0.5)
        assert cdf_at(profile, 100.0) == 1.0

    def test_outcome_properties(self):
        o = outcome([10.0, 20.0, None])
        assert o.delivered_on_time == 1
        assert o.late == 1
        assert o.lost == 1
        assert o.latencies_ms() == [10.0, 20.0]
