"""Deriving injector blackholes from compiled events (the single world)."""

from __future__ import annotations

import pytest

from repro.chaos.generate import FULL_LOSS, outage_windows, schedule_from_events
from repro.netmodel.conditions import LinkState
from repro.netmodel.events import Burst, EventKind, LinkDegradation, ProblemEvent
from repro.util.validation import ValidationError


def _event(edge, windows, loss: float = 1.0) -> ProblemEvent:
    bursts = tuple(
        Burst(
            start,
            end - start,
            (LinkDegradation(edge, LinkState(loss_rate=loss)),),
        )
        for start, end in windows
    )
    start = min(w[0] for w in windows)
    end = max(w[1] for w in windows)
    return ProblemEvent(
        kind=EventKind.LINK,
        location=edge,
        start_s=start,
        duration_s=end - start,
        bursts=bursts,
    )


class TestOutageWindows:
    def test_fractional_loss_is_not_an_outage(self):
        assert outage_windows([_event(("a", "b"), [(0, 10)], loss=0.9)]) == []

    def test_full_loss_threshold_is_inclusive(self):
        windows = outage_windows([_event(("a", "b"), [(0, 10)], loss=FULL_LOSS)])
        assert windows == [(("a", "b"), 0, 10)]

    def test_overlapping_windows_coalesce(self):
        windows = outage_windows([_event(("a", "b"), [(0, 10), (5, 20)])])
        assert windows == [(("a", "b"), 0, 20)]

    def test_zero_gap_windows_coalesce(self):
        # A blackhole that heals and instantly re-fires is one blackhole:
        # emitting two would make repair order emission-dependent (the
        # last-writer-wins bug class this derivation exists to kill).
        windows = outage_windows([_event(("a", "b"), [(0, 10), (10, 15)])])
        assert windows == [(("a", "b"), 0, 15)]

    def test_real_gaps_stay_separate(self):
        windows = outage_windows([_event(("a", "b"), [(0, 10), (11, 15)])])
        assert windows == [(("a", "b"), 0, 10), (("a", "b"), 11, 15)]

    def test_coalescing_spans_events(self):
        events = [
            _event(("a", "b"), [(0, 10)]),
            _event(("a", "b"), [(8, 14)]),
        ]
        assert outage_windows(events) == [(("a", "b"), 0, 14)]

    def test_edges_kept_separate_and_sorted(self):
        events = [
            _event(("b", "a"), [(0, 10)]),
            _event(("a", "b"), [(0, 10)]),
        ]
        assert outage_windows(events) == [
            (("a", "b"), 0, 10),
            (("b", "a"), 0, 10),
        ]


class TestScheduleFromEvents:
    def test_one_directed_blackhole_per_window(self, diamond):
        events = [_event(("S", "A"), [(0.0, 5.0), (5.0, 8.0)])]
        schedule = schedule_from_events(events, diamond)
        (hole,) = schedule.blackholes
        assert hole.edge == ("S", "A")
        assert hole.start_s == 0.0 and hole.duration_s == 8.0
        assert not hole.bidirectional

    def test_deterministic_fingerprint(self, diamond):
        events = [
            _event(("S", "A"), [(0.0, 5.0)]),
            _event(("A", "T"), [(2.0, 6.0)]),
        ]
        assert (
            schedule_from_events(events, diamond).fingerprint()
            == schedule_from_events(events[::-1], diamond).fingerprint()
        )

    def test_sorted_by_start_then_edge(self, diamond):
        events = [
            _event(("A", "T"), [(2.0, 6.0)]),
            _event(("S", "B"), [(0.0, 5.0)]),
            _event(("S", "A"), [(0.0, 5.0)]),
        ]
        schedule = schedule_from_events(events, diamond)
        keys = [(hole.start_s, hole.edge) for hole in schedule.blackholes]
        assert keys == sorted(keys)

    def test_unknown_edge_rejected(self, diamond):
        with pytest.raises(ValidationError, match="unknown edge"):
            schedule_from_events([_event(("S", "T"), [(0.0, 5.0)])], diamond)

    def test_soft_degradations_yield_empty_schedule(self, diamond):
        events = [_event(("S", "A"), [(0.0, 5.0)], loss=0.3)]
        assert len(schedule_from_events(events, diamond)) == 0
