"""Seeded schedule generation: determinism, protection, ground truth."""

from __future__ import annotations

import pytest

from repro.chaos.generate import ChaosSpec, generate_fault_schedule, to_events
from repro.netmodel.events import EventKind
from repro.util.validation import ValidationError

SPEC = ChaosSpec(
    duration_s=20.0,
    crashes=3,
    blackholes=2,
    partitions=2,
    stalls=2,
    message_fault_windows=1,
    min_fault_s=1.0,
    max_fault_s=4.0,
    settle_s=3.0,
    protected_nodes=frozenset({"S", "T"}),
)


class TestGeneration:
    def test_same_seed_same_schedule(self, diamond):
        a = generate_fault_schedule(diamond, SPEC, seed=11, flows=("S->T",))
        b = generate_fault_schedule(diamond, SPEC, seed=11, flows=("S->T",))
        assert a == b
        assert a.fingerprint() == b.fingerprint()

    def test_different_seeds_differ(self, diamond):
        a = generate_fault_schedule(diamond, SPEC, seed=1, flows=("S->T",))
        b = generate_fault_schedule(diamond, SPEC, seed=2, flows=("S->T",))
        assert a != b

    def test_protected_nodes_never_targeted(self, diamond):
        for seed in range(8):
            schedule = generate_fault_schedule(
                diamond, SPEC, seed=seed, flows=("S->T",)
            )
            for crash in schedule.crashes:
                assert crash.node in {"A", "B"}
            for partition in schedule.partitions:
                assert set(partition.side) <= {"A", "B"}

    def test_every_fault_clears_before_settle_window(self, diamond):
        schedule = generate_fault_schedule(diamond, SPEC, seed=5, flows=("S->T",))
        assert len(schedule) == 10
        for fault in schedule:
            assert fault.start_s >= 0.0
            assert fault.end_s <= SPEC.duration_s - SPEC.settle_s + 1e-9

    def test_stalls_require_flow_names(self, diamond):
        with pytest.raises(ValidationError):
            generate_fault_schedule(diamond, SPEC, seed=0, flows=())

    def test_all_protected_rejected(self, diamond):
        spec = ChaosSpec(
            duration_s=20.0,
            crashes=1,
            protected_nodes=frozenset({"S", "A", "B", "T"}),
        )
        with pytest.raises(ValidationError):
            generate_fault_schedule(diamond, spec, seed=0)

    def test_faults_must_fit_inside_run(self):
        with pytest.raises(ValidationError):
            ChaosSpec(duration_s=5.0, max_fault_s=4.0, settle_s=3.0)


class TestGroundTruthExport:
    def test_event_kinds_and_order(self, diamond):
        schedule = generate_fault_schedule(diamond, SPEC, seed=3, flows=("S->T",))
        events = to_events(schedule, diamond)
        # Stalls and message windows have no per-edge ground truth.
        assert len(events) == len(schedule.crashes) + len(
            schedule.partitions
        ) + len(schedule.blackholes)
        kinds = {event.kind for event in events}
        assert EventKind.CRASH in kinds
        assert EventKind.PARTITION in kinds
        starts = [event.start_s for event in events]
        assert starts == sorted(starts)

    def test_crash_degrades_adjacent_edges_both_ways(self, diamond):
        schedule = generate_fault_schedule(
            diamond,
            ChaosSpec(duration_s=20.0, crashes=1, blackholes=0,
                      protected_nodes=frozenset({"S", "T"})),
            seed=4,
        )
        (event,) = to_events(schedule, diamond)
        node = schedule.crashes[0].node
        assert event.kind is EventKind.CRASH
        assert event.location == node
        for degradation in event.bursts[0].degradations:
            assert node in degradation.edge
            assert degradation.state.loss_rate == 1.0
        # Both directions of each adjacent link are degraded.
        edges = {d.edge for d in event.bursts[0].degradations}
        assert {(u, v) for (v, u) in edges} == edges
