"""The injector executes schedules: crashes, blocks, effects, stalls."""

from __future__ import annotations

import pytest

from repro.chaos.faults import (
    DaemonStall,
    FaultSchedule,
    LinkBlackhole,
    MessageFaults,
    NodeCrash,
    Partition,
)
from repro.netmodel.conditions import ConditionTimeline
from repro.netmodel.topology import FlowSpec, ServiceSpec
from repro.overlay.harness import build_overlay
from repro.util.validation import ValidationError

FLOW = FlowSpec("S", "T")
SERVICE = ServiceSpec(deadline_ms=15.0, send_interval_ms=20.0, rtt_budget_ms=30.0)


def harness_for(diamond, seed=1, flows=(), scheme="static-two-disjoint"):
    timeline = ConditionTimeline(diamond, 120.0)
    harness = build_overlay(
        diamond, timeline, flows=flows, service=SERVICE, scheme=scheme, seed=seed
    )
    harness.start()
    return harness


class TestCrashExecution:
    def test_cold_crash_and_rejoin_at_scheduled_times(self, diamond):
        harness = harness_for(diamond)
        schedule = FaultSchedule(crashes=(NodeCrash("A", 2.0, 3.0),))
        harness.run(1.5, faults=schedule)
        assert harness.nodes["A"].running
        harness.run(1.0)  # now at 2.5, inside the crash
        assert not harness.nodes["A"].running
        harness.run(3.0)  # now at 5.5, past the restart
        assert harness.nodes["A"].running
        assert harness.nodes["A"].stats["rejoins"] == 1

    def test_warm_restart_keeps_state(self, diamond):
        harness = harness_for(diamond)
        schedule = FaultSchedule(
            crashes=(NodeCrash("A", 1.0, 2.0, cold_rejoin=False),)
        )
        harness.run(5.0, faults=schedule)
        assert harness.nodes["A"].running
        assert harness.nodes["A"].stats["rejoins"] == 0

    def test_unknown_crash_target_rejected(self, diamond):
        harness = harness_for(diamond)
        schedule = FaultSchedule(crashes=(NodeCrash("Z", 1.0, 1.0),))
        with pytest.raises(ValidationError):
            harness.run(1.0, faults=schedule)


class TestBlocking:
    def test_asymmetric_blackhole_blocks_one_direction(self, diamond):
        harness = harness_for(diamond)
        schedule = FaultSchedule(blackholes=(LinkBlackhole(("S", "A"), 1.0, 2.0),))
        harness.run(2.0, faults=schedule)
        injector = harness.injector
        assert injector.blocked(("S", "A"))
        assert not injector.blocked(("A", "S"))
        assert harness.network.blackholed > 0  # hellos died in the hole
        harness.run(2.0)  # past end
        assert not injector.blocked(("S", "A"))

    def test_overlapping_faults_refcount_the_edge(self, diamond):
        harness = harness_for(diamond)
        schedule = FaultSchedule(
            blackholes=(LinkBlackhole(("S", "A"), 1.0, 4.0),),
            partitions=(Partition(("A",), 2.0, 1.0),),
        )
        harness.run(2.5, faults=schedule)  # both faults cover S->A
        assert harness.injector.blocked(("S", "A"))
        harness.run(1.0)  # partition cleared, blackhole still active
        assert harness.injector.blocked(("S", "A"))
        assert not harness.injector.blocked(("A", "T"))
        harness.run(2.0)  # all clear
        assert not harness.injector.blocked(("S", "A"))

    def test_partition_isolates_node(self, diamond):
        harness = harness_for(diamond)
        schedule = FaultSchedule(partitions=(Partition(("B",), 1.0, 3.0),))
        harness.run(2.0, faults=schedule)
        for edge in (("S", "B"), ("B", "S"), ("B", "T"), ("T", "B")):
            assert harness.injector.blocked(edge)


class TestMessageEffects:
    def window_schedule(self, **rates) -> FaultSchedule:
        return FaultSchedule(
            message_faults=(MessageFaults(0.5, 10.0, **rates),)
        )

    def test_duplication_counted_and_harmless(self, diamond):
        harness = harness_for(diamond)
        harness.run(8.0, faults=self.window_schedule(duplicate_rate=1.0))
        assert harness.network.duplicated > 0
        # Hellos still work: the link estimate stays clean.
        assert harness.nodes["S"].loss_estimate("A") == 0.0

    def test_corruption_detected_and_dropped(self, diamond):
        harness = harness_for(diamond)
        harness.run(
            8.0,
            faults=self.window_schedule(duplicate_rate=1.0, corrupt_rate=1.0),
        )
        assert harness.network.corrupted > 0
        dropped = sum(
            node.stats["frames_corrupt_dropped"]
            for node in harness.nodes.values()
        )
        assert dropped > 0
        # Corruption hits the duplicate; the pristine copy keeps protocols up.
        assert harness.nodes["S"].loss_estimate("A") == 0.0

    def test_corrupting_the_sole_copy_loses_it(self, diamond):
        harness = harness_for(diamond)
        harness.run(6.0, faults=self.window_schedule(corrupt_rate=1.0))
        # Every message damaged and discarded: links look dead.
        assert harness.nodes["S"].loss_estimate("A") > 0.8

    def test_reordering_delays_but_delivers(self, diamond):
        harness = harness_for(diamond)
        harness.run(
            8.0,
            faults=self.window_schedule(
                reorder_rate=1.0, reorder_delay_ms=5.0
            ),
        )
        # Extra delay is small against the hello timeout: no loss observed.
        assert harness.nodes["S"].loss_estimate("A") == 0.0

    def test_effects_outside_window_are_clean(self, diamond):
        harness = harness_for(diamond)
        schedule = FaultSchedule(
            message_faults=(MessageFaults(50.0, 1.0, duplicate_rate=1.0),)
        )
        harness.run(3.0, faults=schedule)
        assert harness.network.duplicated == 0


class TestStalls:
    def test_stalled_daemon_misses_ticks_then_resumes(self, diamond):
        harness = harness_for(diamond, flows=[FLOW], scheme="dynamic-single")
        schedule = FaultSchedule(stalls=(DaemonStall(FLOW.name, 1.0, 2.0),))
        harness.run(2.0, faults=schedule)
        daemon = harness.daemons[FLOW.name]
        assert daemon.stalled
        assert daemon.ticks_missed > 0
        harness.run(2.0)
        assert not daemon.stalled

    def test_unknown_stall_flow_rejected(self, diamond):
        harness = harness_for(diamond)
        schedule = FaultSchedule(stalls=(DaemonStall("nope", 1.0, 1.0),))
        with pytest.raises(ValidationError):
            harness.run(1.0, faults=schedule)


class TestHarnessWiring:
    def test_second_schedule_rejected(self, diamond):
        harness = harness_for(diamond)
        schedule = FaultSchedule(crashes=(NodeCrash("A", 1.0, 1.0),))
        harness.run(1.0, faults=schedule)
        with pytest.raises(ValidationError):
            harness.run(1.0, faults=schedule)

    def test_fault_log_is_chronological(self, diamond):
        harness = harness_for(diamond)
        schedule = FaultSchedule(
            crashes=(NodeCrash("A", 2.0, 1.0),),
            blackholes=(LinkBlackhole(("S", "B"), 1.0, 3.0),),
        )
        harness.run(6.0, faults=schedule)
        times = [at for at, _ in harness.injector.log]
        assert times == sorted(times)
        assert len(times) == 4  # two faults, each asserts and clears
