"""Experiment E19: chaos acceptance — survive a relay crash mid-burst.

The headline scenario: a loss burst hits the primary path, and while it
is in progress the primary relay crashes cold.  Every invariant must
hold, and targeted redundancy must keep measurably more traffic on time
than a static single path under the *same* fault schedule and seed.
A property test asserts bit-level determinism: the same seed reproduces
the same per-flow report, message for message.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos.faults import FaultSchedule, NodeCrash
from repro.chaos.generate import ChaosSpec, generate_fault_schedule
from repro.core.graph import Topology
from repro.netmodel.conditions import ConditionTimeline, Contribution, LinkState
from repro.netmodel.topology import FlowSpec, ServiceSpec
from repro.overlay.harness import build_overlay


def make_diamond() -> Topology:
    # Local copy of the conftest diamond: hypothesis draws many examples
    # per test call, which does not mix with function-scoped fixtures.
    topology = Topology("diamond")
    for node in ("S", "A", "B", "T"):
        topology.add_node(node)
    topology.add_link("S", "A", 2.0)
    topology.add_link("A", "T", 2.0)
    topology.add_link("S", "B", 3.0)
    topology.add_link("B", "T", 3.0)
    return topology.freeze()

FLOW = FlowSpec("S", "T")
SERVICE = ServiceSpec(deadline_ms=15.0, send_interval_ms=20.0, rtt_budget_ms=30.0)

# A loss burst on the primary path (S->A) with a cold crash of the relay
# A landing mid-burst; everything clears by t=14 of a 30 s run.
BURST = Contribution(("S", "A"), 6.0, 12.0, LinkState(loss_rate=0.6))
CRASH = NodeCrash("A", start_s=8.0, duration_s=6.0, cold_rejoin=True)


def run_scheme(diamond, scheme, seed=5):
    timeline = ConditionTimeline(diamond, 60.0, [BURST])
    harness = build_overlay(
        diamond,
        timeline,
        flows=[FLOW],
        service=SERVICE,
        scheme=scheme,
        seed=seed,
        update_interval_s=0.25,
    )
    harness.start()
    harness.run(30.0, faults=FaultSchedule(crashes=(CRASH,)))
    harness.stop_traffic()
    return harness


class TestE19RelayCrashMidBurst:
    def test_invariants_hold_for_every_scheme(self, diamond):
        for scheme in ("targeted", "static-single", "static-two-disjoint"):
            harness = run_scheme(diamond, scheme)
            harness.invariants.check_convergence()
            harness.invariants.assert_ok()

    def test_targeted_beats_static_single_under_same_faults(self, diamond):
        targeted = run_scheme(diamond, "targeted").reports[FLOW.name]
        static = run_scheme(diamond, "static-single").reports[FLOW.name]
        # Same seed, same schedule, same burst: the only difference is
        # the routing philosophy.  The static path sits on the crashed
        # relay; targeted redundancy keeps delivering via B.
        assert targeted.on_time_fraction >= static.on_time_fraction + 0.05
        assert targeted.on_time_fraction > 0.8

    def test_crash_is_detected_and_recovered(self, diamond):
        harness = run_scheme(diamond, "targeted")
        source = harness.nodes["S"]
        assert source.stats["neighbors_declared_dead"] >= 1
        assert source.stats["neighbors_declared_alive"] >= 1
        assert harness.nodes["A"].stats["rejoins"] == 1
        # After rejoin plus settle the link looks healthy again.
        assert source.loss_estimate("A") < 0.2


def flow_fingerprint(harness):
    report = harness.reports[FLOW.name]
    return (
        report.sent,
        report.delivered,
        report.on_time,
        tuple(report.latencies_ms),
    )


SPEC = ChaosSpec(
    duration_s=8.0,
    crashes=1,
    blackholes=1,
    message_fault_windows=1,
    duplicate_rate=0.2,
    reorder_rate=0.2,
    corrupt_rate=0.2,
    min_fault_s=1.0,
    max_fault_s=2.0,
    settle_s=1.0,
    protected_nodes=frozenset({"S", "T"}),
)


class TestDeterminism:
    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_same_seed_same_per_flow_report(self, seed):
        diamond = make_diamond()
        fingerprints = []
        for _attempt in range(2):
            schedule = generate_fault_schedule(
                diamond, SPEC, seed=seed, flows=(FLOW.name,)
            )
            timeline = ConditionTimeline(diamond, 60.0)
            harness = build_overlay(
                diamond,
                timeline,
                flows=[FLOW],
                service=SERVICE,
                scheme="targeted",
                seed=seed,
            )
            harness.start()
            harness.run(SPEC.duration_s, faults=schedule)
            harness.stop_traffic()
            fingerprints.append(flow_fingerprint(harness))
        assert fingerprints[0] == fingerprints[1]
