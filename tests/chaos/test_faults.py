"""Fault dataclasses and schedules: validation, fingerprints, queries."""

from __future__ import annotations

import pytest

from repro.chaos.faults import (
    DaemonStall,
    FaultSchedule,
    LinkBlackhole,
    MessageFaults,
    NodeCrash,
    Partition,
)
from repro.util.validation import ValidationError


class TestValidation:
    def test_negative_start_rejected(self):
        with pytest.raises(ValidationError):
            NodeCrash("A", start_s=-1.0, duration_s=2.0)

    def test_zero_duration_rejected(self):
        with pytest.raises(ValidationError):
            LinkBlackhole(("S", "A"), start_s=1.0, duration_s=0.0)

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            MessageFaults(0.0, 1.0, duplicate_rate=1.5)

    def test_empty_partition_side_rejected(self):
        with pytest.raises(ValidationError):
            Partition(side=(), start_s=0.0, duration_s=1.0)

    def test_duplicate_partition_side_rejected(self):
        with pytest.raises(ValidationError):
            Partition(side=("A", "A"), start_s=0.0, duration_s=1.0)


class TestSchedule:
    def schedule(self) -> FaultSchedule:
        return FaultSchedule(
            crashes=(NodeCrash("A", 2.0, 3.0),),
            blackholes=(LinkBlackhole(("S", "A"), 1.0, 2.0),),
            stalls=(DaemonStall("S->T", 4.0, 4.0),),
        )

    def test_len_and_iter(self):
        schedule = self.schedule()
        assert len(schedule) == 3
        assert len(list(schedule)) == 3

    def test_end_s_is_last_clearing_fault(self):
        assert self.schedule().end_s == 8.0
        assert FaultSchedule().end_s == 0.0

    def test_fingerprint_stable_and_content_addressed(self):
        assert self.schedule().fingerprint() == self.schedule().fingerprint()
        other = FaultSchedule(crashes=(NodeCrash("B", 2.0, 3.0),))
        assert self.schedule().fingerprint() != other.fingerprint()

    def test_crashed_nodes_at(self):
        schedule = self.schedule()
        assert schedule.crashed_nodes_at(1.9) == frozenset()
        assert schedule.crashed_nodes_at(2.0) == frozenset({"A"})
        assert schedule.crashed_nodes_at(4.9) == frozenset({"A"})
        assert schedule.crashed_nodes_at(5.0) == frozenset()


class TestBlockedEdges:
    def test_asymmetric_blackhole_blocks_one_direction(self, diamond):
        fault = LinkBlackhole(("S", "A"), 0.0, 1.0)
        assert fault.blocked_edges(diamond) == (("S", "A"),)

    def test_bidirectional_blackhole_blocks_both(self, diamond):
        fault = LinkBlackhole(("S", "A"), 0.0, 1.0, bidirectional=True)
        assert set(fault.blocked_edges(diamond)) == {("S", "A"), ("A", "S")}

    def test_unknown_edge_rejected(self, diamond):
        fault = LinkBlackhole(("S", "T"), 0.0, 1.0)
        with pytest.raises(ValidationError):
            fault.blocked_edges(diamond)

    def test_partition_blocks_the_cut_both_ways(self, diamond):
        fault = Partition(side=("A",), start_s=0.0, duration_s=1.0)
        blocked = set(fault.blocked_edges(diamond))
        assert blocked == {("S", "A"), ("A", "S"), ("A", "T"), ("T", "A")}

    def test_schedule_blocked_edges_at_respects_time(self, diamond):
        schedule = FaultSchedule(
            blackholes=(LinkBlackhole(("S", "A"), 1.0, 2.0),),
            partitions=(Partition(("B",), 2.0, 2.0),),
        )
        assert schedule.blocked_edges_at(0.5, diamond) == frozenset()
        assert schedule.blocked_edges_at(1.5, diamond) == frozenset({("S", "A")})
        at_overlap = schedule.blocked_edges_at(2.5, diamond)
        assert ("S", "A") in at_overlap and ("S", "B") in at_overlap
        assert schedule.blocked_edges_at(4.5, diamond) == frozenset()
