"""The invariant checker: detection of each conservation breach."""

from __future__ import annotations

import pytest

from repro.chaos.faults import FaultSchedule, LinkBlackhole, NodeCrash
from repro.chaos.invariants import InvariantChecker, InvariantViolation
from repro.core.builders import single_path_graph
from repro.core.encoding import encode_graph
from repro.netmodel.conditions import ConditionTimeline
from repro.overlay.harness import build_overlay
from repro.overlay.messages import DataPacket, LinkStateUpdate
from repro.util.validation import ValidationError


def harness_for(diamond, seed=1):
    timeline = ConditionTimeline(diamond, 120.0)
    harness = build_overlay(diamond, timeline, flows=(), seed=seed)
    harness.start()
    return harness


def packet(topology, sequence=0, sent_at=0.0):
    graph = single_path_graph(topology, "S", "T")
    return DataPacket(
        flow="f",
        source="S",
        destination="T",
        sequence=sequence,
        sent_at_s=sent_at,
        graph_encoding=encode_graph(topology, graph),
    )


def attached(diamond):
    harness = harness_for(diamond)
    checker = InvariantChecker().attach(harness, FaultSchedule())
    return harness, checker


def tap(harness, checker, node_id, pkt, at_s):
    # Deliveries reach the checker through the node's public tap hook.
    node = harness.nodes[node_id]
    for hook in node.delivery_taps:
        hook(node, pkt, at_s)


class TestDeliveryInvariants:
    def test_clean_delivery_passes(self, diamond):
        harness, checker = attached(diamond)
        tap(harness, checker, "T", packet(diamond, 0, 0.0), 0.01)
        tap(harness, checker, "T", packet(diamond, 1, 0.02), 0.03)
        assert checker.ok
        checker.assert_ok()

    def test_duplicate_delivery_flagged(self, diamond):
        harness, checker = attached(diamond)
        tap(harness, checker, "T", packet(diamond, 0, 0.0), 0.01)
        tap(harness, checker, "T", packet(diamond, 0, 0.0), 0.02)
        assert [v.invariant for v in checker.violations] == [
            "no-duplicate-delivery"
        ]

    def test_delivery_while_crashed_flagged(self, diamond):
        harness, checker = attached(diamond)
        harness.nodes["T"].stop()
        tap(harness, checker, "T", packet(diamond, 0, 0.0), 0.01)
        assert [v.invariant for v in checker.violations] == [
            "no-delivery-while-crashed"
        ]

    def test_causality_flagged(self, diamond):
        harness, checker = attached(diamond)
        tap(harness, checker, "T", packet(diamond, 0, sent_at=5.0), 0.01)
        assert [v.invariant for v in checker.violations] == ["causality"]

    def test_sequence_monotonicity_flagged(self, diamond):
        harness, checker = attached(diamond)
        tap(harness, checker, "T", packet(diamond, 5, sent_at=1.0), 1.01)
        # A *higher* sequence claiming an *earlier* send time is corrupt.
        tap(harness, checker, "T", packet(diamond, 6, sent_at=0.5), 1.02)
        assert [v.invariant for v in checker.violations] == [
            "sequence-monotonicity"
        ]

    def test_out_of_order_arrival_is_fine(self, diamond):
        harness, checker = attached(diamond)
        tap(harness, checker, "T", packet(diamond, 6, sent_at=1.0), 1.05)
        tap(harness, checker, "T", packet(diamond, 5, sent_at=0.9), 1.06)
        assert checker.ok

    def test_assert_ok_raises_with_every_violation(self, diamond):
        harness, checker = attached(diamond)
        tap(harness, checker, "T", packet(diamond, 0, 0.0), 0.01)
        tap(harness, checker, "T", packet(diamond, 0, 0.0), 0.02)
        tap(harness, checker, "T", packet(diamond, 0, 0.0), 0.03)
        with pytest.raises(InvariantViolation) as excinfo:
            checker.assert_ok()
        assert "2 invariant violation(s)" in str(excinfo.value)

    def test_double_attach_rejected(self, diamond):
        harness, checker = attached(diamond)
        with pytest.raises(ValidationError):
            checker.attach(harness)


class TestConvergence:
    def stale_update(self, harness, edge, at_s):
        return LinkStateUpdate(
            originator="B",
            sequence=99,
            edge=edge,
            loss_rate=1.0,
            latency_ms=10.0,
            originated_at_s=at_s,
        )

    def test_stale_full_loss_claim_flagged(self, diamond):
        harness, checker = attached(diamond)
        harness.run(1.0)
        now = harness.kernel.now
        # S holds a full-loss claim, but ground truth is clean and no
        # fault is active: convergence failed.
        harness.nodes["S"].receive("A", self.stale_update(harness, ("A", "T"), now))
        checker.check_convergence()
        assert "lsdb-convergence" in [v.invariant for v in checker.violations]

    def test_claim_backed_by_schedule_not_flagged(self, diamond):
        harness = harness_for(diamond)
        schedule = FaultSchedule(
            blackholes=(LinkBlackhole(("A", "T"), 0.5, 100.0),)
        )
        checker = InvariantChecker().attach(harness, schedule)
        harness.run(1.0)
        now = harness.kernel.now
        harness.nodes["S"].receive("A", self.stale_update(harness, ("A", "T"), now))
        checker.check_convergence()  # the blackhole is still active
        assert checker.ok

    def test_claim_backed_by_crash_not_flagged(self, diamond):
        harness = harness_for(diamond)
        schedule = FaultSchedule(crashes=(NodeCrash("A", 0.5, 100.0),))
        checker = InvariantChecker().attach(harness, schedule)
        harness.run(1.0)
        now = harness.kernel.now
        harness.nodes["S"].receive("A", self.stale_update(harness, ("A", "T"), now))
        checker.check_convergence()  # edge endpoint A is down right now
        assert checker.ok

    def test_crashed_believer_skipped(self, diamond):
        harness, checker = attached(diamond)
        harness.run(1.0)
        now = harness.kernel.now
        harness.nodes["S"].receive("A", self.stale_update(harness, ("A", "T"), now))
        harness.nodes["S"].stop()
        checker.check_convergence()  # a crashed node's view is not judged
        assert checker.ok
