"""Additional detector state-machine branches."""

from __future__ import annotations

from repro.core.detection import ProblemDetector, ProblemType


def loss(*edges, rate=0.5):
    return {edge: rate for edge in edges}


def destination(topology):
    return loss(("DEN", "SJC"), ("LAX", "SJC"))


def source(topology):
    return loss(("NYC", "CHI"), ("NYC", "WAS"))


class TestDetectorTransitions:
    def make(self, topology, hold=10.0):
        return ProblemDetector(topology, "NYC", "SJC", hold_down_s=hold)

    def test_middle_escalates_to_endpoint(self, reference_topology):
        detector = self.make(reference_topology)
        assert detector.update(0.0, loss(("CHI", "DEN"))) is ProblemType.MIDDLE
        verdict = detector.update(1.0, destination(reference_topology))
        assert verdict is ProblemType.DESTINATION

    def test_expired_hold_allows_fresh_classification(self, reference_topology):
        detector = self.make(reference_topology, hold=5.0)
        detector.update(0.0, destination(reference_topology))
        # Long silence: hold expires; a new source problem replaces the
        # destination verdict instead of escalating.
        verdict = detector.update(20.0, source(reference_topology))
        assert verdict is ProblemType.SOURCE

    def test_source_then_destination_escalates(self, reference_topology):
        detector = self.make(reference_topology)
        detector.update(0.0, source(reference_topology))
        verdict = detector.update(3.0, destination(reference_topology))
        assert verdict is ProblemType.SOURCE_AND_DESTINATION

    def test_both_then_single_keeps_both_during_hold(self, reference_topology):
        detector = self.make(reference_topology)
        detector.update(
            0.0, {**source(reference_topology), **destination(reference_topology)}
        )
        verdict = detector.update(2.0, destination(reference_topology))
        assert verdict is ProblemType.SOURCE_AND_DESTINATION

    def test_active_type_property(self, reference_topology):
        detector = self.make(reference_topology)
        assert detector.active_type is ProblemType.NONE
        detector.update(0.0, destination(reference_topology))
        assert detector.active_type is ProblemType.DESTINATION
