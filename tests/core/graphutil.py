"""Shared helpers for algorithm tests: random graphs and networkx bridges."""

from __future__ import annotations

import networkx as nx
from hypothesis import strategies as st

from repro.core.algorithms.adjacency import Adjacency


@st.composite
def random_adjacency(
    draw,
    min_nodes: int = 2,
    max_nodes: int = 8,
    edge_probability: float = 0.5,
    max_weight: float = 10.0,
) -> Adjacency:
    """A random weighted digraph containing nodes "N0".."Nk".

    Node "N0" is the conventional source, the highest-numbered node the
    target; connectivity is not guaranteed (tests must handle NoPath).
    """
    count = draw(st.integers(min_nodes, max_nodes))
    nodes = [f"N{i}" for i in range(count)]
    adjacency: Adjacency = {node: {} for node in nodes}
    for u in nodes:
        for v in nodes:
            if u == v:
                continue
            if draw(st.booleans()) and draw(
                st.floats(0, 1, allow_nan=False)
            ) < edge_probability:
                weight = draw(
                    st.floats(0.1, max_weight, allow_nan=False, allow_infinity=False)
                )
                adjacency[u][v] = weight
    return adjacency


def to_networkx(adjacency: Adjacency) -> nx.DiGraph:
    graph = nx.DiGraph()
    graph.add_nodes_from(adjacency)
    for u, neighbors in adjacency.items():
        for v, weight in neighbors.items():
            graph.add_edge(u, v, weight=weight)
    return graph


def endpoints(adjacency: Adjacency) -> tuple[str, str]:
    nodes = sorted(adjacency)
    return nodes[0], nodes[-1]
