"""Problem classification and the stateful detector."""

from __future__ import annotations

import pytest

from repro.core.detection import (
    ProblemClassifier,
    ProblemDetector,
    ProblemType,
)
from repro.util.validation import ValidationError


def loss(*edges, rate=0.5):
    return {edge: rate for edge in edges}


class TestClassifier:
    def test_clean_network(self, reference_topology):
        assessment = ProblemClassifier().classify(
            reference_topology, "NYC", "SJC", {}
        )
        assert assessment.problem_type is ProblemType.NONE
        assert not assessment.any_problem

    def test_destination_problem(self, reference_topology):
        rates = loss(("DEN", "SJC"), ("LAX", "SJC"))
        assessment = ProblemClassifier().classify(
            reference_topology, "NYC", "SJC", rates
        )
        assert assessment.problem_type is ProblemType.DESTINATION
        assert assessment.endpoint_problem

    def test_source_problem(self, reference_topology):
        rates = loss(("NYC", "CHI"), ("NYC", "WAS"))
        assessment = ProblemClassifier().classify(
            reference_topology, "NYC", "SJC", rates
        )
        assert assessment.problem_type is ProblemType.SOURCE

    def test_both_endpoints(self, reference_topology):
        rates = loss(
            ("NYC", "CHI"), ("NYC", "WAS"), ("DEN", "SJC"), ("LAX", "SJC")
        )
        assessment = ProblemClassifier().classify(
            reference_topology, "NYC", "SJC", rates
        )
        assert assessment.problem_type is ProblemType.SOURCE_AND_DESTINATION

    def test_single_endpoint_link_is_middle(self, reference_topology):
        """One bad adjacent link is routable-around: not an endpoint problem."""
        rates = loss(("DEN", "SJC"))
        assessment = ProblemClassifier().classify(
            reference_topology, "NYC", "SJC", rates
        )
        assert assessment.problem_type is ProblemType.MIDDLE

    def test_both_directions_count_once(self, reference_topology):
        """A physical link degraded both ways is one problem, not two."""
        rates = loss(("DEN", "SJC"), ("SJC", "DEN"))
        assessment = ProblemClassifier().classify(
            reference_topology, "NYC", "SJC", rates
        )
        assert assessment.problem_type is ProblemType.MIDDLE

    def test_middle_problem(self, reference_topology):
        rates = loss(("CHI", "DEN"), ("DFW", "DEN"))
        assessment = ProblemClassifier().classify(
            reference_topology, "NYC", "SJC", rates
        )
        assert assessment.problem_type is ProblemType.MIDDLE

    def test_loss_threshold_filters(self, reference_topology):
        rates = {("DEN", "SJC"): 0.01, ("LAX", "SJC"): 0.01}
        assessment = ProblemClassifier(loss_threshold=0.02).classify(
            reference_topology, "NYC", "SJC", rates
        )
        assert assessment.problem_type is ProblemType.NONE

    def test_another_flows_endpoint_is_middle(self, reference_topology):
        """A problem at SEA is a middle problem for the NYC->SJC flow."""
        rates = loss(("CHI", "SEA"), ("DEN", "SEA"), ("SJC", "SEA"))
        assessment = ProblemClassifier().classify(
            reference_topology, "NYC", "SJC", rates
        )
        assert assessment.problem_type is ProblemType.MIDDLE

    def test_assessment_edge_lists(self, reference_topology):
        rates = loss(("NYC", "CHI"), ("CHI", "DEN"))
        assessment = ProblemClassifier(endpoint_link_threshold=1).classify(
            reference_topology, "NYC", "SJC", rates
        )
        assert assessment.degraded_source_links == (("NYC", "CHI"),)
        assert assessment.degraded_middle_edges == (("CHI", "DEN"),)

    def test_threshold_validation(self):
        with pytest.raises(ValidationError):
            ProblemClassifier(loss_threshold=1.5)
        with pytest.raises(ValidationError):
            ProblemClassifier(endpoint_link_threshold=0)

    def test_unknown_endpoint_rejected(self, reference_topology):
        with pytest.raises(ValidationError):
            ProblemClassifier().classify(reference_topology, "NYC", "ZZZ", {})


class TestDetector:
    def make(self, reference_topology, hold_down=10.0):
        return ProblemDetector(
            reference_topology, "NYC", "SJC", hold_down_s=hold_down
        )

    def test_immediate_detection(self, reference_topology):
        detector = self.make(reference_topology)
        rates = loss(("DEN", "SJC"), ("LAX", "SJC"))
        assert detector.update(0.0, rates) is ProblemType.DESTINATION

    def test_hold_down_keeps_problem(self, reference_topology):
        detector = self.make(reference_topology, hold_down=10.0)
        rates = loss(("DEN", "SJC"), ("LAX", "SJC"))
        detector.update(0.0, rates)
        # Problem clears but hold-down keeps the classification.
        assert detector.update(5.0, {}) is ProblemType.DESTINATION
        assert detector.update(9.9, {}) is ProblemType.DESTINATION

    def test_hold_down_expires(self, reference_topology):
        detector = self.make(reference_topology, hold_down=10.0)
        rates = loss(("DEN", "SJC"), ("LAX", "SJC"))
        detector.update(0.0, rates)
        assert detector.update(10.1, {}) is ProblemType.NONE

    def test_reappearance_refreshes_hold(self, reference_topology):
        detector = self.make(reference_topology, hold_down=10.0)
        rates = loss(("DEN", "SJC"), ("LAX", "SJC"))
        detector.update(0.0, rates)
        detector.update(8.0, rates)  # burst returns
        assert detector.update(17.0, {}) is ProblemType.DESTINATION
        assert detector.update(18.5, {}) is ProblemType.NONE

    def test_escalation_to_both(self, reference_topology):
        detector = self.make(reference_topology, hold_down=10.0)
        detector.update(0.0, loss(("DEN", "SJC"), ("LAX", "SJC")))
        verdict = detector.update(
            2.0, loss(("NYC", "CHI"), ("NYC", "WAS"))
        )
        assert verdict is ProblemType.SOURCE_AND_DESTINATION

    def test_middle_does_not_displace_endpoint(self, reference_topology):
        detector = self.make(reference_topology, hold_down=10.0)
        detector.update(0.0, loss(("DEN", "SJC"), ("LAX", "SJC")))
        verdict = detector.update(2.0, loss(("CHI", "DFW")))
        assert verdict is ProblemType.DESTINATION

    def test_time_must_not_go_backwards(self, reference_topology):
        detector = self.make(reference_topology)
        detector.update(5.0, {})
        with pytest.raises(ValidationError):
            detector.update(4.0, {})

    def test_middle_then_clear(self, reference_topology):
        detector = self.make(reference_topology, hold_down=5.0)
        assert detector.update(0.0, loss(("CHI", "DEN"))) is ProblemType.MIDDLE
        assert detector.update(6.0, {}) is ProblemType.NONE
