"""Topology substrate."""

from __future__ import annotations

import pytest

from repro.core.graph import Link, Topology
from repro.util.validation import ValidationError


class TestLink:
    def test_edge_property(self):
        assert Link("A", "B", 5.0).edge == ("A", "B")

    def test_self_loop_rejected(self):
        with pytest.raises(ValidationError):
            Link("A", "A", 1.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValidationError):
            Link("A", "B", -1.0)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValidationError):
            Link("A", "B", 1.0, cost=-0.1)


def build_pair() -> Topology:
    topology = Topology("pair")
    topology.add_node("A")
    topology.add_node("B")
    topology.add_link("A", "B", 10.0)
    return topology


class TestConstruction:
    def test_bidirectional_by_default(self):
        topology = build_pair()
        assert topology.has_edge("A", "B")
        assert topology.has_edge("B", "A")

    def test_unidirectional(self):
        topology = Topology()
        topology.add_node("A")
        topology.add_node("B")
        topology.add_link("A", "B", 1.0, bidirectional=False)
        assert topology.has_edge("A", "B")
        assert not topology.has_edge("B", "A")

    def test_duplicate_node_rejected(self):
        topology = Topology()
        topology.add_node("A")
        with pytest.raises(ValidationError):
            topology.add_node("A")

    def test_duplicate_link_rejected(self):
        topology = build_pair()
        with pytest.raises(ValidationError):
            topology.add_link("A", "B", 2.0)

    def test_link_to_unknown_node_rejected(self):
        topology = Topology()
        topology.add_node("A")
        with pytest.raises(ValidationError):
            topology.add_link("A", "Z", 1.0)

    def test_empty_node_id_rejected(self):
        with pytest.raises(ValidationError):
            Topology().add_node("")

    def test_node_attributes(self):
        topology = Topology()
        topology.add_node("A", lat=1.5, lon=-2.0)
        assert topology.node_attributes("A") == {"lat": 1.5, "lon": -2.0}


class TestFreeze:
    def test_freeze_blocks_mutation(self):
        topology = build_pair().freeze()
        with pytest.raises(ValidationError):
            topology.add_node("C")
        with pytest.raises(ValidationError):
            topology.add_link("A", "B", 1.0)

    def test_freeze_idempotent(self):
        topology = build_pair().freeze()
        assert topology.freeze() is topology

    def test_edge_index_requires_frozen(self):
        topology = build_pair()
        with pytest.raises(ValidationError):
            _ = topology.edge_index

    def test_edge_index_stable_and_sorted(self):
        topology = build_pair().freeze()
        index = topology.edge_index
        assert index[("A", "B")] == 0
        assert index[("B", "A")] == 1

    def test_edge_at_inverse(self):
        topology = build_pair().freeze()
        for edge, position in topology.edge_index.items():
            assert topology.edge_at(position) == edge

    def test_edge_at_out_of_range(self):
        topology = build_pair().freeze()
        with pytest.raises(ValidationError):
            topology.edge_at(99)


class TestQueries:
    def test_latency(self):
        assert build_pair().latency("A", "B") == 10.0

    def test_latency_unknown_edge(self):
        with pytest.raises(ValidationError):
            build_pair().latency("B", "Z")

    def test_neighbors(self, reference_topology):
        assert "CHI" in reference_topology.out_neighbors("NYC")
        assert "NYC" in reference_topology.in_neighbors("CHI")

    def test_adjacent_edges_both_directions(self, diamond):
        edges = diamond.adjacent_edges("S")
        assert ("S", "A") in edges
        assert ("A", "S") in edges
        assert len(edges) == 4

    def test_contains(self, diamond):
        assert "S" in diamond
        assert "Z" not in diamond

    def test_counts(self, diamond):
        assert diamond.num_nodes == 4
        assert diamond.num_edges == 8

    def test_iter_links_sorted(self, diamond):
        edges = [link.edge for link in diamond.iter_links()]
        assert edges == sorted(edges)

    def test_subgraph_edges_validates(self, diamond):
        assert diamond.subgraph_edges([("S", "A")]) == (("S", "A"),)
        with pytest.raises(ValidationError):
            diamond.subgraph_edges([("S", "T")])


class TestConnectivity:
    def test_connected(self, diamond):
        assert diamond.is_connected()

    def test_disconnected(self):
        topology = Topology()
        topology.add_node("A")
        topology.add_node("B")
        assert not topology.is_connected()

    def test_validate_rejects_disconnected(self):
        topology = Topology()
        topology.add_node("A")
        topology.add_node("B")
        with pytest.raises(ValidationError):
            topology.validate()

    def test_validate_rejects_trivial(self):
        topology = Topology()
        topology.add_node("A")
        with pytest.raises(ValidationError):
            topology.validate()

    def test_one_way_ring_is_connected(self):
        topology = Topology()
        for node in "ABC":
            topology.add_node(node)
        topology.add_link("A", "B", 1.0, bidirectional=False)
        topology.add_link("B", "C", 1.0, bidirectional=False)
        topology.add_link("C", "A", 1.0, bidirectional=False)
        assert topology.is_connected()
