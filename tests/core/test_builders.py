"""Dissemination-graph builders: every family the paper evaluates."""

from __future__ import annotations

import pytest

from repro.core.algorithms import NoPathError
from repro.core.builders import (
    destination_problem_graph,
    k_disjoint_paths_graph,
    overlay_flooding_graph,
    robust_source_destination_graph,
    single_path_graph,
    source_problem_graph,
    time_constrained_flooding_graph,
    two_disjoint_paths_graph,
)
from repro.core.graph import Topology
from repro.util.validation import ValidationError

DEADLINE = 65.0


def base_latency(topology):
    return lambda u, v: topology.latency(u, v)


class TestSinglePath:
    def test_is_shortest(self, reference_topology):
        graph = single_path_graph(reference_topology, "NYC", "SJC")
        assert graph.sorted_edges() == (
            ("CHI", "DEN"),
            ("DEN", "SJC"),
            ("NYC", "CHI"),
        )

    def test_requires_frozen(self):
        topology = Topology()
        topology.add_node("A")
        topology.add_node("B")
        topology.add_link("A", "B", 1.0)
        with pytest.raises(ValidationError):
            single_path_graph(topology, "A", "B")

    def test_exclusions_reroute(self, reference_topology):
        graph = single_path_graph(
            reference_topology, "NYC", "SJC", exclude_edges=[("CHI", "DEN")]
        )
        assert ("CHI", "DEN") not in graph.edges
        assert graph.connects()

    def test_unknown_flow_endpoint(self, reference_topology):
        with pytest.raises(ValidationError):
            single_path_graph(reference_topology, "NYC", "ZZZ")

    def test_disconnection_raises(self, line):
        with pytest.raises(NoPathError):
            single_path_graph(line, "S", "T", exclude_edges=[("S", "M")])


class TestDisjointPaths:
    def test_two_disjoint_structure(self, reference_topology):
        graph = two_disjoint_paths_graph(reference_topology, "NYC", "SJC")
        assert graph.connects()
        # Destination has exactly two incoming edges (node-disjoint pair).
        assert len(graph.in_neighbors("SJC")) == 2
        assert len(graph.out_neighbors("NYC")) == 2

    def test_contains_shortest_path_cost_or_more(self, reference_topology):
        single = single_path_graph(reference_topology, "WAS", "LAX")
        pair = two_disjoint_paths_graph(reference_topology, "WAS", "LAX")
        assert pair.num_edges > single.num_edges

    def test_fallback_when_single_path_only(self, line):
        graph = k_disjoint_paths_graph(line, "S", "T", k=2)
        assert graph.sorted_edges() == (("M", "T"), ("S", "M"))

    def test_k_validation(self, reference_topology):
        with pytest.raises(ValidationError):
            k_disjoint_paths_graph(reference_topology, "NYC", "SJC", k=0)

    def test_every_reference_flow(self, reference_topology, flows):
        for flow in flows:
            graph = two_disjoint_paths_graph(
                reference_topology, flow.source, flow.destination
            )
            assert graph.connects(), flow.name
            assert len(graph.in_neighbors(flow.destination)) == 2


class TestTimeConstrainedFlooding:
    def test_within_deadline_criterion(self, reference_topology):
        graph = time_constrained_flooding_graph(
            reference_topology, "NYC", "SJC", DEADLINE
        )
        latency = base_latency(reference_topology)
        # Every edge admits an on-time route through it.
        from repro.core.algorithms import (
            adjacency_from_topology,
            single_source_distances,
        )
        from repro.core.algorithms.adjacency import reverse_adjacency

        adjacency = adjacency_from_topology(reference_topology)
        d_from = single_source_distances(adjacency, "NYC")
        d_to = single_source_distances(reverse_adjacency(adjacency), "SJC")
        for u, v in graph.edges:
            assert d_from[u] + latency(u, v) + d_to[v] <= DEADLINE + 1e-9

    def test_excludes_transatlantic(self, reference_topology):
        graph = time_constrained_flooding_graph(
            reference_topology, "NYC", "SJC", DEADLINE
        )
        assert "LON" not in graph.nodes
        assert "FRA" not in graph.nodes

    def test_superset_of_other_schemes(self, reference_topology):
        flood = time_constrained_flooding_graph(
            reference_topology, "NYC", "SJC", DEADLINE
        )
        pair = two_disjoint_paths_graph(reference_topology, "NYC", "SJC")
        assert pair.edges <= flood.edges

    def test_tight_deadline_shrinks(self, reference_topology):
        wide = time_constrained_flooding_graph(reference_topology, "NYC", "SJC", 100.0)
        tight = time_constrained_flooding_graph(reference_topology, "NYC", "SJC", 30.0)
        assert tight.edges < wide.edges

    def test_impossible_deadline_empty(self, reference_topology):
        graph = time_constrained_flooding_graph(reference_topology, "NYC", "SJC", 5.0)
        assert graph.num_edges == 0

    def test_deadline_validation(self, reference_topology):
        with pytest.raises(ValidationError):
            time_constrained_flooding_graph(reference_topology, "NYC", "SJC", 0.0)

    def test_optimality_property(self, reference_topology):
        """If flooding cannot deliver on time, nothing can: flooding's
        best-case latency equals the overall shortest path."""
        flood = time_constrained_flooding_graph(
            reference_topology, "WAS", "SEA", DEADLINE
        )
        single = single_path_graph(reference_topology, "WAS", "SEA")
        latency = base_latency(reference_topology)
        assert flood.delivery_latency(latency) == pytest.approx(
            single.delivery_latency(latency)
        )


class TestOverlayFlooding:
    def test_all_useful_edges(self, reference_topology):
        graph = overlay_flooding_graph(reference_topology, "NYC", "SJC")
        # Strongly connected topology: pruning keeps everything.
        assert graph.num_edges == reference_topology.num_edges


class TestProblemGraphs:
    def test_destination_graph_covers_all_entries(self, reference_topology):
        graph = destination_problem_graph(reference_topology, "NYC", "SJC")
        entries = set(graph.in_neighbors("SJC"))
        assert entries == set(reference_topology.in_neighbors("SJC"))

    def test_source_graph_covers_all_exits(self, reference_topology):
        graph = source_problem_graph(
            reference_topology, "NYC", "SJC", deadline_ms=DEADLINE
        )
        exits = set(graph.out_neighbors("NYC"))
        # Trans-Atlantic exits cannot meet the deadline and are excluded.
        expected = {
            n
            for n in reference_topology.out_neighbors("NYC")
            if n not in ("LON", "FRA")
        }
        assert exits == expected

    def test_includes_base_two_disjoint(self, reference_topology):
        base = two_disjoint_paths_graph(reference_topology, "NYC", "SJC")
        graph = destination_problem_graph(reference_topology, "NYC", "SJC")
        assert base.edges <= graph.edges

    def test_max_entry_links_limits(self, reference_topology):
        graph = destination_problem_graph(
            reference_topology, "NYC", "SJC", max_entry_links=2
        )
        assert len(graph.in_neighbors("SJC")) == 2

    def test_deadline_pruning_respects_flooding(self, reference_topology):
        flood = time_constrained_flooding_graph(
            reference_topology, "NYC", "SJC", DEADLINE
        )
        for builder in (
            destination_problem_graph,
            source_problem_graph,
            robust_source_destination_graph,
        ):
            graph = builder(reference_topology, "NYC", "SJC", deadline_ms=DEADLINE)
            assert graph.edges <= flood.edges, builder.__name__

    def test_robust_is_union(self, reference_topology):
        destination = destination_problem_graph(
            reference_topology, "WAS", "SEA", deadline_ms=DEADLINE
        )
        source = source_problem_graph(
            reference_topology, "WAS", "SEA", deadline_ms=DEADLINE
        )
        robust = robust_source_destination_graph(
            reference_topology, "WAS", "SEA", deadline_ms=DEADLINE
        )
        assert destination.edges <= robust.edges
        assert source.edges <= robust.edges

    def test_problem_graphs_cheaper_than_flooding(self, reference_topology, flows):
        """The whole point: targeted redundancy at a fraction of the cost."""
        for flow in flows:
            flood = time_constrained_flooding_graph(
                reference_topology, flow.source, flow.destination, DEADLINE
            )
            robust = robust_source_destination_graph(
                reference_topology,
                flow.source,
                flow.destination,
                deadline_ms=DEADLINE,
            )
            assert robust.num_edges < flood.num_edges, flow.name

    def test_problem_graphs_deliver_on_time(self, reference_topology, flows):
        latency = base_latency(reference_topology)
        for flow in flows:
            for builder in (destination_problem_graph, source_problem_graph):
                graph = builder(
                    reference_topology,
                    flow.source,
                    flow.destination,
                    deadline_ms=DEADLINE,
                )
                assert graph.delivers_within(latency, DEADLINE), (
                    flow.name,
                    builder.__name__,
                )

    def test_impossible_deadline_falls_back_unpruned(self, reference_topology):
        # Deadline below the shortest path: pruning would disconnect, so
        # the builder keeps the unpruned (best-effort) graph.
        graph = destination_problem_graph(
            reference_topology, "NYC", "SJC", deadline_ms=10.0
        )
        assert graph.connects()
