"""Yen's k shortest paths, cross-validated against networkx."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings

from repro.core.algorithms.adjacency import adjacency_from_topology
from repro.core.algorithms.paths import path_length
from repro.core.algorithms.yen import k_shortest_paths
from tests.core.graphutil import endpoints, random_adjacency, to_networkx


class TestKShortestPaths:
    def test_first_is_shortest(self, braided):
        adjacency = adjacency_from_topology(braided)
        results = k_shortest_paths(adjacency, "S", "T", 1)
        assert results[0][0] == ["S", "A", "B", "T"]
        assert results[0][1] == 3.0

    def test_weights_non_decreasing(self, braided):
        adjacency = adjacency_from_topology(braided)
        results = k_shortest_paths(adjacency, "S", "T", 6)
        weights = [weight for _path, weight in results]
        assert weights == sorted(weights)

    def test_paths_unique_and_loopless(self, braided):
        adjacency = adjacency_from_topology(braided)
        results = k_shortest_paths(adjacency, "S", "T", 8)
        seen = {tuple(path) for path, _ in results}
        assert len(seen) == len(results)
        for path, _ in results:
            assert len(set(path)) == len(path)

    def test_unreachable_empty(self):
        assert k_shortest_paths({"S": {}, "T": {}}, "S", "T", 3) == []

    def test_k_validation(self):
        with pytest.raises(ValueError):
            k_shortest_paths({"S": {"T": 1.0}, "T": {}}, "S", "T", 0)

    def test_exhausts_when_fewer_paths_exist(self, line):
        adjacency = adjacency_from_topology(line)
        results = k_shortest_paths(adjacency, "S", "T", 10)
        # line has S-M-T and nothing else loopless... except via the
        # reverse edges; all loopless alternatives are enumerated once.
        assert 1 <= len(results) < 10

    @given(random_adjacency(max_nodes=6))
    @settings(max_examples=30, deadline=None)
    def test_matches_networkx_prefix(self, adjacency):
        source, target = endpoints(adjacency)
        graph = to_networkx(adjacency)
        try:
            reference = []
            for path in nx.shortest_simple_paths(graph, source, target, weight="weight"):
                reference.append(path_length(adjacency, path))
                if len(reference) == 4:
                    break
        except nx.NetworkXNoPath:
            assert k_shortest_paths(adjacency, source, target, 4) == []
            return
        ours = [w for _p, w in k_shortest_paths(adjacency, source, target, 4)]
        assert len(ours) == len(reference)
        for a, b in zip(ours, reference):
            assert a == pytest.approx(b)
