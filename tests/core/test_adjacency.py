"""Adjacency representation and transformations."""

from __future__ import annotations

import pytest

from repro.core.algorithms.adjacency import (
    adjacency_from_topology,
    copy_adjacency,
    reverse_adjacency,
    split_nodes,
    unsplit_path,
)


class TestFromTopology:
    def test_latency_weights(self, diamond):
        adjacency = adjacency_from_topology(diamond, weight="latency")
        assert adjacency["S"]["A"] == 2.0
        assert adjacency["S"]["B"] == 3.0

    def test_hop_weights(self, diamond):
        adjacency = adjacency_from_topology(diamond, weight="hops")
        assert adjacency["S"]["A"] == 1.0

    def test_cost_weights(self, diamond):
        adjacency = adjacency_from_topology(diamond, weight="cost")
        assert adjacency["S"]["A"] == 1.0

    def test_unknown_weight_rejected(self, diamond):
        with pytest.raises(ValueError):
            adjacency_from_topology(diamond, weight="bandwidth")

    def test_exclude_edges(self, diamond):
        adjacency = adjacency_from_topology(diamond, exclude_edges=[("S", "A")])
        assert "A" not in adjacency["S"]
        assert "S" in adjacency["A"]  # only the named direction dropped

    def test_exclude_nodes(self, diamond):
        adjacency = adjacency_from_topology(diamond, exclude_nodes=["A"])
        assert "A" not in adjacency
        assert "A" not in adjacency["S"]

    def test_all_nodes_present_even_isolated(self, diamond):
        adjacency = adjacency_from_topology(
            diamond, exclude_edges=list(diamond.edges)
        )
        assert set(adjacency) == set(diamond.nodes)
        assert all(not neighbors for neighbors in adjacency.values())


class TestCopyAndReverse:
    def test_copy_is_deep_enough(self, diamond):
        adjacency = adjacency_from_topology(diamond)
        clone = copy_adjacency(adjacency)
        clone["S"]["A"] = 999.0
        assert adjacency["S"]["A"] == 2.0

    def test_reverse(self):
        adjacency = {"X": {"Y": 5.0}, "Y": {}}
        reversed_adjacency = reverse_adjacency(adjacency)
        assert reversed_adjacency == {"X": {}, "Y": {"X": 5.0}}

    def test_double_reverse_identity(self, diamond):
        adjacency = adjacency_from_topology(diamond)
        assert reverse_adjacency(reverse_adjacency(adjacency)) == adjacency


class TestNodeSplitting:
    def test_structure(self):
        adjacency = {"S": {"M": 1.0}, "M": {"T": 2.0}, "T": {}}
        split = split_nodes(adjacency, keep_whole=("S", "T"))
        assert split[("S", "both")] == {("M", "in"): 1.0}
        assert split[("M", "in")] == {("M", "out"): 0.0}
        assert split[("M", "out")] == {("T", "both"): 2.0}

    def test_unsplit_path(self):
        path = [("S", "both"), ("M", "in"), ("M", "out"), ("T", "both")]
        assert unsplit_path(path) == ["S", "M", "T"]

    def test_whole_nodes_not_split(self):
        adjacency = {"S": {"T": 1.0}, "T": {}}
        split = split_nodes(adjacency, keep_whole=("S", "T"))
        assert ("S", "in") not in split
        assert ("T", "out") not in split
