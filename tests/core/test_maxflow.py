"""Edmonds-Karp max flow, cross-validated against networkx."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings

from repro.core.algorithms.adjacency import adjacency_from_topology
from repro.core.algorithms.maxflow import (
    max_disjoint_path_count,
    max_flow_unit_capacities,
)
from tests.core.graphutil import endpoints, random_adjacency, to_networkx


class TestMaxFlow:
    def test_diamond_two(self, diamond):
        adjacency = adjacency_from_topology(diamond)
        assert max_flow_unit_capacities(adjacency, "S", "T") == 2

    def test_line_one(self, line):
        adjacency = adjacency_from_topology(line)
        assert max_flow_unit_capacities(adjacency, "S", "T") == 1

    def test_disconnected_zero(self):
        assert max_flow_unit_capacities({"S": {}, "T": {}}, "S", "T") == 0

    def test_same_endpoints_rejected(self):
        with pytest.raises(ValueError):
            max_flow_unit_capacities({"S": {}}, "S", "S")

    def test_unknown_node(self):
        with pytest.raises(KeyError):
            max_flow_unit_capacities({"S": {}}, "S", "Z")

    @given(random_adjacency(max_nodes=8))
    @settings(max_examples=50, deadline=None)
    def test_matches_networkx(self, adjacency):
        source, target = endpoints(adjacency)
        graph = to_networkx(adjacency)
        nx.set_edge_attributes(graph, 1, "capacity")
        expected = nx.maximum_flow_value(graph, source, target)
        assert max_flow_unit_capacities(adjacency, source, target) == expected


class TestDisjointCounts:
    def test_node_vs_edge_disjoint(self):
        # Two edge-disjoint paths share M; only one node-disjoint path.
        adjacency = {
            "S": {"A": 1.0, "B": 1.0},
            "A": {"M": 1.0},
            "B": {"M": 1.0},
            "M": {"C": 1.0, "D": 1.0},
            "C": {"T": 1.0},
            "D": {"T": 1.0},
            "T": {},
        }
        assert max_disjoint_path_count(adjacency, "S", "T", node_disjoint=False) == 2
        assert max_disjoint_path_count(adjacency, "S", "T", node_disjoint=True) == 1

    def test_reference_flows_have_two_disjoint(self, reference_topology, flows):
        """Every transcontinental flow supports the paper's base scheme."""
        adjacency = adjacency_from_topology(reference_topology)
        for flow in flows:
            count = max_disjoint_path_count(adjacency, flow.source, flow.destination)
            assert count >= 2, f"{flow.name} has only {count} disjoint paths"

    def test_direct_edge_counts(self):
        adjacency = {"S": {"T": 1.0}, "T": {}}
        assert max_disjoint_path_count(adjacency, "S", "T") == 1
