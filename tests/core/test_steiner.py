"""Greedy Steiner arborescence."""

from __future__ import annotations

import pytest

from repro.core.algorithms.adjacency import adjacency_from_topology
from repro.core.algorithms.steiner import steiner_arborescence


def reachable_from(edges, root):
    adjacency = {}
    for u, v in edges:
        adjacency.setdefault(u, []).append(v)
    seen = {root}
    frontier = [root]
    while frontier:
        node = frontier.pop()
        for neighbor in adjacency.get(node, ()):
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    return seen


class TestSteinerArborescence:
    def test_covers_all_terminals(self, reference_topology):
        adjacency = adjacency_from_topology(reference_topology)
        terminals = {"SJC", "SEA", "LAX"}
        edges = steiner_arborescence(adjacency, "NYC", terminals)
        reached = reachable_from(edges, "NYC")
        assert terminals <= reached

    def test_root_only_terminal_is_empty(self):
        adjacency = {"R": {"A": 1.0}, "A": {}}
        assert steiner_arborescence(adjacency, "R", {"R"}) == set()

    def test_no_terminals(self):
        adjacency = {"R": {"A": 1.0}, "A": {}}
        assert steiner_arborescence(adjacency, "R", set()) == set()

    def test_unreachable_terminal_skipped(self):
        adjacency = {"R": {"A": 1.0}, "A": {}, "X": {}}
        edges = steiner_arborescence(adjacency, "R", {"A", "X"})
        assert edges == {("R", "A")}

    def test_unknown_root(self):
        with pytest.raises(KeyError):
            steiner_arborescence({"A": {}}, "Z", {"A"})

    def test_shares_prefix(self):
        """Terminals behind a common relay share the relay edge."""
        adjacency = {
            "R": {"M": 1.0},
            "M": {"A": 1.0, "B": 1.0},
            "A": {},
            "B": {},
        }
        edges = steiner_arborescence(adjacency, "R", {"A", "B"})
        assert edges == {("R", "M"), ("M", "A"), ("M", "B")}

    def test_cheaper_than_independent_paths(self, reference_topology):
        """The tree never costs more than separate shortest paths."""
        from repro.core.algorithms.paths import shortest_path

        adjacency = adjacency_from_topology(reference_topology)
        terminals = ["DEN", "LAX", "SJC", "SEA"]
        edges = steiner_arborescence(adjacency, "ATL", set(terminals))
        tree_cost = sum(adjacency[u][v] for u, v in edges)
        independent = sum(
            shortest_path(adjacency, "ATL", terminal)[1] for terminal in terminals
        )
        assert tree_cost <= independent + 1e-9

    def test_deterministic(self, reference_topology):
        adjacency = adjacency_from_topology(reference_topology)
        runs = {
            frozenset(steiner_arborescence(adjacency, "WAS", {"SJC", "SEA"}))
            for _ in range(5)
        }
        assert len(runs) == 1
