"""Disjoint path sets: correctness, minimality, networkx cross-checks."""

from __future__ import annotations

import itertools

import networkx as nx
import pytest
from hypothesis import given, settings

from repro.core.algorithms.adjacency import adjacency_from_topology
from repro.core.algorithms.disjoint import disjoint_paths, strip_cycles
from repro.core.algorithms.maxflow import max_disjoint_path_count
from tests.core.graphutil import endpoints, random_adjacency, to_networkx


def path_weight(adjacency, path):
    return sum(adjacency[u][v] for u, v in zip(path, path[1:]))


def assert_node_disjoint(paths, source, target):
    for a, b in itertools.combinations(paths, 2):
        shared = set(a[1:-1]) & set(b[1:-1])
        assert not shared, f"paths share interior nodes {shared}"
    for path in paths:
        assert path[0] == source and path[-1] == target
        assert len(set(path)) == len(path), f"path revisits a node: {path}"


class TestStripCycles:
    def test_no_cycle_untouched(self):
        assert strip_cycles(["S", "A", "T"]) == ["S", "A", "T"]

    def test_simple_cycle_removed(self):
        assert strip_cycles(["S", "A", "B", "A", "T"]) == ["S", "A", "T"]

    def test_cycle_at_start(self):
        assert strip_cycles(["S", "A", "S", "B", "T"]) == ["S", "B", "T"]

    def test_nested_cycles(self):
        assert strip_cycles(["S", "A", "B", "C", "B", "A", "T"]) == ["S", "A", "T"]


class TestTwoDisjoint:
    def test_diamond(self, diamond):
        adjacency = adjacency_from_topology(diamond)
        paths = disjoint_paths(adjacency, "S", "T", k=2)
        assert len(paths) == 2
        assert_node_disjoint(paths, "S", "T")
        assert paths[0] == ["S", "A", "T"]
        assert paths[1] == ["S", "B", "T"]

    def test_suurballe_trap(self):
        """Greedy shortest-first fails here; min-cost flow must not.

        The shortest path S-M-T uses the only middle node; removing it
        would leave no second path, yet two disjoint paths exist.
        """
        adjacency = {
            "S": {"M": 1.0, "A": 10.0},
            "M": {"T": 1.0, "B": 1.0},
            "A": {"M": 1.0, "T": 10.0},
            "B": {"T": 1.0},
            "T": {},
        }
        paths = disjoint_paths(adjacency, "S", "T", k=2)
        assert len(paths) == 2
        assert_node_disjoint(paths, "S", "T")

    def test_minimal_total_weight(self, braided):
        adjacency = adjacency_from_topology(braided)
        paths = disjoint_paths(adjacency, "S", "T", k=2)
        assert len(paths) == 2
        total = sum(path_weight(adjacency, p) for p in paths)
        # Exhaustive check over all node-disjoint simple-path pairs.
        graph = to_networkx(adjacency)
        best = float("inf")
        simple = list(nx.all_simple_paths(graph, "S", "T"))
        for a, b in itertools.combinations(simple, 2):
            if set(a[1:-1]) & set(b[1:-1]):
                continue
            best = min(best, path_weight(adjacency, a) + path_weight(adjacency, b))
        assert total == pytest.approx(best)

    def test_only_one_path_exists(self, line):
        adjacency = adjacency_from_topology(line)
        paths = disjoint_paths(adjacency, "S", "T", k=2)
        assert paths == [["S", "M", "T"]]

    def test_unreachable(self):
        paths = disjoint_paths({"S": {}, "T": {}}, "S", "T", k=2)
        assert paths == []

    def test_same_endpoints_rejected(self):
        with pytest.raises(ValueError):
            disjoint_paths({"S": {}}, "S", "S")

    def test_bad_k(self):
        with pytest.raises(ValueError):
            disjoint_paths({"S": {"T": 1.0}, "T": {}}, "S", "T", k=0)

    def test_unknown_node(self):
        with pytest.raises(KeyError):
            disjoint_paths({"S": {}}, "S", "Z")

    def test_antiparallel_links_handled(self):
        """Bidirectional links must not let two 'disjoint' paths collide."""
        adjacency = {
            "S": {"A": 1.0, "B": 1.0},
            "A": {"S": 1.0, "B": 1.0, "T": 1.0},
            "B": {"S": 1.0, "A": 1.0, "T": 1.0},
            "T": {"A": 1.0, "B": 1.0},
        }
        paths = disjoint_paths(adjacency, "S", "T", k=2)
        assert len(paths) == 2
        assert_node_disjoint(paths, "S", "T")


class TestKDisjoint:
    def test_k3_on_reference(self, reference_topology):
        # ATL->DEN admits three node-disjoint paths (via DFW, LAX, and
        # the long way around through WAS/NYC/CHI).
        adjacency = adjacency_from_topology(reference_topology)
        paths = disjoint_paths(adjacency, "ATL", "DEN", k=3)
        assert len(paths) == 3
        assert_node_disjoint(paths, "ATL", "DEN")

    def test_k_larger_than_available(self, diamond):
        adjacency = adjacency_from_topology(diamond)
        paths = disjoint_paths(adjacency, "S", "T", k=5)
        assert len(paths) == 2  # the diamond only has two

    def test_sorted_by_weight(self, reference_topology):
        adjacency = adjacency_from_topology(reference_topology)
        paths = disjoint_paths(adjacency, "WAS", "SEA", k=3)
        weights = [path_weight(adjacency, p) for p in paths]
        assert weights == sorted(weights)

    def test_edge_disjoint_mode(self):
        # Edge-disjoint allows sharing node M; node-disjoint does not.
        adjacency = {
            "S": {"A": 1.0, "B": 1.0},
            "A": {"M": 1.0},
            "B": {"M": 1.0},
            "M": {"C": 1.0, "D": 1.0},
            "C": {"T": 1.0},
            "D": {"T": 1.0},
            "T": {},
        }
        edge_paths = disjoint_paths(adjacency, "S", "T", k=2, node_disjoint=False)
        assert len(edge_paths) == 2
        node_paths = disjoint_paths(adjacency, "S", "T", k=2, node_disjoint=True)
        assert len(node_paths) == 1


class TestAgainstMaxFlow:
    """Menger's theorem: max #disjoint paths == max flow."""

    @given(random_adjacency(max_nodes=7))
    @settings(max_examples=50, deadline=None)
    def test_count_matches_menger(self, adjacency):
        source, target = endpoints(adjacency)
        if target in adjacency.get(source, {}):
            # A direct edge makes "node-disjoint" counting trivial but
            # still valid; keep the case.
            pass
        expected = max_disjoint_path_count(adjacency, source, target)
        paths = disjoint_paths(adjacency, source, target, k=max(1, expected + 1))
        assert len(paths) == expected

    @given(random_adjacency(max_nodes=7))
    @settings(max_examples=50, deadline=None)
    def test_paths_are_disjoint_and_valid(self, adjacency):
        source, target = endpoints(adjacency)
        paths = disjoint_paths(adjacency, source, target, k=3)
        assert_node_disjoint(paths, source, target)
        for path in paths:
            for u, v in zip(path, path[1:]):
                assert v in adjacency[u], f"path uses missing edge {u}->{v}"
