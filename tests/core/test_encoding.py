"""Wire encoding of dissemination graphs."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builders import (
    single_path_graph,
    time_constrained_flooding_graph,
    two_disjoint_paths_graph,
)
from repro.core.dgraph import DisseminationGraph
from repro.core.encoding import (
    decode_graph,
    encode_graph,
    encoded_size,
    topology_fingerprint,
)
from repro.core.graph import Topology
from repro.util.validation import ValidationError


class TestRoundTrip:
    def test_single_path(self, reference_topology):
        graph = single_path_graph(reference_topology, "NYC", "SJC")
        decoded = decode_graph(
            reference_topology, encode_graph(reference_topology, graph)
        )
        assert decoded.edges == graph.edges
        assert decoded.source == graph.source
        assert decoded.destination == graph.destination

    def test_flooding_graph(self, reference_topology):
        graph = time_constrained_flooding_graph(
            reference_topology, "WAS", "SEA", 65.0
        )
        decoded = decode_graph(
            reference_topology, encode_graph(reference_topology, graph)
        )
        assert decoded.edges == graph.edges

    def test_empty_graph(self, reference_topology):
        graph = DisseminationGraph.empty("NYC", "SJC")
        decoded = decode_graph(
            reference_topology, encode_graph(reference_topology, graph)
        )
        assert decoded.num_edges == 0

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_arbitrary_edge_subsets(self, reference_topology, data):
        edges = data.draw(
            st.sets(st.sampled_from(sorted(reference_topology.edges)), max_size=20)
        )
        graph = DisseminationGraph("NYC", "SJC", frozenset(edges))
        decoded = decode_graph(
            reference_topology, encode_graph(reference_topology, graph)
        )
        assert decoded.edges == graph.edges


class TestSizes:
    def test_fixed_width(self, reference_topology):
        size = encoded_size(reference_topology)
        assert size == 4 + (reference_topology.num_edges + 7) // 8
        one = encode_graph(
            reference_topology, single_path_graph(reference_topology, "NYC", "SJC")
        )
        two = encode_graph(
            reference_topology,
            two_disjoint_paths_graph(reference_topology, "NYC", "SJC"),
        )
        assert len(one) == len(two) == size

    def test_compact(self, reference_topology):
        # 44 edges -> 6 bitmask bytes + 4 header bytes.
        assert encoded_size(reference_topology) == 10


class TestErrors:
    def test_truncated_payload(self, reference_topology):
        graph = single_path_graph(reference_topology, "NYC", "SJC")
        payload = encode_graph(reference_topology, graph)
        with pytest.raises(ValueError):
            decode_graph(reference_topology, payload[:-1])

    def test_foreign_edge_rejected(self, reference_topology):
        graph = DisseminationGraph("NYC", "SJC", frozenset({("NYC", "SJC")}))
        with pytest.raises(ValidationError):
            encode_graph(reference_topology, graph)

    def test_requires_frozen(self):
        topology = Topology()
        topology.add_node("A")
        topology.add_node("B")
        topology.add_link("A", "B", 1.0)
        with pytest.raises(ValidationError):
            encoded_size(topology)

    def test_excess_bits_rejected(self, reference_topology):
        payload = bytearray(encoded_size(reference_topology))
        payload[-1] = 0xFF  # bits beyond num_edges
        with pytest.raises(ValueError):
            decode_graph(reference_topology, bytes(payload))

    def test_node_index_out_of_range(self, reference_topology):
        payload = bytearray(encoded_size(reference_topology))
        payload[0] = 0xFF  # source index 255
        with pytest.raises(ValueError):
            decode_graph(reference_topology, bytes(payload))


class TestFingerprint:
    def test_stable(self, reference_topology):
        assert topology_fingerprint(reference_topology) == topology_fingerprint(
            reference_topology
        )

    def test_differs_across_topologies(self, reference_topology, diamond):
        assert topology_fingerprint(reference_topology) != topology_fingerprint(
            diamond
        )

    def test_eight_bytes(self, reference_topology):
        assert len(topology_fingerprint(reference_topology)) == 8
