"""Shortest-path primitives, cross-validated against networkx."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings

from repro.core.algorithms.adjacency import adjacency_from_topology
from repro.core.algorithms.paths import (
    NoPathError,
    bellman_ford,
    path_length,
    shortest_path,
    single_source_distances,
)
from tests.core.graphutil import endpoints, random_adjacency, to_networkx


SIMPLE = {
    "S": {"A": 1.0, "B": 4.0},
    "A": {"B": 1.0, "T": 5.0},
    "B": {"T": 1.0},
    "T": {},
}


class TestShortestPath:
    def test_simple(self):
        path, weight = shortest_path(SIMPLE, "S", "T")
        assert path == ["S", "A", "B", "T"]
        assert weight == 3.0

    def test_direct_vs_indirect(self):
        adjacency = {"S": {"T": 10.0, "A": 1.0}, "A": {"T": 1.0}, "T": {}}
        path, weight = shortest_path(adjacency, "S", "T")
        assert path == ["S", "A", "T"]
        assert weight == 2.0

    def test_source_equals_target(self):
        path, weight = shortest_path(SIMPLE, "S", "S")
        assert path == ["S"]
        assert weight == 0.0

    def test_no_path(self):
        adjacency = {"S": {}, "T": {}}
        with pytest.raises(NoPathError):
            shortest_path(adjacency, "S", "T")

    def test_unknown_nodes(self):
        with pytest.raises(KeyError):
            shortest_path(SIMPLE, "Z", "T")
        with pytest.raises(KeyError):
            shortest_path(SIMPLE, "S", "Z")

    def test_negative_weight_rejected(self):
        adjacency = {"S": {"T": -1.0}, "T": {}}
        with pytest.raises(ValueError):
            shortest_path(adjacency, "S", "T")

    def test_deterministic_tie_break(self):
        adjacency = {"S": {"A": 1.0, "B": 1.0}, "A": {"T": 1.0}, "B": {"T": 1.0}, "T": {}}
        paths = {tuple(shortest_path(adjacency, "S", "T")[0]) for _ in range(10)}
        assert len(paths) == 1

    def test_on_reference_topology(self, reference_topology):
        adjacency = adjacency_from_topology(reference_topology)
        path, weight = shortest_path(adjacency, "NYC", "SJC")
        assert path[0] == "NYC" and path[-1] == "SJC"
        assert 20.0 < weight < 40.0  # coast-to-coast fiber latency

    @given(random_adjacency())
    @settings(max_examples=60, deadline=None)
    def test_matches_networkx(self, adjacency):
        source, target = endpoints(adjacency)
        graph = to_networkx(adjacency)
        try:
            expected = nx.shortest_path_length(
                graph, source, target, weight="weight"
            )
        except nx.NetworkXNoPath:
            with pytest.raises(NoPathError):
                shortest_path(adjacency, source, target)
            return
        path, weight = shortest_path(adjacency, source, target)
        assert weight == pytest.approx(expected)
        assert path_length(adjacency, path) == pytest.approx(weight)


class TestSingleSourceDistances:
    def test_all_reachable(self):
        distances = single_source_distances(SIMPLE, "S")
        assert distances == {"S": 0.0, "A": 1.0, "B": 2.0, "T": 3.0}

    def test_unreachable_missing(self):
        adjacency = {"S": {"A": 1.0}, "A": {}, "X": {}}
        distances = single_source_distances(adjacency, "S")
        assert "X" not in distances

    def test_unknown_source(self):
        with pytest.raises(KeyError):
            single_source_distances(SIMPLE, "Z")

    @given(random_adjacency())
    @settings(max_examples=40, deadline=None)
    def test_matches_networkx(self, adjacency):
        source = sorted(adjacency)[0]
        expected = nx.single_source_dijkstra_path_length(
            to_networkx(adjacency), source, weight="weight"
        )
        distances = single_source_distances(adjacency, source)
        assert set(distances) == set(expected)
        for node, value in expected.items():
            assert distances[node] == pytest.approx(value)


class TestBellmanFord:
    def test_agrees_with_dijkstra_on_positive(self):
        for target in ("A", "B", "T"):
            dijkstra = shortest_path(SIMPLE, "S", target)
            bellman = bellman_ford(SIMPLE, "S", target)
            assert bellman[1] == pytest.approx(dijkstra[1])

    def test_handles_negative_edges(self):
        adjacency = {"S": {"A": 5.0, "B": 2.0}, "A": {"T": 1.0}, "B": {"A": -4.0}, "T": {}}
        path, weight = bellman_ford(adjacency, "S", "T")
        assert path == ["S", "B", "A", "T"]
        assert weight == pytest.approx(-1.0)

    def test_negative_cycle_detected(self):
        adjacency = {"S": {"A": 1.0}, "A": {"B": -2.0}, "B": {"A": 1.0, "T": 1.0}, "T": {}}
        with pytest.raises(ValueError, match="negative cycle"):
            bellman_ford(adjacency, "S", "T")

    def test_no_path(self):
        with pytest.raises(NoPathError):
            bellman_ford({"S": {}, "T": {}}, "S", "T")

    def test_unreachable_negative_cycle_ignored(self):
        adjacency = {
            "S": {"T": 1.0},
            "T": {},
            "X": {"Y": -2.0},
            "Y": {"X": 1.0},
        }
        path, weight = bellman_ford(adjacency, "S", "T")
        assert path == ["S", "T"]


class TestPathLength:
    def test_missing_edge_raises(self):
        with pytest.raises(KeyError):
            path_length(SIMPLE, ["S", "T"])

    def test_sums_weights(self):
        assert path_length(SIMPLE, ["S", "A", "T"]) == 6.0
