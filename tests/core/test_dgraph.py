"""Dissemination graphs: the unified routing abstraction."""

from __future__ import annotations

import pytest

from repro.core.dgraph import DisseminationGraph
from repro.util.validation import ValidationError


def latency_one(u: str, v: str) -> float:
    return 1.0


class TestConstruction:
    def test_from_path(self):
        graph = DisseminationGraph.from_path(["S", "A", "T"])
        assert graph.source == "S"
        assert graph.destination == "T"
        assert graph.edges == frozenset({("S", "A"), ("A", "T")})

    def test_from_path_too_short(self):
        with pytest.raises(ValidationError):
            DisseminationGraph.from_path(["S"])

    def test_from_path_with_loop_rejected(self):
        with pytest.raises(ValidationError):
            DisseminationGraph.from_path(["S", "A", "S", "T"])

    def test_from_paths_union(self):
        graph = DisseminationGraph.from_paths([["S", "A", "T"], ["S", "B", "T"]])
        assert graph.num_edges == 4

    def test_from_paths_shared_edges_counted_once(self):
        graph = DisseminationGraph.from_paths([["S", "A", "T"], ["S", "A", "T"]])
        assert graph.num_edges == 2

    def test_from_paths_mismatched_endpoints(self):
        with pytest.raises(ValidationError):
            DisseminationGraph.from_paths([["S", "T"], ["S", "X"]])

    def test_empty(self):
        graph = DisseminationGraph.empty("S", "T")
        assert graph.num_edges == 0
        assert not graph.connects()

    def test_same_endpoints_rejected(self):
        with pytest.raises(ValidationError):
            DisseminationGraph("S", "S", frozenset())

    def test_self_loop_edge_rejected(self):
        with pytest.raises(ValidationError):
            DisseminationGraph("S", "T", frozenset({("A", "A")}))


class TestValueSemantics:
    def test_equality_ignores_name(self):
        a = DisseminationGraph.from_path(["S", "T"], name="one")
        b = DisseminationGraph.from_path(["S", "T"], name="two")
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_on_edges(self):
        a = DisseminationGraph.from_path(["S", "T"])
        b = DisseminationGraph.from_path(["S", "A", "T"])
        assert a != b

    def test_usable_as_dict_key(self):
        graph = DisseminationGraph.from_path(["S", "T"])
        assert {graph: 1}[DisseminationGraph.from_path(["S", "T"])] == 1


class TestTopologyQueries:
    def test_cost_equals_edges(self):
        graph = DisseminationGraph.from_paths([["S", "A", "T"], ["S", "B", "T"]])
        assert graph.num_edges == len(graph.edges) == 4

    def test_nodes_includes_endpoints(self):
        graph = DisseminationGraph.empty("S", "T")
        assert graph.nodes == frozenset({"S", "T"})

    def test_out_neighbors_sorted(self):
        graph = DisseminationGraph(
            "S", "T", frozenset({("S", "B"), ("S", "A"), ("A", "T"), ("B", "T")})
        )
        assert graph.out_neighbors("S") == ("A", "B")

    def test_in_neighbors(self):
        graph = DisseminationGraph.from_paths([["S", "A", "T"], ["S", "B", "T"]])
        assert graph.in_neighbors("T") == ("A", "B")

    def test_reachable_from_source(self):
        graph = DisseminationGraph(
            "S", "T", frozenset({("S", "A"), ("B", "T")})
        )
        assert graph.reachable_from_source() == frozenset({"S", "A"})
        assert not graph.connects()


class TestArrivalTimes:
    def test_single_path(self):
        graph = DisseminationGraph.from_path(["S", "A", "T"])
        times = graph.arrival_times(latency_one)
        assert times == {"S": 0.0, "A": 1.0, "T": 2.0}

    def test_earliest_copy_wins(self):
        def latency(u, v):
            return {"SA": 1.0, "AT": 1.0, "SB": 5.0, "BT": 5.0}[u + v]

        graph = DisseminationGraph.from_paths([["S", "A", "T"], ["S", "B", "T"]])
        assert graph.delivery_latency(latency) == 2.0

    def test_unreachable_destination(self):
        graph = DisseminationGraph("S", "T", frozenset({("S", "A")}))
        assert graph.delivery_latency(latency_one) is None

    def test_delivers_within(self):
        graph = DisseminationGraph.from_path(["S", "A", "T"])
        assert graph.delivers_within(latency_one, 2.0)
        assert not graph.delivers_within(latency_one, 1.9)


class TestAlgebra:
    def test_union(self):
        a = DisseminationGraph.from_path(["S", "A", "T"])
        b = DisseminationGraph.from_path(["S", "B", "T"])
        union = a.union(b)
        assert union.num_edges == 4

    def test_union_mismatched_flow_rejected(self):
        a = DisseminationGraph.from_path(["S", "T"])
        b = DisseminationGraph.from_path(["S", "X"])
        with pytest.raises(ValidationError):
            a.union(b)

    def test_restrict(self):
        graph = DisseminationGraph.from_paths([["S", "A", "T"], ["S", "B", "T"]])
        surviving = graph.restrict({("S", "A"), ("A", "T")})
        assert surviving.edges == frozenset({("S", "A"), ("A", "T")})

    def test_without_node(self):
        graph = DisseminationGraph.from_paths([["S", "A", "T"], ["S", "B", "T"]])
        reduced = graph.without_node("A")
        assert reduced.edges == frozenset({("S", "B"), ("B", "T")})

    def test_without_endpoint_rejected(self):
        graph = DisseminationGraph.from_path(["S", "T"])
        with pytest.raises(ValidationError):
            graph.without_node("S")


class TestPruning:
    def test_removes_dead_branch(self):
        # S->A->T plus a dangling S->X edge that cannot reach T.
        graph = DisseminationGraph(
            "S", "T", frozenset({("S", "A"), ("A", "T"), ("S", "X")})
        )
        pruned = graph.pruned()
        assert pruned.edges == frozenset({("S", "A"), ("A", "T")})

    def test_removes_unreachable_upstream(self):
        graph = DisseminationGraph(
            "S", "T", frozenset({("S", "A"), ("A", "T"), ("Y", "T")})
        )
        assert graph.pruned().edges == frozenset({("S", "A"), ("A", "T")})

    def test_keeps_redundant_paths(self):
        graph = DisseminationGraph.from_paths([["S", "A", "T"], ["S", "B", "T"]])
        assert graph.pruned().edges == graph.edges

    def test_disconnected_prunes_to_empty(self):
        graph = DisseminationGraph("S", "T", frozenset({("S", "A")}))
        assert graph.pruned().num_edges == 0

    def test_pruning_preserves_delivery(self):
        graph = DisseminationGraph(
            "S",
            "T",
            frozenset({("S", "A"), ("A", "T"), ("A", "B"), ("S", "X"), ("B", "T")}),
        )
        assert graph.pruned().delivery_latency(latency_one) == graph.delivery_latency(
            latency_one
        )
