"""Min-cost-flow solver internals."""

from __future__ import annotations

import pytest

from repro.core.algorithms.mincostflow import MinCostFlow


def build_diamond() -> MinCostFlow:
    solver = MinCostFlow()
    for node in "SABT":
        solver.add_node(node)
    solver.add_arc("S", "A", 1, 1.0)
    solver.add_arc("A", "T", 1, 1.0)
    solver.add_arc("S", "B", 1, 3.0)
    solver.add_arc("B", "T", 1, 3.0)
    return solver


class TestSend:
    def test_one_unit_takes_cheapest(self):
        solver = build_diamond()
        sent, cost = solver.send("S", "T", 1)
        assert sent == 1
        assert cost == pytest.approx(2.0)

    def test_two_units_use_both(self):
        solver = build_diamond()
        sent, cost = solver.send("S", "T", 2)
        assert sent == 2
        assert cost == pytest.approx(8.0)

    def test_capped_by_max_flow(self):
        solver = build_diamond()
        sent, _cost = solver.send("S", "T", 5)
        assert sent == 2

    def test_incremental_sends_accumulate(self):
        solver = build_diamond()
        solver.send("S", "T", 1)
        sent, cost = solver.send("S", "T", 1)
        assert sent == 1
        assert cost == pytest.approx(6.0)  # only the expensive path remains

    def test_zero_units(self):
        solver = build_diamond()
        assert solver.send("S", "T", 0) == (0, 0.0)

    def test_negative_units_rejected(self):
        with pytest.raises(ValueError):
            build_diamond().send("S", "T", -1)

    def test_unknown_nodes(self):
        with pytest.raises(KeyError):
            build_diamond().send("S", "Z", 1)

    def test_negative_cost_arc_rejected(self):
        solver = MinCostFlow()
        with pytest.raises(ValueError):
            solver.add_arc("A", "B", 1, -1.0)

    def test_negative_capacity_rejected(self):
        solver = MinCostFlow()
        with pytest.raises(ValueError):
            solver.add_arc("A", "B", -1, 1.0)

    def test_residual_rerouting(self):
        """The solver must undo a greedy choice via residual arcs."""
        solver = MinCostFlow()
        for node in ("S", "M", "A", "B", "T"):
            solver.add_node(node)
        # Cheapest single path S-M-T blocks the only disjoint pair.
        solver.add_arc("S", "M", 1, 1.0)
        solver.add_arc("M", "T", 1, 1.0)
        solver.add_arc("S", "A", 1, 10.0)
        solver.add_arc("A", "M", 1, 1.0)
        solver.add_arc("M", "B", 1, 1.0)
        solver.add_arc("B", "T", 1, 10.0)
        sent, _ = solver.send("S", "T", 2)
        assert sent == 2


class TestDecomposition:
    def test_paths_match_flow(self):
        solver = build_diamond()
        solver.send("S", "T", 2)
        paths = sorted(solver.decompose_paths("S", "T"))
        assert paths == [["S", "A", "T"], ["S", "B", "T"]]

    def test_flow_arcs(self):
        solver = build_diamond()
        solver.send("S", "T", 1)
        assert set(solver.flow_arcs()) == {("S", "A"), ("A", "T")}

    def test_no_flow_no_paths(self):
        solver = build_diamond()
        assert solver.decompose_paths("S", "T") == []
