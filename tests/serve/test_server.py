"""The daemon end to end: equivalence, warmth, rejection, drain.

The headline property: results served by the warm daemon are **bitwise
identical** to cold serial engine runs -- concurrency and cache reuse
change latency, never bits.  Floats survive the JSON wire format
exactly (``repr`` round-trip), so plain ``==`` between served payloads
and locally computed references is an exact comparison.
"""

from __future__ import annotations

import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.exec.engine import run_replay_parallel
from repro.netmodel.presets import preset_scenario
from repro.netmodel.scenarios import WEEK_S, generate_timeline
from repro.netmodel.topology import (
    ServiceSpec,
    build_reference_topology,
    reference_flows,
)
from repro.serve import (
    EvaluateRequest,
    ServeClient,
    ServeConfig,
    ServerError,
    ServerRejected,
    ServerThread,
)
from repro.simulation.results import ReplayConfig
from repro.util.validation import ValidationError

SCHEMES = ("targeted", "static-single")


def _expected_evaluate_payload(request: EvaluateRequest) -> dict:
    """What a cold, serial, cache-free engine run yields for ``request``.

    Mirrors the serve session's payload construction; the JSON round
    trip at the end applies the same wire encoding the server uses.
    """
    topology = build_reference_topology()
    flows = reference_flows()
    service = ServiceSpec(deadline_ms=request.deadline_ms)
    config = ReplayConfig(detection_delay_s=request.detection_delay_s)
    scenario = preset_scenario(request.preset, duration_s=request.weeks * WEEK_S)
    events, timeline = generate_timeline(topology, scenario, seed=request.seed)
    result, _telemetry = run_replay_parallel(
        topology,
        timeline,
        flows,
        service,
        request.schemes,
        config,
        max_workers=0,
        time_shards=request.time_shards,
        use_cache=False,
    )
    payload = {
        "events": len(events),
        "duration_s": timeline.duration_s,
        "schemes": [
            {
                "scheme": totals.scheme,
                "flows": totals.flows,
                "duration_s": totals.duration_s,
                "unavailable_s": totals.unavailable_s,
                "lost_s": totals.lost_s,
                "late_s": totals.late_s,
                "availability": totals.availability,
                "average_cost_messages": totals.average_cost_messages,
            }
            for totals in result.all_totals()
        ],
        "pairs": [
            {
                "scheme": stats.scheme,
                "flow": stats.flow.name,
                "duration_s": stats.duration_s,
                "unavailable_s": stats.unavailable_s,
                "lost_s": stats.lost_s,
                "late_s": stats.late_s,
                "message_seconds": stats.message_seconds,
                "decision_changes": stats.decision_changes,
            }
            for stats in result
        ],
    }
    return json.loads(json.dumps(payload))


@pytest.fixture(scope="module")
def warm_server(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("serve-cache")
    thread = ServerThread(
        ServeConfig(port=0, max_active=2, max_queue=8, cache_dir=str(cache_dir))
    )
    port = thread.start()
    yield ServeClient(port=port, timeout_s=120.0)
    try:
        thread.server and ServeClient(port=port).shutdown()
    except (ValidationError, ServerError):
        pass
    thread.stop()


class TestConcurrentEquivalence:
    def test_concurrent_requests_match_serial_cold_runs(self, warm_server):
        # Four concurrent requests over two distinct workloads; every
        # served result must equal its own cold serial reference.
        requests = [
            EvaluateRequest(weeks=0.02, seed=3, schemes=SCHEMES),
            EvaluateRequest(weeks=0.02, seed=5, schemes=SCHEMES, time_shards=2),
            EvaluateRequest(weeks=0.02, seed=3, schemes=SCHEMES),
            EvaluateRequest(weeks=0.02, seed=5, schemes=SCHEMES, time_shards=2),
        ]
        expected = {
            request: _expected_evaluate_payload(request)
            for request in set(requests)
        }
        with ThreadPoolExecutor(max_workers=len(requests)) as pool:
            outcomes = list(pool.map(warm_server.run, requests))
        for request, (result, manifest, _progress) in zip(requests, outcomes):
            assert result == expected[request]
            assert manifest["extra"]["serve"]["kind"] == "evaluate"

    def test_repeated_request_is_warm_and_identical(self, warm_server):
        request = EvaluateRequest(weeks=0.02, seed=11, schemes=SCHEMES)
        first, manifest_first, _ = warm_server.run(request)
        second, manifest_second, _ = warm_server.run(request)
        assert first == second
        serve_extra = manifest_second["extra"]["serve"]
        assert serve_extra["context_warm"] is True
        assert serve_extra["shards_cached"] > 0  # served from the disk cache
        metrics = manifest_second["metrics"]
        assert metrics["serve.cache.context_hits"]["value"] > 0
        assert metrics["serve.cache.shards_cached"]["value"] > 0
        assert metrics["serve.requests.completed"]["value"] >= 2

    def test_status_reports_cache_and_scheduler(self, warm_server):
        status = warm_server.status()
        assert status["server"] == "repro-serve"
        assert status["scheduler"]["max_active"] == 2
        assert status["cache"]["disk_cache"] is True
        assert status["requests"]["completed"] >= 1


class TestRequestFailures:
    def test_unknown_scheme_becomes_error_event(self, warm_server):
        request = {
            "version": 1,
            "kind": "evaluate",
            "weeks": 0.02,
            "schemes": ["no-such-scheme"],
        }
        with pytest.raises(ServerError, match="scheme"):
            warm_server.run(request)

    def test_invalid_request_rejected_before_admission(self, warm_server):
        with pytest.raises(ServerError, match="unknown request kind"):
            warm_server.run({"version": 1, "kind": "frobnicate"})

    def test_malformed_json_is_400(self, warm_server):
        import http.client

        connection = http.client.HTTPConnection(
            warm_server.host, warm_server.port, timeout=30.0
        )
        try:
            connection.request(
                "POST", "/v1/submit", body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 400
            payload = json.loads(response.read())
            assert "not valid JSON" in payload["error"]
        finally:
            connection.close()

    def test_unknown_endpoint_is_404(self, warm_server):
        import http.client

        connection = http.client.HTTPConnection(
            warm_server.host, warm_server.port, timeout=30.0
        )
        try:
            connection.request("GET", "/v1/nonsense")
            assert connection.getresponse().status == 404
        finally:
            connection.close()


class TestTelemetryEndpoints:
    def test_metrics_round_trips_through_exposition_parser(self, warm_server):
        from repro.obs.expose import (
            histogram_quantile,
            parse_exposition,
            sample_value,
        )

        # At least one completed request so the series exist.
        warm_server.run(EvaluateRequest(weeks=0.02, seed=11, schemes=SCHEMES))
        families = parse_exposition(warm_server.metrics())
        completed = sample_value(families, "repro_serve_requests_completed")
        assert completed is not None and completed >= 1
        accepted = sample_value(families, "repro_serve_requests_accepted")
        assert accepted is not None and accepted >= completed
        assert sample_value(families, "repro_serve_queue_depth") is not None
        assert sample_value(families, "repro_serve_uptime_s") >= 0.0
        # Scrape-time gauges: warm-cache stats without a request in flight.
        assert sample_value(families, "repro_serve_cache_context_hits") >= 0
        assert sample_value(families, "repro_exec_prob_cache_hits") >= 0
        # Satellite series: queue-wait and request-wall histograms.
        for dotted in ("repro_serve_queue_wait_s", "repro_serve_request_wall_s"):
            family = families[dotted]
            assert family.type == "histogram"
            count = sample_value(families, f"{dotted}_count")
            assert count is not None and count >= 1
            assert histogram_quantile(family, 0.5) is not None

    def test_profiled_request_manifest_carries_report(self, warm_server):
        request = EvaluateRequest(
            weeks=0.02, seed=17, schemes=SCHEMES, use_cache=False, profile=True
        )
        result, manifest, _progress = warm_server.run(request)
        profile = manifest["extra"]["profile"]
        assert profile["interval_s"] > 0
        assert profile["duration_s"] > 0
        assert profile["samples"] >= 0
        assert isinstance(profile["top"], list)
        for row in profile["top"]:
            assert row["total"] >= row["self"] >= 1
        # Profiling never changes the answer, only annotates the manifest.
        plain = EvaluateRequest(weeks=0.02, seed=17, schemes=SCHEMES)
        plain_result, plain_manifest, _ = warm_server.run(plain)
        assert result == plain_result
        assert "profile" not in plain_manifest["extra"]

    def test_metrics_content_type(self, warm_server):
        import http.client

        connection = http.client.HTTPConnection(
            warm_server.host, warm_server.port, timeout=30.0
        )
        try:
            connection.request("GET", "/v1/metrics")
            response = connection.getresponse()
            assert response.status == 200
            assert response.headers["Content-Type"].startswith("text/plain")
            assert "version=0.0.4" in response.headers["Content-Type"]
        finally:
            connection.close()

    def test_metrics_rejects_post(self, warm_server):
        import http.client

        connection = http.client.HTTPConnection(
            warm_server.host, warm_server.port, timeout=30.0
        )
        try:
            connection.request("POST", "/v1/metrics")
            assert connection.getresponse().status == 405
        finally:
            connection.close()

    def test_health_reports_ready(self, warm_server):
        health = warm_server.health()
        assert health["status"] == "ok"
        assert health["draining"] is False
        assert health["uptime_s"] >= 0.0
        assert "active" in health and "queued" in health

    def test_health_turns_503_while_draining(self):
        import http.client

        thread = ServerThread(
            ServeConfig(port=0, max_active=1, max_queue=0, use_disk_cache=False)
        )
        port = thread.start()
        try:
            assert ServeClient(port=port).health()["status"] == "ok"
            # Flip the drain flag directly (a bool read is race-free
            # enough for this check); readiness must fail immediately.
            thread.server.scheduler.draining = True
            connection = http.client.HTTPConnection(
                "127.0.0.1", port, timeout=30.0
            )
            try:
                connection.request("GET", "/v1/health")
                response = connection.getresponse()
                assert response.status == 503
                payload = json.loads(response.read())
                assert payload["status"] == "draining"
                assert payload["draining"] is True
            finally:
                connection.close()
            assert ServeClient(port=port).health()["status"] == "draining"
            thread.server.scheduler.draining = False
        finally:
            try:
                ServeClient(port=port).shutdown()
            except (ValidationError, ServerError):
                pass
            thread.stop()


class TestAdmissionOverHttp:
    def test_queue_full_rejection_with_retry_after(self):
        # max_active=1, max_queue=0: while one admitted request streams,
        # the next submission must bounce with 429 + Retry-After.
        thread = ServerThread(
            ServeConfig(
                port=0, max_active=1, max_queue=0, use_disk_cache=False
            )
        )
        port = thread.start()
        client = ServeClient(port=port, timeout_s=120.0)
        slow = EvaluateRequest(weeks=0.1, seed=2, schemes=SCHEMES, use_cache=False)
        try:
            stream = client.submit(slow)
            accepted = next(stream)  # slot is held once this arrives
            assert accepted["event"] == "accepted"
            with pytest.raises(ServerRejected) as excinfo:
                ServeClient(port=port).run(
                    EvaluateRequest(weeks=0.02, seed=3, schemes=SCHEMES)
                )
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after_s is not None
            assert excinfo.value.retry_after_s > 0
            events = [event["event"] for event in stream]
            assert events[-2:] == ["result", "manifest"]  # first one completed
        finally:
            client.shutdown()
            thread.stop()

    def test_graceful_drain_finishes_admitted_work(self):
        thread = ServerThread(
            ServeConfig(port=0, max_active=1, max_queue=2, use_disk_cache=False)
        )
        port = thread.start()
        client = ServeClient(port=port, timeout_s=120.0)
        admitted = threading.Event()
        collected: list[dict] = []

        def submit_and_collect():
            for event in client.submit(
                EvaluateRequest(weeks=0.05, seed=4, schemes=SCHEMES, use_cache=False)
            ):
                collected.append(event)
                if event["event"] == "accepted":
                    admitted.set()

        worker = threading.Thread(target=submit_and_collect)
        worker.start()
        try:
            assert admitted.wait(timeout=30.0)
            outcome = ServeClient(port=port, timeout_s=120.0).shutdown()
            worker.join(timeout=60.0)
            assert not worker.is_alive()
            # the admitted request ran to completion before the stop
            names = [event["event"] for event in collected]
            assert names[-2:] == ["result", "manifest"]
            assert outcome["completed"] >= 1
            # and the server is actually gone now
            with pytest.raises(ValidationError, match="unreachable"):
                ServeClient(port=port, timeout_s=5.0).status()
        finally:
            thread.stop()
