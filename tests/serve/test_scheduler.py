"""Admission control: bounded concurrency, bounded queue, graceful drain.

All tests drive the scheduler on a private event loop with explicit
events, so admission ordering is deterministic -- no sleeps, no races.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.scheduler import RequestRejected, Scheduler


def run(coroutine):
    return asyncio.run(coroutine)


async def _hold(scheduler: Scheduler, release: asyncio.Event, started: asyncio.Event):
    async with scheduler.slot():
        started.set()
        await release.wait()


class TestAdmission:
    def test_runs_up_to_max_active(self):
        async def scenario():
            scheduler = Scheduler(max_active=2, max_queue=2)
            release = asyncio.Event()
            started = [asyncio.Event() for _ in range(2)]
            tasks = [
                asyncio.create_task(_hold(scheduler, release, started[i]))
                for i in range(2)
            ]
            await asyncio.gather(*(event.wait() for event in started))
            assert scheduler.active == 2
            assert scheduler.queued == 0
            release.set()
            await asyncio.gather(*tasks)
            assert scheduler.depth == 0

        run(scenario())

    def test_excess_requests_wait_in_queue(self):
        async def scenario():
            scheduler = Scheduler(max_active=1, max_queue=2)
            release = asyncio.Event()
            started = [asyncio.Event() for _ in range(3)]
            tasks = [
                asyncio.create_task(_hold(scheduler, release, started[i]))
                for i in range(3)
            ]
            await started[0].wait()
            await asyncio.sleep(0)  # let the other two reach the semaphore
            assert scheduler.active == 1
            assert scheduler.queued == 2
            release.set()
            await asyncio.gather(*tasks)
            # everyone eventually ran
            assert all(event.is_set() for event in started)

        run(scenario())

    def test_rejects_when_queue_full_with_429(self):
        async def scenario():
            scheduler = Scheduler(max_active=1, max_queue=1)
            release = asyncio.Event()
            started = [asyncio.Event() for _ in range(2)]
            tasks = [
                asyncio.create_task(_hold(scheduler, release, started[i]))
                for i in range(2)
            ]
            await started[0].wait()
            await asyncio.sleep(0)
            assert scheduler.depth == 2  # 1 active + 1 queued: full
            with pytest.raises(RequestRejected) as excinfo:
                async with scheduler.slot():
                    pass
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after_s > 0
            release.set()
            await asyncio.gather(*tasks)

        run(scenario())

    def test_zero_queue_still_admits_up_to_max_active(self):
        async def scenario():
            scheduler = Scheduler(max_active=1, max_queue=0)
            release = asyncio.Event()
            started = asyncio.Event()
            task = asyncio.create_task(_hold(scheduler, release, started))
            await started.wait()
            with pytest.raises(RequestRejected):
                async with scheduler.slot():
                    pass
            release.set()
            await task

        run(scenario())

    def test_slot_released_on_body_failure(self):
        async def scenario():
            scheduler = Scheduler(max_active=1, max_queue=0)
            with pytest.raises(RuntimeError):
                async with scheduler.slot():
                    raise RuntimeError("boom")
            assert scheduler.depth == 0
            async with scheduler.slot():  # the slot is usable again
                assert scheduler.active == 1

        run(scenario())


class TestDrain:
    def test_drain_rejects_new_work_with_503(self):
        async def scenario():
            scheduler = Scheduler(max_active=2, max_queue=2)
            await scheduler.drain()
            with pytest.raises(RequestRejected) as excinfo:
                async with scheduler.slot():
                    pass
            assert excinfo.value.status == 503

        run(scenario())

    def test_drain_waits_for_active_and_queued(self):
        async def scenario():
            scheduler = Scheduler(max_active=1, max_queue=2)
            release = asyncio.Event()
            started = [asyncio.Event() for _ in range(3)]
            finished: list[int] = []

            async def job(index: int):
                async with scheduler.slot():
                    started[index].set()
                    await release.wait()
                    finished.append(index)

            tasks = [asyncio.create_task(job(i)) for i in range(3)]
            await started[0].wait()
            await asyncio.sleep(0)
            drainer = asyncio.create_task(scheduler.drain())
            await asyncio.sleep(0)
            assert not drainer.done()  # admitted work still running
            release.set()
            await asyncio.gather(*tasks)
            await drainer
            # drain returned only once every admitted job had finished
            assert sorted(finished) == [0, 1, 2]
            assert scheduler.depth == 0

        run(scenario())

    def test_drain_returns_immediately_when_idle(self):
        async def scenario():
            scheduler = Scheduler()
            await asyncio.wait_for(scheduler.drain(), timeout=1.0)

        run(scenario())


class TestRetryAfter:
    def test_default_guess_before_any_completion(self):
        async def scenario():
            scheduler = Scheduler(max_active=2, max_queue=2)
            assert scheduler.retry_after_s() == 1.0  # one wave at the default

        run(scenario())

    def test_scales_with_observed_wall_times(self):
        async def scenario():
            scheduler = Scheduler(max_active=1, max_queue=4)
            scheduler._recent_wall_s.extend([2.0, 4.0])  # mean 3.0
            assert scheduler.retry_after_s() == pytest.approx(3.0)
            scheduler.active = 1
            scheduler.queued = 1  # depth 2 -> three waves at max_active=1
            assert scheduler.retry_after_s() == pytest.approx(9.0)

        run(scenario())

    def test_validates_bounds(self):
        with pytest.raises(ValueError):
            Scheduler(max_active=0)
        with pytest.raises(ValueError):
            Scheduler(max_queue=-1)

    def test_observed_waits_floor_the_hint(self):
        async def scenario():
            scheduler = Scheduler(max_active=2, max_queue=2)
            scheduler._recent_wall_s.extend([0.2, 0.2])  # model says 0.2
            scheduler._recent_wait_s.extend([5.0, 7.0])  # clients waited 6.0
            assert scheduler.retry_after_s() == pytest.approx(6.0)

        run(scenario())

    def test_model_still_wins_when_waits_are_short(self):
        async def scenario():
            scheduler = Scheduler(max_active=1, max_queue=4)
            scheduler._recent_wall_s.extend([3.0])
            scheduler._recent_wait_s.extend([0.001])
            assert scheduler.retry_after_s() == pytest.approx(3.0)

        run(scenario())


class TestQueueWaitObservability:
    def test_waits_recorded_per_admission(self):
        from repro.obs import Observability

        async def scenario():
            obs = Observability()
            scheduler = Scheduler(max_active=1, max_queue=2, obs=obs)
            release = asyncio.Event()
            started = [asyncio.Event() for _ in range(3)]
            tasks = [
                asyncio.create_task(_hold(scheduler, release, started[i]))
                for i in range(3)
            ]
            await started[0].wait()
            await asyncio.sleep(0)
            release.set()
            await asyncio.gather(*tasks)
            histogram = obs.metrics.histogram("serve.queue_wait_s")
            assert histogram.count == 3  # one wait sample per admission
            assert len(scheduler._recent_wait_s) == 3
            # The first admission never queued; its wait is ~zero.
            assert min(scheduler._recent_wait_s) < 0.1

        run(scenario())

    def test_no_obs_still_tracks_recent_waits(self):
        async def scenario():
            scheduler = Scheduler(max_active=1, max_queue=0)
            async with scheduler.slot():
                pass
            assert len(scheduler._recent_wait_s) == 1

        run(scenario())
