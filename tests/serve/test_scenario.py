"""Scenario-family fields on the serve wire schema and session paths."""

from __future__ import annotations

import pytest

from repro.scenarios import FAMILY_NAMES
from repro.serve.schema import (
    PROTOCOL_VERSION,
    ChaosRequest,
    EvaluateRequest,
    parse_request,
    request_to_payload,
)
from repro.util.validation import ValidationError


class TestSchemaRoundTrip:
    @pytest.mark.parametrize("family", FAMILY_NAMES)
    def test_evaluate_round_trips(self, family):
        request = EvaluateRequest(scenario_family=family, scenario_seed=11)
        payload = request_to_payload(request)
        assert payload["scenario_family"] == family
        assert payload["scenario_seed"] == 11
        assert parse_request(payload) == request

    def test_chaos_round_trips(self):
        request = ChaosRequest(
            scenario_family="srlg-outage", scenario_seed=3, duration_s=12.0
        )
        assert parse_request(request_to_payload(request)) == request

    def test_fields_default_to_none(self):
        request = parse_request({"version": PROTOCOL_VERSION, "kind": "chaos"})
        assert request.scenario_family is None
        assert request.scenario_seed is None


class TestSchemaValidation:
    def test_unknown_family_is_a_one_line_error(self):
        with pytest.raises(ValidationError) as excinfo:
            parse_request(
                {
                    "version": PROTOCOL_VERSION,
                    "kind": "evaluate",
                    "scenario_family": "solar-flare",
                }
            )
        message = str(excinfo.value)
        assert "\n" not in message
        assert "unknown scenario family" in message
        assert "srlg-outage" in message

    def test_family_must_be_a_string(self):
        with pytest.raises(ValidationError, match="scenario_family"):
            ChaosRequest(scenario_family=7)

    def test_seed_must_be_an_integer(self):
        with pytest.raises(ValidationError, match="scenario_seed"):
            EvaluateRequest(
                scenario_family="diurnal", scenario_seed="notanint"
            )

    def test_seed_without_family_is_allowed(self):
        # The CLI always sends both fields; a bare seed simply defaults
        # the family path off.
        request = EvaluateRequest(scenario_seed=5)
        assert request.scenario_family is None


class TestSessionPaths:
    def test_chaos_uses_the_derived_schedule(self):
        from repro.scenarios import compile_family
        from repro.serve.session import execute_request
        from repro.serve.state import ServeRuntime

        runtime = ServeRuntime()
        request = ChaosRequest(
            scenario_family="srlg-outage",
            scenario_seed=3,
            seed=99,  # must NOT drive the schedule when scenario_seed is set
            duration_s=10.0,
            schemes=("static-single",),
        )
        payload, manifest = execute_request(
            runtime, request, "req-test", lambda event: None
        )
        compiled = compile_family(
            runtime.topology, "srlg-outage", seed=3, duration_s=10.0
        )
        assert payload["schedule"] == compiled.fault_schedule().fingerprint()
        assert payload["faults"] == len(compiled.fault_schedule())
        assert payload["violations"] == 0

    def test_evaluate_uses_the_compiled_timeline(self):
        from repro.scenarios import compile_family
        from repro.serve.session import execute_request
        from repro.serve.state import ServeRuntime

        runtime = ServeRuntime()
        request = EvaluateRequest(
            scenario_family="srlg-outage",
            scenario_seed=3,
            weeks=0.0005,  # ~302 s
            workers=1,
            schemes=("static-single",),
            use_cache=False,
        )
        phases = []
        payload, manifest = execute_request(
            runtime, request, "req-test", lambda event: phases.append(event)
        )
        compiled = compile_family(
            runtime.topology,
            "srlg-outage",
            seed=3,
            duration_s=request.weeks * 604800.0,
        )
        assert payload["events"] == len(compiled.events)
        trace_events = [
            event for event in phases if event.get("phase") == "generate-trace"
        ]
        assert trace_events[0]["scenario_family"] == "srlg-outage"
