"""Server-lifetime warm state: context LRU, flow resolution, counters."""

from __future__ import annotations

import pytest

from repro.netmodel.presets import preset_scenario
from repro.netmodel.scenarios import generate_timeline
from repro.netmodel.topology import ServiceSpec, build_reference_topology
from repro.serve.state import ContextCache, ServeRuntime
from repro.simulation.results import ReplayConfig
from repro.util.validation import ValidationError


@pytest.fixture(scope="module")
def topology():
    return build_reference_topology()


def _timeline(topology, seed: int = 3, duration_s: float = 3600.0):
    scenario = preset_scenario("default", duration_s=duration_s)
    _events, timeline = generate_timeline(topology, scenario, seed=seed)
    return timeline


class TestContextCache:
    def test_first_get_builds_then_second_is_warm(self, topology):
        cache = ContextCache(capacity=2)
        timeline = _timeline(topology)
        service, config = ServiceSpec(), ReplayConfig()
        first, warm_first = cache.get(topology, timeline, service, config)
        second, warm_second = cache.get(topology, timeline, service, config)
        assert warm_first is False
        assert warm_second is True
        assert first is second  # same warm object, same memo
        assert cache.counters() == {
            "hits": 1, "misses": 1, "evictions": 0, "entries": 1,
        }

    def test_different_config_gets_its_own_context(self, topology):
        # Sharing a memo across different deadlines would be silently
        # wrong; the context key must separate them.
        cache = ContextCache(capacity=4)
        timeline = _timeline(topology)
        a, _ = cache.get(topology, timeline, ServiceSpec(), ReplayConfig())
        b, _ = cache.get(
            topology, timeline, ServiceSpec(deadline_ms=130.0), ReplayConfig()
        )
        assert a is not b
        assert cache.counters()["entries"] == 2

    def test_lru_eviction_at_capacity(self, topology):
        cache = ContextCache(capacity=1)
        timeline_a = _timeline(topology, seed=1)
        timeline_b = _timeline(topology, seed=2)
        service, config = ServiceSpec(), ReplayConfig()
        first, _ = cache.get(topology, timeline_a, service, config)
        cache.get(topology, timeline_b, service, config)  # evicts the first
        assert cache.counters()["evictions"] == 1
        again, warm = cache.get(topology, timeline_a, service, config)
        assert warm is False  # had to rebuild: the entry was evicted
        assert again is not first

    def test_capacity_validated(self):
        with pytest.raises(ValidationError):
            ContextCache(capacity=0)

    def test_prob_counters_sum_resident_contexts(self, topology):
        cache = ContextCache(capacity=2)
        timeline = _timeline(topology)
        context, _ = cache.get(topology, timeline, ServiceSpec(), ReplayConfig())
        context.probability_cache.hits = 5
        context.probability_cache.misses = 2
        totals = cache.prob_counters()
        assert totals["hits"] == 5
        assert totals["misses"] == 2
        assert set(totals) == {
            "hits", "misses", "shared_hits", "mask_hits", "evictions",
            "canonical_evictions",
        }


class TestServeRuntime:
    def test_select_flows_defaults_to_reference_table(self):
        runtime = ServeRuntime(use_disk_cache=False)
        assert runtime.select_flows(None) == list(runtime.flows)

    def test_select_flows_by_name_preserves_order(self):
        runtime = ServeRuntime(use_disk_cache=False)
        names = (runtime.flows[3].name, runtime.flows[0].name)
        selected = runtime.select_flows(names)
        assert [flow.name for flow in selected] == list(names)

    def test_select_flows_unknown_is_one_line(self):
        runtime = ServeRuntime(use_disk_cache=False)
        with pytest.raises(ValidationError, match="unknown flow"):
            runtime.select_flows(("NOWHERE->NOPLACE",))

    def test_cache_stats_shape(self):
        runtime = ServeRuntime(use_disk_cache=False)
        stats = runtime.cache_stats()
        assert stats["disk_cache"] is False
        for key in (
            "context_hits", "context_misses", "context_evictions",
            "context_entries", "prob_hits", "prob_misses",
            "prob_shared_hits", "prob_mask_hits", "prob_evictions",
        ):
            assert stats[key] == 0
