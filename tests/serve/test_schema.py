"""Wire schema: strict validation, round-tripping, event shape."""

from __future__ import annotations

import pytest

from repro.serve.schema import (
    PROTOCOL_VERSION,
    ChaosRequest,
    ClassifyRequest,
    EvaluateRequest,
    make_event,
    parse_request,
    request_to_payload,
)
from repro.util.validation import ValidationError


def _evaluate_payload(**overrides) -> dict:
    payload = {"version": PROTOCOL_VERSION, "kind": "evaluate"}
    payload.update(overrides)
    return payload


class TestParseRequest:
    def test_minimal_evaluate_uses_defaults(self):
        request = parse_request(_evaluate_payload())
        assert isinstance(request, EvaluateRequest)
        assert request.weeks == 1.0
        assert request.seed == 7
        assert request.schemes is None
        assert request.use_cache is True

    def test_full_evaluate_round_trips(self):
        request = EvaluateRequest(
            weeks=0.25,
            seed=11,
            schemes=("targeted", "static-single"),
            flows=("NYC->LAX",),
            time_shards=4,
            workers=2,
        )
        payload = request_to_payload(request)
        assert payload["version"] == PROTOCOL_VERSION
        assert payload["kind"] == "evaluate"
        assert payload["schemes"] == ["targeted", "static-single"]  # JSON lists
        assert parse_request(payload) == request

    def test_classify_and_chaos_round_trip(self):
        for request in (
            ClassifyRequest(weeks=0.5, seed=3),
            ChaosRequest(seed=9, duration_s=20.0, crashes=2),
        ):
            assert parse_request(request_to_payload(request)) == request

    def test_rejects_non_object(self):
        with pytest.raises(ValidationError, match="JSON object"):
            parse_request([1, 2, 3])

    def test_rejects_wrong_version(self):
        with pytest.raises(ValidationError, match="protocol version"):
            parse_request({"version": 99, "kind": "evaluate"})

    def test_rejects_missing_version(self):
        with pytest.raises(ValidationError, match="protocol version"):
            parse_request({"kind": "evaluate"})

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValidationError, match="unknown request kind"):
            parse_request({"version": PROTOCOL_VERSION, "kind": "frobnicate"})

    def test_rejects_unknown_fields(self):
        with pytest.raises(ValidationError, match="unknown field.*turbo"):
            parse_request(_evaluate_payload(turbo=True))

    def test_rejects_wrong_types(self):
        with pytest.raises(ValidationError, match="weeks"):
            parse_request(_evaluate_payload(weeks="many"))
        with pytest.raises(ValidationError, match="seed"):
            parse_request(_evaluate_payload(seed=1.5))
        with pytest.raises(ValidationError, match="use_cache"):
            parse_request(_evaluate_payload(use_cache="yes"))

    def test_bool_is_not_an_integer(self):
        # JSON true must not sneak in where an int is expected.
        with pytest.raises(ValidationError, match="seed"):
            parse_request(_evaluate_payload(seed=True))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValidationError, match="weeks"):
            parse_request(_evaluate_payload(weeks=0.0))
        with pytest.raises(ValidationError, match="time_shards"):
            parse_request(_evaluate_payload(time_shards=0))
        with pytest.raises(ValidationError, match="crashes"):
            parse_request(
                {"version": PROTOCOL_VERSION, "kind": "chaos", "crashes": -1}
            )

    def test_rejects_empty_name_lists(self):
        with pytest.raises(ValidationError, match="schemes"):
            parse_request(_evaluate_payload(schemes=[]))

    def test_wire_lists_become_tuples(self):
        request = parse_request(_evaluate_payload(schemes=["targeted"]))
        assert request.schemes == ("targeted",)


class TestTopologyFields:
    """Generated-topology overrides validate at admission, not in a worker."""

    def test_defaults_to_reference(self):
        request = parse_request(_evaluate_payload())
        assert request.topology_family is None
        assert request.topology_size is None

    def test_generated_round_trips(self):
        for request in (
            EvaluateRequest(
                topology_family="isp-hier", topology_size=100, topology_seed=7
            ),
            ChaosRequest(
                topology_family="random-geo", topology_size=50, topology_seed=1
            ),
        ):
            assert parse_request(request_to_payload(request)) == request

    def test_unknown_family_gets_registry_error(self):
        with pytest.raises(ValidationError, match="unknown topology family"):
            parse_request(
                _evaluate_payload(topology_family="fat-tree", topology_size=50)
            )

    def test_generated_family_needs_size(self):
        with pytest.raises(ValidationError, match="explicit topology_size"):
            parse_request(_evaluate_payload(topology_family="waxman"))

    def test_size_envelope_enforced(self):
        with pytest.raises(ValidationError, match="supports sizes"):
            parse_request(
                _evaluate_payload(topology_family="isp-hier", topology_size=8)
            )

    def test_reference_rejects_size_and_seed(self):
        with pytest.raises(ValidationError, match="fixed"):
            parse_request(_evaluate_payload(topology_size=100))
        with pytest.raises(ValidationError, match="fixed"):
            parse_request(
                _evaluate_payload(topology_family="reference", topology_seed=3)
            )

    def test_seed_is_optional_but_typed(self):
        request = parse_request(
            _evaluate_payload(topology_family="waxman", topology_size=50)
        )
        assert request.topology_seed is None
        with pytest.raises(ValidationError, match="topology_seed"):
            parse_request(
                _evaluate_payload(
                    topology_family="waxman",
                    topology_size=50,
                    topology_seed="lucky",
                )
            )


class TestMakeEvent:
    def test_shape(self):
        event = make_event("progress", phase="replay", events=3)
        assert event == {"event": "progress", "phase": "replay", "events": 3}
