"""The single topology-resolution path shared by CLI, serve, and benches."""

from __future__ import annotations

import pytest

from repro.netmodel.topology import build_reference_topology
from repro.topogen import (
    REFERENCE_NAME,
    family_names,
    generate_topology,
    resolve_workload,
    topology_names,
)
from repro.topogen.registry import DEFAULT_FLOW_COUNT, family_info
from repro.util.validation import ValidationError


class TestRegistry:
    def test_family_names_sorted(self):
        names = family_names()
        assert names == tuple(sorted(names))
        assert {"random-geo", "waxman", "isp-hier", "continental"} <= set(names)

    def test_topology_names_lead_with_reference(self):
        assert topology_names()[0] == REFERENCE_NAME

    def test_unknown_family_names_alternatives(self):
        with pytest.raises(ValidationError, match="known: reference"):
            family_info("fat-tree")

    def test_generation_is_memoised(self):
        first = generate_topology("random-geo", 16, 1)
        assert generate_topology("random-geo", 16, 1) is first


class TestResolveWorkload:
    def test_reference_default(self):
        workload = resolve_workload()
        assert workload.generated is None
        assert workload.topology.name == build_reference_topology().name
        assert len(workload.flows) == 16

    def test_reference_by_name(self):
        assert resolve_workload(REFERENCE_NAME).generated is None

    def test_reference_rejects_size(self):
        with pytest.raises(ValidationError, match="fixed"):
            resolve_workload(size=100)
        with pytest.raises(ValidationError, match="fixed"):
            resolve_workload(REFERENCE_NAME, seed=3)

    def test_generated_needs_explicit_size(self):
        with pytest.raises(ValidationError, match="explicit size"):
            resolve_workload("random-geo")

    def test_generated_workload_shape(self):
        workload = resolve_workload("random-geo", 20, 4)
        assert workload.generated is generate_topology("random-geo", 20, 4)
        assert workload.topology is workload.generated.topology()
        assert len(workload.flows) == DEFAULT_FLOW_COUNT
        assert workload.label == "topogen-random-geo-20-s4"

    def test_seed_defaults_to_zero(self):
        assert (
            resolve_workload("random-geo", 20).generated
            is generate_topology("random-geo", 20, 0)
        )

    def test_resolution_is_memoised(self):
        assert resolve_workload("random-geo", 20, 4) is resolve_workload(
            "random-geo", 20, 4
        )

    def test_flows_are_real_topology_endpoints(self):
        workload = resolve_workload("isp-hier", 30, 2)
        for flow in workload.flows:
            assert workload.topology.has_node(flow.source)
            assert workload.topology.has_node(flow.destination)


class TestSelectFlows:
    def test_none_returns_default(self):
        workload = resolve_workload("random-geo", 20, 4)
        assert workload.select_flows(None) == list(workload.flows)
        pair = tuple(workload.flows[:2])
        assert workload.select_flows(None, default=pair) == list(pair)

    def test_order_preserved(self):
        workload = resolve_workload("random-geo", 20, 4)
        names = (workload.flows[2].name, workload.flows[0].name)
        assert [f.name for f in workload.select_flows(names)] == list(names)

    def test_unknown_flow_names_topology(self):
        workload = resolve_workload("random-geo", 20, 4)
        with pytest.raises(ValidationError, match="topogen-random-geo-20-s4"):
            workload.select_flows(("NYC->LAX",))
