"""GeneratedTopology: canonical form, digest, round-trips, validation."""

from __future__ import annotations

import json

import pytest

from repro.topogen import ARTIFACT_VERSION, GeneratedTopology, generate_topology
from repro.util.validation import ValidationError


@pytest.fixture(scope="module")
def artifact():
    return generate_topology("random-geo", 24, 5)


class TestCanonicalForm:
    def test_json_is_one_canonical_line(self, artifact):
        text = artifact.to_json()
        assert text.endswith("\n") and text.count("\n") == 1
        document = json.loads(text)
        # Canonical form: re-dumping with sorted keys reproduces the bytes.
        assert (
            json.dumps(document, sort_keys=True, separators=(",", ":")) + "\n"
            == text
        )

    def test_digest_is_stable_and_content_addressed(self, artifact):
        assert artifact.digest == artifact.digest
        other = generate_topology("random-geo", 24, 6)
        assert other.digest != artifact.digest

    def test_name_carries_generation_triple(self, artifact):
        assert artifact.name == "topogen-random-geo-24-s5"

    def test_param_lookup_and_one_line_error(self, artifact):
        assert artifact.param("target_degree") == 6.0
        with pytest.raises(ValueError, match="unknown topogen param"):
            artifact.param("nope")


class TestRoundTrip:
    def test_loads_round_trips_exactly(self, artifact):
        loaded = GeneratedTopology.loads(artifact.to_json())
        assert loaded == artifact
        assert loaded.to_json() == artifact.to_json()
        assert loaded.digest == artifact.digest

    def test_dump_load_file(self, artifact, tmp_path):
        path = artifact.dump(tmp_path / "t.json")
        loaded = GeneratedTopology.load(path)
        assert loaded == artifact

    def test_loaded_topology_matches_generated(self, artifact):
        built = artifact.topology()
        loaded = GeneratedTopology.loads(artifact.to_json()).topology()
        assert built.name == loaded.name
        assert set(built.edges) == set(loaded.edges)
        for u, v in built.edges:
            assert built.latency(u, v) == loaded.latency(u, v)

    def test_topology_is_memoised(self, artifact):
        assert artifact.topology() is artifact.topology()


class TestValidation:
    def test_digest_mismatch_rejected(self, artifact):
        document = json.loads(artifact.to_json())
        document["digest"] = "0" * 64
        with pytest.raises(ValidationError, match="digest mismatch"):
            GeneratedTopology.from_description(document)

    def test_edited_content_rejected_via_digest(self, artifact):
        document = json.loads(artifact.to_json())
        document["links"][0][2] += 1.0
        with pytest.raises(ValidationError, match="corrupt or hand-edited"):
            GeneratedTopology.from_description(document)

    def test_unsupported_version_rejected(self, artifact):
        document = artifact.describe()
        document["version"] = ARTIFACT_VERSION + 1
        with pytest.raises(ValidationError, match="artifact version"):
            GeneratedTopology.from_description(document)

    def test_missing_fields_one_line(self):
        with pytest.raises(ValidationError, match="missing field"):
            GeneratedTopology.from_description({"version": ARTIFACT_VERSION})

    def test_not_json_one_line(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            GeneratedTopology.loads("{nope")

    def test_unknown_tier_rejected(self, artifact):
        document = artifact.describe()
        document["nodes"][0][3] = "galaxy"
        with pytest.raises(ValidationError, match="unknown tier"):
            GeneratedTopology.from_description(document)

    def test_unsorted_nodes_rejected(self, artifact):
        document = artifact.describe()
        document["nodes"].reverse()
        with pytest.raises(ValidationError, match="sorted"):
            GeneratedTopology.from_description(document)

    def test_unordered_link_rejected(self, artifact):
        document = artifact.describe()
        a, b, latency = document["links"][0]
        document["links"][0] = [b, a, latency]
        with pytest.raises(ValidationError, match="ordered"):
            GeneratedTopology.from_description(document)
