"""Property tests: byte reproducibility and structural invariants.

The tentpole contract is that ``(family, size, seed)`` fixes the artifact
byte-for-byte -- across calls, and across *processes* (no dependence on
hash randomisation, dict order, or ambient state).  Hypothesis drives the
triple; regeneration deliberately bypasses the registry memo so equality
is earned, not cached.
"""

from __future__ import annotations

import json
import subprocess
import sys

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.topogen import family_names
from repro.topogen.registry import family_info

SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

triples = st.one_of(
    st.tuples(
        st.sampled_from(("random-geo", "waxman")),
        st.integers(min_value=8, max_value=40),
        st.integers(min_value=0, max_value=999),
    ),
    st.tuples(
        st.just("isp-hier"),
        st.integers(min_value=16, max_value=48),
        st.integers(min_value=0, max_value=999),
    ),
    st.tuples(
        st.just("continental"),
        st.integers(min_value=4, max_value=24),
        st.integers(min_value=0, max_value=999),
    ),
)


def fresh(family, size, seed):
    """Generate without the registry memo (an honest regeneration)."""
    return family_info(family).build(size, seed)


@given(triple=triples)
@SETTINGS
def test_same_triple_same_bytes(triple):
    first = fresh(*triple)
    second = fresh(*triple)
    assert first.to_json() == second.to_json()
    assert first == second


@given(triple=triples)
@SETTINGS
def test_connected_and_latency_symmetric(triple):
    artifact = fresh(*triple)
    topology = artifact.topology()
    # Connectivity: every node reachable from the first.
    neighbors = {node[0]: set() for node in artifact.nodes}
    for a, b, _latency in artifact.links:
        neighbors[a].add(b)
        neighbors[b].add(a)
    first = artifact.nodes[0][0]
    frontier, seen = [first], {first}
    while frontier:
        node = frontier.pop()
        for neighbor in neighbors[node]:
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    assert len(seen) == artifact.size
    # Symmetry: undirected links present both ways with equal latency.
    for a, b, latency in artifact.links:
        assert topology.latency(a, b) == topology.latency(b, a) == latency


@given(triple=triples)
@SETTINGS
def test_latencies_within_declared_bounds(triple):
    artifact = fresh(*triple)
    low = artifact.param("latency_ms_min")
    high = artifact.param("latency_ms_max")
    for _a, _b, latency in artifact.links:
        assert low <= latency <= high


def test_every_family_is_covered_by_the_strategy():
    assert set(family_names()) == {
        "random-geo", "waxman", "isp-hier", "continental",
    }


def test_byte_identity_across_processes(tmp_path):
    """A child interpreter regenerates the identical document."""
    program = (
        "from repro.topogen import generate_topology\n"
        "import sys\n"
        "sys.stdout.write(generate_topology('isp-hier', 60, 11).to_json())\n"
    )
    child = subprocess.run(
        [sys.executable, "-c", program],
        capture_output=True,
        text=True,
        check=True,
    )
    from repro.topogen import generate_topology

    assert child.stdout == generate_topology("isp-hier", 60, 11).to_json()
    # And the digest embedded in the document self-verifies.
    document = json.loads(child.stdout)
    assert document["digest"] == generate_topology("isp-hier", 60, 11).digest
