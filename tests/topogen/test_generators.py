"""Generator families: structure, biconnectivity, geometry-derived latency."""

from __future__ import annotations

import pytest

from repro.netmodel.geo import fiber_latency_ms
from repro.topogen import generate_topology
from repro.util.validation import ValidationError

SMALL = {
    "random-geo": 20,
    "waxman": 20,
    "isp-hier": 24,
    "continental": 12,
}


def adjacency(artifact):
    neighbors = {node[0]: set() for node in artifact.nodes}
    for a, b, _latency in artifact.links:
        neighbors[a].add(b)
        neighbors[b].add(a)
    return neighbors


def connected(neighbors, removed=frozenset()):
    alive = [node for node in neighbors if node not in removed]
    if not alive:
        return True
    frontier, seen = [alive[0]], {alive[0]}
    while frontier:
        node = frontier.pop()
        for neighbor in neighbors[node]:
            if neighbor not in removed and neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    return len(seen) == len(alive)


@pytest.mark.parametrize("family,size", sorted(SMALL.items()))
class TestEveryFamily:
    def test_size_and_sorted_rows(self, family, size):
        artifact = generate_topology(family, size, 3)
        assert artifact.size == size == len(artifact.nodes)
        assert list(artifact.nodes) == sorted(artifact.nodes)
        assert list(artifact.links) == sorted(artifact.links)
        assert all(a < b for a, b, _latency in artifact.links)

    def test_biconnected(self, family, size):
        """No single site failure may disconnect the overlay.

        Menger: biconnectivity is exactly what guarantees two node-disjoint
        paths between every pair, which every scheme assumes.
        """
        artifact = generate_topology(family, size, 3)
        neighbors = adjacency(artifact)
        assert connected(neighbors)
        for node in neighbors:
            assert connected(neighbors, removed={node}), (
                f"{family}: removing {node} disconnects the overlay"
            )

    def test_latency_from_geography(self, family, size):
        """Stored latencies match the geo model (continental keeps its own)."""
        artifact = generate_topology(family, size, 3)
        if family == "continental":
            return  # legacy generator's latencies are preserved as-is
        position = {node[0]: (node[1], node[2]) for node in artifact.nodes}
        for a, b, latency in artifact.links:
            expected = fiber_latency_ms(*position[a], *position[b])
            assert latency == pytest.approx(expected, abs=1e-9)

    def test_materialised_topology_validates(self, family, size):
        topology = generate_topology(family, size, 3).topology()
        assert topology.frozen
        assert topology.num_nodes == size


class TestFamilyShape:
    def test_isp_hierarchy_has_three_tiers(self):
        artifact = generate_topology("isp-hier", 50, 1)
        tiers = {node[3] for node in artifact.nodes}
        assert tiers == {"core", "region", "edge"}
        prefixes = {node[0][0] for node in artifact.nodes}
        assert prefixes == {"C", "R", "E"}

    def test_isp_core_is_denser_than_edge(self):
        artifact = generate_topology("isp-hier", 100, 1)
        neighbors = adjacency(artifact)
        core_degrees = [
            len(neighbors[node[0]])
            for node in artifact.nodes
            if node[3] == "core"
        ]
        edge_degrees = [
            len(neighbors[node[0]])
            for node in artifact.nodes
            if node[3] == "edge"
        ]
        assert min(core_degrees) >= 3
        assert sum(core_degrees) / len(core_degrees) > (
            sum(edge_degrees) / len(edge_degrees)
        )

    def test_random_geo_degree_near_target(self):
        artifact = generate_topology("random-geo", 100, 2)
        average = 2 * len(artifact.links) / len(artifact.nodes)
        assert 3.0 <= average <= 9.0  # target 6, border effects allowed

    def test_waxman_degree_near_target(self):
        artifact = generate_topology("waxman", 100, 2)
        average = 2 * len(artifact.links) / len(artifact.nodes)
        assert 3.0 <= average <= 9.0

    def test_patched_links_param_recorded(self):
        artifact = generate_topology("random-geo", 20, 3)
        assert artifact.param("patched_links") >= 0

    def test_positions_inside_declared_box(self):
        artifact = generate_topology("waxman", 40, 4)
        lat_min, lat_max, lon_min, lon_max = artifact.param("box")
        for _node, lat, lon, _tier in artifact.nodes:
            assert lat_min <= lat <= lat_max
            assert lon_min <= lon <= lon_max


class TestSizeEnvelope:
    def test_too_small_isp_rejected(self):
        with pytest.raises(ValidationError, match="supports sizes"):
            generate_topology("isp-hier", 8, 0)

    def test_continental_cap_rejected(self):
        with pytest.raises(ValidationError, match="supports sizes"):
            generate_topology("continental", 200, 0)

    def test_unknown_family_one_line(self):
        with pytest.raises(ValidationError, match="unknown topology family"):
            generate_topology("mesh9000", 50, 0)
