"""Telemetry records: dict form and session aggregation."""

from __future__ import annotations

import pytest

from repro.exec.telemetry import (
    ExecTelemetry,
    record,
    reset_session,
    session_records,
    session_summary,
    session_totals,
)


@pytest.fixture(autouse=True)
def _clean_session():
    reset_session()
    yield
    reset_session()


def _telemetry(**overrides) -> ExecTelemetry:
    telemetry = ExecTelemetry(
        label="t",
        workers=2,
        shards_total=4,
        shards_run=3,
        shards_cached=1,
        wall_time_s=1.0,
        shard_wall_s=[0.25, 0.25, 0.5],
    )
    for name, value in overrides.items():
        setattr(telemetry, name, value)
    return telemetry


class TestToDict:
    def test_all_counters_present(self):
        payload = _telemetry(cache_corrupt=2, cache_evicted=3).to_dict()
        assert payload["shards_total"] == 4
        assert payload["cache_corrupt"] == 2
        assert payload["cache_evicted"] == 3
        assert payload["busy_s"] == 1.0
        assert payload["max_shard_s"] == 0.5

    def test_json_safe(self):
        import json

        json.dumps(_telemetry().to_dict())

    def test_empty_record(self):
        payload = ExecTelemetry().to_dict()
        assert payload["mean_shard_s"] == 0.0
        assert payload["utilization"] == 0.0


class TestSessionAggregation:
    def test_totals_sum_every_counter(self):
        record(_telemetry(cache_corrupt=1, cache_evicted=2))
        record(_telemetry(cache_corrupt=3, cache_evicted=0, shards_retried=1))
        total = session_totals()
        assert total.shards_total == 8
        assert total.shards_run == 6
        assert total.shards_cached == 2
        assert total.shards_retried == 1
        # Cache-health counters must survive aggregation: a corruption
        # seen in any run of the session shows in the aggregate.
        assert total.cache_corrupt == 4
        assert total.cache_evicted == 2
        assert total.wall_time_s == 2.0
        assert len(total.shard_wall_s) == 6

    def test_totals_none_when_empty(self):
        assert session_totals() is None
        assert session_summary() is None

    def test_summary_table_shows_aggregated_cache_health(self):
        record(_telemetry(cache_corrupt=1))
        record(_telemetry(cache_corrupt=2, cache_evicted=5))
        collapsed = " ".join(session_summary().split())
        assert "corrupt cache entries 3" in collapsed
        assert "cache entries evicted 5" in collapsed

    def test_records_are_immutable_view(self):
        record(_telemetry())
        assert len(session_records()) == 1
        reset_session()
        assert session_records() == ()


class TestProbCacheCounters:
    def test_to_dict_carries_prob_counters(self):
        payload = _telemetry(
            prob_hits=6,
            prob_misses=2,
            prob_shared_hits=3,
            prob_mask_hits=1,
            prob_evicted=4,
        ).to_dict()
        assert payload["prob_hits"] == 6
        assert payload["prob_misses"] == 2
        assert payload["prob_shared_hits"] == 3
        assert payload["prob_mask_hits"] == 1
        assert payload["prob_evicted"] == 4
        assert payload["prob_hit_rate"] == pytest.approx(0.75)

    def test_hit_rate_zero_without_lookups(self):
        assert ExecTelemetry().prob_hit_rate == 0.0

    def test_totals_sum_prob_counters(self):
        record(_telemetry(prob_hits=10, prob_misses=5, prob_evicted=1))
        record(
            _telemetry(
                prob_hits=2,
                prob_misses=1,
                prob_shared_hits=2,
                prob_mask_hits=3,
                prob_evicted=1,
            )
        )
        total = session_totals()
        assert total.prob_hits == 12
        assert total.prob_misses == 6
        assert total.prob_shared_hits == 2
        assert total.prob_mask_hits == 3
        assert total.prob_evicted == 2

    def test_summary_table_shows_prob_cache_rows(self):
        # Satellite (c): eviction telemetry must be user-visible, not
        # just a counter buried in the JSON payload.
        record(
            _telemetry(
                prob_hits=8,
                prob_misses=2,
                prob_shared_hits=3,
                prob_mask_hits=5,
                prob_evicted=7,
            )
        )
        collapsed = " ".join(session_summary().split())
        assert "prob-cache hits/misses 8/2 (80 %)" in collapsed
        assert "prob-cache shared hits 3" in collapsed
        assert "prob-cache mask hits 5" in collapsed
        assert "prob-cache evictions 7" in collapsed


class TestKernelCounters:
    def test_to_dict_carries_kernel_fields(self):
        payload = _telemetry(
            kernel_backend="numpy",
            kernel_vector_calls=4,
            kernel_pure_calls=2,
            kernel_vector_rows=40,
            kernel_pure_rows=2,
            kernel_vector_s=0.25,
            kernel_pure_s=0.125,
        ).to_dict()
        assert payload["kernel_backend"] == "numpy"
        assert payload["kernel_vector_calls"] == 4
        assert payload["kernel_pure_calls"] == 2
        assert payload["kernel_vector_rows"] == 40
        assert payload["kernel_pure_rows"] == 2
        assert payload["kernel_vector_s"] == 0.25
        assert payload["kernel_pure_s"] == 0.125

    def test_totals_sum_kernel_counters(self):
        record(
            _telemetry(
                kernel_backend="numpy",
                kernel_vector_calls=3,
                kernel_vector_rows=30,
                kernel_vector_s=0.5,
            )
        )
        record(
            _telemetry(
                kernel_backend="numpy",
                kernel_vector_calls=1,
                kernel_pure_calls=2,
                kernel_vector_rows=5,
                kernel_pure_rows=2,
                kernel_vector_s=0.25,
                kernel_pure_s=0.0625,
            )
        )
        total = session_totals()
        assert total.kernel_backend == "numpy"
        assert total.kernel_vector_calls == 4
        assert total.kernel_pure_calls == 2
        assert total.kernel_vector_rows == 35
        assert total.kernel_pure_rows == 2
        assert total.kernel_vector_s == 0.75
        assert total.kernel_pure_s == 0.0625

    def test_summary_table_shows_kernel_rows(self):
        record(
            _telemetry(
                kernel_backend="pure",
                kernel_pure_calls=6,
                kernel_pure_rows=18,
            )
        )
        collapsed = " ".join(session_summary().split())
        assert "kernel backend pure" in collapsed
        assert "kernel calls (vector/pure) 0/6" in collapsed
        assert "kernel rows (vector/pure) 0/18" in collapsed


class TestScopedSessions:
    # Satellite: concurrent serve requests each need their own session;
    # session_totals must never bleed between them.

    def test_nested_session_scopes_records(self):
        from repro.exec.telemetry import telemetry_session

        record(_telemetry())
        with telemetry_session("inner") as session:
            assert session_records() == ()  # fresh scope, not the default's
            record(_telemetry())
            assert len(session.records()) == 1
            assert session_totals().label == "inner (1 runs)"
        # leaving the scope restores the default session untouched
        assert len(session_records()) == 1

    def test_session_object_outlives_scope(self):
        from repro.exec.telemetry import telemetry_session

        with telemetry_session("kept") as session:
            record(_telemetry())
        assert len(session.records()) == 1
        assert session.totals().shards_run == 3

    def test_concurrent_thread_sessions_do_not_bleed(self):
        import threading

        from repro.exec.telemetry import telemetry_session

        totals = {}
        barrier = threading.Barrier(3)

        def worker(name: str, count: int):
            with telemetry_session(name) as session:
                barrier.wait()  # all sessions live before any records
                for _ in range(count):
                    record(_telemetry())
                barrier.wait()  # all records in before any totals
                totals[name] = session.totals()

        threads = [
            threading.Thread(target=worker, args=(f"s{index}", index + 1))
            for index in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for index in range(3):
            assert totals[f"s{index}"].label == f"s{index} ({index + 1} runs)"
            assert totals[f"s{index}"].shards_run == 3 * (index + 1)
        assert session_records() == ()  # nothing leaked into the default

    def test_aggregate_telemetry_standalone(self):
        from repro.exec.telemetry import aggregate_telemetry

        total = aggregate_telemetry(
            [_telemetry(), _telemetry()], label="combined"
        )
        assert total is not None
        assert total.label == "combined"
        assert total.shards_total == 8
        assert aggregate_telemetry([]) is None
