"""Shard/merge equivalence: sharded output is exactly the serial output."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graph import Topology
from repro.exec.engine import run_replay_parallel
from repro.exec.plan import build_plan, time_cuts
from repro.netmodel.conditions import ConditionTimeline, Contribution, LinkState
from repro.netmodel.scenarios import WEEK_S, Scenario, generate_timeline
from repro.netmodel.topology import (
    FlowSpec,
    ServiceSpec,
    build_reference_topology,
    reference_flows,
)
from repro.simulation.interval import run_replay
from repro.simulation.results import ReplayConfig

SMALL_SCHEMES = ("dynamic-single", "static-two-disjoint", "targeted")


def assert_exactly_equal(serial, sharded):
    """Field-for-field exact equality of two ReplayResults."""
    assert serial.schemes == sharded.schemes
    assert serial.flow_names == sharded.flow_names
    for scheme in serial.schemes:
        for flow in serial.flow_names:
            a = serial.get(flow, scheme)
            b = sharded.get(flow, scheme)
            for field in (
                "duration_s",
                "unavailable_s",
                "lost_s",
                "late_s",
                "message_seconds",
                "decision_changes",
            ):
                assert getattr(a, field) == getattr(b, field), (scheme, flow, field)
            assert a.windows == b.windows, (scheme, flow)


def braided_topology() -> Topology:
    topology = Topology("braided")
    for node in ("S", "A", "B", "C", "D", "T"):
        topology.add_node(node)
    topology.add_link("S", "A", 1.0)
    topology.add_link("A", "B", 1.0)
    topology.add_link("B", "T", 1.0)
    topology.add_link("S", "C", 2.0)
    topology.add_link("C", "D", 2.0)
    topology.add_link("D", "T", 2.0)
    topology.add_link("A", "C", 1.0)
    topology.add_link("B", "D", 1.0)
    return topology.freeze()


def run_both(topology, timeline, flows, service, config, time_shards):
    serial = run_replay(
        topology, timeline, flows, service, SMALL_SCHEMES, config
    )
    sharded, _telemetry = run_replay_parallel(
        topology,
        timeline,
        flows,
        service,
        SMALL_SCHEMES,
        config,
        max_workers=0,
        time_shards=time_shards,
        use_cache=False,
    )
    return serial, sharded


class TestPlan:
    def test_time_cuts_align_with_boundaries(self):
        topology = braided_topology()
        timeline = ConditionTimeline(
            topology,
            600.0,
            [
                Contribution(("S", "A"), 50.0, 100.0, LinkState(loss_rate=0.5)),
                Contribution(("B", "T"), 200.0, 400.0, LinkState(loss_rate=0.9)),
            ],
        )
        cuts = time_cuts(timeline, 1.0, 4)
        assert cuts[0] == 0.0
        assert cuts[-1] == 600.0
        assert cuts == sorted(set(cuts))
        # every interior cut is a decision boundary
        from repro.simulation.timeline import decision_boundaries

        boundaries = set(decision_boundaries(timeline, 1.0))
        assert all(cut in boundaries for cut in cuts)

    def test_plan_order_is_scheme_major(self):
        topology = braided_topology()
        timeline = ConditionTimeline(topology, 100.0, [])
        flows = (FlowSpec("S", "T"), FlowSpec("T", "S"))
        plan = build_plan(timeline, flows, SMALL_SCHEMES, ReplayConfig(), 1)
        assert [s.scheme for s in plan[:2]] == [SMALL_SCHEMES[0]] * 2
        assert [s.flow.name for s in plan[:2]] == ["S->T", "T->S"]
        assert len(plan) == len(flows) * len(SMALL_SCHEMES)

    def test_more_shards_than_windows_degrades_gracefully(self):
        topology = braided_topology()
        timeline = ConditionTimeline(topology, 100.0, [])
        plan = build_plan(
            timeline, (FlowSpec("S", "T"),), SMALL_SCHEMES, ReplayConfig(), 50
        )
        # a clean timeline has very few boundaries; the plan shrinks to fit
        per_pair = len(plan) // len(SMALL_SCHEMES)
        assert per_pair >= 1
        assert all(shard.of == per_pair for shard in plan)


class TestExactEquivalence:
    def test_time_sharded_equals_serial_on_reference_topology(self):
        """Acceptance: sharded replay == serial run_replay, all six schemes."""
        topology = build_reference_topology()
        flows = reference_flows()
        service = ServiceSpec()
        config = ReplayConfig()
        _events, timeline = generate_timeline(
            topology, Scenario(duration_s=0.01 * WEEK_S), seed=7
        )
        serial = run_replay(topology, timeline, flows, service, config=config)
        sharded, telemetry = run_replay_parallel(
            topology,
            timeline,
            flows,
            service,
            config=config,
            max_workers=0,
            time_shards=4,
            use_cache=False,
        )
        assert serial.schemes == sharded.schemes
        assert serial.flow_names == sharded.flow_names
        for scheme in serial.schemes:
            for flow in serial.flow_names:
                a, b = serial.get(flow, scheme), sharded.get(flow, scheme)
                assert a.duration_s == b.duration_s
                assert a.unavailable_s == b.unavailable_s
                assert a.lost_s == b.lost_s
                assert a.late_s == b.late_s
                assert a.message_seconds == b.message_seconds
                assert a.decision_changes == b.decision_changes
        for sa, sb in zip(serial.all_totals(), sharded.all_totals()):
            assert sa == sb
        assert telemetry.shards_total > len(flows) * len(serial.schemes)

    def test_collect_windows_survives_sharding(self):
        topology = braided_topology()
        timeline = ConditionTimeline(
            topology,
            900.0,
            [
                Contribution(("S", "A"), 30.0, 120.0, LinkState(loss_rate=0.8)),
                Contribution(("D", "T"), 300.0, 480.0, LinkState(loss_rate=1.0)),
                Contribution(("A", "B"), 500.0, 700.0, LinkState(extra_latency_ms=40.0)),
            ],
        )
        config = ReplayConfig(collect_windows=True)
        serial, sharded = run_both(
            topology, timeline, (FlowSpec("S", "T"),), ServiceSpec(deadline_ms=8.0),
            config, 3,
        )
        assert_exactly_equal(serial, sharded)
        stats = sharded.get("S->T", "targeted")
        assert stats.windows  # collection actually happened

    @settings(max_examples=20, deadline=None)
    @given(
        contributions=st.lists(
            st.tuples(
                st.sampled_from(
                    [("S", "A"), ("A", "B"), ("B", "T"), ("S", "C"), ("C", "D"), ("D", "T")]
                ),
                st.floats(min_value=0.0, max_value=500.0),
                st.floats(min_value=1.0, max_value=300.0),
                st.floats(min_value=0.0, max_value=1.0),
                st.floats(min_value=0.0, max_value=60.0),
            ),
            max_size=6,
        ),
        time_shards=st.integers(min_value=1, max_value=5),
        detection_delay_s=st.sampled_from([0.0, 1.0, 2.5]),
        deadline_ms=st.sampled_from([4.0, 8.0, 100.0]),
    )
    def test_property_sharded_equals_serial(
        self, contributions, time_shards, detection_delay_s, deadline_ms
    ):
        topology = braided_topology()
        timeline = ConditionTimeline(
            topology,
            600.0,
            [
                Contribution(edge, start, start + length, LinkState(loss, extra))
                for edge, start, length, loss, extra in contributions
            ],
        )
        config = ReplayConfig(detection_delay_s=detection_delay_s)
        serial, sharded = run_both(
            topology,
            timeline,
            (FlowSpec("S", "T"),),
            ServiceSpec(deadline_ms=deadline_ms),
            config,
            time_shards,
        )
        assert_exactly_equal(serial, sharded)
