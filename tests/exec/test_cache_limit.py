"""Size-capped cache: LRU eviction, env configuration, CLI pruning."""

from __future__ import annotations

import os

import pytest

from repro.exec.cache import (
    CACHE_MAX_BYTES_ENV,
    ResultCache,
    default_max_bytes,
)
from tests.exec.test_cache import sample_result


def fill(cache: ResultCache, count: int) -> list[str]:
    keys = [f"{index:02x}" + "0" * 62 for index in range(count)]
    for key in keys:
        cache.store(key, sample_result())
    return keys


def backdate(cache: ResultCache, key: str, age_s: float) -> None:
    path = cache._path(key)
    stat = path.stat()
    os.utime(path, (stat.st_atime - age_s, stat.st_mtime - age_s))


class TestPrune:
    def test_noop_when_under_limit(self, tmp_path):
        cache = ResultCache(tmp_path)
        fill(cache, 3)
        assert cache.prune(10**9) == 0
        assert cache.info().entries == 3

    def test_evicts_oldest_first(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = fill(cache, 4)
        entry_bytes = cache.info().total_bytes // 4
        for age, key in enumerate(reversed(keys)):
            backdate(cache, key, (age + 1) * 100.0)  # keys[0] is oldest
        evicted = cache.prune(entry_bytes * 2)
        assert evicted == 2
        assert cache.load(keys[0]) is None and cache.load(keys[1]) is None
        assert cache.load(keys[2]) is not None and cache.load(keys[3]) is not None
        assert cache.evictions == 2

    def test_load_refreshes_recency(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = fill(cache, 3)
        entry_bytes = cache.info().total_bytes // 3
        for key in keys:
            backdate(cache, key, 1000.0)
        assert cache.load(keys[0]) is not None  # LRU bump: now the newest
        assert cache.prune(entry_bytes) >= 1
        assert cache.load(keys[0]) is not None  # survived the eviction
        assert cache.load(keys[1]) is None

    def test_zero_cap_evicts_everything(self, tmp_path):
        cache = ResultCache(tmp_path)
        fill(cache, 3)
        assert cache.prune(0) == 3
        assert cache.info().entries == 0

    def test_negative_cap_rejected(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(ValueError):
            cache.prune(-1)


class TestConfiguredLimit:
    def test_enforce_limit_without_cap_is_noop(self, tmp_path):
        cache = ResultCache(tmp_path)
        fill(cache, 3)
        assert cache.max_bytes is None or cache.max_bytes > 0
        cache.max_bytes = None
        assert cache.enforce_limit() == 0

    def test_explicit_cap_enforced(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=1)
        fill(cache, 2)
        assert cache.enforce_limit() >= 1

    def test_env_cap_picked_up(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_MAX_BYTES_ENV, "12345")
        assert ResultCache(tmp_path).max_bytes == 12345

    def test_env_zero_means_unlimited(self, monkeypatch):
        monkeypatch.setenv(CACHE_MAX_BYTES_ENV, "0")
        assert default_max_bytes() is None

    def test_env_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv(CACHE_MAX_BYTES_ENV, "lots")
        with pytest.raises(ValueError):
            default_max_bytes()


class TestCliPrune:
    def test_prune_via_cli(self, tmp_path, capsys):
        from repro.cli import main

        cache = ResultCache(tmp_path)
        fill(cache, 3)
        code = main(
            ["cache", "prune", "--max-bytes", "0", "--cache-dir", str(tmp_path)]
        )
        assert code == 0
        assert "evicted 3 entries" in capsys.readouterr().out
        assert cache.info().entries == 0

    def test_prune_requires_max_bytes(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["cache", "prune", "--cache-dir", str(tmp_path)])
        assert code == 2
        assert "requires --max-bytes" in capsys.readouterr().err
