"""Engine observability: shard spans, cache-hit instants, replay counters."""

from __future__ import annotations

from repro.exec.cache import ResultCache
from repro.exec.engine import run_replay_parallel
from repro.obs import Observability

from tests.exec.test_engine import small_case
from tests.exec.test_plan import SMALL_SCHEMES


def _run(obs, cache_dir=None, use_cache=False, **kwargs):
    topology, timeline, flows, service = small_case()
    return run_replay_parallel(
        topology,
        timeline,
        flows,
        service,
        scheme_names=SMALL_SCHEMES,
        max_workers=0,
        use_cache=use_cache,
        cache=ResultCache(str(cache_dir)) if cache_dir else None,
        obs=obs,
        **kwargs,
    )


class TestReplayCounters:
    def test_counters_mirror_merged_totals_exactly(self):
        obs = Observability()
        result, _telemetry = _run(obs)
        for totals in result.all_totals():
            scheme = totals.scheme
            assert (
                obs.metrics.value(f"replay.duration_s.{scheme}")
                == totals.duration_s
            )
            assert (
                obs.metrics.value(f"replay.unavailable_s.{scheme}")
                == totals.unavailable_s
            )
            assert obs.metrics.value(f"replay.lost_s.{scheme}") == totals.lost_s
            assert obs.metrics.value(f"replay.late_s.{scheme}") == totals.late_s

    def test_exec_counters_mirror_telemetry(self):
        obs = Observability()
        _result, telemetry = _run(obs)
        assert obs.metrics.value("exec.shards_total") == telemetry.shards_total
        assert obs.metrics.value("exec.shards_run") == telemetry.shards_run
        wall = obs.metrics.summarize()["exec.shard_wall_s"]
        assert wall["count"] == len(telemetry.shard_wall_s)


class TestShardSpans:
    def test_serial_shards_traced(self):
        obs = Observability()
        _result, telemetry = _run(obs)
        shards = [s for s in obs.tracer.spans if s.name == "shard"]
        assert len(shards) == telemetry.shards_run
        assert all(s.args["mode"] == "serial" for s in shards)
        assert all(s.duration_s >= 0.0 for s in shards)

    def test_cache_hits_become_instants(self, tmp_path):
        _run(None, cache_dir=tmp_path, use_cache=True)
        obs = Observability()
        _result, telemetry = _run(obs, cache_dir=tmp_path, use_cache=True)
        assert telemetry.shards_cached == telemetry.shards_total
        hits = [s for s in obs.tracer.spans if s.name == "cache.hit"]
        assert len(hits) == telemetry.shards_cached

    def test_disabled_obs_records_nothing(self):
        obs = Observability(enabled=False)
        _run(obs)
        assert obs.metrics.summarize() == {}
        assert obs.tracer.spans == []

    def test_result_unchanged_by_observation(self):
        plain, _ = _run(None)
        observed, _ = _run(Observability())
        from tests.exec.test_plan import assert_exactly_equal

        assert_exactly_equal(plain, observed)
