"""Engine observability: shard spans, cache-hit instants, replay counters."""

from __future__ import annotations

from repro.exec.cache import ResultCache
from repro.exec.engine import run_replay_parallel
from repro.obs import Observability, read_spans_jsonl, write_spans_jsonl

from tests.exec.test_engine import small_case
from tests.exec.test_plan import SMALL_SCHEMES


def _run(obs, cache_dir=None, use_cache=False, **kwargs):
    topology, timeline, flows, service = small_case()
    return run_replay_parallel(
        topology,
        timeline,
        flows,
        service,
        scheme_names=SMALL_SCHEMES,
        max_workers=0,
        use_cache=use_cache,
        cache=ResultCache(str(cache_dir)) if cache_dir else None,
        obs=obs,
        **kwargs,
    )


class TestReplayCounters:
    def test_counters_mirror_merged_totals_exactly(self):
        obs = Observability()
        result, _telemetry = _run(obs)
        for totals in result.all_totals():
            scheme = totals.scheme
            assert (
                obs.metrics.value(f"replay.duration_s.{scheme}")
                == totals.duration_s
            )
            assert (
                obs.metrics.value(f"replay.unavailable_s.{scheme}")
                == totals.unavailable_s
            )
            assert obs.metrics.value(f"replay.lost_s.{scheme}") == totals.lost_s
            assert obs.metrics.value(f"replay.late_s.{scheme}") == totals.late_s

    def test_exec_counters_mirror_telemetry(self):
        obs = Observability()
        _result, telemetry = _run(obs)
        assert obs.metrics.value("exec.shards_total") == telemetry.shards_total
        assert obs.metrics.value("exec.shards_run") == telemetry.shards_run
        wall = obs.metrics.summarize()["exec.shard_wall_s"]
        assert wall["count"] == len(telemetry.shard_wall_s)


class TestShardSpans:
    def test_serial_shards_traced(self):
        obs = Observability()
        _result, telemetry = _run(obs)
        shards = [s for s in obs.tracer.spans if s.name == "shard"]
        assert len(shards) == telemetry.shards_run
        assert all(s.args["mode"] == "serial" for s in shards)
        assert all(s.duration_s >= 0.0 for s in shards)

    def test_cache_hits_become_instants(self, tmp_path):
        _run(None, cache_dir=tmp_path, use_cache=True)
        obs = Observability()
        _result, telemetry = _run(obs, cache_dir=tmp_path, use_cache=True)
        assert telemetry.shards_cached == telemetry.shards_total
        hits = [s for s in obs.tracer.spans if s.name == "cache.hit"]
        assert len(hits) == telemetry.shards_cached

    def test_disabled_obs_records_nothing(self):
        obs = Observability(enabled=False)
        _run(obs)
        assert obs.metrics.summarize() == {}
        assert obs.tracer.spans == []

    def test_result_unchanged_by_observation(self):
        plain, _ = _run(None)
        observed, _ = _run(Observability())
        from tests.exec.test_plan import assert_exactly_equal

        assert_exactly_equal(plain, observed)


class TestCrossProcessTrace:
    """Pool workers join the parent's trace: one tree, one trace id."""

    def _traced_pool_run(self):
        obs = Observability()
        topology, timeline, flows, service = small_case()
        _result, telemetry = run_replay_parallel(
            topology,
            timeline,
            flows,
            service,
            scheme_names=SMALL_SCHEMES,
            max_workers=2,
            use_cache=False,
            obs=obs,
        )
        obs.tracer.finalize()
        return obs, telemetry

    def test_pooled_run_is_a_single_trace_tree(self, tmp_path):
        obs, telemetry = self._traced_pool_run()
        spans = obs.tracer.spans
        by_id = {span.span_id for span in spans}
        roots = [span for span in spans if span.parent_id is None]
        assert [span.name for span in roots] == ["replay"]
        # Every non-root span's parent exists in the same export.
        assert all(
            span.parent_id in by_id for span in spans if span.parent_id is not None
        )
        worker_spans = [span for span in spans if span.name == "worker.shard"]
        assert len(worker_spans) == telemetry.shards_run
        assert {span.args["trace_id"] for span in worker_spans} == {
            obs.tracer.trace_id
        }
        # Worker pids prove the spans crossed a process boundary.
        assert all(span.args["pid"] for span in worker_spans)
        # Shard phases recorded inside the workers came home too.
        phases = {span.name for span in spans}
        assert {"shard.policy", "shard.windows"} <= phases

    def test_trace_survives_jsonl_round_trip(self, tmp_path):
        obs, _telemetry = self._traced_pool_run()
        path = write_spans_jsonl(obs.tracer.spans, tmp_path / "spans.jsonl")
        loaded = read_spans_jsonl(path)
        assert len(loaded) == len(obs.tracer.spans)
        roots = [span for span in loaded if span.parent_id is None]
        assert [span.name for span in roots] == ["replay"]
        worker_spans = [span for span in loaded if span.name == "worker.shard"]
        assert worker_spans
        assert {span.args["trace_id"] for span in worker_spans} == {
            obs.tracer.trace_id
        }
        # Grafted worker spans sit inside their parent-side shard window.
        shard_by_id = {
            span.span_id: span for span in loaded if span.name == "shard"
        }
        for worker_span in worker_spans:
            shard = shard_by_id[worker_span.parent_id]
            assert shard.start_s - 1e-6 <= worker_span.start_s
            assert worker_span.end_s <= shard.end_s + 1e-6

    def test_serial_run_has_no_worker_spans(self):
        obs = Observability()
        _run(obs)
        obs.tracer.finalize()
        names = {span.name for span in obs.tracer.spans}
        assert "worker.shard" not in names
        roots = [span for span in obs.tracer.spans if span.parent_id is None]
        assert [span.name for span in roots] == ["replay"]
