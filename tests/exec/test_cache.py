"""Content-addressed cache: round trips, corruption detection, eviction."""

from __future__ import annotations

import json

from repro.exec.cache import ResultCache
from repro.exec.hashing import (
    code_fingerprint,
    context_key,
    shard_key,
    stable_hash,
)
from repro.exec.plan import ShardResult
from repro.netmodel.conditions import ConditionTimeline, Contribution, LinkState
from repro.netmodel.topology import FlowSpec, ServiceSpec, build_reference_topology
from repro.simulation.results import ReplayConfig, WindowRecord


def sample_result(windows: bool = True) -> ShardResult:
    return ShardResult(
        flow_source="S",
        flow_destination="T",
        scheme="targeted",
        start_s=0.0,
        end_s=600.0,
        index=0,
        of=2,
        duration_s=600.0,
        unavailable_s=1.25,
        lost_s=1.0,
        late_s=0.25,
        message_seconds=2400.0,
        decision_changes=3,
        windows=(
            [WindowRecord(0.0, 300.0, "targeted", 4, 0.999, 0.0005, 0.0005)]
            if windows
            else None
        ),
    )


KEY = "ab" + "0" * 62


class TestRoundTrip:
    def test_store_then_load(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(KEY, sample_result())
        loaded = cache.load(KEY)
        assert loaded == sample_result()
        assert cache.hits == 1 and cache.corrupt == 0

    def test_windowless_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(KEY, sample_result(windows=False))
        assert cache.load(KEY) == sample_result(windows=False)

    def test_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.load(KEY) is None
        assert cache.misses == 1

    def test_info_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(KEY, sample_result())
        cache.store("cd" + "1" * 62, sample_result())
        info = cache.info()
        assert info.entries == 2
        assert info.total_bytes > 0
        assert cache.clear() == 2
        assert cache.info().entries == 0


class TestCorruption:
    def test_truncated_entry_is_discarded(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(KEY, sample_result())
        path = cache._path(KEY)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert cache.load(KEY) is None
        assert cache.corrupt == 1
        assert not path.exists()  # dropped so a recompute replaces it

    def test_bitflip_fails_digest_check(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(KEY, sample_result())
        path = cache._path(KEY)
        wrapper = json.loads(path.read_text())
        wrapper["payload"]["unavailable_s"] = 999.0  # tampered value
        path.write_text(json.dumps(wrapper))
        assert cache.load(KEY) is None
        assert cache.corrupt == 1

    def test_wrong_key_in_payload_rejected(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(KEY, sample_result())
        other = "ab" + "f" * 62
        # copy the valid entry under a different key: digest is intact but
        # the embedded key no longer matches the address
        target = cache._path(other)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(cache._path(KEY).read_text())
        assert cache.load(other) is None
        assert cache.corrupt == 1

    def test_store_leaves_no_temp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(KEY, sample_result())
        assert list(tmp_path.glob("**/.tmp-*")) == []

    def test_torn_write_recovers_to_fresh_store(self, tmp_path):
        """A crash mid-write (torn file under the key) self-heals.

        Load discards the torn entry; a subsequent store replaces it
        atomically and the round trip works again.
        """
        cache = ResultCache(tmp_path)
        cache.store(KEY, sample_result())
        path = cache._path(KEY)
        path.write_text('{"sha256": "dead", "payl')  # torn mid-write
        assert cache.load(KEY) is None
        cache.store(KEY, sample_result())
        assert cache.load(KEY) == sample_result()
        assert cache.corrupt == 1


class TestKeys:
    def make_context(self):
        topology = build_reference_topology()
        timeline = ConditionTimeline(
            topology,
            1000.0,
            [Contribution(("NYC", "CHI"), 10.0, 60.0, LinkState(loss_rate=0.4))],
        )
        return topology, timeline

    def test_key_is_stable_across_calls(self):
        topology, timeline = self.make_context()
        service, config = ServiceSpec(), ReplayConfig()
        a = context_key(topology, timeline, service, config)
        b = context_key(topology, timeline, service, config)
        assert a == b

    def test_key_changes_with_inputs(self):
        topology, timeline = self.make_context()
        service, config = ServiceSpec(), ReplayConfig()
        base = context_key(topology, timeline, service, config)
        assert base != context_key(
            topology, timeline, ServiceSpec(deadline_ms=50.0), config
        )
        assert base != context_key(
            topology, timeline, service, ReplayConfig(detection_delay_s=2.0)
        )
        other_timeline = ConditionTimeline(topology, 1000.0, [])
        assert base != context_key(topology, other_timeline, service, config)

    def test_shard_key_distinguishes_windows(self):
        topology, timeline = self.make_context()
        context = context_key(topology, timeline, ServiceSpec(), ReplayConfig())
        flow = FlowSpec("NYC", "SJC")
        a = shard_key(context, flow, "targeted", 0.0, 500.0, 0, 2)
        b = shard_key(context, flow, "targeted", 500.0, 1000.0, 1, 2)
        c = shard_key(context, flow, "flooding", 0.0, 500.0, 0, 2)
        assert len({a, b, c}) == 3

    def test_code_fingerprint_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_CODE_VERSION", "pinned-for-test")
        code_fingerprint.cache_clear()
        try:
            assert code_fingerprint() == "pinned-for-test"
        finally:
            code_fingerprint.cache_clear()

    def test_stable_hash_is_order_insensitive_for_dicts(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})
