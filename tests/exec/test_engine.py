"""Engine failure paths, fallback behaviour, caching, and pool smoke test."""

from __future__ import annotations

from concurrent.futures import BrokenExecutor, Future

import pytest

from repro.exec.engine import run_replay_parallel
from repro.netmodel.conditions import ConditionTimeline, Contribution, LinkState
from repro.netmodel.scenarios import WEEK_S, Scenario, generate_timeline
from repro.netmodel.topology import (
    FlowSpec,
    ServiceSpec,
    build_reference_topology,
    reference_flows,
)
from repro.simulation.interval import run_replay
from repro.simulation.results import ReplayConfig

from tests.exec.test_plan import (
    SMALL_SCHEMES,
    assert_exactly_equal,
    braided_topology,
)


def small_case():
    topology = braided_topology()
    timeline = ConditionTimeline(
        topology,
        600.0,
        [
            Contribution(("S", "A"), 40.0, 110.0, LinkState(loss_rate=0.7)),
            Contribution(("B", "T"), 250.0, 420.0, LinkState(loss_rate=1.0)),
        ],
    )
    return topology, timeline, (FlowSpec("S", "T"),), ServiceSpec(deadline_ms=8.0)


class FakeExecutor:
    """An in-process stand-in for ProcessPoolExecutor with failure injection.

    ``fail`` submits resolve to an exception; ``hang`` submits return a
    future that never resolves (exercising the timeout path); ``broken``
    submits resolve to BrokenExecutor (exercising pool rebuilds).
    """

    def __init__(self, initializer, initargs, fail=0, hang=0, broken=0):
        initializer(*initargs)
        self.fail = fail
        self.hang = hang
        self.broken = broken
        self.submits = 0

    def submit(self, fn, *args):
        self.submits += 1
        future = Future()
        if self.broken > 0:
            self.broken -= 1
            future.set_exception(BrokenExecutor("injected pool death"))
        elif self.fail > 0:
            self.fail -= 1
            future.set_exception(RuntimeError("injected shard failure"))
        elif self.hang > 0:
            self.hang -= 1
            pass  # never resolved: result(timeout=...) raises TimeoutError
        else:
            try:
                future.set_result(fn(*args))
            except Exception as error:  # pragma: no cover - defensive
                future.set_exception(error)
        return future

    def shutdown(self, wait=True, cancel_futures=False):
        pass


def make_factory(recorder, **first_kwargs):
    """Executor factory: first pool gets the failure budget, rebuilds are clean."""

    def factory(max_workers, initializer, initargs):
        kwargs = first_kwargs if not recorder else {}
        executor = FakeExecutor(initializer, initargs, **kwargs)
        recorder.append(executor)
        return executor

    return factory


def run_engine(factory, retries=1, shard_timeout_s=None):
    topology, timeline, flows, service = small_case()
    return run_replay_parallel(
        topology,
        timeline,
        flows,
        service,
        SMALL_SCHEMES,
        ReplayConfig(),
        max_workers=2,
        use_cache=False,
        retries=retries,
        shard_timeout_s=shard_timeout_s,
        executor_factory=factory,
    )


def serial_reference():
    topology, timeline, flows, service = small_case()
    return run_replay(topology, timeline, flows, service, SMALL_SCHEMES)


class TestFailurePaths:
    def test_transient_failure_is_retried(self):
        pools = []
        result, telemetry = run_engine(make_factory(pools, fail=2), retries=2)
        assert_exactly_equal(serial_reference(), result)
        assert telemetry.shards_retried >= 2
        assert telemetry.shards_fallback == 0
        assert telemetry.shards_run == telemetry.shards_total

    def test_persistent_failure_falls_back_to_serial(self):
        pools = []

        def always_failing(max_workers, initializer, initargs):
            executor = FakeExecutor(initializer, initargs, fail=10_000)
            pools.append(executor)
            return executor

        result, telemetry = run_engine(always_failing, retries=1)
        # every shard failed twice in the pool, then ran serially in-process
        assert_exactly_equal(serial_reference(), result)
        assert telemetry.shards_fallback == telemetry.shards_total
        assert telemetry.shards_run == 0

    def test_broken_pool_is_rebuilt(self):
        pools = []
        result, telemetry = run_engine(make_factory(pools, broken=1), retries=1)
        assert_exactly_equal(serial_reference(), result)
        assert len(pools) == 2  # first pool died, one rebuild finished the job
        assert telemetry.shards_retried >= 1

    def test_hung_shard_times_out_into_fallback(self):
        pools = []

        def hanging(max_workers, initializer, initargs):
            executor = FakeExecutor(
                initializer, initargs, hang=10_000 if not pools else 0
            )
            pools.append(executor)
            return executor

        result, telemetry = run_engine(hanging, retries=0, shard_timeout_s=0.05)
        assert_exactly_equal(serial_reference(), result)
        assert telemetry.shards_fallback >= 1

    def test_factory_that_cannot_build_a_pool_runs_serially(self):
        def no_pool(max_workers, initializer, initargs):
            raise OSError("no processes available")

        result, telemetry = run_engine(no_pool)
        assert_exactly_equal(serial_reference(), result)
        assert telemetry.shards_fallback == telemetry.shards_total


class TestCachingEndToEnd:
    def test_cold_then_warm_then_corrupted(self, tmp_path):
        topology, timeline, flows, service = small_case()
        kwargs = dict(
            max_workers=0,
            use_cache=True,
            cache_dir=str(tmp_path),
        )
        serial = serial_reference()

        cold, cold_t = run_replay_parallel(
            topology, timeline, flows, service, SMALL_SCHEMES, ReplayConfig(), **kwargs
        )
        assert_exactly_equal(serial, cold)
        assert cold_t.shards_run == cold_t.shards_total
        assert cold_t.shards_cached == 0

        warm, warm_t = run_replay_parallel(
            topology, timeline, flows, service, SMALL_SCHEMES, ReplayConfig(), **kwargs
        )
        assert_exactly_equal(serial, warm)
        assert warm_t.shards_cached == warm_t.shards_total
        assert warm_t.shards_run == 0

        # corrupt one entry on disk: it must be recomputed, not trusted
        entries = sorted(tmp_path.glob("*/*.json"))
        entries[0].write_text("{" + entries[0].read_text())
        third, third_t = run_replay_parallel(
            topology, timeline, flows, service, SMALL_SCHEMES, ReplayConfig(), **kwargs
        )
        assert_exactly_equal(serial, third)
        assert third_t.cache_corrupt == 1
        assert third_t.shards_run == 1
        assert third_t.shards_cached == third_t.shards_total - 1

    def test_no_cache_leaves_directory_empty(self, tmp_path):
        topology, timeline, flows, service = small_case()
        run_replay_parallel(
            topology,
            timeline,
            flows,
            service,
            SMALL_SCHEMES,
            ReplayConfig(),
            max_workers=0,
            use_cache=False,
            cache_dir=str(tmp_path),
        )
        assert not list(tmp_path.glob("*/*.json"))

    def test_pool_failure_does_not_poison_cache(self, tmp_path):
        """A replay that needed retries+fallback still caches correct results."""
        topology, timeline, flows, service = small_case()

        def always_failing(max_workers, initializer, initargs):
            return FakeExecutor(initializer, initargs, fail=10_000)

        broken, _ = run_replay_parallel(
            topology,
            timeline,
            flows,
            service,
            SMALL_SCHEMES,
            ReplayConfig(),
            max_workers=2,
            use_cache=True,
            cache_dir=str(tmp_path),
            retries=0,
            executor_factory=always_failing,
        )
        assert_exactly_equal(serial_reference(), broken)
        warm, warm_t = run_replay_parallel(
            topology,
            timeline,
            flows,
            service,
            SMALL_SCHEMES,
            ReplayConfig(),
            max_workers=0,
            use_cache=True,
            cache_dir=str(tmp_path),
        )
        assert_exactly_equal(serial_reference(), warm)
        assert warm_t.shards_cached == warm_t.shards_total


@pytest.mark.slow
class TestRealProcessPool:
    def test_real_pool_matches_serial(self):
        """Smoke test through an actual ProcessPoolExecutor (pickling etc.)."""
        topology = build_reference_topology()
        flows = reference_flows()[:2]
        service = ServiceSpec()
        _events, timeline = generate_timeline(
            topology, Scenario(duration_s=0.005 * WEEK_S), seed=3
        )
        serial = run_replay(topology, timeline, flows, service, SMALL_SCHEMES)
        parallel, telemetry = run_replay_parallel(
            topology,
            timeline,
            flows,
            service,
            SMALL_SCHEMES,
            max_workers=2,
            use_cache=False,
        )
        assert_exactly_equal(serial, parallel)
        assert telemetry.shards_run == telemetry.shards_total
        assert telemetry.workers == 2


class TestRunReplayPassthrough:
    def test_run_replay_parallel_flag_matches_serial(self):
        topology, timeline, flows, service = small_case()
        serial = run_replay(topology, timeline, flows, service, SMALL_SCHEMES)
        routed = run_replay(
            topology,
            timeline,
            flows,
            service,
            SMALL_SCHEMES,
            parallel=True,
            max_workers=0,
            time_shards=2,
        )
        assert_exactly_equal(serial, routed)
