"""Shared fixtures: topologies, flows, and service specs."""

from __future__ import annotations

import pytest

from repro.core.graph import Topology
from repro.netmodel.topology import (
    FlowSpec,
    ServiceSpec,
    build_reference_topology,
    reference_flows,
)


@pytest.fixture(scope="session")
def reference_topology() -> Topology:
    """The paper's 12-node overlay (frozen, shared across tests)."""
    return build_reference_topology()


@pytest.fixture(scope="session")
def flows() -> tuple[FlowSpec, ...]:
    return reference_flows()


@pytest.fixture()
def service() -> ServiceSpec:
    return ServiceSpec()


@pytest.fixture()
def diamond() -> Topology:
    """A 4-node diamond: two node-disjoint S->T paths of different length.

        S -> A -> T   (total 2 + 2 = 4)
        S -> B -> T   (total 3 + 3 = 6)
    """
    topology = Topology("diamond")
    for node in ("S", "A", "B", "T"):
        topology.add_node(node)
    topology.add_link("S", "A", 2.0)
    topology.add_link("A", "T", 2.0)
    topology.add_link("S", "B", 3.0)
    topology.add_link("B", "T", 3.0)
    return topology.freeze()


@pytest.fixture()
def braided() -> Topology:
    """A 6-node graph with rich path structure for algorithm tests.

        S - A - B - T
        S - C - D - T
        A - C,  B - D   (cross links)
    """
    topology = Topology("braided")
    for node in ("S", "A", "B", "C", "D", "T"):
        topology.add_node(node)
    topology.add_link("S", "A", 1.0)
    topology.add_link("A", "B", 1.0)
    topology.add_link("B", "T", 1.0)
    topology.add_link("S", "C", 2.0)
    topology.add_link("C", "D", 2.0)
    topology.add_link("D", "T", 2.0)
    topology.add_link("A", "C", 1.0)
    topology.add_link("B", "D", 1.0)
    return topology.freeze()


@pytest.fixture()
def line() -> Topology:
    """A 3-node line: exactly one path, no redundancy available."""
    topology = Topology("line")
    for node in ("S", "M", "T"):
        topology.add_node(node)
    topology.add_link("S", "M", 1.0)
    topology.add_link("M", "T", 1.0)
    return topology.freeze()
