"""Condition timelines: compilation, composition, queries."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.netmodel.conditions import (
    CLEAN,
    ConditionTimeline,
    Contribution,
    LinkState,
)
from repro.util.validation import ValidationError

EDGE = ("S", "A")
OTHER = ("A", "T")


@pytest.fixture()
def topology(diamond):
    return diamond


def timeline(topology, *contributions, duration=100.0):
    return ConditionTimeline(topology, duration, contributions)


class TestLinkState:
    def test_clean(self):
        assert CLEAN.clean
        assert not LinkState(loss_rate=0.1).clean
        assert not LinkState(extra_latency_ms=5.0).clean

    def test_combine_losses_independent(self):
        combined = LinkState(loss_rate=0.5).combine(LinkState(loss_rate=0.5))
        assert combined.loss_rate == pytest.approx(0.75)

    def test_combine_latency_max(self):
        combined = LinkState(extra_latency_ms=10.0).combine(
            LinkState(extra_latency_ms=30.0)
        )
        assert combined.extra_latency_ms == 30.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            LinkState(loss_rate=1.5)
        with pytest.raises(ValidationError):
            LinkState(extra_latency_ms=-1.0)


class TestCompilation:
    def test_clean_everywhere_without_contributions(self, topology):
        tl = timeline(topology)
        assert tl.state_at(EDGE, 50.0) == CLEAN
        assert tl.degraded_at(50.0) == {}

    def test_single_interval(self, topology):
        state = LinkState(loss_rate=0.4)
        tl = timeline(topology, Contribution(EDGE, 10.0, 20.0, state))
        assert tl.state_at(EDGE, 5.0) == CLEAN
        assert tl.state_at(EDGE, 10.0) == state
        assert tl.state_at(EDGE, 19.999) == state
        assert tl.state_at(EDGE, 20.0) == CLEAN

    def test_overlapping_same_edge_compose(self, topology):
        tl = timeline(
            topology,
            Contribution(EDGE, 0.0, 20.0, LinkState(loss_rate=0.5)),
            Contribution(EDGE, 10.0, 30.0, LinkState(loss_rate=0.5)),
        )
        assert tl.state_at(EDGE, 5.0).loss_rate == pytest.approx(0.5)
        assert tl.state_at(EDGE, 15.0).loss_rate == pytest.approx(0.75)
        assert tl.state_at(EDGE, 25.0).loss_rate == pytest.approx(0.5)

    def test_distinct_edges_independent(self, topology):
        tl = timeline(
            topology,
            Contribution(EDGE, 0.0, 10.0, LinkState(loss_rate=0.3)),
            Contribution(OTHER, 5.0, 15.0, LinkState(loss_rate=0.6)),
        )
        assert tl.state_at(EDGE, 7.0).loss_rate == pytest.approx(0.3)
        assert tl.state_at(OTHER, 7.0).loss_rate == pytest.approx(0.6)

    def test_clipping_to_duration(self, topology):
        tl = timeline(
            topology,
            Contribution(EDGE, 90.0, 200.0, LinkState(loss_rate=1.0)),
        )
        assert tl.state_at(EDGE, 95.0).loss_rate == 1.0
        assert tl.edge_segments(EDGE)[-1][1] == 100.0

    def test_unknown_edge_rejected(self, topology):
        with pytest.raises(ValidationError):
            timeline(topology, Contribution(("S", "T"), 0.0, 1.0, CLEAN))

    def test_zero_length_contribution_rejected(self):
        with pytest.raises(ValidationError):
            Contribution(EDGE, 5.0, 5.0, CLEAN)

    def test_bad_duration(self, topology):
        with pytest.raises(ValidationError):
            ConditionTimeline(topology, 0.0)


class TestQueries:
    def test_latency_at_includes_inflation(self, topology):
        tl = timeline(
            topology, Contribution(EDGE, 0.0, 10.0, LinkState(extra_latency_ms=20.0))
        )
        base = topology.latency(*EDGE)
        assert tl.latency_at(EDGE, 5.0) == base + 20.0
        assert tl.latency_at(EDGE, 15.0) == base

    def test_loss_rates_at_excludes_latency_only(self, topology):
        tl = timeline(
            topology,
            Contribution(EDGE, 0.0, 10.0, LinkState(extra_latency_ms=20.0)),
            Contribution(OTHER, 0.0, 10.0, LinkState(loss_rate=0.2)),
        )
        assert tl.loss_rates_at(5.0) == {OTHER: pytest.approx(0.2)}

    def test_degraded_at(self, topology):
        tl = timeline(topology, Contribution(EDGE, 0.0, 10.0, LinkState(0.2)))
        assert set(tl.degraded_at(5.0)) == {EDGE}
        assert tl.degraded_at(15.0) == {}

    def test_out_of_range_time(self, topology):
        tl = timeline(topology)
        with pytest.raises(ValidationError):
            tl.state_at(EDGE, -1.0)
        with pytest.raises(ValidationError):
            tl.state_at(EDGE, 101.0)

    def test_change_times_sorted_and_bounded(self, topology):
        tl = timeline(
            topology,
            Contribution(EDGE, 10.0, 20.0, LinkState(0.5)),
            Contribution(OTHER, 15.0, 25.0, LinkState(0.5)),
        )
        changes = tl.change_times
        assert changes[0] == 0.0
        assert changes[-1] == 100.0
        assert list(changes) == sorted(changes)
        assert {10.0, 15.0, 20.0, 25.0} <= set(changes)

    def test_segments_cover_duration(self, topology):
        tl = timeline(topology, Contribution(EDGE, 10.0, 20.0, LinkState(0.5)))
        segments = list(tl.segments())
        assert segments[0][0] == 0.0
        assert segments[-1][1] == 100.0
        for (s1, e1), (s2, _e2) in zip(segments, segments[1:]):
            assert e1 == s2

    def test_recorded_edges(self, topology):
        tl = timeline(topology, Contribution(EDGE, 0.0, 5.0, LinkState(0.5)))
        assert tl.recorded_edges() == (EDGE,)

    def test_conditions_constant_within_segment(self, topology):
        tl = timeline(
            topology,
            Contribution(EDGE, 10.0, 20.0, LinkState(0.5)),
            Contribution(EDGE, 15.0, 30.0, LinkState(0.4)),
        )
        for start, end in tl.segments():
            probe_times = [start, (start + end) / 2, end - 1e-6]
            states = {tl.state_at(EDGE, t) for t in probe_times}
            assert len(states) == 1

    def test_to_contributions_round_trip(self, topology):
        tl = timeline(
            topology,
            Contribution(EDGE, 10.0, 20.0, LinkState(0.5)),
            Contribution(OTHER, 5.0, 25.0, LinkState(0.25)),
        )
        rebuilt = ConditionTimeline(topology, 100.0, tl.to_contributions())
        for t in (0.0, 7.0, 12.0, 22.0, 50.0):
            assert rebuilt.state_at(EDGE, t) == tl.state_at(EDGE, t)
            assert rebuilt.state_at(OTHER, t) == tl.state_at(OTHER, t)

    def test_latency_fn_at(self, topology):
        tl = timeline(
            topology, Contribution(EDGE, 0.0, 10.0, LinkState(extra_latency_ms=7.0))
        )
        fn = tl.latency_fn_at(5.0)
        assert fn(*EDGE) == topology.latency(*EDGE) + 7.0


class TestPropertyBased:
    @given(
        st.lists(
            st.tuples(
                st.floats(0, 90, allow_nan=False),
                st.floats(1, 30, allow_nan=False),
                st.floats(0.05, 1.0, allow_nan=False),
            ),
            max_size=8,
        )
    )
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_composition_never_exceeds_one(self, diamond, intervals):
        contributions = [
            Contribution(EDGE, start, start + length, LinkState(loss_rate=loss))
            for start, length, loss in intervals
        ]
        tl = ConditionTimeline(diamond, 120.0, contributions)
        for start, end in tl.segments():
            state = tl.state_at(EDGE, (start + end) / 2)
            assert 0.0 <= state.loss_rate <= 1.0


class TestDegradedViews:
    def test_matches_per_time_degraded_at(self, topology):
        tl = timeline(
            topology,
            Contribution(EDGE, 10.0, 30.0, LinkState(0.4)),
            Contribution(EDGE, 20.0, 50.0, LinkState(0.2, 15.0)),
            Contribution(OTHER, 25.0, 60.0, LinkState(0.0, 40.0)),
        )
        times = [0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 45.0, 55.0, 70.0]
        views, deltas = tl.degraded_views(times)
        assert len(views) == len(deltas) == len(times)
        for time_s, view in zip(times, views):
            assert view == tl.degraded_at(time_s)

    def test_deltas_are_exact(self, topology):
        tl = timeline(
            topology,
            Contribution(EDGE, 10.0, 30.0, LinkState(0.4)),
            Contribution(OTHER, 25.0, 60.0, LinkState(0.0, 40.0)),
        )
        times = [0.0, 12.0, 26.0, 35.0, 65.0]
        views, deltas = tl.degraded_views(times)
        previous: dict = {}
        for view, delta in zip(views, deltas):
            changed = {
                edge
                for edge in set(previous) | set(view)
                if previous.get(edge) != view.get(edge)
            }
            assert delta == changed
            previous = view

    def test_change_and_revert_between_queries_nets_out(self, topology):
        # A blip that starts and ends entirely between two query times
        # leaves both views identical; the delta must be empty, not the
        # union of the intermediate transitions.
        tl = timeline(
            topology, Contribution(EDGE, 20.0, 25.0, LinkState(0.8))
        )
        views, deltas = tl.degraded_views([10.0, 30.0])
        assert views == [{}, {}]
        assert deltas == [frozenset(), frozenset()]

    def test_negative_times_are_clean(self, topology):
        tl = timeline(topology, Contribution(EDGE, 0.0, 30.0, LinkState(0.8)))
        views, deltas = tl.degraded_views([-5.0, -1.0, 0.0])
        assert views[0] == {}
        assert views[1] == {}
        assert views[2] == tl.degraded_at(0.0)
        assert deltas[2] == frozenset({EDGE})

    def test_rejects_decreasing_times(self, topology):
        tl = timeline(topology)
        with pytest.raises(ValidationError, match="non-decreasing"):
            tl.degraded_views([10.0, 5.0])

    def test_repeated_time_empty_delta(self, topology):
        tl = timeline(topology, Contribution(EDGE, 0.0, 30.0, LinkState(0.8)))
        views, deltas = tl.degraded_views([10.0, 10.0])
        assert views[0] == views[1]
        assert deltas[1] == frozenset()

    @given(
        query_times=st.lists(
            st.floats(-10.0, 110.0, allow_nan=False), min_size=1, max_size=12
        ).map(sorted)
    )
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_walk_always_matches_point_queries(self, diamond, query_times):
        tl = ConditionTimeline(
            diamond,
            100.0,
            [
                Contribution(EDGE, 10.0, 30.0, LinkState(0.4)),
                Contribution(EDGE, 20.0, 50.0, LinkState(0.2, 15.0)),
                Contribution(OTHER, 25.0, 60.0, LinkState(0.0, 40.0)),
                Contribution(OTHER, 80.0, 95.0, LinkState(1.0)),
            ],
        )
        views, _deltas = tl.degraded_views(query_times)
        for time_s, view in zip(query_times, views):
            if 0.0 <= time_s <= 100.0:
                assert view == tl.degraded_at(time_s)
            else:
                # degraded_at rejects out-of-range queries; the walk
                # reports them as clean instead.
                assert view == {}
