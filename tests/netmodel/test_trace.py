"""Trace persistence: JSONL round trips and validation."""

from __future__ import annotations

import json

import pytest

from repro.netmodel.scenarios import DAY_S, Scenario, generate_events
from repro.netmodel.trace import load_timeline, read_trace, write_trace

SHORT = Scenario(duration_s=DAY_S)


@pytest.fixture()
def events(reference_topology):
    return generate_events(reference_topology, SHORT, seed=21)


class TestRoundTrip:
    def test_events_identical(self, tmp_path, reference_topology, events):
        path = tmp_path / "trace.jsonl"
        write_trace(path, reference_topology, SHORT.duration_s, events)
        duration, loaded = read_trace(path, reference_topology)
        assert duration == SHORT.duration_s
        assert loaded == events

    def test_timeline_rebuilds(self, tmp_path, reference_topology, events):
        path = tmp_path / "trace.jsonl"
        write_trace(path, reference_topology, SHORT.duration_s, events)
        loaded_events, timeline = load_timeline(path, reference_topology)
        assert loaded_events == events
        assert timeline.duration_s == SHORT.duration_s

    def test_empty_trace(self, tmp_path, reference_topology):
        path = tmp_path / "empty.jsonl"
        write_trace(path, reference_topology, 100.0, [])
        duration, loaded = read_trace(path, reference_topology)
        assert duration == 100.0
        assert loaded == []

    def test_file_is_line_oriented_json(self, tmp_path, reference_topology, events):
        path = tmp_path / "trace.jsonl"
        write_trace(path, reference_topology, SHORT.duration_s, events)
        with open(path) as handle:
            for line in handle:
                json.loads(line)


class TestValidation:
    def test_wrong_topology_rejected(self, tmp_path, reference_topology, diamond, events):
        path = tmp_path / "trace.jsonl"
        write_trace(path, reference_topology, SHORT.duration_s, events)
        with pytest.raises(ValueError, match="different topology"):
            read_trace(path, diamond)

    def test_empty_file_rejected(self, tmp_path, reference_topology):
        path = tmp_path / "empty"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_trace(path, reference_topology)

    def test_wrong_format_rejected(self, tmp_path, reference_topology):
        path = tmp_path / "other"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(ValueError, match="not a repro-dgraphs"):
            read_trace(path, reference_topology)

    def test_wrong_version_rejected(self, tmp_path, reference_topology):
        header = {
            "format": "repro-dgraphs-trace",
            "version": 999,
            "topology": "x",
            "nodes": list(reference_topology.nodes),
            "duration_s": 1.0,
        }
        path = tmp_path / "v999"
        path.write_text(json.dumps(header) + "\n")
        with pytest.raises(ValueError, match="version"):
            read_trace(path, reference_topology)

    def test_malformed_event_line(self, tmp_path, reference_topology):
        header = {
            "format": "repro-dgraphs-trace",
            "version": 1,
            "topology": reference_topology.name,
            "nodes": list(reference_topology.nodes),
            "duration_s": 10.0,
        }
        path = tmp_path / "bad"
        path.write_text(json.dumps(header) + "\n" + '{"kind": "node"}\n')
        with pytest.raises(ValueError, match="malformed"):
            read_trace(path, reference_topology)

    def test_bad_duration_rejected_on_write(self, tmp_path, reference_topology):
        from repro.util.validation import ValidationError

        with pytest.raises(ValidationError):
            write_trace(tmp_path / "x", reference_topology, 0.0, [])

    def test_blank_lines_skipped(self, tmp_path, reference_topology, events):
        path = tmp_path / "trace.jsonl"
        write_trace(path, reference_topology, SHORT.duration_s, events[:2])
        with open(path, "a") as handle:
            handle.write("\n")
        _duration, loaded = read_trace(path, reference_topology)
        assert loaded == events[:2]
