"""Synthetic topology generation."""

from __future__ import annotations

import pytest

from repro.core.algorithms import adjacency_from_topology
from repro.core.algorithms.maxflow import max_disjoint_path_count
from repro.netmodel.topologies import (
    coast_to_coast_flows,
    synthetic_continental_topology,
)
from repro.util.validation import ValidationError


class TestGeneration:
    @pytest.mark.parametrize("num_sites", [6, 12, 24])
    def test_site_count(self, num_sites):
        topology = synthetic_continental_topology(num_sites, seed=3)
        assert topology.num_nodes == num_sites
        assert topology.frozen

    def test_deterministic(self):
        a = synthetic_continental_topology(10, seed=9)
        b = synthetic_continental_topology(10, seed=9)
        assert a.edges == b.edges

    def test_seed_changes_layout(self):
        a = synthetic_continental_topology(10, seed=1)
        b = synthetic_continental_topology(10, seed=2)
        assert a.edges != b.edges or a.node_attributes("S00") != b.node_attributes(
            "S00"
        )

    def test_min_degree_respected(self):
        topology = synthetic_continental_topology(15, seed=4, min_degree=3)
        for node in topology.nodes:
            assert len(topology.out_neighbors(node)) >= 3

    def test_too_few_sites_rejected(self):
        with pytest.raises(ValidationError):
            synthetic_continental_topology(3)

    def test_links_bidirectional_and_symmetric(self):
        topology = synthetic_continental_topology(10, seed=5)
        for u, v in topology.edges:
            assert topology.has_edge(v, u)
            assert topology.latency(u, v) == topology.latency(v, u)


class TestBiconnectivity:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_two_disjoint_paths_everywhere(self, seed):
        """The generator's contract: every pair admits two node-disjoint
        paths, so every routing scheme in the paper is deployable."""
        topology = synthetic_continental_topology(12, seed=seed)
        adjacency = adjacency_from_topology(topology)
        nodes = topology.nodes
        # Sampling all pairs is O(n^2) maxflows; spot-check a spread.
        for i in range(0, len(nodes), 3):
            for j in range(1, len(nodes), 4):
                if nodes[i] == nodes[j]:
                    continue
                assert (
                    max_disjoint_path_count(adjacency, nodes[i], nodes[j]) >= 2
                ), (seed, nodes[i], nodes[j])


class TestFlows:
    def test_requested_count(self):
        topology = synthetic_continental_topology(16, seed=6)
        flows = coast_to_coast_flows(topology, 8)
        assert len(flows) == 8
        assert len(set(flows)) == 8

    def test_east_to_west_direction(self):
        topology = synthetic_continental_topology(16, seed=6)
        for flow in coast_to_coast_flows(topology, 6):
            source_lon = topology.node_attributes(flow.source)["lon"]
            destination_lon = topology.node_attributes(flow.destination)["lon"]
            assert source_lon > destination_lon  # east of destination

    def test_small_topology(self):
        topology = synthetic_continental_topology(4, seed=7)
        flows = coast_to_coast_flows(topology, 2)
        assert 1 <= len(flows) <= 2
