"""Calibration machinery."""

from __future__ import annotations

import pytest

from repro.netmodel.calibration import (
    PAPER_TARGET,
    CalibrationPoint,
    CalibrationTarget,
    evaluate_scenario,
    fit_error,
)
from repro.netmodel.scenarios import DAY_S, Scenario
from repro.netmodel.topology import ServiceSpec, reference_flows


class TestFitError:
    def test_inside_band_is_zero(self):
        point = CalibrationPoint(0.45, 0.70, 0.995, 0.025, seeds=1)
        assert fit_error(point) == pytest.approx(0.0)

    def test_band_deviation_counts(self):
        point = CalibrationPoint(0.55, 0.70, 0.995, 0.025, seeds=1)
        assert fit_error(point) == pytest.approx(0.10)

    def test_one_sided_bounds(self):
        # Better-than-minimum targeted coverage is free...
        good = CalibrationPoint(0.45, 0.70, 1.0, 0.0, seeds=1)
        assert fit_error(good) == pytest.approx(0.0)
        # ...but violating it costs.
        bad = CalibrationPoint(0.45, 0.70, 0.90, 0.0, seeds=1)
        assert fit_error(bad) == pytest.approx(0.09)

    def test_cost_overhead_bound(self):
        expensive = CalibrationPoint(0.45, 0.70, 0.995, 0.10, seeds=1)
        assert fit_error(expensive) == pytest.approx(0.06)

    def test_custom_target(self):
        target = CalibrationTarget(0.5, 0.5, 0.5, 0.5)
        point = CalibrationPoint(0.5, 0.5, 0.6, 0.1, seeds=1)
        assert fit_error(point, target) == 0.0


class TestEvaluateScenario:
    def test_measures_default_scenario(self, reference_topology):
        """A short sanity run: metrics are well-formed and ordered."""
        point = evaluate_scenario(
            reference_topology,
            Scenario(duration_s=1.0 * DAY_S),
            reference_flows()[:6],
            ServiceSpec(),
            seeds=(7,),
        )
        assert point.seeds == 1
        assert point.static_two_coverage <= point.targeted_coverage
        assert point.dynamic_two_coverage <= point.targeted_coverage
        assert -0.05 < point.targeted_cost_overhead < 0.25
        percentages = point.as_percentages()
        assert set(percentages) == {
            "static-two-disjoint",
            "dynamic-two-disjoint",
            "targeted",
            "cost-overhead",
        }

    def test_empty_seeds_rejected(self, reference_topology):
        with pytest.raises(Exception):
            evaluate_scenario(
                reference_topology,
                Scenario(duration_s=DAY_S),
                reference_flows()[:1],
                ServiceSpec(),
                seeds=(),
            )
