"""Scenario generation: determinism, structure, calibration knobs."""

from __future__ import annotations

import pytest

from repro.netmodel.events import EventKind
from repro.netmodel.scenarios import DAY_S, Scenario, generate_events, generate_timeline
from repro.util.validation import ValidationError

SHORT = Scenario(duration_s=2 * DAY_S)


class TestDeterminism:
    def test_same_seed_same_events(self, reference_topology):
        a = generate_events(reference_topology, SHORT, seed=3)
        b = generate_events(reference_topology, SHORT, seed=3)
        assert a == b

    def test_different_seed_differs(self, reference_topology):
        a = generate_events(reference_topology, SHORT, seed=3)
        b = generate_events(reference_topology, SHORT, seed=4)
        assert a != b


class TestStructure:
    def test_events_sorted_and_in_range(self, reference_topology):
        events = generate_events(reference_topology, SHORT, seed=1)
        starts = [event.start_s for event in events]
        assert starts == sorted(starts)
        for event in events:
            assert 0.0 <= event.start_s < SHORT.duration_s

    def test_all_kinds_present(self, reference_topology):
        events = generate_events(
            reference_topology, Scenario(duration_s=7 * DAY_S), seed=1
        )
        kinds = {event.kind for event in events}
        assert kinds == {
            EventKind.NODE,
            EventKind.LINK,
            EventKind.LATENCY,
            EventKind.BACKGROUND,
        }

    def test_bursts_within_event_span(self, reference_topology):
        events = generate_events(reference_topology, SHORT, seed=2)
        for event in events:
            for burst in event.bursts:
                assert event.start_s <= burst.start_s
                assert burst.end_s <= event.end_s + 1e-9

    def test_node_event_edges_adjacent(self, reference_topology):
        events = generate_events(reference_topology, SHORT, seed=2)
        for event in events:
            if event.kind is EventKind.NODE:
                for edge in event.affected_edges:
                    assert event.location in edge

    def test_link_event_single_physical_link(self, reference_topology):
        events = generate_events(reference_topology, SHORT, seed=2)
        for event in events:
            if event.kind is EventKind.LINK:
                physical = {frozenset(edge) for edge in event.affected_edges}
                assert len(physical) == 1

    def test_latency_events_inflate_not_lose(self, reference_topology):
        events = generate_events(reference_topology, SHORT, seed=2)
        for event in events:
            if event.kind is EventKind.LATENCY:
                for burst in event.bursts:
                    for degradation in burst.degradations:
                        assert degradation.state.loss_rate == 0.0
                        assert degradation.state.extra_latency_ms > 0.0

    def test_background_below_detection_threshold(self, reference_topology):
        events = generate_events(reference_topology, SHORT, seed=2)
        for event in events:
            if event.kind is EventKind.BACKGROUND:
                for burst in event.bursts:
                    for degradation in burst.degradations:
                        assert degradation.state.loss_rate < 0.02

    def test_durations_capped(self, reference_topology):
        scenario = Scenario(duration_s=7 * DAY_S, event_duration_cap_s=300.0)
        events = generate_events(reference_topology, scenario, seed=5)
        assert all(event.duration_s <= 300.0 for event in events)


class TestRates:
    def test_rate_scales_event_count(self, reference_topology):
        low = Scenario(duration_s=14 * DAY_S, node_event_rate_per_day=1.0)
        high = Scenario(duration_s=14 * DAY_S, node_event_rate_per_day=10.0)
        count = lambda scenario: sum(
            1
            for event in generate_events(reference_topology, scenario, seed=6)
            if event.kind is EventKind.NODE
        )
        assert count(high) > count(low) * 3

    def test_zero_rates_empty(self, reference_topology):
        scenario = Scenario(
            duration_s=DAY_S,
            node_event_rate_per_day=0.0,
            link_event_rate_per_day=0.0,
            latency_event_rate_per_day=0.0,
            background_event_rate_per_day=0.0,
        )
        assert generate_events(reference_topology, scenario, seed=1) == []

    def test_poisson_count_roughly_matches_rate(self, reference_topology):
        scenario = Scenario(duration_s=28 * DAY_S, link_event_rate_per_day=6.0)
        events = [
            e
            for e in generate_events(reference_topology, scenario, seed=8)
            if e.kind is EventKind.LINK
        ]
        expected = 6.0 * 28
        assert 0.6 * expected < len(events) < 1.4 * expected


class TestSustainedMode:
    def test_sustained_hits_all_links(self, reference_topology):
        scenario = Scenario(
            duration_s=14 * DAY_S,
            node_sustained_probability=1.0,
            sustained_edge_clean_probability=0.0,
        )
        events = [
            e
            for e in generate_events(reference_topology, scenario, seed=9)
            if e.kind is EventKind.NODE
        ]
        assert events
        for event in events:
            adjacent = set(reference_topology.adjacent_edges(event.location))
            for burst in event.bursts:
                assert {d.edge for d in burst.degradations} == adjacent

    def test_sustained_phases_contiguous(self, reference_topology):
        scenario = Scenario(duration_s=7 * DAY_S, node_sustained_probability=1.0)
        events = [
            e
            for e in generate_events(reference_topology, scenario, seed=9)
            if e.kind is EventKind.NODE
        ]
        for event in events:
            for first, second in zip(event.bursts, event.bursts[1:]):
                assert second.start_s == pytest.approx(first.end_s)


class TestValidation:
    def test_bad_duration(self):
        with pytest.raises(ValidationError):
            Scenario(duration_s=0.0)

    def test_bad_rate(self):
        with pytest.raises(ValidationError):
            Scenario(node_event_rate_per_day=-1.0)

    def test_bad_loss_range(self):
        with pytest.raises(ValidationError):
            Scenario(partial_loss_low=0.9, partial_loss_high=0.5)

    def test_requires_frozen_topology(self):
        from repro.core.graph import Topology

        topology = Topology()
        topology.add_node("A")
        topology.add_node("B")
        topology.add_link("A", "B", 1.0)
        with pytest.raises(ValidationError):
            generate_events(topology, SHORT, seed=1)


class TestTimelineCompilation:
    def test_timeline_contains_event_conditions(self, reference_topology):
        events, tl = generate_timeline(reference_topology, SHORT, seed=10)
        loss_events = [
            e for e in events if e.kind in (EventKind.NODE, EventKind.LINK)
        ]
        assert loss_events
        event = loss_events[0]
        burst = event.bursts[0]
        probe = burst.start_s + burst.duration_s / 2
        degraded = tl.degraded_at(probe)
        for degradation in burst.degradations:
            assert degradation.edge in degraded

    def test_duration_matches_scenario(self, reference_topology):
        _events, tl = generate_timeline(reference_topology, SHORT, seed=10)
        assert tl.duration_s == SHORT.duration_s
