"""Geography and fiber-latency model."""

from __future__ import annotations

import pytest

from repro.netmodel.geo import fiber_latency_ms, great_circle_km
from repro.util.validation import ValidationError

NYC = (40.71, -74.01)
LAX = (34.05, -118.24)
LON = (51.51, -0.13)


class TestGreatCircle:
    def test_zero_distance(self):
        assert great_circle_km(*NYC, *NYC) == 0.0

    def test_nyc_lax(self):
        distance = great_circle_km(*NYC, *LAX)
        assert 3900 < distance < 4000  # ~3,940 km

    def test_nyc_london(self):
        distance = great_circle_km(*NYC, *LON)
        assert 5500 < distance < 5650  # ~5,570 km

    def test_symmetric(self):
        assert great_circle_km(*NYC, *LAX) == pytest.approx(
            great_circle_km(*LAX, *NYC)
        )

    def test_latitude_bounds(self):
        with pytest.raises(ValidationError):
            great_circle_km(91.0, 0.0, 0.0, 0.0)

    def test_longitude_bounds(self):
        with pytest.raises(ValidationError):
            great_circle_km(0.0, 181.0, 0.0, 0.0)


class TestFiberLatency:
    def test_transcontinental_one_way(self):
        latency = fiber_latency_ms(*NYC, *LAX)
        # Published NYC<->LA RTTs are ~60-70 ms; one way ~30-35 ms.
        assert 20.0 < latency < 30.0

    def test_transatlantic(self):
        latency = fiber_latency_ms(*NYC, *LON)
        assert 28.0 < latency < 40.0

    def test_includes_hop_overhead(self):
        assert fiber_latency_ms(*NYC, *NYC) == 0.5

    def test_monotone_in_distance(self):
        assert fiber_latency_ms(*NYC, *LON) > fiber_latency_ms(*NYC, *LAX) * 0.9
