"""Same-cause netting policy: max loss, additive latency, no double-count."""

from __future__ import annotations

from repro.netmodel.conditions import Contribution, LinkState
from repro.netmodel.events import net_contributions, net_states

EDGE = ("a", "b")


def _c(start: float, end: float, loss: float = 0.0, extra: float = 0.0):
    return Contribution(
        EDGE, start, end, LinkState(loss_rate=loss, extra_latency_ms=extra)
    )


class TestNetStates:
    def test_loss_nets_as_max_not_independent_composition(self):
        state = net_states(
            [LinkState(loss_rate=0.5), LinkState(loss_rate=0.5)]
        )
        # One physical cause reported twice is still one cause: 0.5, not
        # the independent-composition 0.75.
        assert state.loss_rate == 0.5

    def test_latency_nets_additively(self):
        state = net_states(
            [
                LinkState(extra_latency_ms=10.0),
                LinkState(extra_latency_ms=15.0),
            ]
        )
        assert state.extra_latency_ms == 25.0

    def test_empty_is_clean(self):
        assert net_states([]).clean


class TestNetContributions:
    def test_empty_input(self):
        assert net_contributions([]) == []

    def test_disjoint_windows_pass_through(self):
        result = net_contributions([_c(0, 10, loss=0.2), _c(20, 30, loss=0.3)])
        assert [(c.start_s, c.end_s) for c in result] == [(0, 10), (20, 30)]
        assert [c.state.loss_rate for c in result] == [0.2, 0.3]

    def test_overlap_splits_into_netted_segments(self):
        result = net_contributions(
            [_c(0, 10, extra=10.0), _c(5, 15, extra=20.0)]
        )
        assert [(c.start_s, c.end_s, c.state.extra_latency_ms) for c in result] == [
            (0, 5, 10.0),
            (5, 10, 30.0),
            (10, 15, 20.0),
        ]

    def test_full_overlap_nets_loss_as_max(self):
        result = net_contributions([_c(0, 10, loss=1.0), _c(2, 8, loss=1.0)])
        # A staggered double-report of the same outage must not stack:
        # one window, full loss, spanning the union.
        assert [(c.start_s, c.end_s, c.state.loss_rate) for c in result] == [
            (0, 10, 1.0)
        ]

    def test_zero_gap_identical_states_merge(self):
        result = net_contributions([_c(0, 10, loss=0.5), _c(10, 20, loss=0.5)])
        assert [(c.start_s, c.end_s) for c in result] == [(0, 20)]

    def test_zero_gap_different_states_stay_separate(self):
        result = net_contributions([_c(0, 10, loss=0.5), _c(10, 20, loss=0.6)])
        assert [(c.start_s, c.end_s) for c in result] == [(0, 10), (10, 20)]

    def test_order_independent(self):
        windows = [
            _c(0, 10, loss=0.3, extra=5.0),
            _c(5, 15, extra=7.0),
            _c(15, 20, loss=0.3),
        ]
        assert net_contributions(windows) == net_contributions(windows[::-1])

    def test_edges_net_independently(self):
        other = Contribution(("b", "a"), 0, 10, LinkState(loss_rate=0.4))
        result = net_contributions([_c(0, 10, loss=0.2), other])
        by_edge = {c.edge: c.state.loss_rate for c in result}
        assert by_edge == {EDGE: 0.2, ("b", "a"): 0.4}
        # Output sorted by (edge, start).
        assert [c.edge for c in result] == sorted(c.edge for c in result)
