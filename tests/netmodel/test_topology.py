"""The reference overlay and service specification."""

from __future__ import annotations

import pytest

from repro.core.algorithms import adjacency_from_topology
from repro.core.algorithms.maxflow import max_disjoint_path_count
from repro.core.algorithms.paths import shortest_path
from repro.netmodel.topology import (
    EAST_SITES,
    WEST_SITES,
    FlowSpec,
    ServiceSpec,
    build_reference_topology,
    reference_flows,
)
from repro.util.validation import ValidationError


class TestReferenceTopology:
    def test_twelve_nodes(self, reference_topology):
        assert reference_topology.num_nodes == 12

    def test_frozen_and_valid(self, reference_topology):
        assert reference_topology.frozen
        reference_topology.validate()

    def test_every_node_has_degree_two_plus(self, reference_topology):
        for node in reference_topology.nodes:
            assert len(reference_topology.out_neighbors(node)) >= 2, node

    def test_biconnected_for_flows(self, reference_topology, flows):
        adjacency = adjacency_from_topology(reference_topology)
        for flow in flows:
            assert (
                max_disjoint_path_count(adjacency, flow.source, flow.destination)
                >= 2
            )

    def test_coast_to_coast_within_deadline(self, reference_topology, flows):
        """Claim C1: every flow's shortest path is well under 65 ms."""
        adjacency = adjacency_from_topology(reference_topology)
        for flow in flows:
            _path, latency = shortest_path(adjacency, flow.source, flow.destination)
            assert latency < 45.0, flow.name

    def test_latencies_symmetric(self, reference_topology):
        for u, v in reference_topology.edges:
            assert reference_topology.latency(u, v) == reference_topology.latency(
                v, u
            )

    def test_build_is_deterministic(self):
        a = build_reference_topology()
        b = build_reference_topology()
        assert a.edges == b.edges
        for edge in a.edges:
            assert a.latency(*edge) == b.latency(*edge)


class TestFlows:
    def test_sixteen_flows(self, flows):
        assert len(flows) == 16

    def test_east_to_west(self, flows):
        for flow in flows:
            assert flow.source in EAST_SITES
            assert flow.destination in WEST_SITES

    def test_unique(self, flows):
        assert len({flow.name for flow in flows}) == 16

    def test_flow_name(self):
        assert FlowSpec("NYC", "SJC").name == "NYC->SJC"

    def test_flow_same_endpoints_rejected(self):
        with pytest.raises(ValidationError):
            FlowSpec("NYC", "NYC")

    def test_reference_flows_fresh_tuple(self):
        assert reference_flows() == reference_flows()


class TestServiceSpec:
    def test_defaults_match_paper(self):
        service = ServiceSpec()
        assert service.deadline_ms == 65.0
        assert service.rtt_budget_ms == 130.0
        assert service.send_interval_ms == 10.0
        assert service.packets_per_second == 100.0

    def test_deadline_must_fit_rtt(self):
        ServiceSpec(deadline_ms=100.0)  # within the 130 ms budget
        with pytest.raises(ValidationError):
            ServiceSpec(deadline_ms=140.0)  # exceeds it

    def test_positive_fields(self):
        with pytest.raises(ValidationError):
            ServiceSpec(deadline_ms=0.0)
        with pytest.raises(ValidationError):
            ServiceSpec(send_interval_ms=-1.0)
