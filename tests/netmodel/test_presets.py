"""Scenario presets."""

from __future__ import annotations

import pytest

from repro.netmodel.presets import (
    SCENARIO_PRESETS,
    preset_names,
    preset_scenario,
)
from repro.netmodel.scenarios import WEEK_S, generate_events
from repro.netmodel.events import EventKind
from repro.util.validation import ValidationError


class TestPresetLookup:
    def test_all_names_resolve(self):
        for name in preset_names():
            assert preset_scenario(name).duration_s == 4 * WEEK_S

    def test_unknown_name_rejected(self):
        with pytest.raises(ValidationError, match="unknown scenario preset"):
            preset_scenario("hurricane")

    def test_duration_override(self):
        scenario = preset_scenario("calm", duration_s=WEEK_S)
        assert scenario.duration_s == WEEK_S
        # Preset-specific knobs survive the rebuild.
        assert scenario.node_event_rate_per_day == SCENARIO_PRESETS[
            "calm"
        ].node_event_rate_per_day

    def test_expected_presets_exist(self):
        assert {"default", "calm", "stormy", "endpoint-heavy", "middle-heavy"} <= set(
            preset_names()
        )


class TestPresetCharacter:
    def count(self, reference_topology, name, kind):
        scenario = preset_scenario(name, duration_s=WEEK_S)
        events = generate_events(reference_topology, scenario, seed=5)
        return sum(1 for event in events if event.kind is kind)

    def test_stormy_busier_than_calm(self, reference_topology):
        stormy = self.count(reference_topology, "stormy", EventKind.NODE)
        calm = self.count(reference_topology, "calm", EventKind.NODE)
        assert stormy > 2 * calm

    def test_endpoint_heavy_mix(self, reference_topology):
        nodes = self.count(reference_topology, "endpoint-heavy", EventKind.NODE)
        links = self.count(reference_topology, "endpoint-heavy", EventKind.LINK)
        assert nodes > 3 * links

    def test_middle_heavy_mix(self, reference_topology):
        nodes = self.count(reference_topology, "middle-heavy", EventKind.NODE)
        links = self.count(reference_topology, "middle-heavy", EventKind.LINK)
        assert links > 3 * nodes
