"""Tracer spans, open/close correlation, and the flight recorder."""

from __future__ import annotations

import json

import pytest

from repro.obs.trace import (
    NULL_TRACER,
    FlightRecorder,
    Span,
    TraceContext,
    Tracer,
    spans_to_relative,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestSpans:
    def test_complete_span(self):
        tracer = Tracer(FakeClock())
        span = tracer.complete("hop", "net", 1.0, 2.0, edge="a->b")
        assert span.duration_s == 1.0
        assert span.args == {"edge": "a->b"}

    def test_instant_is_zero_duration(self):
        clock = FakeClock()
        clock.now = 3.0
        tracer = Tracer(clock)
        span = tracer.instant("drop", "net")
        assert span.start_s == span.end_s == 3.0

    def test_open_close_keyed(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        tracer.open(("pkt", "f", 1), "packet.journey", "data")
        clock.now = 0.5
        closed = tracer.close(("pkt", "f", 1), delivered=True)
        assert closed is not None
        assert closed.end_s == 0.5
        assert closed.args["delivered"] is True
        assert tracer.close(("pkt", "f", 1)) is None

    def test_parent_id_links_children(self):
        tracer = Tracer(FakeClock())
        parent = tracer.open(("pkt", "f", 1), "packet.journey", "data")
        child = tracer.complete(
            "hop", "net", 0.0, 0.1, parent_id=tracer.parent_id(("pkt", "f", 1))
        )
        assert child.parent_id == parent.span_id

    def test_context_merged_into_args(self):
        tracer = Tracer(FakeClock())
        tracer.context = {"scheme": "targeted"}
        span = tracer.instant("reroute", "routing", flow="f")
        assert span.args == {"scheme": "targeted", "flow": "f"}

    def test_finalize_closes_open_spans(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        tracer.open(("pkt", "f", 1), "packet.journey", "data")
        clock.now = 2.0
        assert tracer.finalize() == 1
        span = tracer.spans[-1]
        assert span.end_s == 2.0
        assert span.args["unfinished"] is True

    def test_max_spans_bound(self):
        tracer = Tracer(FakeClock(), max_spans=2)
        for _ in range(5):
            tracer.instant("x", "t")
        assert len(tracer.spans) == 2
        assert tracer.dropped == 3

    def test_span_round_trips_through_dict(self):
        span = Span(7, "hop", "net", 1.0, 2.0, {"edge": "a->b"}, parent_id=3)
        clone = Span.from_dict(span.to_dict())
        assert clone.to_dict() == span.to_dict()


class TestFlightRecorder:
    def test_ring_keeps_last_n(self):
        recorder = FlightRecorder(capacity=3)
        tracer = Tracer(FakeClock(), recorder=recorder)
        for index in range(10):
            tracer.instant("e", "t", index=index)
        snapshot = recorder.trigger("test")
        indices = [record["args"]["index"] for record in snapshot["spans"]]
        assert indices == [7, 8, 9]

    def test_auto_dump_on_trigger(self, tmp_path):
        recorder = FlightRecorder(capacity=4, dump_dir=tmp_path)
        tracer = Tracer(FakeClock(), recorder=recorder)
        tracer.instant("e", "t")
        recorder.trigger("invariant fired", at_s=1.5)
        dumped = json.loads((tmp_path / "flight_1.json").read_text())
        assert dumped["reason"] == "invariant fired"
        assert dumped["at_s"] == 1.5
        assert len(dumped["spans"]) == 1

    def test_dump_pending_writes_only_new(self, tmp_path):
        recorder = FlightRecorder(capacity=4)
        recorder.trigger("one")
        recorder.trigger("two")
        written = recorder.dump_pending(tmp_path)
        assert [path.name for path in written] == [
            "flight_1.json",
            "flight_2.json",
        ]
        assert recorder.dump_pending(tmp_path) == []

    def test_snapshot_cap(self):
        recorder = FlightRecorder(capacity=2)
        for _ in range(FlightRecorder.MAX_SNAPSHOTS + 5):
            recorder.trigger("again")
        assert len(recorder.snapshots) == FlightRecorder.MAX_SNAPSHOTS
        assert recorder.triggers == FlightRecorder.MAX_SNAPSHOTS + 5


class TestTraceContext:
    def test_round_trips_through_wire(self):
        context = TraceContext("abcdef0123456789", parent_span_id=7)
        clone = TraceContext.from_wire(context.to_wire())
        assert clone == context

    def test_wire_without_parent(self):
        clone = TraceContext.from_wire({"trace_id": "deadbeef"})
        assert clone.trace_id == "deadbeef"
        assert clone.parent_span_id is None

    def test_wire_rejects_empty_trace_id(self):
        with pytest.raises(Exception, match="trace_id"):
            TraceContext.from_wire({"trace_id": ""})

    def test_tracer_hands_out_its_own_identity(self):
        tracer = Tracer(FakeClock(), trace_id="feedface00000000")
        context = tracer.trace_context(parent_span_id=3)
        assert context.trace_id == "feedface00000000"
        assert context.parent_span_id == 3

    def test_trace_id_generated_when_unset(self):
        tracer = Tracer(FakeClock())
        assert len(tracer.trace_id) == 16


class TestGraft:
    def _worker_records(self):
        """Simulate the worker side: local tracer, relative records."""
        clock = FakeClock()
        clock.now = 100.0  # worker clock offset unrelated to parent's
        worker = Tracer(clock, trace_id="feedface00000000")
        worker.context = {"trace_id": worker.trace_id}
        root = worker.open("shard", "worker.shard", "exec")
        clock.now = 100.25
        worker.complete(
            "shard.policy", "exec", 100.0, 100.25, parent_id=root.span_id
        )
        clock.now = 100.5
        worker.close("shard")
        return spans_to_relative(worker.spans, base_s=100.0)

    def test_relative_records_are_offsets_from_base(self):
        records = self._worker_records()
        starts = sorted(record["start_s"] for record in records)
        assert starts == [0.0, 0.0]
        assert max(record["end_s"] for record in records) == 0.5

    def test_graft_rebases_and_reparents(self):
        records = self._worker_records()
        clock = FakeClock()
        clock.now = 7.0
        parent = Tracer(clock)
        anchor = parent.complete("shard", "exec", 6.5, 7.0)
        grafted = parent.graft(records, base_s=6.5, parent_id=anchor.span_id)
        assert grafted == len(records)
        adopted = {span.name: span for span in parent.spans[1:]}
        # Orphan worker root hangs under the parent-side anchor span.
        assert adopted["worker.shard"].parent_id == anchor.span_id
        assert adopted["worker.shard"].start_s == 6.5
        assert adopted["worker.shard"].end_s == 7.0
        # Internal worker structure is preserved through the id remap.
        assert (
            adopted["shard.policy"].parent_id == adopted["worker.shard"].span_id
        )
        assert adopted["shard.policy"].end_s == 6.75
        # Remapped ids join the parent tracer's own sequence, no collisions.
        ids = [span.span_id for span in parent.spans]
        assert len(ids) == len(set(ids))

    def test_graft_respects_max_spans(self):
        parent = Tracer(FakeClock(), max_spans=1)
        parent.instant("x", "t")
        grafted = parent.graft(self._worker_records(), base_s=0.0)
        assert grafted == 0
        assert parent.dropped == 2

    def test_grafted_spans_feed_the_recorder(self):
        recorder = FlightRecorder(capacity=8)
        parent = Tracer(FakeClock(), recorder=recorder)
        parent.graft(self._worker_records(), base_s=0.0)
        snapshot = recorder.trigger("test")
        names = {record["name"] for record in snapshot["spans"]}
        assert names == {"worker.shard", "shard.policy"}


class TestNullTracer:
    def test_everything_is_a_noop(self):
        assert NULL_TRACER.instant("x", "t") is None
        assert NULL_TRACER.complete("x", "t", 0.0, 1.0) is None
        NULL_TRACER.open("k", "x", "t")
        assert NULL_TRACER.close("k") is None
        assert NULL_TRACER.parent_id("k") is None
        assert NULL_TRACER.finalize() == 0
        assert NULL_TRACER.graft([{"id": 1}], base_s=0.0) == 0
        assert NULL_TRACER.spans == []
