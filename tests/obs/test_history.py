"""Bench history: ingest, per-branch storage, regression detection."""

from __future__ import annotations

import json

import pytest

from repro.obs.history import (
    MIN_BASELINE,
    check,
    direction,
    format_finding,
    github_annotation,
    history_path,
    ingest,
    read_history,
    summarize,
)
from repro.util.validation import ValidationError


def _write_artifact(bench_dir, exp, metrics, weeks=2.0):
    bench_dir.mkdir(parents=True, exist_ok=True)
    payload = {
        "manifest_version": 1,
        "experiment": exp,
        "weeks": weeks,
        "seed": 7,
        "workers": 0,
        "use_cache": True,
        "topology": "abc123",
        "exec": None,
        "metrics": metrics,
    }
    (bench_dir / f"BENCH_{exp}.json").write_text(json.dumps(payload))


def _record_runs(tmp_path, values, exp="e2", metric="replay_wall_s", **kw):
    """One ingest per value, oldest first, onto branch ``main``."""
    bench = tmp_path / "bench-out"
    for index, value in enumerate(values):
        _write_artifact(bench, exp, {metric: value}, **kw)
        ingest(bench, tmp_path / "hist", "main", commit=f"c{index}",
               recorded_at=1000.0 + index)


class TestDirection:
    def test_duration_suffix_is_higher_is_worse(self):
        assert direction("replay_wall_s") == "higher_is_worse"
        assert direction("baseline_s") == "higher_is_worse"
        assert direction("overhead") == "higher_is_worse"
        assert direction("lost_seconds_total") == "higher_is_worse"

    def test_goodness_names_are_lower_is_worse(self):
        assert direction("availability") == "lower_is_worse"
        assert direction("speedup") == "lower_is_worse"
        assert direction("cache_hit_rate") == "lower_is_worse"
        assert direction("coverage") == "lower_is_worse"

    def test_conflicting_name_is_unknown(self):
        # ``on_time`` says lower-is-worse, ``_s`` says higher-is-worse.
        assert direction("on_time_s") is None

    def test_unrecognised_name_is_unknown(self):
        assert direction("decision_changes") is None


class TestIngest:
    def test_entries_appended_per_artifact(self, tmp_path):
        bench = tmp_path / "bench-out"
        _write_artifact(bench, "e2", {"wall_s": 1.5})
        _write_artifact(bench, "e3", {"cost": 2.0})
        entries = ingest(bench, tmp_path / "hist", "main", commit="abc",
                         recorded_at=1.0)
        assert [e["experiment"] for e in entries] == ["e2", "e3"]
        stored = read_history(tmp_path / "hist", "main")
        assert stored == entries
        assert stored[0]["commit"] == "abc"
        assert stored[0]["metrics"] == {"wall_s": 1.5}

    def test_append_only(self, tmp_path):
        _record_runs(tmp_path, [1.0, 2.0, 3.0])
        values = [
            e["metrics"]["replay_wall_s"]
            for e in read_history(tmp_path / "hist", "main")
        ]
        assert values == [1.0, 2.0, 3.0]

    def test_non_numeric_metrics_dropped(self, tmp_path):
        bench = tmp_path / "bench-out"
        _write_artifact(
            bench,
            "e9",
            {"wall_s": 1.0, "label": "fast", "flag": True, "nan": float("nan")},
        )
        (entry,) = ingest(bench, tmp_path / "hist", "b", recorded_at=1.0)
        assert entry["metrics"] == {"wall_s": 1.0}

    def test_branches_are_separate_files(self, tmp_path):
        bench = tmp_path / "bench-out"
        _write_artifact(bench, "e2", {"wall_s": 1.0})
        ingest(bench, tmp_path / "hist", "main", recorded_at=1.0)
        ingest(bench, tmp_path / "hist", "feature/x", recorded_at=2.0)
        assert len(read_history(tmp_path / "hist", "main")) == 1
        assert len(read_history(tmp_path / "hist", "feature/x")) == 1
        assert history_path(tmp_path / "hist", "feature/x").name == (
            "feature_x.jsonl"
        )

    def test_missing_bench_dir_rejected(self, tmp_path):
        with pytest.raises(ValidationError, match="does not exist"):
            ingest(tmp_path / "nope", tmp_path / "hist", "main")

    def test_empty_bench_dir_appends_nothing(self, tmp_path):
        bench = tmp_path / "bench-out"
        bench.mkdir()
        assert ingest(bench, tmp_path / "hist", "main") == []
        assert read_history(tmp_path / "hist", "main") == []


class TestCheck:
    def test_stable_series_yields_no_findings(self, tmp_path):
        _record_runs(tmp_path, [1.0, 1.01, 0.99, 1.0, 1.02])
        assert check(tmp_path / "hist", "main") == []

    def test_regression_on_higher_is_worse_metric(self, tmp_path):
        _record_runs(tmp_path, [1.0, 1.01, 0.99, 1.0, 1.5])
        (finding,) = check(tmp_path / "hist", "main")
        assert finding["kind"] == "regression"
        assert finding["metric"] == "replay_wall_s"
        assert finding["value"] == 1.5
        assert finding["median"] == pytest.approx(1.0, abs=0.02)
        assert finding["delta"] > finding["band"]
        assert finding["direction"] == "higher_is_worse"

    def test_improvement_on_higher_is_worse_metric(self, tmp_path):
        _record_runs(tmp_path, [1.0, 1.01, 0.99, 1.0, 0.5])
        (finding,) = check(tmp_path / "hist", "main")
        assert finding["kind"] == "improvement"

    def test_regression_on_lower_is_worse_metric(self, tmp_path):
        _record_runs(
            tmp_path, [0.999, 0.998, 0.999, 0.9], metric="availability"
        )
        (finding,) = check(tmp_path / "hist", "main")
        assert finding["kind"] == "regression"
        assert finding["direction"] == "lower_is_worse"

    def test_unknown_direction_is_a_shift(self, tmp_path):
        _record_runs(
            tmp_path, [10.0, 10.0, 10.0, 20.0], metric="decision_changes"
        )
        (finding,) = check(tmp_path / "hist", "main")
        assert finding["kind"] == "shift"
        assert finding["direction"] is None

    def test_insufficient_history_is_silent(self, tmp_path):
        _record_runs(tmp_path, [1.0] * MIN_BASELINE + [99.0])
        # MIN_BASELINE prior runs is exactly enough; one fewer is not.
        assert check(tmp_path / "hist", "main") != []
        _record_runs(tmp_path, [1.0, 1.0, 55.0], exp="e7")
        findings = check(tmp_path / "hist", "main")
        assert all(f["experiment"] == "e2" for f in findings)

    def test_noise_band_respects_relative_floor(self, tmp_path):
        # Zero-variance baseline: MAD is 0, the 5% relative floor rules.
        _record_runs(tmp_path, [1.0, 1.0, 1.0, 1.0, 1.04])
        assert check(tmp_path / "hist", "main") == []
        _record_runs(tmp_path, [1.06], )
        # The 1.04 run joined the baseline; median still 1.0, 1.06 > 5%.
        (finding,) = check(tmp_path / "hist", "main")
        assert finding["value"] == 1.06

    def test_noisy_baseline_widens_the_band(self, tmp_path):
        noisy = [1.0, 1.4, 0.7, 1.2, 0.8, 1.3]
        _record_runs(tmp_path, noisy + [1.6])
        assert check(tmp_path / "hist", "main") == []
        _record_runs(tmp_path, [3.0])
        (finding,) = check(tmp_path / "hist", "main")
        assert finding["kind"] == "regression"

    def test_different_workloads_never_compared(self, tmp_path):
        _record_runs(tmp_path, [1.0, 1.0, 1.0], weeks=2.0)
        # A single 4-week run: different workload key, no baseline.
        _record_runs(tmp_path, [9.0], weeks=4.0)
        assert check(tmp_path / "hist", "main") == []

    def test_window_limits_the_baseline(self, tmp_path):
        # Old slow era, then a fast era longer than the window: the
        # old values must age out of the comparison.
        _record_runs(tmp_path, [9.0] * 5 + [1.0] * 6 + [1.0])
        assert check(tmp_path / "hist", "main", window=5) == []

    def test_findings_sorted_regressions_first(self, tmp_path):
        bench = tmp_path / "bench-out"
        for index, (wall, avail) in enumerate(
            [(1.0, 0.9), (1.0, 0.9), (1.0, 0.9), (2.0, 1.0)]
        ):
            _write_artifact(
                bench, "e2", {"wall_s": wall, "availability": avail}
            )
            ingest(bench, tmp_path / "hist", "main", recorded_at=float(index))
        findings = check(tmp_path / "hist", "main")
        assert [f["kind"] for f in findings] == ["regression", "improvement"]

    def test_check_on_empty_history(self, tmp_path):
        assert check(tmp_path / "hist", "main") == []


class TestFormatting:
    def _finding(self, tmp_path):
        _record_runs(tmp_path, [1.0, 1.0, 1.0, 2.0])
        (finding,) = check(tmp_path / "hist", "main")
        return finding

    def test_format_finding(self, tmp_path):
        line = format_finding(self._finding(tmp_path))
        assert "regression" in line
        assert "e2/replay_wall_s" in line
        assert "+100.0%" in line

    def test_github_annotation_levels(self, tmp_path):
        finding = self._finding(tmp_path)
        assert github_annotation(finding).startswith(
            "::warning title=bench regression: e2::"
        )
        finding["kind"] = "improvement"
        assert github_annotation(finding).startswith("::notice ")

    def test_summarize_counts(self, tmp_path):
        finding = self._finding(tmp_path)
        assert summarize([finding]) == {
            "regression": 1, "shift": 0, "improvement": 0,
        }
        assert summarize([]) == {
            "regression": 0, "shift": 0, "improvement": 0,
        }


class TestCrashSafety:
    def test_ingest_leaves_no_temp_files(self, tmp_path):
        _record_runs(tmp_path, [1.0, 2.0])
        leftovers = list((tmp_path / "hist").glob(".tmp-*"))
        assert leftovers == []

    def test_torn_trailing_line_is_skipped_not_fatal(self, tmp_path):
        _record_runs(tmp_path, [1.0, 2.0])
        target = history_path(tmp_path / "hist", "main")
        target.write_text(target.read_text() + '{"version": 1, "metri')
        entries = read_history(tmp_path / "hist", "main")
        assert [e["commit"] for e in entries] == ["c0", "c1"]

    def test_ingest_heals_a_torn_tail(self, tmp_path):
        """Appending after a torn write keeps old entries line-separated."""
        _record_runs(tmp_path, [1.0])
        target = history_path(tmp_path / "hist", "main")
        # Simulate a pre-atomic writer that died mid-line (no newline).
        target.write_text(target.read_text().rstrip("\n"))
        bench = tmp_path / "bench-out"
        _write_artifact(bench, "e2", {"replay_wall_s": 2.0})
        ingest(bench, tmp_path / "hist", "main", commit="c1", recorded_at=2000.0)
        entries = read_history(tmp_path / "hist", "main")
        assert [e["commit"] for e in entries] == ["c0", "c1"]

    def test_blank_lines_ignored(self, tmp_path):
        _record_runs(tmp_path, [1.0])
        target = history_path(tmp_path / "hist", "main")
        target.write_text(target.read_text() + "\n\n")
        assert len(read_history(tmp_path / "hist", "main")) == 1
