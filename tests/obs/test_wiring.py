"""The observability layer wired through kernel, network, nodes, chaos.

The central contracts:

* **exact reconciliation** -- the ``net.*`` counters mirror the
  network's ``sent``/``dropped`` stats bitwise, and per-flow delivery
  counters mirror the flow reports;
* **zero interference** -- a run with observability attached produces
  exactly the same protocol outcome as the same run without it;
* **flight triggers** -- invariant violations and unhealthy flows
  snapshot the recorder (and auto-dump when a directory is set).
"""

from __future__ import annotations

import pytest

from repro.chaos.faults import FaultSchedule, LinkBlackhole
from repro.netmodel.conditions import ConditionTimeline, Contribution, LinkState
from repro.netmodel.topology import FlowSpec, ServiceSpec
from repro.obs import Observability
from repro.overlay.harness import build_overlay

FLOW = FlowSpec("S", "T")
SERVICE = ServiceSpec(deadline_ms=15.0, send_interval_ms=10.0, rtt_budget_ms=30.0)


def _run(diamond, obs=None, duration_s=20.0, contributions=(), faults=None):
    timeline = ConditionTimeline(diamond, duration_s + 5.0, contributions)
    harness = build_overlay(
        diamond, timeline, [FLOW], SERVICE, scheme="static-two-disjoint",
        seed=3, obs=obs,
    )
    harness.start()
    harness.run(duration_s, faults=faults)
    harness.stop_traffic()
    return harness


def _lossy(diamond):
    return [
        Contribution(edge, 2.0, 18.0, LinkState(loss_rate=0.3))
        for edge in diamond.adjacent_edges("T")
    ]


class TestReconciliation:
    def test_per_link_counters_match_network_stats_exactly(self, diamond):
        obs = Observability()
        harness = _run(diamond, obs, contributions=_lossy(diamond))
        assert harness.network.total_dropped() > 0
        for edge, count in harness.network.sent.items():
            label = f"{edge[0]}->{edge[1]}"
            assert obs.metrics.value(f"net.sent.{label}") == count
        for edge, count in harness.network.dropped.items():
            label = f"{edge[0]}->{edge[1]}"
            assert obs.metrics.value(f"net.dropped.{label}") == count
        # And nothing else: every net.sent/net.dropped counter has a
        # matching stats entry, so the totals agree too.
        sent_total = sum(
            obs.metrics.value(name) for name in obs.metrics.names("net.sent.")
        )
        dropped_total = sum(
            obs.metrics.value(name)
            for name in obs.metrics.names("net.dropped.")
        )
        assert sent_total == harness.network.total_sent()
        assert dropped_total == harness.network.total_dropped()

    def test_delivery_counter_matches_reports(self, diamond):
        obs = Observability()
        harness = _run(diamond, obs, contributions=_lossy(diamond))
        delivered = sum(r.delivered for r in harness.reports.values())
        assert obs.metrics.value("node.delivered") == delivered
        latency = obs.metrics.summarize()[f"flow.latency_ms.{FLOW.name}"]
        assert latency["count"] == delivered

    def test_kernel_event_metrics(self, diamond):
        obs = Observability()
        harness = _run(diamond, obs)
        assert obs.metrics.value("kernel.events") == harness.kernel.processed
        depth = obs.metrics.summarize()["kernel.queue_depth"]
        assert depth["count"] == harness.kernel.processed
        lag = obs.metrics.summarize()["kernel.lag_s"]
        assert lag["min"] >= 0.0


class TestZeroInterference:
    def test_observed_run_is_bitwise_identical(self, diamond):
        plain = _run(diamond, None, contributions=_lossy(diamond))
        observed = _run(
            diamond, Observability(), contributions=_lossy(diamond)
        )
        assert plain.network.sent == observed.network.sent
        assert plain.network.dropped == observed.network.dropped
        for name in plain.reports:
            assert (
                plain.reports[name].latencies_ms
                == observed.reports[name].latencies_ms
            )

    def test_disabled_bundle_is_detached(self, diamond):
        harness = _run(diamond, Observability(enabled=False))
        assert harness.obs is None
        assert harness.network.obs is None


class TestSpans:
    def test_packet_journeys_and_hops_linked(self, diamond):
        obs = Observability()
        harness = _run(diamond, obs)
        journeys = [
            s for s in obs.tracer.spans if s.name == "packet.journey"
        ]
        assert len(journeys) == harness.reports[FLOW.name].sent
        journey_ids = {s.span_id for s in journeys}
        hops = [s for s in obs.tracer.spans if s.name == "hop"]
        assert hops
        assert all(hop.parent_id in journey_ids for hop in hops)

    def test_delivered_journeys_closed_with_latency(self, diamond):
        obs = Observability()
        harness = _run(diamond, obs)
        obs.tracer.finalize()
        delivered = [
            s
            for s in obs.tracer.spans
            if s.name == "packet.journey" and "latency_ms" in s.args
        ]
        assert len(delivered) == harness.reports[FLOW.name].delivered


class TestChaosWiring:
    SCHEDULE = FaultSchedule(
        blackholes=(LinkBlackhole(("S", "A"), 2.0, 4.0),)
    )

    def test_fault_events_traced(self, diamond):
        obs = Observability()
        harness = _run(diamond, obs, faults=self.SCHEDULE)
        assert len(harness.injector.log) >= 2
        assert obs.metrics.value("chaos.fault_events") == len(
            harness.injector.log
        )
        faults = [s for s in obs.tracer.spans if s.name == "fault"]
        assert len(faults) == len(harness.injector.log)

    def test_invariant_violation_triggers_flight_dump(self, diamond, tmp_path):
        obs = Observability(flight_dir=tmp_path)
        harness = _run(diamond, obs, faults=self.SCHEDULE)
        assert obs.flight.triggers == 0
        # Force a violation through the checker's own path: the obs tap
        # must fire exactly as it would for a real breach.
        harness.invariants._flag(1.0, "test-invariant", "forced for test")
        assert obs.metrics.value("chaos.invariant_violations") == 1.0
        assert obs.flight.triggers == 1
        dumped = list(tmp_path.glob("flight_*.json"))
        assert len(dumped) == 1

    def test_no_tap_without_obs(self, diamond):
        harness = _run(diamond, None, faults=self.SCHEDULE)
        assert harness.invariants.taps == []


class TestFlowHealth:
    def test_unhealthy_flow_triggers_flight(self, diamond):
        obs = Observability()
        contributions = [
            Contribution(edge, 2.0, 18.0, LinkState(loss_rate=0.9))
            for edge in diamond.adjacent_edges("T")
        ]
        harness = _run(diamond, obs, contributions=contributions)
        unhealthy = harness.flow_health(threshold=0.99)
        assert unhealthy == [FLOW.name]
        assert obs.flight.triggers == 1
        assert obs.metrics.value("obs.flight.unhealthy_flows") == 1.0

    def test_healthy_flows_do_not_trigger(self, diamond):
        obs = Observability()
        harness = _run(diamond, obs)
        assert harness.flow_health(threshold=0.5) == []
        assert obs.flight.triggers == 0

    def test_flow_health_works_without_obs(self, diamond):
        harness = _run(diamond, None)
        assert harness.flow_health(threshold=1.01) == [FLOW.name]


class TestExport:
    def test_export_writes_reconciled_manifest(self, diamond, tmp_path):
        from repro.obs import RunManifest, read_manifest, topology_fingerprint

        obs = Observability()
        harness = _run(diamond, obs, contributions=_lossy(diamond))
        manifest = RunManifest(
            label="test",
            seed=3,
            schemes=("static-two-disjoint",),
            flows=(FLOW.name,),
            topology=topology_fingerprint(diamond),
            duration_s=20.0,
        )
        paths = obs.export(tmp_path, manifest)
        assert set(paths) >= {"trace", "spans", "manifest"}
        loaded = read_manifest(paths["manifest"])
        for edge, count in harness.network.dropped.items():
            name = f"net.dropped.{edge[0]}->{edge[1]}"
            assert loaded.metrics[name]["value"] == count
        assert loaded.spans["recorded"] == len(obs.tracer.spans)
