"""Exporters: Chrome trace_event JSON and the JSONL span log."""

from __future__ import annotations

import json

import pytest

from repro.obs.export import (
    read_spans_jsonl,
    spans_to_trace_events,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.obs.trace import Span


def _spans() -> list[Span]:
    return [
        Span(1, "packet.journey", "data", 0.0, 0.5, {"flow": "f"}),
        Span(2, "hop", "net", 0.1, 0.2, {"edge": "a->b"}, parent_id=1),
        Span(3, "hop.drop", "net", 0.3, 0.3, {"edge": "a->b"}),
    ]


class TestChromeTraceEvents:
    def test_intervals_and_instants(self):
        events = spans_to_trace_events(_spans())
        complete = [e for e in events if e.get("ph") == "X"]
        instants = [e for e in events if e.get("ph") == "i"]
        assert len(complete) == 2
        assert len(instants) == 1
        assert complete[0]["ts"] == 0.0
        assert complete[0]["dur"] == pytest.approx(0.5e6)
        assert instants[0]["s"] == "t"

    def test_metadata_names_processes_and_tracks(self):
        events = spans_to_trace_events(_spans())
        metadata = [e for e in events if e["ph"] == "M"]
        names = {
            (e["name"], e["args"]["name"]) for e in metadata
        }
        assert ("process_name", "data") in names
        assert ("process_name", "net") in names
        assert ("thread_name", "a->b") in names

    def test_parent_link_preserved_in_args(self):
        events = spans_to_trace_events(_spans())
        hop = next(e for e in events if e.get("args", {}).get("span_id") == 2)
        assert hop["args"]["parent_span"] == 1

    def test_open_span_rendered_as_instant(self):
        events = spans_to_trace_events([Span(1, "x", "t", 1.0, None)])
        event = [e for e in events if e["ph"] != "M"][0]
        assert event["ph"] == "i"

    def test_written_file_is_loadable_json(self, tmp_path):
        path = write_chrome_trace(_spans(), tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        assert isinstance(payload["traceEvents"], list)


class TestJsonlRoundTrip:
    def test_round_trip(self, tmp_path):
        spans = _spans()
        path = write_spans_jsonl(spans, tmp_path / "spans.jsonl")
        loaded = read_spans_jsonl(path)
        assert [s.to_dict() for s in loaded] == [s.to_dict() for s in spans]

    def test_chrome_export_from_jsonl_matches_direct(self, tmp_path):
        spans = _spans()
        path = write_spans_jsonl(spans, tmp_path / "spans.jsonl")
        assert spans_to_trace_events(read_spans_jsonl(path)) == (
            spans_to_trace_events(spans)
        )

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        path.write_text(
            json.dumps(_spans()[0].to_dict()) + "\n\n"
        )
        assert len(read_spans_jsonl(path)) == 1

    def test_malformed_line_reports_position(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        path.write_text('{"id": 1}\nnot json\n')
        with pytest.raises(ValueError, match=":1:"):
            read_spans_jsonl(path)
