"""Flight-recorder snapshots on the flow-health threshold path.

``Observability.check_flow_health`` is the bridge between the overlay's
per-flow on-time fractions and the flight recorder: every flow below
the threshold must produce a snapshot that actually carries the recent
span evidence, on disk when a dump directory is configured.  The
overlay-level integration (harness.flow_health feeding real fractions)
lives in test_wiring.py; these tests pin the snapshot contents.
"""

from __future__ import annotations

import json

from repro.obs import Observability
from repro.obs.runtime import DEFAULT_HEALTH_THRESHOLD


def _obs_with_spans(tmp_path=None, spans=3):
    obs = Observability(flight_dir=tmp_path)
    for index in range(spans):
        obs.tracer.complete(
            f"step-{index}", "test", float(index), index + 0.5, flow="NYC->LAX"
        )
    return obs


class TestThreshold:
    def test_flow_at_threshold_is_healthy(self):
        obs = _obs_with_spans()
        fractions = {"NYC->LAX": DEFAULT_HEALTH_THRESHOLD}
        assert obs.check_flow_health(fractions) == []
        assert obs.flight.triggers == 0

    def test_flow_below_threshold_triggers(self):
        obs = _obs_with_spans()
        unhealthy = obs.check_flow_health({"NYC->LAX": 0.5})
        assert unhealthy == ["NYC->LAX"]
        assert obs.flight.triggers == 1
        assert obs.metrics.value("obs.flight.unhealthy_flows") == 1.0

    def test_each_unhealthy_flow_gets_its_own_snapshot(self):
        obs = _obs_with_spans()
        unhealthy = obs.check_flow_health(
            {"NYC->LAX": 0.2, "SJC->NYC": 0.8, "ATL->HKG": 0.95},
            threshold=0.9,
        )
        assert unhealthy == ["NYC->LAX", "SJC->NYC"]  # sorted, ATL healthy
        assert obs.flight.triggers == 2
        assert obs.metrics.value("obs.flight.unhealthy_flows") == 2.0
        reasons = [snap["reason"] for snap in obs.flight.snapshots]
        assert any("NYC->LAX" in reason for reason in reasons)
        assert any("SJC->NYC" in reason for reason in reasons)

    def test_disabled_obs_reports_nothing(self):
        obs = Observability(enabled=False)
        assert obs.check_flow_health({"NYC->LAX": 0.0}) == []


class TestSnapshotContents:
    def test_snapshot_carries_recent_spans(self):
        obs = _obs_with_spans(spans=4)
        obs.check_flow_health({"NYC->LAX": 0.1})
        (snapshot,) = obs.flight.snapshots
        names = [span["name"] for span in snapshot["spans"]]
        assert names == ["step-0", "step-1", "step-2", "step-3"]
        assert all(
            span["args"]["flow"] == "NYC->LAX" for span in snapshot["spans"]
        )

    def test_reason_names_flow_fraction_and_threshold(self):
        obs = _obs_with_spans()
        obs.check_flow_health({"NYC->LAX": 0.456}, threshold=0.75)
        (snapshot,) = obs.flight.snapshots
        assert "NYC->LAX" in snapshot["reason"]
        assert "0.456" in snapshot["reason"]
        assert "0.750" in snapshot["reason"]

    def test_ring_capacity_bounds_the_evidence(self):
        obs = Observability(flight_capacity=2)
        for index in range(5):
            obs.tracer.complete(f"step-{index}", "test", float(index), index + 0.5)
        obs.check_flow_health({"NYC->LAX": 0.0})
        (snapshot,) = obs.flight.snapshots
        names = [span["name"] for span in snapshot["spans"]]
        assert names == ["step-3", "step-4"]  # only the newest two


class TestDumping:
    def test_flight_dir_dumps_immediately(self, tmp_path):
        obs = _obs_with_spans(tmp_path=tmp_path)
        obs.check_flow_health({"NYC->LAX": 0.3})
        (path,) = sorted(tmp_path.glob("flight_*.json"))
        payload = json.loads(path.read_text())
        assert "NYC->LAX" in payload["reason"]
        assert payload["trigger"] == 1
        assert [s["name"] for s in payload["spans"]] == [
            "step-0", "step-1", "step-2",
        ]

    def test_export_dumps_pending_health_snapshots(self, tmp_path):
        from repro.obs import RunManifest

        obs = _obs_with_spans()  # no flight_dir: snapshot held in memory
        obs.check_flow_health({"NYC->LAX": 0.3})
        paths = obs.export(tmp_path, RunManifest(label="health", seed=1))
        assert "flight_1" in paths
        payload = json.loads(paths["flight_1"].read_text())
        assert "NYC->LAX" in payload["reason"]
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["flight"]["triggers"] == 1
        assert (
            manifest["metrics"]["obs.flight.unhealthy_flows"]["value"] == 1.0
        )

    def test_snapshots_are_not_dumped_twice(self, tmp_path):
        from repro.obs import RunManifest

        obs = _obs_with_spans()
        obs.check_flow_health({"NYC->LAX": 0.3})
        obs.export(tmp_path / "first", RunManifest(label="health", seed=1))
        paths = obs.export(tmp_path / "second", RunManifest(label="h", seed=1))
        assert not [key for key in paths if key.startswith("flight_")]
