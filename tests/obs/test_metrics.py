"""Metrics registry: counters, gauges, histograms, and the null path."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Histogram,
    MetricsRegistry,
)


class TestCountersAndGauges:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("a.b").inc()
        registry.counter("a.b").inc(2.5)
        assert registry.value("a.b") == 3.5

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(4.0)
        registry.gauge("depth").set(2.0)
        assert registry.value("depth") == 2.0

    def test_create_or_return_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_name_collision_across_kinds_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(Exception):
            registry.gauge("x")

    def test_names_filters_by_prefix(self):
        registry = MetricsRegistry()
        registry.counter("net.sent.a")
        registry.counter("net.sent.b")
        registry.counter("kernel.events")
        assert registry.names("net.") == ["net.sent.a", "net.sent.b"]


class TestHistogram:
    def test_exact_min_max_mean(self):
        histogram = Histogram("h")
        for value in (1.0, 2.0, 3.0, 10.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["min"] == 1.0
        assert summary["max"] == 10.0
        assert summary["mean"] == 4.0
        assert summary["count"] == 4

    def test_quantiles_bucket_upper_bounds(self):
        histogram = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for _ in range(99):
            histogram.observe(0.5)
        histogram.observe(50.0)
        # p50 lands in the first bucket; its bound is 1.0.
        assert histogram.quantile(0.5) == 1.0
        # p999 needs the 100th observation -> bucket bound 100, capped at max.
        assert histogram.quantile(0.999) == 50.0

    def test_overflow_bucket_answers_max(self):
        histogram = Histogram("h", buckets=(1.0,))
        histogram.observe(1e9)
        assert histogram.quantile(0.99) == 1e9

    def test_empty_histogram_quantile_raises(self):
        histogram = Histogram("h")
        with pytest.raises(Exception, match="empty"):
            histogram.quantile(0.99)
        assert histogram.summary() == {"type": "histogram", "count": 0}

    def test_exact_boundary_value_stays_in_its_bucket(self):
        # A value equal to a bucket bound belongs to that bucket (the
        # first bound >= value), so its quantile answers the bound
        # itself, never the next bucket up.
        histogram = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for _ in range(10):
            histogram.observe(10.0)
        assert histogram.quantile(0.5) == 10.0
        assert histogram.quantile(1.0) == 10.0
        assert histogram.counts[1] == 10
        assert histogram.counts[2] == 0

    def test_boundary_between_two_buckets(self):
        histogram = Histogram("h", buckets=(1.0, 10.0))
        histogram.observe(1.0)  # first bucket, exactly on the bound
        histogram.observe(1.0000001)  # just past the bound: second bucket
        assert histogram.counts[0] == 1
        assert histogram.counts[1] == 1
        assert histogram.quantile(0.5) == 1.0

    def test_default_buckets_cover_micro_to_mega(self):
        assert DEFAULT_BUCKETS[0] == pytest.approx(1e-6)
        assert DEFAULT_BUCKETS[-1] == pytest.approx(1e6)

    def test_summary_has_percentiles(self):
        registry = MetricsRegistry()
        for value in range(1, 101):
            registry.histogram("lat").observe(float(value))
        summary = registry.summarize()["lat"]
        assert summary["p50"] <= summary["p99"] <= summary["p999"]
        assert summary["p999"] == 100.0


class TestNullRegistry:
    def test_disabled_and_empty(self):
        assert NULL_REGISTRY.enabled is False
        assert NULL_REGISTRY.summarize() == {}

    def test_instruments_swallow_updates(self):
        NULL_REGISTRY.counter("x").inc()
        NULL_REGISTRY.gauge("x").set(1.0)
        NULL_REGISTRY.histogram("x").observe(1.0)
        assert NULL_REGISTRY.summarize() == {}

    def test_shared_singleton_instrument(self):
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.histogram("b")
