"""Prometheus text exposition: render, parse, and quantile estimation."""

from __future__ import annotations

import math

import pytest

from repro.obs.expose import (
    CONTENT_TYPE,
    histogram_quantile,
    metric_name,
    parse_exposition,
    render_exposition,
    sample_value,
)
from repro.obs.metrics import MetricsRegistry


def _registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("serve.requests.accepted").inc(3)
    registry.gauge("serve.queue_depth").set(2)
    histogram = registry.histogram(
        "serve.queue_wait_s", buckets=(0.001, 0.01, 0.1, 1.0)
    )
    for value in (0.0005, 0.005, 0.005, 0.5):
        histogram.observe(value)
    return registry


class TestNames:
    def test_dots_and_arrows_sanitised(self):
        assert metric_name("serve.queue_depth") == "repro_serve_queue_depth"
        assert metric_name("net.sent.NYC->LAX") == "repro_net_sent_NYC__LAX"

    def test_leading_digit_guarded(self):
        assert metric_name("9lives").startswith("repro__9")

    def test_content_type_is_prometheus_text(self):
        assert "text/plain" in CONTENT_TYPE
        assert "0.0.4" in CONTENT_TYPE


class TestRender:
    def test_counter_and_gauge_lines(self):
        text = render_exposition(_registry())
        assert "# TYPE repro_serve_requests_accepted counter" in text
        assert "repro_serve_requests_accepted 3" in text
        assert "# TYPE repro_serve_queue_depth gauge" in text
        assert "repro_serve_queue_depth 2" in text

    def test_help_keeps_the_dotted_name(self):
        text = render_exposition(_registry())
        assert "'serve.queue_depth'" in text

    def test_histogram_buckets_are_cumulative(self):
        text = render_exposition(_registry())
        assert 'repro_serve_queue_wait_s_bucket{le="0.001"} 1' in text
        assert 'repro_serve_queue_wait_s_bucket{le="0.01"} 3' in text
        assert 'repro_serve_queue_wait_s_bucket{le="1"} 4' in text
        assert 'repro_serve_queue_wait_s_bucket{le="+Inf"} 4' in text
        assert "repro_serve_queue_wait_s_count 4" in text

    def test_empty_histogram_renders_without_quantiles(self):
        registry = MetricsRegistry()
        registry.histogram("idle.h")
        text = render_exposition(registry)
        assert 'repro_idle_h_bucket{le="+Inf"} 0' in text
        assert "repro_idle_h_count 0" in text


class TestParse:
    def test_round_trip(self):
        registry = _registry()
        families = parse_exposition(render_exposition(registry))
        assert sample_value(
            families, "repro_serve_requests_accepted"
        ) == 3.0
        assert sample_value(families, "repro_serve_queue_depth") == 2.0
        assert (
            sample_value(families, "repro_serve_queue_wait_s_count") == 4.0
        )
        family = families["repro_serve_queue_wait_s"]
        assert family.type == "histogram"
        assert family.help  # HELP text survived

    def test_bucket_labels_parsed(self):
        families = parse_exposition(render_exposition(_registry()))
        buckets = [
            sample.labels["le"]
            for sample in families["repro_serve_queue_wait_s"].samples
            if sample.name.endswith("_bucket")
        ]
        assert "+Inf" in buckets

    def test_label_escapes_round_trip(self):
        text = 'm{path="a\\"b\\\\c"} 1\n'
        families = parse_exposition(text)
        sample = families["m"].samples[0]
        assert sample.labels["path"] == 'a"b\\c'

    def test_malformed_line_raises(self):
        with pytest.raises(Exception, match="malformed"):
            parse_exposition("this is { not a metric\n")

    def test_missing_sample_is_none(self):
        families = parse_exposition(render_exposition(_registry()))
        assert sample_value(families, "repro_no_such_metric") is None


class TestHistogramQuantile:
    def test_matches_exact_histogram_bounds(self):
        registry = _registry()
        families = parse_exposition(render_exposition(registry))
        family = families["repro_serve_queue_wait_s"]
        histogram = registry.histogram("serve.queue_wait_s")
        assert histogram_quantile(family, 0.5) == histogram.quantile(0.5)

    def test_empty_family_is_none(self):
        families = parse_exposition(
            'repro_h_bucket{le="+Inf"} 0\nrepro_h_count 0\n'
        )
        assert histogram_quantile(families["repro_h"], 0.5) is None

    def test_overflow_only_falls_back_to_largest_finite(self):
        families = parse_exposition(
            'repro_h_bucket{le="1"} 0\n'
            'repro_h_bucket{le="+Inf"} 5\n'
            "repro_h_count 5\n"
        )
        assert histogram_quantile(families["repro_h"], 0.5) == 1.0

    def test_inf_parsing(self):
        families = parse_exposition('repro_h_bucket{le="+Inf"} 2\n')
        le = families["repro_h"].samples[0].labels["le"]
        assert math.isinf(float("inf")) and le == "+Inf"
