"""The live metrics viewer: frame rendering and the poll loop."""

from __future__ import annotations

import io

from repro.obs.expose import parse_exposition, render_exposition
from repro.obs.metrics import MetricsRegistry
from repro.obs.watch import render_frame, watch


def _scrape(
    accepted: float = 4,
    completed: float = 3,
    queue_depth: float = 1,
    waits: tuple[float, ...] = (0.01, 0.02),
    uptime: float = 120.0,
) -> str:
    registry = MetricsRegistry()
    registry.counter("serve.requests.accepted").inc(accepted)
    registry.counter("serve.requests.completed").inc(completed)
    registry.counter("serve.requests.failed").inc(0)
    registry.counter("serve.requests.rejected").inc(1)
    registry.gauge("serve.queue_depth").set(queue_depth)
    registry.gauge("serve.active").set(2)
    registry.gauge("serve.uptime_s").set(uptime)
    registry.gauge("serve.cache.context_hits").set(6)
    registry.gauge("serve.cache.context_misses").set(2)
    registry.gauge("serve.cache.prob_hits").set(90)
    registry.gauge("serve.cache.prob_misses").set(10)
    for wait in waits:
        registry.histogram("serve.queue_wait_s").observe(wait)
    for fraction in (0.97, 0.999):
        registry.histogram("serve.on_time_fraction").observe(fraction)
    return render_exposition(registry)


class TestRenderFrame:
    def test_totals_and_sections(self):
        frame = render_frame(None, parse_exposition(_scrape()), 2.0)
        assert "accepted" in frame and "completed" in frame
        assert "queued 1" in frame
        assert "queue wait" in frame
        assert "contexts" in frame
        assert "75.0%" in frame  # 6 context hits / 8 lookups
        assert "90.0%" in frame  # 90 prob hits / 100 lookups
        assert "on-time fraction" in frame

    def test_rates_come_from_counter_deltas(self):
        prev = parse_exposition(_scrape(accepted=4, completed=3))
        curr = parse_exposition(_scrape(accepted=10, completed=6))
        frame = render_frame(prev, curr, 2.0)
        # (10 - 4) / 2s = 3/s accepted; (6 - 3) / 2s = 1.5/s completed.
        assert "3.00" in frame
        assert "1.50" in frame

    def test_first_frame_has_zero_rates(self):
        frame = render_frame(None, parse_exposition(_scrape()), 2.0)
        assert "0.00" in frame

    def test_missing_histograms_are_omitted(self):
        registry = MetricsRegistry()
        registry.counter("serve.requests.accepted").inc()
        frame = render_frame(
            None, parse_exposition(render_exposition(registry)), 1.0
        )
        assert "queue wait" not in frame
        assert "on-time" not in frame


class TestWatchLoop:
    def test_polls_fetch_and_renders_each_frame(self):
        scrapes = iter([_scrape(accepted=1), _scrape(accepted=5)])
        out = io.StringIO()
        slept: list[float] = []
        code = watch(
            lambda: next(scrapes),
            interval_s=0.5,
            iterations=2,
            out=out,
            clear=False,
            sleep=slept.append,
        )
        assert code == 0
        assert slept == [0.5]  # no sleep after the final frame
        text = out.getvalue()
        assert text.count("repro serve") == 2
        # Second frame saw the counter jump: (5-1)/0.5 = 8/s.
        assert "8.00" in text

    def test_clear_sequence_emitted_when_enabled(self):
        out = io.StringIO()
        watch(
            lambda: _scrape(),
            interval_s=1.0,
            iterations=1,
            out=out,
            clear=True,
            sleep=lambda _s: None,
        )
        assert out.getvalue().startswith("\x1b[2J\x1b[H")
