"""Sampling profiler: collection, collapsed output, accounting, reports."""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs.profile import SamplingProfiler, frame_label
from repro.util.validation import ValidationError


def _spin(deadline_s: float = 0.25) -> None:
    """Burn wall clock under a recognisable frame name."""
    end = time.perf_counter() + deadline_s
    total = 0
    while time.perf_counter() < end:
        total += sum(range(50))
    assert total >= 0


def _profiled_spin(interval_s: float = 0.002) -> SamplingProfiler:
    profiler = SamplingProfiler(interval_s=interval_s)
    with profiler:
        _spin()
    return profiler


class TestFrameLabel:
    def test_stem_and_function(self):
        assert frame_label("/a/b/engine.py", "run") == "engine:run"

    def test_reserved_characters_scrubbed(self):
        label = frame_label("/x/we ird.py", "fn;ish")
        assert ";" not in label
        assert " " not in label
        assert label == "we_ird:fn,ish"

    def test_empty_filename(self):
        assert frame_label("", "lambda") == "?:lambda"


class TestCollection:
    def test_busy_function_is_sampled(self):
        profiler = _profiled_spin()
        assert profiler.samples > 10
        assert profiler.duration_s > 0.2
        leaves = {stack[-1] for stack in profiler.stacks}
        assert any("test_profile:_spin" in label for label in leaves), leaves

    def test_stacks_are_root_first(self):
        profiler = _profiled_spin()
        spin_stacks = [
            stack
            for stack in profiler.stacks
            if stack[-1].startswith("test_profile:_spin")
        ]
        assert spin_stacks
        # The caller appears above the leaf, never below it.
        for stack in spin_stacks:
            assert any("_profiled_spin" in label for label in stack[:-1])

    def test_target_thread_defaults_to_creator(self):
        profiler = SamplingProfiler()
        assert profiler.target_thread_id == threading.get_ident()

    def test_profiling_another_thread(self):
        ready = threading.Event()
        done = threading.Event()

        def worker():
            ready.set()
            while not done.is_set():
                _spin(0.01)

        thread = threading.Thread(target=worker, daemon=True)
        thread.start()
        ready.wait()
        profiler = SamplingProfiler(
            interval_s=0.002, target_thread_id=thread.ident
        )
        with profiler:
            time.sleep(0.1)
        done.set()
        thread.join()
        assert profiler.samples > 0
        leaves = {stack[-1] for stack in profiler.stacks}
        assert any("_spin" in label for label in leaves)

    def test_max_depth_truncates(self):
        def recurse(n: int) -> None:
            if n == 0:
                _spin(0.15)
                return
            recurse(n - 1)

        profiler = SamplingProfiler(interval_s=0.002, max_depth=4)
        with profiler:
            recurse(20)
        assert profiler.samples > 0
        assert all(len(stack) <= 4 for stack in profiler.stacks)


class TestLifecycle:
    def test_double_start_raises(self):
        profiler = SamplingProfiler().start()
        try:
            with pytest.raises(ValidationError, match="already started"):
                profiler.start()
        finally:
            profiler.stop()

    def test_stop_is_idempotent(self):
        profiler = SamplingProfiler().start()
        profiler.stop()
        duration = profiler.duration_s
        profiler.stop()
        assert profiler.duration_s == duration

    def test_restart_accumulates(self):
        profiler = SamplingProfiler(interval_s=0.002)
        with profiler:
            _spin(0.1)
        first = profiler.samples
        with profiler:
            _spin(0.1)
        assert profiler.samples > first
        assert profiler.duration_s > 0.15

    def test_bad_interval_rejected(self):
        with pytest.raises(ValidationError, match="interval"):
            SamplingProfiler(interval_s=0.0)

    def test_bad_depth_rejected(self):
        with pytest.raises(ValidationError, match="max_depth"):
            SamplingProfiler(max_depth=0)


class TestOutput:
    def test_collapsed_format(self):
        profiler = _profiled_spin()
        text = profiler.collapsed()
        assert text.endswith("\n")
        lines = text.strip().splitlines()
        assert lines == sorted(lines)
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert int(count) >= 1
            assert all(frame for frame in stack.split(";"))

    def test_collapsed_counts_equal_samples(self):
        profiler = _profiled_spin()
        total = sum(
            int(line.rsplit(" ", 1)[1])
            for line in profiler.collapsed().strip().splitlines()
        )
        assert total == profiler.samples

    def test_empty_collapsed_is_empty_string(self):
        assert SamplingProfiler().collapsed() == ""

    def test_write_collapsed(self, tmp_path):
        profiler = _profiled_spin()
        out = profiler.write_collapsed(tmp_path / "nested" / "p.collapsed")
        assert out.exists()
        assert out.read_text() == profiler.collapsed()

    def test_top_self_and_total_accounting(self):
        profiler = _profiled_spin()
        rows = profiler.top(5)
        assert rows
        assert sum(row["self"] for row in profiler.top(10 ** 6)) == (
            profiler.samples
        )
        for row in rows:
            assert row["total"] >= row["self"]
            assert 0.0 < row["self_fraction"] <= 1.0
            assert row["total_fraction"] <= 1.0
        # Rows come sorted by self time, busiest first.
        selfs = [row["self"] for row in rows]
        assert selfs == sorted(selfs, reverse=True)

    def test_report_shape(self):
        profiler = _profiled_spin()
        report = profiler.report(top_n=3)
        assert report["samples"] == profiler.samples
        assert report["duration_s"] > 0.2
        assert report["rate_hz"] > 0
        assert report["distinct_stacks"] == len(profiler.stacks)
        assert len(report["top"]) <= 3
        assert report["top"][0]["frame"]

    def test_report_without_samples(self):
        report = SamplingProfiler().report()
        assert report["samples"] == 0
        assert report["top"] == []
        assert report["rate_hz"] == 0.0

    def test_format_top_table(self):
        profiler = _profiled_spin()
        table = profiler.format_top_table(3)
        assert "samples" in table
        assert "self%" in table
        assert "_spin" in table

    def test_format_top_table_empty(self):
        assert "no samples" in SamplingProfiler().format_top_table()
