"""Run manifests: identity fields, round trips, and error reporting."""

from __future__ import annotations

import json

import pytest

from repro.core.graph import Topology
from repro.obs.manifest import (
    MANIFEST_VERSION,
    RunManifest,
    read_manifest,
    topology_fingerprint,
)


def _topology(latency: float = 5.0) -> Topology:
    topology = Topology()
    topology.add_node("A")
    topology.add_node("B")
    topology.add_link("A", "B", latency)
    return topology.freeze()


class TestTopologyFingerprint:
    def test_stable_across_rebuilds(self):
        assert topology_fingerprint(_topology()) == topology_fingerprint(
            _topology()
        )

    def test_sensitive_to_attributes(self):
        assert topology_fingerprint(_topology(5.0)) != topology_fingerprint(
            _topology(6.0)
        )

    def test_short_hex(self):
        fingerprint = topology_fingerprint(_topology())
        assert len(fingerprint) == 16
        int(fingerprint, 16)


class TestRunManifest:
    def test_write_read_round_trip(self, tmp_path):
        manifest = RunManifest(
            label="evaluate",
            seed=7,
            schemes=("targeted",),
            flows=("A->B",),
            topology="abc123",
            duration_s=60.0,
            exec={"shards_run": 4},
            metrics={"net.sent.A->B": {"type": "counter", "value": 10.0}},
            spans={"recorded": 12, "dropped": 0},
            flight={"triggers": 1},
        )
        path = manifest.write(tmp_path / "manifest.json")
        loaded = read_manifest(path)
        assert loaded.to_dict() == manifest.to_dict()

    def test_version_stamped(self, tmp_path):
        path = RunManifest(label="x").write(tmp_path / "m.json")
        assert json.loads(path.read_text())["manifest_version"] == (
            MANIFEST_VERSION
        )

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "m.json"
        payload = RunManifest(label="x").to_dict()
        payload["manifest_version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(Exception, match="version"):
            read_manifest(path)

    def test_not_json_is_one_line_error(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text("definitely not json")
        with pytest.raises(ValueError, match="not a JSON manifest"):
            read_manifest(path)

    def test_missing_label_reported(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps({"manifest_version": MANIFEST_VERSION}))
        with pytest.raises(ValueError, match="missing"):
            read_manifest(path)
