"""Shared-risk link group derivation."""

from __future__ import annotations

import pytest

from repro.scenarios.srlg import SharedRiskGroup, derive_srlgs, undirected_links
from repro.util.validation import ValidationError


class TestUndirectedLinks:
    def test_canonical_sorted_pairs(self, reference_topology):
        links = undirected_links(reference_topology)
        assert links == tuple(sorted(links))
        assert all(u < v for u, v in links)

    def test_covers_every_directed_edge(self, reference_topology):
        links = set(undirected_links(reference_topology))
        for u, v in reference_topology.edges:
            assert tuple(sorted((u, v))) in links


class TestDeriveSrlgs:
    def test_reference_topology_yields_groups(self, reference_topology):
        groups = derive_srlgs(reference_topology)
        assert groups
        for group in groups:
            assert len(group.links) >= 2
            assert group.links == tuple(sorted(group.links))

    def test_groups_are_disjoint(self, reference_topology):
        seen: set = set()
        for group in derive_srlgs(reference_topology):
            overlap = seen & set(group.links)
            assert not overlap, overlap
            seen.update(group.links)

    def test_deterministic_in_topology_alone(self, reference_topology):
        assert derive_srlgs(reference_topology) == derive_srlgs(
            reference_topology
        )

    def test_tiny_radius_leaves_only_singletons_which_are_dropped(
        self, reference_topology
    ):
        assert derive_srlgs(reference_topology, radius_km=1e-6) == ()

    def test_min_links_one_keeps_singletons(self, reference_topology):
        groups = derive_srlgs(reference_topology, radius_km=1e-6, min_links=1)
        assert len(groups) == len(undirected_links(reference_topology))

    def test_directed_edges_include_both_directions(self, reference_topology):
        group = derive_srlgs(reference_topology)[0]
        edges = group.directed_edges(reference_topology)
        for u, v in group.links:
            assert (u, v) in edges and (v, u) in edges

    def test_bad_parameters_rejected(self, reference_topology):
        with pytest.raises(ValidationError):
            derive_srlgs(reference_topology, radius_km=0.0)
        with pytest.raises(ValidationError):
            derive_srlgs(reference_topology, min_links=0)

    def test_missing_coordinates_rejected(self, diamond):
        with pytest.raises(ValidationError, match="lat/lon"):
            derive_srlgs(diamond)


class TestSharedRiskGroup:
    def test_nodes_union_of_links(self):
        group = SharedRiskGroup(
            name="g", links=(("a", "b"), ("b", "c")), center=(0.0, 0.0)
        )
        assert group.nodes == frozenset({"a", "b", "c"})

    def test_non_canonical_link_rejected(self):
        with pytest.raises(ValidationError, match="canonical"):
            SharedRiskGroup(name="g", links=(("b", "a"),), center=(0.0, 0.0))

    def test_empty_group_rejected(self):
        with pytest.raises(ValidationError):
            SharedRiskGroup(name="g", links=(), center=(0.0, 0.0))
