"""Per-event-window reconciliation and the world-consistency check."""

from __future__ import annotations

import pytest

from repro.chaos.faults import FaultSchedule
from repro.netmodel.conditions import LinkState
from repro.netmodel.events import Burst, EventKind, LinkDegradation, ProblemEvent
from repro.scenarios import (
    check_world_consistency,
    compile_family,
    event_windows,
    expected_on_time,
    reconcile,
)
from repro.scenarios.families import CompiledScenario
from repro.simulation.results import WindowRecord
from repro.util.validation import ValidationError


def _event(start: float, duration: float, loss: float = 1.0) -> ProblemEvent:
    return ProblemEvent(
        kind=EventKind.LINK,
        location=("a", "b"),
        start_s=start,
        duration_s=duration,
        bursts=(
            Burst(
                start,
                duration,
                (LinkDegradation(("a", "b"), LinkState(loss_rate=loss)),),
            ),
        ),
    )


def _record(start: float, end: float, on_time: float) -> WindowRecord:
    return WindowRecord(
        start_s=start,
        end_s=end,
        graph_name="g",
        graph_edges=0,
        on_time_probability=on_time,
        lost_probability=1.0 - on_time,
        late_probability=0.0,
    )


class TestEventWindows:
    def test_guard_extends_and_horizon_clips(self):
        windows = event_windows([_event(5.0, 10.0)], horizon_s=12.0, guard_s=2.0)
        assert windows == [(5.0, 12.0)]

    def test_overlapping_and_zero_gap_windows_merge(self):
        events = [_event(0.0, 10.0), _event(10.0, 5.0), _event(30.0, 5.0)]
        windows = event_windows(events, horizon_s=100.0, guard_s=0.0)
        assert windows == [(0.0, 15.0), (30.0, 35.0)]

    def test_guard_can_cause_the_merge(self):
        events = [_event(0.0, 10.0), _event(10.4, 5.0)]
        windows = event_windows(events, horizon_s=100.0, guard_s=0.5)
        assert windows == [(0.0, 15.9)]

    def test_bad_arguments_rejected(self):
        with pytest.raises(ValidationError):
            event_windows([], horizon_s=0.0)
        with pytest.raises(ValidationError):
            event_windows([], horizon_s=1.0, guard_s=-1.0)


class TestExpectedOnTime:
    def test_overlap_weighted_mean(self):
        records = [_record(0.0, 10.0, 1.0), _record(10.0, 20.0, 0.5)]
        assert expected_on_time(records, 5.0, 15.0) == pytest.approx(0.75)

    def test_uncovered_window_counts_as_clean(self):
        assert expected_on_time([], 0.0, 10.0) == 1.0

    def test_partial_coverage_normalised_not_biased_to_zero(self):
        records = [_record(0.0, 5.0, 0.4)]
        assert expected_on_time(records, 0.0, 50.0) == pytest.approx(0.4)


class TestReconcile:
    def test_zero_sent_windows_are_skipped(self):
        rows = reconcile(
            send_times_s=[100.0],
            deliveries=[],
            records=[_record(0.0, 10.0, 1.0)],
            windows=[(0.0, 10.0)],
            deadline_ms=65.0,
        )
        assert rows == []

    def test_observed_fraction_and_tolerance(self):
        sends = [float(i) for i in range(10)]
        deliveries = [(float(i), 10.0) for i in range(8)]  # 8 on time
        rows = reconcile(
            sends,
            deliveries,
            records=[_record(0.0, 10.0, 0.8)],
            windows=[(0.0, 10.0)],
            deadline_ms=65.0,
            atol=0.1,
            z=2.0,
        )
        (row,) = rows
        assert row.sent == 10 and row.delivered == 8
        assert row.observed_on_time == pytest.approx(0.8)
        assert row.expected_on_time == pytest.approx(0.8)
        # atol + z * sqrt(p (1-p) / n)
        assert row.tolerance == pytest.approx(0.1 + 2.0 * (0.16 / 10) ** 0.5)
        assert row.ok

    def test_late_deliveries_do_not_count_as_on_time(self):
        rows = reconcile(
            [0.0, 1.0],
            [(0.0, 500.0), (1.0, 5.0)],
            records=[_record(0.0, 2.0, 0.5)],
            windows=[(0.0, 2.0)],
            deadline_ms=65.0,
        )
        assert rows[0].observed_on_time == pytest.approx(0.5)

    def test_out_of_tolerance_window_flagged(self):
        rows = reconcile(
            [float(i) for i in range(100)],
            [(float(i), 1.0) for i in range(100)],
            records=[_record(0.0, 100.0, 0.0)],
            windows=[(0.0, 100.0)],
            deadline_ms=65.0,
            atol=0.05,
        )
        assert not rows[0].ok


class TestWorldConsistency:
    def test_clean_for_every_compiled_family(self, reference_topology):
        for name in ("srlg-outage", "intermittent-edge"):
            compiled = compile_family(
                reference_topology, name, seed=5, duration_s=400.0
            )
            assert check_world_consistency(compiled) == []

    def test_detects_a_schedule_that_lost_an_outage(self, reference_topology):
        class BrokenWorld(CompiledScenario):
            def fault_schedule(self) -> FaultSchedule:
                return FaultSchedule()  # drops every blackhole

        edge = reference_topology.edges[0]
        event = ProblemEvent(
            kind=EventKind.LINK,
            location=edge,
            start_s=1.0,
            duration_s=5.0,
            bursts=(
                Burst(
                    1.0,
                    5.0,
                    (LinkDegradation(edge, LinkState(loss_rate=1.0)),),
                ),
            ),
        )
        broken = BrokenWorld(
            family_name="srlg-outage",
            seed=0,
            duration_s=10.0,
            description={},
            events=(event,),
            topology=reference_topology,
        )
        discrepancies = check_world_consistency(broken)
        assert discrepancies
        assert any("open" in line for line in discrepancies)
