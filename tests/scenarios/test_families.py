"""The four adversarial scenario families and the compiled artifact."""

from __future__ import annotations

import pytest

from repro.chaos.generate import FULL_LOSS
from repro.core.graph import Topology
from repro.scenarios import FAMILY_NAMES, compile_family, make_family
from repro.scenarios.families import (
    CongestionStormFamily,
    DiurnalFamily,
    IntermittentEdgeFamily,
    SRLGOutageFamily,
)
from repro.util.validation import ValidationError

DURATION_S = 600.0
SEED = 3

FAMILY_TYPES = {
    "srlg-outage": SRLGOutageFamily,
    "congestion-storm": CongestionStormFamily,
    "diurnal": DiurnalFamily,
    "intermittent-edge": IntermittentEdgeFamily,
}


@pytest.fixture(params=FAMILY_NAMES)
def compiled(request, reference_topology):
    return compile_family(
        reference_topology, request.param, seed=SEED, duration_s=DURATION_S
    )


class TestEveryFamily:
    def test_produces_events(self, compiled):
        assert compiled.events

    def test_events_stay_inside_the_horizon(self, compiled):
        for event in compiled.events:
            assert event.start_s >= 0.0
            assert event.end_s <= DURATION_S + 1e-9

    def test_events_reference_real_directed_edges(self, compiled):
        for event in compiled.events:
            for edge in event.affected_edges:
                assert compiled.topology.has_edge(*edge)

    def test_bursts_are_disjoint_per_edge(self, compiled):
        # The families pre-net their own windows, so per directed edge the
        # compiled contributions never overlap (same-cause netting done).
        per_edge: dict = {}
        for contribution in compiled.contributions():
            per_edge.setdefault(contribution.edge, []).append(
                (contribution.start_s, contribution.end_s)
            )
        for edge, windows in per_edge.items():
            windows.sort()
            for (_, prev_end), (start, _) in zip(windows, windows[1:]):
                assert start >= prev_end - 1e-9, (edge, windows)

    def test_description_carries_family_version_params(self, compiled):
        description = compiled.description
        assert description["family"] == compiled.family_name
        assert description["version"] == 1
        assert description["params"]["duration_s"] == DURATION_S

    def test_timeline_and_schedule_come_from_one_world(self, compiled):
        from repro.scenarios import check_world_consistency

        assert check_world_consistency(compiled) == []

    def test_timeline_accepts_a_longer_horizon(self, compiled):
        timeline = compiled.timeline(horizon_s=DURATION_S + 1.0)
        assert timeline.duration_s == DURATION_S + 1.0

    def test_for_duration_scales(self, compiled):
        family = FAMILY_TYPES[compiled.family_name].for_duration(45.0)
        assert family.duration_s == 45.0


class TestSRLGOutage:
    def test_outages_are_full_loss_both_directions(self, reference_topology):
        compiled = compile_family(
            reference_topology, "srlg-outage", seed=SEED, duration_s=DURATION_S
        )
        edges = set()
        for contribution in compiled.contributions():
            assert contribution.state.loss_rate >= FULL_LOSS
            edges.add(contribution.edge)
        for u, v in edges:
            assert (v, u) in edges

    def test_derives_a_nonempty_fault_schedule(self, reference_topology):
        compiled = compile_family(
            reference_topology, "srlg-outage", seed=SEED, duration_s=DURATION_S
        )
        schedule = compiled.fault_schedule()
        assert len(schedule) > 0
        assert all(not hole.bidirectional for hole in schedule.blackholes)

    def test_staggered_windows_overlap_within_an_episode(
        self, reference_topology
    ):
        # The family exists to exercise overlapping same-cause windows;
        # at least one episode must stagger onsets across its links.
        compiled = compile_family(
            reference_topology, "srlg-outage", seed=SEED, duration_s=DURATION_S
        )
        starts = {c.start_s for c in compiled.contributions()}
        assert len(starts) > 1


class TestCongestionStorm:
    def test_pure_latency_no_loss(self, reference_topology):
        compiled = compile_family(
            reference_topology,
            "congestion-storm",
            seed=SEED,
            duration_s=DURATION_S,
        )
        assert compiled.contributions()
        for contribution in compiled.contributions():
            assert contribution.state.loss_rate == 0.0
            assert contribution.state.extra_latency_ms > 0.0

    def test_no_blackholes_derived(self, reference_topology):
        compiled = compile_family(
            reference_topology,
            "congestion-storm",
            seed=SEED,
            duration_s=DURATION_S,
        )
        assert len(compiled.fault_schedule()) == 0


class TestDiurnal:
    def test_loss_bounded_and_fractional(self, reference_topology):
        compiled = compile_family(
            reference_topology, "diurnal", seed=SEED, duration_s=259200.0
        )
        assert compiled.events
        for contribution in compiled.contributions():
            assert contribution.state.loss_rate <= 0.5

    def test_concurrent_lossy_links_capped(self, reference_topology):
        family = DiurnalFamily()
        compiled = family.compile(reference_topology, SEED)
        # Sample each compiled segment: at no instant may more undirected
        # links carry fractional loss than the family's cap.
        boundaries = sorted(
            {c.start_s for c in compiled.contributions()}
            | {c.end_s for c in compiled.contributions()}
        )
        for start, end in zip(boundaries, boundaries[1:]):
            midpoint = (start + end) / 2.0
            lossy = {
                tuple(sorted(c.edge))
                for c in compiled.contributions()
                if c.start_s <= midpoint < c.end_s and c.state.loss_rate > 0.0
            }
            assert len(lossy) <= family.max_concurrent


class TestIntermittentEdge:
    def test_targets_low_degree_sites(self, reference_topology):
        family = IntermittentEdgeFamily.for_duration(DURATION_S)
        compiled = family.compile(reference_topology, SEED)
        degree = {
            node: len(reference_topology.adjacent_edges(node)) // 2
            for node in reference_topology.nodes
        }
        sites = sorted(
            reference_topology.nodes, key=lambda node: (degree[node], node)
        )[: family.edge_sites]
        for event in compiled.events:
            u, v = event.location
            assert u in sites or v in sites

    def test_off_periods_respect_bounds(self, reference_topology):
        family = IntermittentEdgeFamily.for_duration(DURATION_S)
        compiled = family.compile(reference_topology, SEED)
        for contribution in compiled.contributions():
            length = contribution.end_s - contribution.start_s
            # Clipping at the active span may shorten a window; none may
            # ever exceed the configured cap.
            assert length <= family.off_cap_s + 1e-9


class TestValidation:
    def test_unfrozen_topology_rejected(self):
        topology = Topology("raw")
        topology.add_node("a", lat=0.0, lon=0.0)
        topology.add_node("b", lat=1.0, lon=1.0)
        topology.add_link("a", "b", 1.0)
        with pytest.raises(ValidationError, match="frozen"):
            SRLGOutageFamily().compile(topology, 0)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValidationError):
            SRLGOutageFamily(duration_s=0.0)
        with pytest.raises(ValidationError):
            CongestionStormFamily(ring_decay=0.0)
        with pytest.raises(ValidationError):
            DiurnalFamily(base_loss=0.4, peak_loss=0.2)
        with pytest.raises(ValidationError):
            IntermittentEdgeFamily(off_alpha=1.0)

    def test_make_family_uses_for_duration(self):
        family = make_family("srlg-outage", duration_s=120.0)
        assert isinstance(family, SRLGOutageFamily)
        assert family.duration_s == 120.0
