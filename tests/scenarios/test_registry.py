"""Scenario-family registry: names, lookup, one-line errors."""

from __future__ import annotations

import pytest

from repro.scenarios import (
    FAMILY_NAMES,
    compile_family,
    family_names,
    make_family,
)
from repro.util.validation import ValidationError


class TestRegistry:
    def test_four_families_sorted(self):
        assert FAMILY_NAMES == (
            "congestion-storm",
            "diurnal",
            "intermittent-edge",
            "srlg-outage",
        )
        assert family_names() == FAMILY_NAMES

    def test_make_family_sets_duration(self):
        for name in FAMILY_NAMES:
            family = make_family(name, duration_s=90.0)
            assert family.name == name
            assert family.duration_s == 90.0

    def test_unknown_family_is_a_one_line_error_listing_known(self):
        with pytest.raises(ValidationError) as excinfo:
            make_family("solar-flare", duration_s=60.0)
        message = str(excinfo.value)
        assert "\n" not in message
        assert "solar-flare" in message
        for name in FAMILY_NAMES:
            assert name in message

    def test_compile_family_matches_direct_compile(self, reference_topology):
        via_registry = compile_family(
            reference_topology, "srlg-outage", seed=11, duration_s=300.0
        )
        direct = make_family("srlg-outage", duration_s=300.0).compile(
            reference_topology, 11
        )
        assert via_registry.description_json() == direct.description_json()
        assert via_registry.events == direct.events
        assert (
            via_registry.fault_schedule().fingerprint()
            == direct.fault_schedule().fingerprint()
        )
