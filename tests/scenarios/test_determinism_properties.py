"""Determinism properties: same seed, same bytes -- across calls and processes.

The scenario description is the identity of a run; everything else
(events, timeline, fault schedule) must be a pure function of
``(description, topology, seed)``.  These tests pin that with Hypothesis
across the seed/duration space, and with a subprocess round-trip that
proves the bytes survive a full interpreter restart (no hidden
``PYTHONHASHSEED`` or iteration-order dependence).
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.netmodel.topology import build_reference_topology
from repro.scenarios import FAMILY_NAMES, compile_family

DURATIONS = (30.0, 240.0, 3600.0)

_TOPOLOGY = build_reference_topology()


def _digest(name: str, seed: int, duration_s: float) -> str:
    """One hash covering description, events, and derived schedule."""
    compiled = compile_family(_TOPOLOGY, name, seed=seed, duration_s=duration_s)
    blob = "\x00".join(
        (
            compiled.description_json(),
            repr(compiled.events),
            compiled.fault_schedule().fingerprint(),
        )
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@given(
    name=st.sampled_from(FAMILY_NAMES),
    seed=st.integers(min_value=0, max_value=2**63 - 1),
    duration_s=st.sampled_from(DURATIONS),
)
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_same_seed_is_byte_identical_across_regeneration(
    name, seed, duration_s
):
    first = compile_family(_TOPOLOGY, name, seed=seed, duration_s=duration_s)
    second = compile_family(_TOPOLOGY, name, seed=seed, duration_s=duration_s)
    assert first.description_json() == second.description_json()
    assert first.events == second.events
    assert (
        first.fault_schedule().fingerprint()
        == second.fault_schedule().fingerprint()
    )
    assert _digest(name, seed, duration_s) == _digest(name, seed, duration_s)


@pytest.mark.parametrize("name", ("srlg-outage", "intermittent-edge"))
def test_perturbed_seed_changes_the_schedule(name):
    baseline = _digest(name, 7, 600.0)
    assert any(_digest(name, 7 + delta, 600.0) != baseline for delta in (1, 2, 3))


_CHILD = """
import hashlib, sys
from repro.netmodel.topology import build_reference_topology
from repro.scenarios import FAMILY_NAMES, compile_family

topology = build_reference_topology()
for name in FAMILY_NAMES:
    compiled = compile_family(topology, name, seed=21, duration_s=240.0)
    blob = "\\x00".join(
        (
            compiled.description_json(),
            repr(compiled.events),
            compiled.fault_schedule().fingerprint(),
        )
    )
    print(name, hashlib.sha256(blob.encode("utf-8")).hexdigest())
"""


def _run_child(hash_seed: str) -> str:
    env = dict(os.environ)
    repo_src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONHASHSEED"] = hash_seed
    result = subprocess.run(
        [sys.executable, "-c", _CHILD],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return result.stdout


def test_byte_identical_across_process_restarts():
    """Fresh interpreters with different hash seeds agree with this one."""
    first = _run_child("1")
    second = _run_child("2")
    assert first == second
    in_process = "".join(
        f"{name} {_digest(name, 21, 240.0)}\n" for name in FAMILY_NAMES
    )
    assert first == in_process
