"""Delta-hinted dynamic policies must match their un-hinted behaviour.

PR 5 lets the replay engines pass ``changed`` sets to ``update`` so the
dynamic schemes can skip recomputation when no relevant edge moved.  The
hint is an optimization, never a semantic: for every update sequence the
hinted policy must return exactly the graphs a hint-free policy returns.
The regression case that motivated these tests: a degraded edge whose
``extra_latency_ms`` changes while the degraded *set* stays identical
must still trigger a recompute, because the fingerprint's inflation
component moved even though the exclusion set did not.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.netmodel.conditions import LinkState
from repro.netmodel.topology import FlowSpec, ServiceSpec
from repro.routing import DynamicSinglePathPolicy, DynamicTwoDisjointPolicy

FLOW = FlowSpec("NYC", "SJC")

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

# A handful of reference-topology edges around the NYC->SJC flow; enough
# to exercise reroutes, fallbacks, and irrelevant far-away changes.
EDGES = (
    ("NYC", "CHI"),
    ("NYC", "WAS"),
    ("CHI", "DEN"),
    ("DEN", "SJC"),
    ("SEA", "SJC"),
    ("LAX", "SJC"),
)

link_states = st.builds(
    LinkState,
    loss_rate=st.sampled_from([0.0, 0.01, 0.05, 0.5, 1.0]),
    extra_latency_ms=st.sampled_from([0.0, 5.0, 50.0]),
)
views = st.dictionaries(st.sampled_from(EDGES), link_states, max_size=4)
view_sequences = st.lists(views, min_size=1, max_size=8)


def true_delta(previous, current):
    return frozenset(
        edge
        for edge in set(previous) | set(current)
        if previous.get(edge) != current.get(edge)
    )


class TestInflationChangeRecomputes:
    def test_degraded_edge_inflation_change_reroutes(self, diamond):
        """Same degraded set, new inflation: the decision must move.

        Both upstream links are lossy, so the policy is in its penalized
        fallback and routes via the lower-latency S->A.  Inflating S->A
        while the degraded set stays {S->A, S->B} must flip the choice to
        S->B -- a cache that keyed only on the degraded set would not.
        """
        policy = DynamicSinglePathPolicy().attach(
            diamond, FlowSpec("S", "T"), ServiceSpec()
        )
        both_lossy = {
            ("S", "A"): LinkState(loss_rate=0.9),
            ("S", "B"): LinkState(loss_rate=0.9),
        }
        baseline = policy.update(0.0, both_lossy, changed=None)
        assert ("S", "A") in baseline.edges
        inflated = {
            ("S", "A"): LinkState(loss_rate=0.9, extra_latency_ms=50.0),
            ("S", "B"): LinkState(loss_rate=0.9),
        }
        rerouted = policy.update(
            1.0, inflated, changed=frozenset({("S", "A")})
        )
        assert ("S", "B") in rerouted.edges
        assert ("S", "A") not in rerouted.edges

    def test_subthreshold_inflation_change_recomputes(self, diamond):
        """An inflation on a *clean* edge is relevant too."""
        policy = DynamicSinglePathPolicy().attach(
            diamond, FlowSpec("S", "T"), ServiceSpec()
        )
        baseline = policy.update(0.0, {}, changed=None)
        assert ("S", "A") in baseline.edges
        rerouted = policy.update(
            1.0,
            {("S", "A"): LinkState(extra_latency_ms=50.0)},
            changed=frozenset({("S", "A")}),
        )
        assert ("S", "A") not in rerouted.edges


class TestHintedMatchesUnhinted:
    @given(sequence=view_sequences)
    @SETTINGS
    def test_dynamic_single(self, reference_topology, sequence):
        hinted = DynamicSinglePathPolicy().attach(
            reference_topology, FLOW, ServiceSpec()
        )
        plain = DynamicSinglePathPolicy().attach(
            reference_topology, FLOW, ServiceSpec()
        )
        previous: dict = {}
        for step, view in enumerate(sequence):
            delta = true_delta(previous, view)
            with_hint = hinted.update(float(step), view, changed=delta)
            without = plain.update(float(step), view, changed=None)
            assert with_hint == without, (step, view, delta)
            previous = view

    @given(sequence=view_sequences)
    @SETTINGS
    def test_dynamic_two_disjoint(self, reference_topology, sequence):
        hinted = DynamicTwoDisjointPolicy().attach(
            reference_topology, FLOW, ServiceSpec()
        )
        plain = DynamicTwoDisjointPolicy().attach(
            reference_topology, FLOW, ServiceSpec()
        )
        previous: dict = {}
        for step, view in enumerate(sequence):
            delta = true_delta(previous, view)
            with_hint = hinted.update(float(step), view, changed=delta)
            without = plain.update(float(step), view, changed=None)
            assert with_hint == without, (step, view, delta)
            previous = view
