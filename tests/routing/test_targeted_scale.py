"""Targeted-search hot-spot guard at generated-topology scale.

The re-route candidate enumeration (two Dijkstra passes plus a
disjoint-path search) is the targeted scheme's hot spot on large
overlays.  These tests pin three things:

* a selection on a generated 100-node topology completes within a
  node-count-scaled wall-clock budget (see ``selection_budget_s``);
* the candidate beam cap prunes deterministically and never changes the
  12-site reference behaviour (the default cap's floor of 64 exceeds
  the reference overlay's 44 directed edges);
* the :mod:`repro.obs` counters/spans around the enumeration report it.
"""

from __future__ import annotations

import time

import pytest

from repro.netmodel.conditions import LinkState
from repro.netmodel.topology import ServiceSpec
from repro.routing.targeted import TargetedRedundancyPolicy
from repro.topogen import resolve_workload
from repro.util.validation import ValidationError


def selection_budget_s(num_nodes: int) -> float:
    """Wall-clock budget for ONE re-route decision at ``num_nodes``.

    The enumeration is O(E log V) Dijkstra work over a degree-bounded
    mesh, so near-linear in node count: budget 1 ms per node plus a
    100 ms floor for interpreter noise.  Measured cost on the isp-hier
    family is ~0.03 ms per node -- the budget is a >30x cushion, so a
    failure means an accidental quadratic blow-up, not jitter.
    """
    return 0.1 + 0.001 * num_nodes


def attach_targeted(workload, **kwargs):
    policy = TargetedRedundancyPolicy(**kwargs)
    flow = workload.flows[0]
    policy.attach(workload.topology, flow, ServiceSpec())
    return policy, flow


def middle_loss_view(policy, flow):
    """Observed view degrading one middle edge of the base graph."""
    middle = next(
        edge
        for edge in policy._base_graph.edges
        if flow.source not in edge and flow.destination not in edge
    )
    return {middle: LinkState(loss_rate=0.5)}


class TestSelectionBudget:
    def test_generated_100_node_selection_within_budget(self):
        workload = resolve_workload("isp-hier", 100, 7)
        policy, flow = attach_targeted(workload)
        observed = middle_loss_view(policy, flow)
        start = time.perf_counter()
        graph = policy.update(0.0, observed)
        elapsed = time.perf_counter() - start
        assert graph.name == "targeted/reroute"
        budget = selection_budget_s(workload.topology.num_nodes)
        assert elapsed < budget, (
            f"selection took {elapsed:.3f}s, budget {budget:.3f}s "
            f"for {workload.topology.num_nodes} nodes"
        )


class TestBeamCap:
    def test_default_cap_scales_with_node_count(self):
        workload = resolve_workload("isp-hier", 100, 7)
        policy, _flow = attach_targeted(workload)
        assert policy.candidate_cap == 400  # max(64, 4 * 100)

    def test_default_cap_never_binds_on_reference(self):
        workload = resolve_workload()
        policy, _flow = attach_targeted(workload)
        # 12 sites, 44 directed edges: the floor of 64 admits everything,
        # so tier-1 reference results are unchanged by the cap's existence.
        assert policy.candidate_cap == 64
        assert policy.candidate_cap > len(workload.topology.edges)

    def test_explicit_cap_prunes_and_still_connects(self):
        workload = resolve_workload("isp-hier", 100, 7)
        policy, flow = attach_targeted(workload, max_candidate_edges=24)
        observed = middle_loss_view(policy, flow)
        kept = policy._candidate_edges(observed)
        assert len(kept) == 24
        graph = policy.update(0.0, observed)
        assert graph.source == flow.source
        assert graph.destination == flow.destination
        assert len(graph.edges) >= 2  # two disjoint paths survived the cap

    def test_capped_selection_is_deterministic(self):
        workload = resolve_workload("isp-hier", 100, 7)
        first, flow = attach_targeted(workload, max_candidate_edges=24)
        second, _flow = attach_targeted(workload, max_candidate_edges=24)
        observed = middle_loss_view(first, flow)
        assert first._candidate_edges(observed) == second._candidate_edges(
            observed
        )
        assert (
            first.update(0.0, observed).sorted_edges()
            == second.update(0.0, observed).sorted_edges()
        )

    def test_cap_validated(self):
        with pytest.raises(ValidationError, match="max_candidate_edges"):
            TargetedRedundancyPolicy(max_candidate_edges=1)


class TestObservability:
    def test_counters_and_span_emitted(self):
        from repro.obs import Observability

        workload = resolve_workload("isp-hier", 100, 7)
        policy, flow = attach_targeted(workload, max_candidate_edges=24)
        obs = Observability()
        policy.set_observability(obs)
        policy.update(0.0, middle_loss_view(policy, flow))
        considered = obs.metrics.counter(
            "routing.targeted.candidates.considered"
        ).value
        kept = obs.metrics.counter("routing.targeted.candidates.kept").value
        pruned = obs.metrics.counter(
            "routing.targeted.candidates.pruned"
        ).value
        assert kept == 24
        assert considered > kept
        assert pruned == considered - kept
        names = [span.name for span in obs.tracer.spans]
        assert "targeted.candidates" in names

    def test_disabled_obs_is_detached(self):
        policy = TargetedRedundancyPolicy()
        policy.set_observability(None)
        assert policy.obs is None

    def test_uninstrumented_decisions_identical(self):
        from repro.obs import Observability

        workload = resolve_workload("isp-hier", 100, 7)
        plain, flow = attach_targeted(workload)
        traced, _flow = attach_targeted(workload)
        traced.set_observability(Observability())
        observed = middle_loss_view(plain, flow)
        assert (
            plain.update(0.0, observed).sorted_edges()
            == traced.update(0.0, observed).sorted_edges()
        )
