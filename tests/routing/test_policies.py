"""Routing policies: static, dynamic, flooding."""

from __future__ import annotations

import pytest

from repro.netmodel.conditions import LinkState
from repro.netmodel.topology import FlowSpec, ServiceSpec
from repro.routing import (
    DynamicSinglePathPolicy,
    DynamicTwoDisjointPolicy,
    StaticKDisjointPolicy,
    StaticSinglePathPolicy,
    TimeConstrainedFloodingPolicy,
)
from repro.util.validation import ValidationError

FLOW = FlowSpec("NYC", "SJC")


def attach(policy, topology, flow=FLOW, service=None):
    return policy.attach(topology, flow, service or ServiceSpec())


def degraded(*edges, rate=0.5):
    return {edge: LinkState(loss_rate=rate) for edge in edges}


class TestLifecycle:
    def test_update_before_attach_rejected(self, reference_topology):
        with pytest.raises(ValidationError):
            StaticSinglePathPolicy().update(0.0, {})

    def test_double_attach_rejected(self, reference_topology):
        policy = attach(StaticSinglePathPolicy(), reference_topology)
        with pytest.raises(ValidationError):
            policy.attach(reference_topology, FLOW, ServiceSpec())

    def test_time_must_advance(self, reference_topology):
        policy = attach(StaticSinglePathPolicy(), reference_topology)
        policy.update(5.0, {})
        with pytest.raises(ValidationError):
            policy.update(4.0, {})

    def test_reset_allows_replay(self, reference_topology):
        policy = attach(DynamicSinglePathPolicy(), reference_topology)
        policy.update(100.0, {})
        policy.reset()
        policy.update(0.0, {})  # does not raise

    def test_unknown_flow_endpoint(self, reference_topology):
        with pytest.raises(ValidationError):
            attach(StaticSinglePathPolicy(), reference_topology, FlowSpec("NYC", "XX"))


class TestStaticPolicies:
    def test_single_never_changes(self, reference_topology):
        policy = attach(StaticSinglePathPolicy(), reference_topology)
        clean = policy.update(0.0, {})
        under_loss = policy.update(1.0, degraded(("CHI", "DEN"), rate=1.0))
        assert clean == under_loss
        assert not policy.is_dynamic

    def test_two_disjoint_structure(self, reference_topology):
        policy = attach(StaticKDisjointPolicy(k=2), reference_topology)
        graph = policy.update(0.0, {})
        assert len(graph.in_neighbors("SJC")) == 2

    def test_scheme_names(self):
        assert StaticKDisjointPolicy(k=2).name == "static-two-disjoint"
        assert StaticKDisjointPolicy(k=3).name == "static-three-disjoint"

    def test_bad_k(self):
        with pytest.raises(ValidationError):
            StaticKDisjointPolicy(k=0)


class TestFloodingPolicy:
    def test_uses_service_deadline(self, reference_topology):
        policy = attach(TimeConstrainedFloodingPolicy(), reference_topology)
        graph = policy.update(0.0, {})
        assert "LON" not in graph.nodes  # over the 65 ms budget

    def test_deadline_override(self, reference_topology):
        generous = attach(
            TimeConstrainedFloodingPolicy(deadline_ms=150.0), reference_topology
        )
        graph = generous.update(0.0, {})
        assert "LON" in graph.nodes

    def test_static_under_loss(self, reference_topology):
        policy = attach(TimeConstrainedFloodingPolicy(), reference_topology)
        clean = policy.update(0.0, {})
        assert policy.update(1.0, degraded(("CHI", "DEN"))) == clean


class TestDynamicSingle:
    def test_avoids_degraded_link(self, reference_topology):
        policy = attach(DynamicSinglePathPolicy(), reference_topology)
        baseline = policy.update(0.0, {})
        assert ("CHI", "DEN") in baseline.edges
        rerouted = policy.update(1.0, degraded(("CHI", "DEN"), rate=0.8))
        assert ("CHI", "DEN") not in rerouted.edges
        assert rerouted.connects()

    def test_ignores_subthreshold_loss(self, reference_topology):
        policy = attach(DynamicSinglePathPolicy(loss_threshold=0.02), reference_topology)
        baseline = policy.update(0.0, {})
        same = policy.update(1.0, degraded(("CHI", "DEN"), rate=0.01))
        assert same == baseline

    def test_reverts_when_clean(self, reference_topology):
        policy = attach(DynamicSinglePathPolicy(), reference_topology)
        baseline = policy.update(0.0, {})
        policy.update(1.0, degraded(("CHI", "DEN"), rate=0.8))
        assert policy.update(2.0, {}) == baseline

    def test_latency_inflation_reroutes(self, reference_topology):
        policy = attach(DynamicSinglePathPolicy(), reference_topology)
        inflated = {("CHI", "DEN"): LinkState(extra_latency_ms=50.0)}
        graph = policy.update(0.0, inflated)
        assert ("CHI", "DEN") not in graph.edges

    def test_least_lossy_fallback(self, line):
        """When every route is lossy the policy still routes (best effort)."""
        policy = DynamicSinglePathPolicy().attach(
            line, FlowSpec("S", "T"), ServiceSpec()
        )
        graph = policy.update(0.0, degraded(("S", "M"), ("M", "T"), rate=0.9))
        assert graph.connects()


class TestDynamicTwoDisjoint:
    def test_avoids_degraded(self, reference_topology):
        policy = attach(DynamicTwoDisjointPolicy(), reference_topology)
        graph = policy.update(0.0, degraded(("DEN", "SJC"), rate=0.9))
        assert ("DEN", "SJC") not in graph.edges
        assert len(graph.in_neighbors("SJC")) == 2

    def test_penalized_fallback_picks_least_lossy(self, reference_topology):
        """All destination links lossy: the pair uses the two best."""
        policy = attach(DynamicTwoDisjointPolicy(), reference_topology)
        observed = degraded(
            ("DEN", "SJC"), ("SEA", "SJC"), rate=0.9
        ) | degraded(("LAX", "SJC"), rate=0.3)
        graph = policy.update(0.0, observed)
        # The least-lossy entry (LAX) must be one of the two used.
        assert ("LAX", "SJC") in graph.edges

    def test_decision_cached_between_identical_views(self, reference_topology):
        policy = attach(DynamicTwoDisjointPolicy(), reference_topology)
        view = degraded(("CHI", "DEN"))
        first = policy.update(0.0, view)
        second = policy.update(1.0, dict(view))
        assert first is second  # same object: cache hit
