"""Scheme registry."""

from __future__ import annotations

import pytest

from repro.routing.registry import (
    STANDARD_SCHEME_NAMES,
    make_policy,
    standard_policies,
)
from repro.util.validation import ValidationError


def test_six_standard_schemes():
    assert len(STANDARD_SCHEME_NAMES) == 6
    assert STANDARD_SCHEME_NAMES[0] == "static-single"
    assert STANDARD_SCHEME_NAMES[-1] == "flooding"
    assert "targeted" in STANDARD_SCHEME_NAMES


def test_make_policy_names_match():
    for name in STANDARD_SCHEME_NAMES:
        assert make_policy(name).name == name


def test_make_policy_fresh_instances():
    assert make_policy("targeted") is not make_policy("targeted")


def test_unknown_scheme_rejected():
    with pytest.raises(ValidationError, match="unknown scheme"):
        make_policy("quantum-routing")


def test_standard_policies_order():
    policies = standard_policies()
    assert [p.name for p in policies] == list(STANDARD_SCHEME_NAMES)


def test_dynamic_flags():
    assert not make_policy("static-single").is_dynamic
    assert not make_policy("static-two-disjoint").is_dynamic
    assert not make_policy("flooding").is_dynamic
    assert make_policy("dynamic-single").is_dynamic
    assert make_policy("dynamic-two-disjoint").is_dynamic
    assert make_policy("targeted").is_dynamic
