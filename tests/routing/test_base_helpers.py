"""Shared routing helpers: observed adjacency and timely-edge filtering."""

from __future__ import annotations

import pytest

from repro.netmodel.conditions import LinkState
from repro.routing.base import (
    degraded_edge_set,
    observed_adjacency,
    on_time_edges,
)


class TestDegradedEdgeSet:
    def test_threshold_applied(self):
        observed = {
            ("A", "B"): LinkState(loss_rate=0.5),
            ("B", "C"): LinkState(loss_rate=0.01),
        }
        assert degraded_edge_set(observed, 0.02) == {("A", "B")}

    def test_empty(self):
        assert degraded_edge_set({}, 0.02) == frozenset()


class TestObservedAdjacency:
    def test_base_latencies(self, diamond):
        adjacency = observed_adjacency(diamond, {})
        assert adjacency["S"]["A"] == 2.0

    def test_inflation_added(self, diamond):
        observed = {("S", "A"): LinkState(extra_latency_ms=10.0)}
        adjacency = observed_adjacency(diamond, observed)
        assert adjacency["S"]["A"] == 12.0

    def test_exclusion(self, diamond):
        adjacency = observed_adjacency(
            diamond, {}, exclude=frozenset({("S", "A")})
        )
        assert "A" not in adjacency["S"]

    def test_loss_penalty(self, diamond):
        observed = {("S", "A"): LinkState(loss_rate=0.5)}
        plain = observed_adjacency(diamond, observed)
        penalized = observed_adjacency(diamond, observed, penalize_loss=True)
        assert plain["S"]["A"] == 2.0
        assert penalized["S"]["A"] == pytest.approx(2.0 + 500.0)


class TestOnTimeEdges:
    def test_clean_reference(self, reference_topology):
        usable = on_time_edges(reference_topology, {}, "NYC", "SJC", 65.0)
        # Matches the flooding builder's edge set under clean conditions.
        from repro.core.builders import time_constrained_flooding_graph

        flooding = time_constrained_flooding_graph(
            reference_topology, "NYC", "SJC", 65.0
        )
        assert flooding.edges <= usable

    def test_inflation_disqualifies_edges(self, reference_topology):
        observed = {
            ("CHI", "DEN"): LinkState(extra_latency_ms=100.0),
        }
        usable = on_time_edges(reference_topology, observed, "NYC", "SJC", 65.0)
        assert ("CHI", "DEN") not in usable

    def test_tight_deadline_empty(self, reference_topology):
        usable = on_time_edges(reference_topology, {}, "NYC", "SJC", 5.0)
        assert usable == frozenset()

    def test_generous_deadline_includes_transatlantic(self, reference_topology):
        usable = on_time_edges(reference_topology, {}, "NYC", "SJC", 200.0)
        assert ("NYC", "LON") in usable
