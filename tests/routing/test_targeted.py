"""The targeted-redundancy policy (the paper's contribution)."""

from __future__ import annotations

import pytest

from repro.core.detection import ProblemType
from repro.netmodel.conditions import LinkState
from repro.netmodel.topology import FlowSpec, ServiceSpec
from repro.routing.targeted import TargetedRedundancyPolicy
from repro.util.validation import ValidationError

FLOW = FlowSpec("NYC", "SJC")


def make(topology, **kwargs):
    return TargetedRedundancyPolicy(**kwargs).attach(topology, FLOW, ServiceSpec())


def degraded(*edges, rate=0.6):
    return {edge: LinkState(loss_rate=rate) for edge in edges}


def destination_problem():
    return degraded(("DEN", "SJC"), ("LAX", "SJC"), ("SEA", "SJC"))


def source_problem():
    return degraded(("NYC", "CHI"), ("NYC", "WAS"))


class TestGraphSelection:
    def test_clean_uses_two_disjoint(self, reference_topology):
        policy = make(reference_topology)
        graph = policy.update(0.0, {})
        assert graph.name.endswith("/base")
        assert len(graph.in_neighbors("SJC")) == 2

    def test_destination_problem_switches(self, reference_topology):
        policy = make(reference_topology)
        policy.update(0.0, {})
        graph = policy.update(1.0, destination_problem())
        assert graph.name.endswith("/destination-problem")
        # Every in-link of the destination is covered.
        assert set(graph.in_neighbors("SJC")) == set(
            reference_topology.in_neighbors("SJC")
        )

    def test_source_problem_switches(self, reference_topology):
        policy = make(reference_topology)
        graph = policy.update(0.0, source_problem())
        assert graph.name.endswith("/source-problem")
        # All timely exits covered (trans-Atlantic ones excluded).
        assert set(graph.out_neighbors("NYC")) == {"CHI", "JHU", "WAS"}

    def test_both_problems_use_robust(self, reference_topology):
        policy = make(reference_topology)
        graph = policy.update(0.0, {**source_problem(), **destination_problem()})
        assert graph.name.endswith("/robust")

    def test_middle_problem_reroutes(self, reference_topology):
        policy = make(reference_topology)
        graph = policy.update(0.0, degraded(("CHI", "DEN"), rate=0.9))
        assert graph.name.endswith("/reroute")
        assert ("CHI", "DEN") not in graph.edges
        assert len(graph.in_neighbors("SJC")) == 2

    def test_problem_graphs_precomputed(self, reference_topology):
        policy = make(reference_topology)
        graphs = policy.problem_graphs
        assert set(graphs) == {
            ProblemType.SOURCE,
            ProblemType.DESTINATION,
            ProblemType.SOURCE_AND_DESTINATION,
        }
        for graph in graphs.values():
            assert graph.connects()


class TestHoldDown:
    def test_problem_graph_held_through_gap(self, reference_topology):
        policy = make(reference_topology, hold_down_s=10.0)
        policy.update(0.0, destination_problem())
        held = policy.update(5.0, {})  # burst gap
        assert held.name.endswith("/destination-problem")

    def test_reverts_after_hold_down(self, reference_topology):
        policy = make(reference_topology, hold_down_s=10.0)
        policy.update(0.0, destination_problem())
        graph = policy.update(11.0, {})
        assert graph.name.endswith("/base")

    def test_sticky_middle_exclusion(self, reference_topology):
        """A middle link seen lossy stays excluded through burst gaps."""
        policy = make(reference_topology, hold_down_s=10.0)
        policy.update(0.0, degraded(("CHI", "DEN"), rate=0.9))
        during_gap = policy.update(5.0, {})
        assert ("CHI", "DEN") not in during_gap.edges


class TestTimeliness:
    def test_reroute_stays_on_time(self, reference_topology):
        """Even under heavy exclusions, installed paths meet the deadline."""
        policy = make(reference_topology)
        observed = degraded(("CHI", "DEN"), ("WAS", "ATL"), rate=0.9)
        graph = policy.update(0.0, observed)
        assert graph.delivers_within(
            lambda u, v: reference_topology.latency(u, v), 65.0
        )

    def test_problem_graphs_meet_deadline(self, reference_topology):
        policy = make(reference_topology)
        latency = lambda u, v: reference_topology.latency(u, v)
        for graph in policy.problem_graphs.values():
            assert graph.delivers_within(latency, 65.0)

    def test_overlap_unions_reroute(self, reference_topology):
        """Endpoint problem + degraded middle edge of the problem graph."""
        policy = make(reference_topology)
        base_problem = policy.problem_graphs[ProblemType.DESTINATION]
        # Find a middle edge of the destination-problem graph to degrade.
        middle_edges = [
            e
            for e in base_problem.edges
            if "NYC" not in e and "SJC" not in e
        ]
        observed = {**destination_problem(), **degraded(middle_edges[0], rate=0.9)}
        graph = policy.update(0.0, observed)
        # Still protects all destination entries...
        assert set(graph.in_neighbors("SJC")) == set(
            reference_topology.in_neighbors("SJC")
        )
        # ...and is a strict superset of the precomputed problem graph
        # (the timely reroute was unioned in).
        assert base_problem.edges <= graph.edges


class TestCost:
    def test_problem_graphs_cost_bounded(self, reference_topology):
        """Problem graphs are pricier than the base pair but far below
        flooding -- the cost story of claim C6."""
        from repro.core.builders import time_constrained_flooding_graph

        policy = make(reference_topology)
        base = policy.update(0.0, {})
        flood = time_constrained_flooding_graph(
            reference_topology, "NYC", "SJC", 65.0
        )
        for graph in policy.problem_graphs.values():
            assert base.num_edges <= graph.num_edges < flood.num_edges


class TestValidation:
    def test_bad_hold_down(self):
        with pytest.raises(ValidationError):
            TargetedRedundancyPolicy(hold_down_s=-1.0)

    def test_bad_entry_limit(self):
        with pytest.raises(ValidationError):
            TargetedRedundancyPolicy(max_entry_links=0)

    def test_reset_restores_clean_state(self, reference_topology):
        policy = make(reference_topology, hold_down_s=100.0)
        policy.update(0.0, destination_problem())
        policy.reset()
        graph = policy.update(0.0, {})
        assert graph.name.endswith("/base")
