"""Decision timelines: boundaries, delayed observation, span merging."""

from __future__ import annotations

import pytest

from repro.netmodel.conditions import ConditionTimeline, Contribution, LinkState
from repro.netmodel.topology import FlowSpec, ServiceSpec
from repro.routing.dynamic import DynamicSinglePathPolicy
from repro.routing.static import StaticSinglePathPolicy
from repro.simulation.timeline import (
    _BOUNDARY_EPS,
    build_decision_timeline,
    decision_boundaries,
    graph_at,
    observed_view,
    observed_views_with_deltas,
)

FLOW = FlowSpec("S", "T")


def diamond_timeline(diamond, *contributions, duration=100.0):
    return ConditionTimeline(diamond, duration, contributions)


class TestBoundaries:
    def test_clean_trace_minimal(self, diamond):
        # Time 0 is always a change point, so its delayed echo appears too.
        tl = diamond_timeline(diamond)
        assert decision_boundaries(tl, 1.0) == [0.0, 1.0, 100.0]

    def test_changes_and_echoes(self, diamond):
        tl = diamond_timeline(
            diamond, Contribution(("S", "A"), 10.0, 20.0, LinkState(0.5))
        )
        boundaries = decision_boundaries(tl, 1.0)
        assert {0.0, 10.0, 11.0, 20.0, 21.0, 100.0} <= set(boundaries)

    def test_zero_delay_no_echo(self, diamond):
        tl = diamond_timeline(
            diamond, Contribution(("S", "A"), 10.0, 20.0, LinkState(0.5))
        )
        boundaries = decision_boundaries(tl, 0.0)
        assert boundaries == [0.0, 10.0, 20.0, 100.0]

    def test_echo_beyond_duration_clipped(self, diamond):
        tl = diamond_timeline(
            diamond, Contribution(("S", "A"), 95.0, 99.0, LinkState(0.5))
        )
        boundaries = decision_boundaries(tl, 10.0)
        assert all(b <= 100.0 for b in boundaries)

    def test_near_duplicate_boundaries_are_merged(self, diamond):
        # The 5.0 change's echo lands at 6.0; a second change begins
        # within float noise of it.  Regression: the merged list used to
        # keep both, creating a zero-width accumulation window.
        tl = diamond_timeline(
            diamond,
            Contribution(("S", "A"), 5.0, 50.0, LinkState(0.5)),
            Contribution(("A", "T"), 6.0 + _BOUNDARY_EPS / 2.0, 60.0, LinkState(0.5)),
        )
        boundaries = decision_boundaries(tl, 1.0)
        near_six = [b for b in boundaries if 5.5 < b < 6.5]
        assert near_six == [6.0]
        for left, right in zip(boundaries, boundaries[1:]):
            assert right - left > _BOUNDARY_EPS

    def test_duration_survives_nearby_boundary(self, diamond):
        # A change within float noise of the trace end must not displace
        # the exact closing boundary.
        tl = diamond_timeline(
            diamond,
            Contribution(
                ("S", "A"), 10.0, 100.0 - _BOUNDARY_EPS / 2.0, LinkState(0.5)
            ),
        )
        boundaries = decision_boundaries(tl, 0.0)
        assert boundaries[-1] == 100.0
        assert boundaries.count(100.0) == 1
        assert all(b == 100.0 or b < 100.0 - _BOUNDARY_EPS for b in boundaries)


class TestObservedView:
    def test_delay_shifts_view(self, diamond):
        tl = diamond_timeline(
            diamond, Contribution(("S", "A"), 10.0, 20.0, LinkState(0.5))
        )
        assert observed_view(tl, 10.5, 1.0) == {}  # not yet visible
        visible = observed_view(tl, 11.5, 1.0)
        assert ("S", "A") in visible

    def test_before_time_zero_clean(self, diamond):
        tl = diamond_timeline(diamond)
        assert observed_view(tl, 0.0, 5.0) == {}


class TestDecisionSpans:
    def test_static_single_span(self, diamond):
        tl = diamond_timeline(
            diamond, Contribution(("S", "A"), 10.0, 20.0, LinkState(0.5))
        )
        policy = StaticSinglePathPolicy()
        spans = build_decision_timeline(
            diamond, tl, FLOW, ServiceSpec(), policy, detection_delay_s=1.0
        )
        assert len(spans) == 1
        assert spans[0].start_s == 0.0
        assert spans[0].end_s == 100.0

    def test_dynamic_switches_after_delay(self, diamond):
        tl = diamond_timeline(
            diamond, Contribution(("S", "A"), 10.0, 20.0, LinkState(0.9))
        )
        policy = DynamicSinglePathPolicy()
        spans = build_decision_timeline(
            diamond, tl, FLOW, ServiceSpec(), policy, detection_delay_s=1.0
        )
        # base path until 11.0 (10.0 change + 1.0 delay), reroute until
        # 21.0, base again after.
        assert len(spans) == 3
        assert spans[0].end_s == pytest.approx(11.0)
        assert spans[1].end_s == pytest.approx(21.0)
        assert ("S", "A") not in spans[1].graph.edges
        assert spans[0].graph == spans[2].graph

    def test_spans_contiguous(self, diamond):
        tl = diamond_timeline(
            diamond,
            Contribution(("S", "A"), 10.0, 20.0, LinkState(0.9)),
            Contribution(("A", "T"), 30.0, 40.0, LinkState(0.9)),
        )
        spans = build_decision_timeline(
            diamond, tl, FLOW, ServiceSpec(), DynamicSinglePathPolicy(), 1.0
        )
        assert spans[0].start_s == 0.0
        assert spans[-1].end_s == 100.0
        for a, b in zip(spans, spans[1:]):
            assert a.end_s == b.start_s

    def test_graph_at_lookup(self, diamond):
        tl = diamond_timeline(
            diamond, Contribution(("S", "A"), 10.0, 20.0, LinkState(0.9))
        )
        spans = build_decision_timeline(
            diamond, tl, FLOW, ServiceSpec(), DynamicSinglePathPolicy(), 1.0
        )
        assert graph_at(spans, 5.0) == spans[0].graph
        assert graph_at(spans, 15.0) == spans[1].graph
        assert graph_at(spans, 99.0) == spans[-1].graph

    def test_attaches_unattached_policy(self, diamond):
        tl = diamond_timeline(diamond)
        policy = StaticSinglePathPolicy()
        build_decision_timeline(diamond, tl, FLOW, ServiceSpec(), policy, 1.0)
        assert policy.flow == FLOW

    def test_zero_width_boundaries_rejected(self, diamond):
        tl = diamond_timeline(diamond)
        with pytest.raises(ValueError, match="strictly increasing"):
            build_decision_timeline(
                diamond,
                tl,
                FLOW,
                ServiceSpec(),
                StaticSinglePathPolicy(),
                detection_delay_s=1.0,
                boundaries=[0.0, 1.0, 1.0, 2.0],
                observed_views=[{}, {}, {}],
            )

    def test_single_boundary_rejected(self, diamond):
        tl = diamond_timeline(diamond)
        with pytest.raises(ValueError, match="at least two"):
            build_decision_timeline(
                diamond,
                tl,
                FLOW,
                ServiceSpec(),
                StaticSinglePathPolicy(),
                detection_delay_s=1.0,
                boundaries=[0.0],
                observed_views=[],
            )


class TestObservedViewsWithDeltas:
    def test_matches_per_boundary_views(self, diamond):
        tl = diamond_timeline(
            diamond,
            Contribution(("S", "A"), 10.0, 20.0, LinkState(0.5)),
            Contribution(("A", "T"), 15.0, 30.0, LinkState(0.0, 25.0)),
        )
        boundaries = decision_boundaries(tl, 1.0)
        views, deltas = observed_views_with_deltas(tl, boundaries, 1.0)
        assert len(views) == len(deltas) == len(boundaries) - 1
        expected = [observed_view(tl, b, 1.0) for b in boundaries[:-1]]
        assert views == expected

    def test_deltas_name_exactly_the_changed_edges(self, diamond):
        tl = diamond_timeline(
            diamond, Contribution(("S", "A"), 10.0, 20.0, LinkState(0.5))
        )
        boundaries = decision_boundaries(tl, 1.0)
        views, deltas = observed_views_with_deltas(tl, boundaries, 1.0)
        previous: dict = {}
        for view, delta in zip(views, deltas):
            changed = {
                edge
                for edge in set(previous) | set(view)
                if previous.get(edge) != view.get(edge)
            }
            assert delta == changed
            previous = view
