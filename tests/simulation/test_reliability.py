"""Exact delivery-probability computation."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.dgraph import DisseminationGraph
from repro.simulation.reliability import (
    DeliveryProbabilities,
    ReliabilityLimitError,
    classify_delivery_masks,
    delivery_probabilities,
    on_time_probability,
)
from repro.util.rng import DeterministicStream


def constant(value):
    return lambda edge: value


def losses(mapping, default=0.0):
    return lambda edge: mapping.get(edge, default)


def latencies(mapping, default=1.0):
    return lambda edge: mapping.get(edge, default)


SINGLE = DisseminationGraph.from_path(["S", "A", "T"])
PAIR = DisseminationGraph.from_paths([["S", "A", "T"], ["S", "B", "T"]])


class TestHandComputed:
    def test_clean_single_path(self):
        result = delivery_probabilities(SINGLE, 10.0, constant(1.0), constant(0.0))
        assert result.on_time == 1.0
        assert result.lost == 0.0

    def test_single_path_one_lossy_edge(self):
        result = delivery_probabilities(
            SINGLE, 10.0, constant(1.0), losses({("S", "A"): 0.3})
        )
        assert result.on_time == pytest.approx(0.7)
        assert result.lost == pytest.approx(0.3)
        assert result.late == 0.0

    def test_single_path_two_lossy_edges(self):
        result = delivery_probabilities(
            SINGLE, 10.0, constant(1.0), losses({("S", "A"): 0.3, ("A", "T"): 0.5})
        )
        assert result.on_time == pytest.approx(0.7 * 0.5)

    def test_two_disjoint_paths(self):
        result = delivery_probabilities(
            PAIR,
            10.0,
            constant(1.0),
            losses({("S", "A"): 0.4, ("S", "B"): 0.5}),
        )
        # Fails only when both first hops drop: 0.4 * 0.5 = 0.2.
        assert result.on_time == pytest.approx(0.8)

    def test_dead_edge(self):
        result = delivery_probabilities(
            SINGLE, 10.0, constant(1.0), losses({("S", "A"): 1.0})
        )
        assert result.on_time == 0.0
        assert result.lost == 1.0

    def test_late_delivery(self):
        # Path takes 2 ms against a 1.5 ms deadline: delivered but late.
        result = delivery_probabilities(SINGLE, 1.5, constant(1.0), constant(0.0))
        assert result.on_time == 0.0
        assert result.eventually == 1.0
        assert result.late == 1.0

    def test_late_vs_lost_split(self):
        # Fast path is lossy; slow path is clean but over deadline.
        def latency(edge):
            return 1.0 if edge[1] == "A" or edge[0] == "A" else 10.0

        result = delivery_probabilities(
            PAIR, 3.0, latency, losses({("S", "A"): 0.25})
        )
        assert result.on_time == pytest.approx(0.75)
        assert result.late == pytest.approx(0.25)
        assert result.lost == pytest.approx(0.0)

    def test_latency_inflation_makes_late(self):
        result = delivery_probabilities(
            SINGLE, 3.0, latencies({("S", "A"): 5.0}), constant(0.0)
        )
        assert result.on_time == 0.0
        assert result.late == 1.0

    def test_redundant_graph_beats_paths(self):
        """The braid: S->A->T, S->B->T with a cross edge A->B.

        With ("A","T") dead, copies still flow S->A->B->T and S->B->T.
        """
        graph = DisseminationGraph(
            "S",
            "T",
            frozenset({("S", "A"), ("A", "T"), ("S", "B"), ("B", "T"), ("A", "B")}),
        )
        result = delivery_probabilities(
            graph,
            10.0,
            constant(1.0),
            losses({("A", "T"): 1.0, ("S", "B"): 0.5}),
        )
        # Delivery fails only if S->B drops AND ... A->B->T path: S->A (clean),
        # A->B (clean), B->T (clean) always works.  So probability 1.
        assert result.on_time == 1.0


class TestEdgeCases:
    def test_empty_graph(self):
        empty = DisseminationGraph.empty("S", "T")
        result = delivery_probabilities(empty, 10.0, constant(1.0), constant(0.0))
        assert result.on_time == 0.0
        assert result.lost == 1.0

    def test_deadline_validation(self):
        with pytest.raises(Exception):
            delivery_probabilities(SINGLE, 0.0, constant(1.0), constant(0.0))

    def test_loss_out_of_range(self):
        with pytest.raises(Exception):
            delivery_probabilities(SINGLE, 1.0, constant(1.0), constant(1.5))

    def test_lossy_edge_cap(self):
        wide = DisseminationGraph(
            "S",
            "T",
            frozenset({("S", f"M{i}") for i in range(25)} | {("M0", "T")}),
        )
        with pytest.raises(ReliabilityLimitError):
            delivery_probabilities(
                wide, 10.0, constant(1.0), constant(0.5), max_lossy_edges=10
            )

    def test_on_time_probability_wrapper(self):
        assert on_time_probability(
            SINGLE, 10.0, constant(1.0), losses({("S", "A"): 0.3})
        ) == pytest.approx(0.7)


class TestNoLossyFastPath:
    """Pin the certain-graph branch: past the all-clean fast path the
    baseline is always over deadline, so ``on_time`` is exactly 0."""

    def test_no_lossy_edges_late_graph(self):
        # Two 1 ms hops against a 1.5 ms deadline: certain, but late.
        classification, read = classify_delivery_masks(
            SINGLE, 1.5, constant(1.0), constant(0.0)
        )
        assert read == []
        assert classification.certain == DeliveryProbabilities(
            on_time=0.0, eventually=1.0
        )

    def test_no_lossy_edges_unreachable(self):
        # The only outgoing edge is fully dead: never delivered.
        classification, read = classify_delivery_masks(
            SINGLE, 1.5, constant(1.0), losses({("S", "A"): 1.0})
        )
        assert read == []
        assert classification.certain == DeliveryProbabilities(
            on_time=0.0, eventually=0.0
        )

    def test_no_lossy_edges_on_time(self):
        # The all-clean fast path fires first: certain (1, 1).
        classification, read = classify_delivery_masks(
            SINGLE, 10.0, constant(1.0), constant(0.0)
        )
        assert read == []
        assert classification.certain == DeliveryProbabilities(
            on_time=1.0, eventually=1.0
        )


class TestAgainstMonteCarlo:
    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_matches_sampling(self, seed):
        """Exact enumeration must agree with brute-force sampling."""
        stream = DeterministicStream(seed, "mc")
        graph = DisseminationGraph(
            "S",
            "T",
            frozenset(
                {("S", "A"), ("A", "T"), ("S", "B"), ("B", "T"), ("A", "B"), ("B", "A")}
            ),
        )
        loss_map = {
            ("S", "A"): stream.uniform("l1") * 0.9,
            ("A", "T"): stream.uniform("l2") * 0.9,
            ("S", "B"): stream.uniform("l3") * 0.9,
        }
        exact = delivery_probabilities(
            graph, 10.0, constant(1.0), losses(loss_map)
        ).on_time
        trials = 4000
        hits = 0
        for trial in range(trials):
            surviving = {
                edge
                for edge in graph.edges
                if not stream.bernoulli(loss_map.get(edge, 0.0), "t", trial, edge)
            }
            if graph.restrict(surviving).delivers_within(lambda u, v: 1.0, 10.0):
                hits += 1
        assert hits / trials == pytest.approx(exact, abs=0.035)
