"""Probability-accumulation kernel: backend selection and agreement.

The dual-backend contract under test:

* the ``pure`` backend is bitwise-identical to the frozen seed loops
  (re-implemented inline here as the reference, so a refactor of the
  kernel module cannot silently move the goalposts);
* the ``numpy`` backend agrees with ``pure`` up to float reassociation
  (absolute tolerance 1e-9 on probabilities in [0, 1]);
* batching never changes bits: ``batch(rows)[i]`` equals the single-row
  call on ``rows[i]`` exactly, and the vector threshold depends only on
  the classification size, never on how many rows ride in one call.
"""

from __future__ import annotations

import os
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dgraph import DisseminationGraph
from repro.simulation import kernel
from repro.simulation.reliability import (
    DeliveryProbabilities,
    accumulate_mask_probabilities,
    accumulate_mask_probabilities_batch,
    accumulate_recovery_probabilities_batch,
    classify_delivery_masks,
    classify_recovery_states,
)

requires_numpy = pytest.mark.skipif(
    not kernel.numpy_available(), reason="numpy backend not installed"
)


def _bits(value: float) -> bytes:
    """IEEE-754 bytes of a float -- the bitwise-equality comparator."""
    return struct.pack("<d", value)


# -- frozen reference loops --------------------------------------------------------
# Copied verbatim from the seed implementation (pre-kernel
# ``accumulate_mask_probabilities`` / ``delivery_probabilities_with_recovery``
# inner loops).  These are the ground truth the pure backend must match
# bit for bit; do not "simplify" them.


def _reference_mask_totals(classes, losses):
    on_time_total = 0.0
    eventually_total = 0.0
    for mask in range(len(classes)):
        probability = 1.0
        for bit, loss in enumerate(losses):
            if mask >> bit & 1:
                probability *= 1.0 - loss
            else:
                probability *= loss
        if probability == 0.0:
            continue
        outcome = classes[mask]
        if outcome == 2:
            on_time_total += probability
            eventually_total += probability
        elif outcome == 1:
            eventually_total += probability
    return on_time_total, eventually_total


def _reference_recovery_totals(classes, losses):
    on_time_total = 0.0
    eventually_total = 0.0
    for code in range(len(classes)):
        probability = 1.0
        value = code
        for loss in losses:
            state = value % 3
            value //= 3
            if state == 0:
                probability *= 1.0 - loss
            elif state == 1:
                probability *= loss * (1.0 - loss)
            else:
                probability *= loss * loss
        if probability == 0.0:
            continue
        outcome = classes[code]
        if outcome == 2:
            on_time_total += probability
            eventually_total += probability
        elif outcome == 1:
            eventually_total += probability
    return on_time_total, eventually_total


# -- strategies --------------------------------------------------------------------

_loss = st.floats(
    min_value=0.0,
    max_value=1.0,
    exclude_min=True,
    exclude_max=True,
    allow_nan=False,
    allow_infinity=False,
)


@st.composite
def mask_cases(draw, max_edges: int = 7):
    count = draw(st.integers(min_value=1, max_value=max_edges))
    losses = draw(
        st.lists(_loss, min_size=count, max_size=count)
    )
    classes = bytes(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=2),
                min_size=1 << count,
                max_size=1 << count,
            )
        )
    )
    return classes, losses


@st.composite
def recovery_cases(draw, max_edges: int = 4):
    count = draw(st.integers(min_value=1, max_value=max_edges))
    losses = draw(
        st.lists(_loss, min_size=count, max_size=count)
    )
    classes = bytes(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=2),
                min_size=3**count,
                max_size=3**count,
            )
        )
    )
    return classes, losses


# -- backend selection -------------------------------------------------------------


class TestBackendSelection:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernel.set_backend("fortran")

    def test_force_backend_exports_env_and_restores(self):
        previous = os.environ.get(kernel.KERNEL_ENV)
        with kernel.force_backend("pure") as resolved:
            assert resolved == "pure"
            assert kernel.active_backend() == "pure"
            # Pool workers are fresh interpreters: they resolve the
            # backend from the environment, which must carry the pin.
            assert os.environ[kernel.KERNEL_ENV] == "pure"
        assert os.environ.get(kernel.KERNEL_ENV) == previous

    def test_auto_prefers_numpy_when_available(self):
        with kernel.force_backend("auto"):
            expected = "numpy" if kernel.numpy_available() else "pure"
            assert kernel.active_backend() == expected

    def test_numpy_request_fails_loudly_without_numpy(self, monkeypatch):
        monkeypatch.setattr(kernel, "_numpy_module", None)
        monkeypatch.setattr(kernel, "_backend_override", None)
        with pytest.raises(ValueError, match="not importable"):
            kernel.set_backend("numpy")
        monkeypatch.setenv(kernel.KERNEL_ENV, "numpy")
        with pytest.raises(ValueError, match="not importable"):
            kernel.active_backend()
        # auto degrades silently -- that is its contract
        monkeypatch.setenv(kernel.KERNEL_ENV, "auto")
        assert kernel.active_backend() == "pure"

    def test_describe_names_the_contract(self):
        with kernel.force_backend("pure"):
            payload = kernel.describe()
        assert payload["backend"] == "pure"
        assert payload["numpy_available"] == kernel.numpy_available()
        assert payload["vector_min_cases"] == kernel.VECTOR_MIN_CASES


# -- pure backend vs. the frozen reference -----------------------------------------


class TestPureBitwise:
    @settings(max_examples=200, deadline=None)
    @given(mask_cases())
    def test_mask_totals_match_reference_bitwise(self, case):
        classes, losses = case
        with kernel.force_backend("pure"):
            on_time, eventually = kernel.mask_totals(classes, losses)
        ref_on, ref_event = _reference_mask_totals(classes, losses)
        assert _bits(on_time) == _bits(ref_on)
        assert _bits(eventually) == _bits(ref_event)

    @settings(max_examples=100, deadline=None)
    @given(recovery_cases())
    def test_recovery_totals_match_reference_bitwise(self, case):
        classes, losses = case
        with kernel.force_backend("pure"):
            on_time, eventually = kernel.recovery_totals(classes, losses)
        ref_on, ref_event = _reference_recovery_totals(classes, losses)
        assert _bits(on_time) == _bits(ref_on)
        assert _bits(eventually) == _bits(ref_event)

    def test_batch_equals_singles_bitwise(self):
        classes = bytes((mask * 7) % 3 for mask in range(1 << 5))
        rows = [[0.1 + 0.02 * i] * 5 for i in range(9)]
        with kernel.force_backend("pure"):
            batched = kernel.mask_totals_batch(classes, rows)
            singles = [kernel.mask_totals(classes, row) for row in rows]
        assert [tuple(map(_bits, pair)) for pair in batched] == [
            tuple(map(_bits, pair)) for pair in singles
        ]


# -- numpy backend agreement -------------------------------------------------------


@requires_numpy
class TestVectorAgreement:
    @settings(max_examples=150, deadline=None)
    @given(mask_cases())
    def test_mask_totals_within_reassociation_tolerance(self, case):
        classes, losses = case
        with kernel.force_backend("pure"):
            pure = kernel.mask_totals(classes, losses)
        with kernel.force_backend("numpy"):
            # Bypass the size threshold: compare the vector arithmetic
            # itself, not the dispatch decision.
            np = kernel._numpy()
            weights = kernel._mask_weights_vector(np, [list(losses)])
            vector = kernel._class_sums_vector(np, classes, weights)[0]
        assert vector[0] == pytest.approx(pure[0], abs=1e-9)
        assert vector[1] == pytest.approx(pure[1], abs=1e-9)

    @settings(max_examples=75, deadline=None)
    @given(recovery_cases())
    def test_recovery_totals_within_reassociation_tolerance(self, case):
        classes, losses = case
        with kernel.force_backend("pure"):
            pure = kernel.recovery_totals(classes, losses)
        np = kernel._numpy()
        weights = kernel._recovery_weights_vector(np, [list(losses)])
        vector = kernel._class_sums_vector(np, classes, weights)[0]
        assert vector[0] == pytest.approx(pure[0], abs=1e-9)
        assert vector[1] == pytest.approx(pure[1], abs=1e-9)

    def test_vector_batch_equals_vector_singles_bitwise(self):
        # 2^7 cases clears VECTOR_MIN_CASES, so singles take the vector
        # path too -- the batch contract is bitwise, not approximate.
        classes = bytes((mask * 5) % 3 for mask in range(1 << 7))
        rows = [[0.05 * (i + 1) % 0.9 + 0.01] * 7 for i in range(11)]
        with kernel.force_backend("numpy"):
            batched = kernel.mask_totals_batch(classes, rows)
            singles = [kernel.mask_totals(classes, row) for row in rows]
        assert [tuple(map(_bits, pair)) for pair in batched] == [
            tuple(map(_bits, pair)) for pair in singles
        ]

    def test_threshold_depends_on_classification_not_batch_size(self):
        small = bytes([2, 1, 0, 2])  # 2 lossy edges: 4 cases, under threshold
        large = bytes(
            (mask * 3) % 3 for mask in range(kernel.VECTOR_MIN_CASES)
        )  # exactly at threshold: vector path
        with kernel.force_backend("numpy"):
            before = kernel.counters()
            # Many rows of a tiny classification stay pure: the threshold
            # must not flip with batch size, or the same (classification,
            # losses) pair would change bits across call shapes.
            kernel.mask_totals_batch(small, [[0.25, 0.5]] * 200)
            mid = kernel.counters()
            kernel.mask_totals(large, [0.3] * 6)
            after = kernel.counters()
        assert mid["pure_calls"] - before["pure_calls"] == 1
        assert mid["vector_calls"] == before["vector_calls"]
        assert after["vector_calls"] - mid["vector_calls"] == 1
        assert after["pure_calls"] == mid["pure_calls"]


# -- counters ----------------------------------------------------------------------


class TestCounters:
    def test_counters_charge_calls_rows_and_time(self):
        classes = bytes([2, 0])
        with kernel.force_backend("pure"):
            before = kernel.counters()
            kernel.mask_totals_batch(classes, [[0.5]] * 7)
            kernel.mask_totals(classes, [0.5])
            delta = kernel.counters_delta(before, kernel.counters())
        assert delta["pure_calls"] == 2
        assert delta["pure_rows"] == 8
        assert delta["pure_s"] >= 0.0
        assert delta["vector_calls"] == 0
        assert delta["vector_rows"] == 0

    def test_empty_batch_charges_nothing(self):
        before = kernel.counters()
        assert kernel.mask_totals_batch(bytes([2, 0]), []) == []
        assert kernel.recovery_totals_batch(bytes([2, 0, 1]), []) == []
        assert kernel.counters_delta(before, kernel.counters()) == {
            name: 0 for name in before
        }


# -- end-to-end through the reliability layer --------------------------------------


def _latencies(mapping, default=1.0):
    return lambda edge: mapping.get(edge, default)


def _losses(mapping, default=0.0):
    return lambda edge: mapping.get(edge, default)


class TestReliabilityIntegration:
    GRAPH = DisseminationGraph.from_paths(
        [["S", "A", "T"], ["S", "B", "T"], ["S", "C", "T"]]
    )

    def _classification(self):
        return classify_delivery_masks(
            self.GRAPH,
            10.0,
            _latencies({}),
            _losses(
                {
                    ("S", "A"): 0.2,
                    ("A", "T"): 0.3,
                    ("S", "B"): 0.4,
                    ("B", "T"): 0.5,
                    ("S", "C"): 0.6,
                    ("C", "T"): 0.7,
                }
            ),
        )

    @requires_numpy
    def test_backends_agree_on_real_classification(self):
        classification, losses = self._classification()
        assert len(classification.classes) == 64  # 6 lossy edges
        with kernel.force_backend("pure"):
            pure = accumulate_mask_probabilities(classification, losses)
        with kernel.force_backend("numpy"):
            vector = accumulate_mask_probabilities(classification, losses)
        assert vector.on_time == pytest.approx(pure.on_time, abs=1e-9)
        assert vector.eventually == pytest.approx(pure.eventually, abs=1e-9)

    def test_certain_classification_skips_the_kernel(self):
        classification, losses = classify_delivery_masks(
            self.GRAPH, 10.0, _latencies({}), _losses({})
        )
        assert classification.certain == DeliveryProbabilities(1.0, 1.0)
        assert losses == []
        before = kernel.counters()
        results = accumulate_mask_probabilities_batch(classification, [[], []])
        assert results == [classification.certain] * 2
        assert kernel.counters_delta(before, kernel.counters()) == {
            name: 0 for name in before
        }

    def test_certain_recovery_classification_skips_the_kernel(self):
        single = DisseminationGraph.from_path(["S", "A", "T"])
        classification, _losses_read = classify_recovery_states(
            single, 30.0, _latencies({}, 5.0), _losses({}), _latencies({}, 20.0)
        )
        assert classification.certain == DeliveryProbabilities(1.0, 1.0)
        before = kernel.counters()
        results = accumulate_recovery_probabilities_batch(classification, [[]])
        assert results == [classification.certain]
        assert kernel.counters_delta(before, kernel.counters()) == {
            name: 0 for name in before
        }
