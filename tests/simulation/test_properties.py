"""Property-based invariants of the delivery-probability model.

These are the invariants the paper's whole argument rests on:

* redundancy can only help -- adding edges to a dissemination graph never
  lowers the on-time delivery probability;
* cleaner links can only help -- lowering a loss rate never lowers it;
* flooding is optimal -- no dissemination graph beats time-constrained
  flooding under any loss pattern.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.builders import (
    destination_problem_graph,
    single_path_graph,
    source_problem_graph,
    time_constrained_flooding_graph,
    two_disjoint_paths_graph,
)
from repro.simulation.reliability import delivery_probabilities

DEADLINE = 65.0

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


def loss_pattern(draw, topology, max_lossy=6):
    edges = draw(
        st.sets(st.sampled_from(sorted(topology.edges)), max_size=max_lossy)
    )
    return {
        edge: draw(st.floats(0.05, 1.0, allow_nan=False)) for edge in edges
    }


class TestMonotonicity:
    @given(data=st.data())
    @SETTINGS
    def test_superset_graph_never_worse(self, reference_topology, data):
        losses = loss_pattern(data.draw, reference_topology)
        latency_of = lambda edge: reference_topology.latency(*edge)
        loss_of = lambda edge: losses.get(edge, 0.0)
        smaller = two_disjoint_paths_graph(reference_topology, "NYC", "SJC")
        larger = destination_problem_graph(
            reference_topology, "NYC", "SJC", deadline_ms=DEADLINE
        )
        assert smaller.edges <= larger.edges
        p_small = delivery_probabilities(smaller, DEADLINE, latency_of, loss_of)
        p_large = delivery_probabilities(larger, DEADLINE, latency_of, loss_of)
        assert p_large.on_time >= p_small.on_time - 1e-9

    @given(data=st.data())
    @SETTINGS
    def test_less_loss_never_worse(self, reference_topology, data):
        losses = loss_pattern(data.draw, reference_topology)
        graph = two_disjoint_paths_graph(reference_topology, "WAS", "SEA")
        latency_of = lambda edge: reference_topology.latency(*edge)
        before = delivery_probabilities(
            graph, DEADLINE, latency_of, lambda e: losses.get(e, 0.0)
        )
        halved = {edge: rate / 2 for edge, rate in losses.items()}
        after = delivery_probabilities(
            graph, DEADLINE, latency_of, lambda e: halved.get(e, 0.0)
        )
        assert after.on_time >= before.on_time - 1e-9

    @given(data=st.data())
    @SETTINGS
    def test_flooding_dominates_all_schemes(self, reference_topology, data):
        losses = loss_pattern(data.draw, reference_topology)
        latency_of = lambda edge: reference_topology.latency(*edge)
        loss_of = lambda edge: losses.get(edge, 0.0)
        flooding = time_constrained_flooding_graph(
            reference_topology, "ATL", "SJC", DEADLINE
        )
        p_flooding = delivery_probabilities(
            flooding, DEADLINE, latency_of, loss_of
        ).on_time
        for graph in (
            single_path_graph(reference_topology, "ATL", "SJC"),
            two_disjoint_paths_graph(reference_topology, "ATL", "SJC"),
            source_problem_graph(
                reference_topology, "ATL", "SJC", deadline_ms=DEADLINE
            ),
            destination_problem_graph(
                reference_topology, "ATL", "SJC", deadline_ms=DEADLINE
            ),
        ):
            p = delivery_probabilities(graph, DEADLINE, latency_of, loss_of).on_time
            assert p <= p_flooding + 1e-9, graph.name

    @given(data=st.data())
    @SETTINGS
    def test_probabilities_well_formed(self, reference_topology, data):
        losses = loss_pattern(data.draw, reference_topology, max_lossy=8)
        latency_of = lambda edge: reference_topology.latency(*edge)
        loss_of = lambda edge: losses.get(edge, 0.0)
        graph = destination_problem_graph(
            reference_topology, "JHU", "LAX", deadline_ms=DEADLINE
        )
        result = delivery_probabilities(graph, DEADLINE, latency_of, loss_of)
        assert 0.0 <= result.on_time <= result.eventually <= 1.0
        assert result.lost + result.late + result.on_time == pytest.approx(1.0)
