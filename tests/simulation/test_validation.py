"""Cross-engine validation utilities."""

from __future__ import annotations

import pytest

from repro.netmodel.conditions import ConditionTimeline, Contribution, LinkState
from repro.netmodel.topology import FlowSpec, ServiceSpec
from repro.simulation.validation import compare_engines

FLOW = FlowSpec("S", "T")
SERVICE = ServiceSpec(deadline_ms=15.0, send_interval_ms=10.0, rtt_budget_ms=30.0)


def timeline(diamond, *contributions, duration=300.0):
    return ConditionTimeline(diamond, duration, contributions)


class TestCompareEngines:
    def test_clean_trace_exact_agreement(self, diamond):
        comparisons = compare_engines(
            diamond,
            timeline(diamond),
            FLOW,
            SERVICE,
            scheme_names=("static-single", "flooding"),
        )
        for comparison in comparisons:
            assert comparison.analytic_on_time_fraction == 1.0
            assert comparison.packet_on_time_fraction == 1.0
            assert comparison.consistent

    def test_lossy_trace_within_tolerance(self, diamond):
        tl = timeline(
            diamond,
            Contribution(("S", "A"), 50.0, 250.0, LinkState(loss_rate=0.5)),
        )
        comparisons = compare_engines(
            diamond,
            tl,
            FLOW,
            SERVICE,
            scheme_names=("static-single", "static-two-disjoint", "targeted"),
            seed=5,
        )
        for comparison in comparisons:
            assert comparison.consistent, (
                comparison.scheme,
                comparison.analytic_on_time_fraction,
                comparison.packet_on_time_fraction,
            )

    def test_windowed_comparison(self, diamond):
        tl = timeline(
            diamond,
            Contribution(("S", "A"), 50.0, 250.0, LinkState(loss_rate=1.0)),
        )
        comparisons = compare_engines(
            diamond,
            tl,
            FLOW,
            SERVICE,
            scheme_names=("static-single",),
            window=(100.0, 200.0),
            seed=5,
        )
        comparison = comparisons[0]
        # Window lies entirely inside the blackout.
        assert comparison.analytic_on_time_fraction == pytest.approx(0.0)
        assert comparison.packet_on_time_fraction == pytest.approx(0.0)
        assert comparison.consistent

    def test_tolerance_scales_with_packets(self, diamond):
        tl = timeline(
            diamond,
            Contribution(("S", "A"), 0.0, 300.0, LinkState(loss_rate=0.5)),
        )
        short = compare_engines(
            diamond, tl, FLOW, SERVICE, ("static-single",), window=(0.0, 10.0)
        )[0]
        long = compare_engines(
            diamond, tl, FLOW, SERVICE, ("static-single",), window=(0.0, 200.0)
        )[0]
        assert long.tolerance < short.tolerance
