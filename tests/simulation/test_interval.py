"""The analytic interval replay engine."""

from __future__ import annotations

import pytest

from repro.core.dgraph import DisseminationGraph
from repro.core.graph import Topology
from repro.netmodel.conditions import ConditionTimeline, Contribution, LinkState
from repro.netmodel.topology import FlowSpec, ServiceSpec
from repro.routing.registry import make_policy
from repro.simulation.interval import (
    PROB_CACHE_MAX_BYTES_ENV,
    PROB_CANONICAL_MAX_ENTRIES_ENV,
    _ProbabilityCache,
    default_prob_cache_max_bytes,
    default_prob_canonical_max_entries,
    replay_flow,
    run_replay,
)
from repro.simulation.results import ReplayConfig
from repro.simulation.timeline import (
    decision_boundaries,
    observed_views_with_deltas,
)

FLOW = FlowSpec("S", "T")
SERVICE = ServiceSpec(deadline_ms=15.0, send_interval_ms=10.0, rtt_budget_ms=30.0)


def tl(diamond, *contributions, duration=100.0):
    return ConditionTimeline(diamond, duration, contributions)


class TestReplayFlow:
    def test_clean_trace_zero_unavailability(self, diamond):
        stats = replay_flow(
            diamond,
            tl(diamond),
            FLOW,
            SERVICE,
            make_policy("static-single"),
        )
        assert stats.unavailable_s == 0.0
        assert stats.duration_s == pytest.approx(100.0)
        assert stats.average_cost_messages == 2  # S->A->T

    def test_hand_computed_blackout(self, diamond):
        """10 s of 100% loss on S->A: static single loses exactly 10 s."""
        timeline = tl(
            diamond, Contribution(("S", "A"), 40.0, 50.0, LinkState(loss_rate=1.0))
        )
        stats = replay_flow(
            diamond, timeline, FLOW, SERVICE, make_policy("static-single")
        )
        assert stats.unavailable_s == pytest.approx(10.0)
        assert stats.lost_s == pytest.approx(10.0)
        assert stats.late_s == 0.0

    def test_hand_computed_partial_loss(self, diamond):
        timeline = tl(
            diamond, Contribution(("S", "A"), 40.0, 50.0, LinkState(loss_rate=0.3))
        )
        stats = replay_flow(
            diamond, timeline, FLOW, SERVICE, make_policy("static-single")
        )
        assert stats.unavailable_s == pytest.approx(3.0)

    def test_dynamic_single_loses_only_detection_delay(self, diamond):
        timeline = tl(
            diamond, Contribution(("S", "A"), 40.0, 50.0, LinkState(loss_rate=1.0))
        )
        stats = replay_flow(
            diamond,
            timeline,
            FLOW,
            SERVICE,
            make_policy("dynamic-single"),
            ReplayConfig(detection_delay_s=2.0),
        )
        # Blind for exactly the detection delay, then routes via B.
        assert stats.unavailable_s == pytest.approx(2.0)

    def test_two_disjoint_covers_single_link(self, diamond):
        timeline = tl(
            diamond, Contribution(("S", "A"), 40.0, 50.0, LinkState(loss_rate=1.0))
        )
        stats = replay_flow(
            diamond, timeline, FLOW, SERVICE, make_policy("static-two-disjoint")
        )
        assert stats.unavailable_s == 0.0

    def test_flooding_is_lower_bound(self, diamond):
        timeline = tl(
            diamond,
            Contribution(("S", "A"), 40.0, 50.0, LinkState(loss_rate=0.8)),
            Contribution(("S", "B"), 45.0, 55.0, LinkState(loss_rate=0.8)),
        )
        unavailability = {}
        for scheme in ("static-single", "static-two-disjoint", "flooding"):
            stats = replay_flow(
                diamond, timeline, FLOW, SERVICE, make_policy(scheme)
            )
            unavailability[scheme] = stats.unavailable_s
        assert unavailability["flooding"] <= unavailability["static-two-disjoint"]
        assert (
            unavailability["static-two-disjoint"]
            <= unavailability["static-single"] + 1e-9
        )

    def test_late_accounting(self, diamond):
        """Latency inflation pushes the only path past the deadline."""
        timeline = tl(
            diamond,
            Contribution(
                ("S", "A"), 40.0, 50.0, LinkState(extra_latency_ms=100.0)
            ),
            Contribution(
                ("S", "B"), 40.0, 50.0, LinkState(extra_latency_ms=100.0)
            ),
        )
        stats = replay_flow(
            diamond, timeline, FLOW, SERVICE, make_policy("static-two-disjoint")
        )
        assert stats.late_s == pytest.approx(10.0)
        assert stats.lost_s == 0.0

    def test_window_collection(self, diamond):
        timeline = tl(
            diamond, Contribution(("S", "A"), 40.0, 50.0, LinkState(loss_rate=1.0))
        )
        stats = replay_flow(
            diamond,
            timeline,
            FLOW,
            SERVICE,
            make_policy("static-single"),
            ReplayConfig(collect_windows=True),
        )
        assert stats.windows
        assert sum(w.duration_s for w in stats.windows) == pytest.approx(100.0)

    def test_cost_accounting_time_weighted(self, diamond):
        """Dynamic single path: 2 edges normally, 2 on the detour too."""
        timeline = tl(
            diamond, Contribution(("S", "A"), 0.0, 50.0, LinkState(loss_rate=1.0))
        )
        stats = replay_flow(
            diamond, timeline, FLOW, SERVICE, make_policy("dynamic-single")
        )
        assert stats.average_cost_messages == pytest.approx(2.0)


class TestRunReplay:
    def test_full_matrix(self, diamond):
        timeline = tl(
            diamond, Contribution(("S", "A"), 10.0, 30.0, LinkState(loss_rate=0.5))
        )
        result = run_replay(
            diamond,
            timeline,
            [FLOW],
            SERVICE,
            scheme_names=("static-single", "flooding"),
        )
        assert set(result.schemes) == {"static-single", "flooding"}
        assert result.flow_names == (FLOW.name,)
        totals = result.totals("static-single")
        assert totals.duration_s == pytest.approx(100.0)

    def test_empty_flows_rejected(self, diamond):
        with pytest.raises(Exception):
            run_replay(diamond, tl(diamond), [], SERVICE)

    def test_deterministic(self, diamond):
        timeline = tl(
            diamond, Contribution(("S", "A"), 10.0, 30.0, LinkState(loss_rate=0.5))
        )
        runs = [
            run_replay(
                diamond, timeline, [FLOW], SERVICE, scheme_names=("targeted",)
            )
            .totals("targeted")
            .unavailable_s
            for _ in range(2)
        ]
        assert runs[0] == runs[1]


def twin_paths_topology() -> Topology:
    """Two disconnected, congruent 3-node paths (mirror halves)."""
    topology = Topology("twins")
    for node in ("A1", "B1", "C1", "A2", "B2", "C2"):
        topology.add_node(node)
    topology.add_link("A1", "B1", 5.0)
    topology.add_link("B1", "C1", 5.0)
    topology.add_link("A2", "B2", 5.0)
    topology.add_link("B2", "C2", 5.0)
    return topology.freeze()


class TestProbabilityCache:
    def test_cross_flow_congruent_graphs_share_one_entry(self):
        # The two flows' graphs are congruent under the monotone node
        # relabeling, so the second lookup is served from the entry the
        # first flow computed -- the cross-pair sharing raw per-flow keys
        # could never express.
        topology = twin_paths_topology()
        cache = _ProbabilityCache(deadline_ms=15.0, max_lossy_edges=20)
        graph_one = DisseminationGraph.from_path(["A1", "B1", "C1"])
        graph_two = DisseminationGraph.from_path(["A2", "B2", "C2"])
        first = cache.probabilities(
            topology, graph_one, {("A1", "B1"): LinkState(0.3)}, "s/f1"
        )
        second = cache.probabilities(
            topology, graph_two, {("A2", "B2"): LinkState(0.3)}, "s/f2"
        )
        assert cache.misses == 1
        assert cache.hits == 1
        assert cache.shared_hits == 1
        assert first.on_time.hex() == second.on_time.hex()
        assert first.eventually.hex() == second.eventually.hex()

    def test_same_group_hit_is_not_shared(self):
        topology = twin_paths_topology()
        cache = _ProbabilityCache(deadline_ms=15.0, max_lossy_edges=20)
        graph = DisseminationGraph.from_path(["A1", "B1", "C1"])
        degraded = {("A1", "B1"): LinkState(0.3)}
        cache.probabilities(topology, graph, degraded, "s/f1")
        cache.probabilities(topology, graph, degraded, "s/f1")
        assert cache.hits == 1
        assert cache.shared_hits == 0

    def test_mask_classification_reused_across_loss_values(self):
        # Loss values weight the enumeration cases but never change
        # which cases deliver, so a loss-only change reuses the cached
        # Dijkstra classification (a distinct probability entry, but no
        # re-enumeration).
        topology = twin_paths_topology()
        cache = _ProbabilityCache(deadline_ms=15.0, max_lossy_edges=20)
        graph = DisseminationGraph.from_path(["A1", "B1", "C1"])
        first = cache.probabilities(
            topology, graph, {("A1", "B1"): LinkState(0.3)}, "s/f1"
        )
        second = cache.probabilities(
            topology, graph, {("A1", "B1"): LinkState(0.4)}, "s/f1"
        )
        assert cache.misses == 2
        assert cache.mask_hits == 1
        # bitwise-identical to an uncached computation
        fresh = _ProbabilityCache(deadline_ms=15.0, max_lossy_edges=20)
        expected = fresh.probabilities(
            topology, graph, {("A1", "B1"): LinkState(0.4)}, "s/f1"
        )
        assert second.on_time.hex() == expected.on_time.hex()
        assert second.eventually.hex() == expected.eventually.hex()
        assert first.on_time.hex() != second.on_time.hex()

    def test_lru_eviction_bounds_footprint(self):
        topology = twin_paths_topology()
        cache = _ProbabilityCache(
            deadline_ms=15.0, max_lossy_edges=20, max_bytes=900
        )
        graph = DisseminationGraph.from_path(["A1", "B1", "C1"])
        for step in range(1, 20):
            cache.probabilities(
                topology, graph, {("A1", "B1"): LinkState(step / 40.0)}, "s/f1"
            )
        assert cache.evictions > 0
        assert cache._bytes <= 900
        assert cache.counters()["evictions"] == cache.evictions

    def test_unbounded_when_max_bytes_none(self):
        topology = twin_paths_topology()
        cache = _ProbabilityCache(
            deadline_ms=15.0, max_lossy_edges=20, max_bytes=None
        )
        graph = DisseminationGraph.from_path(["A1", "B1", "C1"])
        for step in range(1, 20):
            cache.probabilities(
                topology, graph, {("A1", "B1"): LinkState(step / 40.0)}, "s/f1"
            )
        assert cache.evictions == 0


class TestProbCacheEnvKnob:
    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv(PROB_CACHE_MAX_BYTES_ENV, raising=False)
        assert default_prob_cache_max_bytes() == 64 * 1024 * 1024

    def test_zero_means_unlimited(self, monkeypatch):
        monkeypatch.setenv(PROB_CACHE_MAX_BYTES_ENV, "0")
        assert default_prob_cache_max_bytes() is None

    def test_explicit_value(self, monkeypatch):
        monkeypatch.setenv(PROB_CACHE_MAX_BYTES_ENV, "12345")
        assert default_prob_cache_max_bytes() == 12345

    def test_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv(PROB_CACHE_MAX_BYTES_ENV, "lots")
        with pytest.raises(ValueError, match="integer byte count"):
            default_prob_cache_max_bytes()

    def test_rejects_negative(self, monkeypatch):
        monkeypatch.setenv(PROB_CACHE_MAX_BYTES_ENV, "-1")
        with pytest.raises(ValueError, match=">= 0"):
            default_prob_cache_max_bytes()


class TestCanonicalMemoCap:
    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv(PROB_CANONICAL_MAX_ENTRIES_ENV, raising=False)
        assert default_prob_canonical_max_entries() == 4096

    def test_zero_means_unlimited(self, monkeypatch):
        monkeypatch.setenv(PROB_CANONICAL_MAX_ENTRIES_ENV, "0")
        assert default_prob_canonical_max_entries() is None

    def test_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv(PROB_CANONICAL_MAX_ENTRIES_ENV, "many")
        with pytest.raises(ValueError):
            default_prob_canonical_max_entries()

    def test_cap_evicts_and_results_unchanged(self, monkeypatch):
        # Three structurally distinct graphs against a cap of two: the
        # memo must evict, and because every canonical entry is a pure
        # function of (topology, graph), re-deriving an evicted entry
        # yields bitwise-identical probabilities.
        monkeypatch.setenv(PROB_CANONICAL_MAX_ENTRIES_ENV, "2")
        topology = twin_paths_topology()
        capped = _ProbabilityCache(deadline_ms=15.0, max_lossy_edges=20)
        assert capped.max_canonical_entries == 2
        graphs = [
            DisseminationGraph.from_path(["A1", "B1", "C1"]),
            DisseminationGraph.from_path(["A1", "B1"]),
            DisseminationGraph.from_path(["B1", "C1"]),
        ]
        degraded = {("A1", "B1"): LinkState(0.3)}
        for _round in range(2):
            for graph in graphs:
                capped.probabilities(topology, graph, degraded, "s/f1")
        assert capped.canonical_evictions > 0
        assert len(capped._canonical) <= 2
        assert (
            capped.counters()["canonical_evictions"]
            == capped.canonical_evictions
        )
        monkeypatch.delenv(PROB_CANONICAL_MAX_ENTRIES_ENV)
        unlimited = _ProbabilityCache(deadline_ms=15.0, max_lossy_edges=20)
        for graph in graphs:
            capped_result = capped.probabilities(
                topology, graph, degraded, "s/f1"
            )
            fresh = unlimited.probabilities(topology, graph, degraded, "s/f1")
            assert capped_result.on_time.hex() == fresh.on_time.hex()
            assert capped_result.eventually.hex() == fresh.eventually.hex()

    def test_recently_used_entry_survives(self, monkeypatch):
        monkeypatch.setenv(PROB_CANONICAL_MAX_ENTRIES_ENV, "2")
        topology = twin_paths_topology()
        cache = _ProbabilityCache(deadline_ms=15.0, max_lossy_edges=20)
        keeper = DisseminationGraph.from_path(["A1", "B1", "C1"])
        degraded = {("A1", "B1"): LinkState(0.3)}
        cache.probabilities(topology, keeper, degraded, "s/f1")
        for other in (["A1", "B1"], ["B1", "C1"]):
            # Touch the keeper between inserts: LRU must evict the others.
            cache.probabilities(
                topology, DisseminationGraph.from_path(other), degraded, "s/f1"
            )
            cache.probabilities(topology, keeper, degraded, "s/f1")
        assert keeper in cache._canonical


class TestDeltaReuseEquivalence:
    def test_delta_hinted_replay_is_bitwise_identical(self, diamond):
        timeline = tl(
            diamond,
            Contribution(("S", "A"), 10.0, 30.0, LinkState(loss_rate=0.5)),
            Contribution(("S", "B"), 20.0, 60.0, LinkState(0.0, 40.0)),
            Contribution(("A", "T"), 45.0, 70.0, LinkState(loss_rate=0.2)),
        )
        config = ReplayConfig(detection_delay_s=1.0)
        boundaries = decision_boundaries(timeline, config.detection_delay_s)
        observed_views, observed_deltas = observed_views_with_deltas(
            timeline, boundaries, config.detection_delay_s
        )
        actual_views, actual_deltas = timeline.degraded_views(
            list(boundaries[:-1])
        )
        for scheme in ("static-single", "dynamic-single", "targeted", "flooding"):
            with_deltas = replay_flow(
                diamond, timeline, FLOW, SERVICE, make_policy(scheme), config,
                boundaries=boundaries, observed_views=observed_views,
                actual_views=actual_views, observed_deltas=observed_deltas,
                actual_deltas=actual_deltas,
            )
            without_deltas = replay_flow(
                diamond, timeline, FLOW, SERVICE, make_policy(scheme), config,
                boundaries=boundaries, observed_views=observed_views,
                actual_views=actual_views, observed_deltas=None,
                actual_deltas=None,
            )
            for attribute in (
                "duration_s", "unavailable_s", "lost_s", "late_s",
                "message_seconds",
            ):
                hinted = getattr(with_deltas, attribute)
                plain = getattr(without_deltas, attribute)
                assert hinted.hex() == plain.hex(), (scheme, attribute)
            assert with_deltas.decision_changes == without_deltas.decision_changes
