"""The analytic interval replay engine."""

from __future__ import annotations

import pytest

from repro.netmodel.conditions import ConditionTimeline, Contribution, LinkState
from repro.netmodel.topology import FlowSpec, ServiceSpec
from repro.routing.registry import make_policy
from repro.simulation.interval import replay_flow, run_replay
from repro.simulation.results import ReplayConfig

FLOW = FlowSpec("S", "T")
SERVICE = ServiceSpec(deadline_ms=15.0, send_interval_ms=10.0, rtt_budget_ms=30.0)


def tl(diamond, *contributions, duration=100.0):
    return ConditionTimeline(diamond, duration, contributions)


class TestReplayFlow:
    def test_clean_trace_zero_unavailability(self, diamond):
        stats = replay_flow(
            diamond,
            tl(diamond),
            FLOW,
            SERVICE,
            make_policy("static-single"),
        )
        assert stats.unavailable_s == 0.0
        assert stats.duration_s == pytest.approx(100.0)
        assert stats.average_cost_messages == 2  # S->A->T

    def test_hand_computed_blackout(self, diamond):
        """10 s of 100% loss on S->A: static single loses exactly 10 s."""
        timeline = tl(
            diamond, Contribution(("S", "A"), 40.0, 50.0, LinkState(loss_rate=1.0))
        )
        stats = replay_flow(
            diamond, timeline, FLOW, SERVICE, make_policy("static-single")
        )
        assert stats.unavailable_s == pytest.approx(10.0)
        assert stats.lost_s == pytest.approx(10.0)
        assert stats.late_s == 0.0

    def test_hand_computed_partial_loss(self, diamond):
        timeline = tl(
            diamond, Contribution(("S", "A"), 40.0, 50.0, LinkState(loss_rate=0.3))
        )
        stats = replay_flow(
            diamond, timeline, FLOW, SERVICE, make_policy("static-single")
        )
        assert stats.unavailable_s == pytest.approx(3.0)

    def test_dynamic_single_loses_only_detection_delay(self, diamond):
        timeline = tl(
            diamond, Contribution(("S", "A"), 40.0, 50.0, LinkState(loss_rate=1.0))
        )
        stats = replay_flow(
            diamond,
            timeline,
            FLOW,
            SERVICE,
            make_policy("dynamic-single"),
            ReplayConfig(detection_delay_s=2.0),
        )
        # Blind for exactly the detection delay, then routes via B.
        assert stats.unavailable_s == pytest.approx(2.0)

    def test_two_disjoint_covers_single_link(self, diamond):
        timeline = tl(
            diamond, Contribution(("S", "A"), 40.0, 50.0, LinkState(loss_rate=1.0))
        )
        stats = replay_flow(
            diamond, timeline, FLOW, SERVICE, make_policy("static-two-disjoint")
        )
        assert stats.unavailable_s == 0.0

    def test_flooding_is_lower_bound(self, diamond):
        timeline = tl(
            diamond,
            Contribution(("S", "A"), 40.0, 50.0, LinkState(loss_rate=0.8)),
            Contribution(("S", "B"), 45.0, 55.0, LinkState(loss_rate=0.8)),
        )
        unavailability = {}
        for scheme in ("static-single", "static-two-disjoint", "flooding"):
            stats = replay_flow(
                diamond, timeline, FLOW, SERVICE, make_policy(scheme)
            )
            unavailability[scheme] = stats.unavailable_s
        assert unavailability["flooding"] <= unavailability["static-two-disjoint"]
        assert (
            unavailability["static-two-disjoint"]
            <= unavailability["static-single"] + 1e-9
        )

    def test_late_accounting(self, diamond):
        """Latency inflation pushes the only path past the deadline."""
        timeline = tl(
            diamond,
            Contribution(
                ("S", "A"), 40.0, 50.0, LinkState(extra_latency_ms=100.0)
            ),
            Contribution(
                ("S", "B"), 40.0, 50.0, LinkState(extra_latency_ms=100.0)
            ),
        )
        stats = replay_flow(
            diamond, timeline, FLOW, SERVICE, make_policy("static-two-disjoint")
        )
        assert stats.late_s == pytest.approx(10.0)
        assert stats.lost_s == 0.0

    def test_window_collection(self, diamond):
        timeline = tl(
            diamond, Contribution(("S", "A"), 40.0, 50.0, LinkState(loss_rate=1.0))
        )
        stats = replay_flow(
            diamond,
            timeline,
            FLOW,
            SERVICE,
            make_policy("static-single"),
            ReplayConfig(collect_windows=True),
        )
        assert stats.windows
        assert sum(w.duration_s for w in stats.windows) == pytest.approx(100.0)

    def test_cost_accounting_time_weighted(self, diamond):
        """Dynamic single path: 2 edges normally, 2 on the detour too."""
        timeline = tl(
            diamond, Contribution(("S", "A"), 0.0, 50.0, LinkState(loss_rate=1.0))
        )
        stats = replay_flow(
            diamond, timeline, FLOW, SERVICE, make_policy("dynamic-single")
        )
        assert stats.average_cost_messages == pytest.approx(2.0)


class TestRunReplay:
    def test_full_matrix(self, diamond):
        timeline = tl(
            diamond, Contribution(("S", "A"), 10.0, 30.0, LinkState(loss_rate=0.5))
        )
        result = run_replay(
            diamond,
            timeline,
            [FLOW],
            SERVICE,
            scheme_names=("static-single", "flooding"),
        )
        assert set(result.schemes) == {"static-single", "flooding"}
        assert result.flow_names == (FLOW.name,)
        totals = result.totals("static-single")
        assert totals.duration_s == pytest.approx(100.0)

    def test_empty_flows_rejected(self, diamond):
        with pytest.raises(Exception):
            run_replay(diamond, tl(diamond), [], SERVICE)

    def test_deterministic(self, diamond):
        timeline = tl(
            diamond, Contribution(("S", "A"), 10.0, 30.0, LinkState(loss_rate=0.5))
        )
        runs = [
            run_replay(
                diamond, timeline, [FLOW], SERVICE, scheme_names=("targeted",)
            )
            .totals("targeted")
            .unavailable_s
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
