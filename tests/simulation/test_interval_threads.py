"""Thread-safety of the probability memo under concurrent hammering.

The serve daemon shares one :class:`_ProbabilityCache` (inside a warm
shard context) across concurrently executing requests, so lookups,
inserts, LRU evictions, and counter updates race by design.  These
tests hammer one cache from many threads and assert two things: the
results stay bitwise identical to a single-threaded reference, and the
telemetry books stay balanced (no lost or double-counted updates, no
byte-accounting drift).
"""

from __future__ import annotations

import threading

from repro.core.dgraph import DisseminationGraph
from repro.core.graph import Topology
from repro.netmodel.conditions import LinkState
from repro.simulation.interval import _ProbabilityCache

THREADS = 8
ROUNDS = 40


def _ladder_topology(lanes: int = THREADS) -> Topology:
    topology = Topology()
    for lane in range(lanes):
        a, b, c = f"A{lane}", f"B{lane}", f"C{lane}"
        for node in (a, b, c):
            topology.add_node(node)
        topology.add_link(a, b, 5.0)
        topology.add_link(b, c, 5.0)
    return topology.freeze()


def _hammer(cache: _ProbabilityCache, topology: Topology, lane: int, out: list):
    graph = DisseminationGraph.from_path([f"A{lane}", f"B{lane}", f"C{lane}"])
    results = []
    for step in range(1, ROUNDS + 1):
        # A small rotating set of loss values: plenty of hits, plenty of
        # misses, and (under a byte cap) plenty of evictions.
        degraded = {(f"A{lane}", f"B{lane}"): LinkState((step % 5 + 1) / 10.0)}
        probs = cache.probabilities(topology, graph, degraded, f"s/f{lane}")
        results.append((probs.on_time.hex(), probs.eventually.hex()))
    out[lane] = results


class TestConcurrentProbabilityCache:
    def test_results_bitwise_match_serial_reference(self):
        topology = _ladder_topology()
        shared = _ProbabilityCache(deadline_ms=15.0, max_lossy_edges=20)
        out: list = [None] * THREADS
        threads = [
            threading.Thread(target=_hammer, args=(shared, topology, lane, out))
            for lane in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Serial reference: a fresh cache per lane (no sharing at all).
        for lane in range(THREADS):
            reference: list = [None] * (lane + 1)
            _hammer(
                _ProbabilityCache(deadline_ms=15.0, max_lossy_edges=20),
                topology,
                lane,
                reference,
            )
            assert out[lane] == reference[lane]

    def test_counters_balance_under_contention(self):
        topology = _ladder_topology()
        shared = _ProbabilityCache(deadline_ms=15.0, max_lossy_edges=20)
        out: list = [None] * THREADS
        threads = [
            threading.Thread(target=_hammer, args=(shared, topology, lane, out))
            for lane in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        counters = shared.counters()
        # Every lookup is either a hit or a miss; none may be lost.
        assert counters["hits"] + counters["misses"] == THREADS * ROUNDS
        # All lanes are congruent under canonicalisation: at most 5
        # distinct entries exist (5 loss values x 1 canonical shape), so
        # cross-thread sharing must have happened.
        assert counters["misses"] <= 5 * THREADS  # duplicate races at worst
        assert counters["hits"] > 0

    def test_byte_accounting_survives_concurrent_eviction(self):
        topology = _ladder_topology()
        shared = _ProbabilityCache(
            deadline_ms=15.0, max_lossy_edges=20, max_bytes=600
        )
        out: list = [None] * THREADS
        threads = [
            threading.Thread(target=_hammer, args=(shared, topology, lane, out))
            for lane in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert shared.evictions > 0
        assert 0 <= shared._bytes <= 600
        # The tracked footprint must equal the sum of resident entries.
        resident = sum(cost for _result, _owner, cost in shared._entries.values())
        assert shared._bytes == resident
