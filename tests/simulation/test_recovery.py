"""Analytic hop-by-hop recovery model."""

from __future__ import annotations

import pytest

from repro.core.dgraph import DisseminationGraph
from repro.netmodel.conditions import ConditionTimeline, Contribution, LinkState
from repro.netmodel.topology import FlowSpec, ServiceSpec
from repro.routing.registry import make_policy
from repro.simulation.interval import replay_flow
from repro.simulation.reliability import (
    ReliabilityLimitError,
    delivery_probabilities,
    delivery_probabilities_with_recovery,
)
from repro.simulation.results import ReplayConfig

SINGLE = DisseminationGraph.from_path(["S", "A", "T"])
FLOW = FlowSpec("S", "T")
SERVICE = ServiceSpec(deadline_ms=15.0, send_interval_ms=10.0, rtt_budget_ms=30.0)


def constant(value):
    return lambda edge: value


def losses(mapping):
    return lambda edge: mapping.get(edge, 0.0)


class TestRecoveryProbabilities:
    def test_recovery_in_time(self):
        """Recovered copy fits the deadline: delivery = 1 - p^2."""
        result = delivery_probabilities_with_recovery(
            SINGLE,
            30.0,
            constant(5.0),
            losses({("S", "A"): 0.4}),
            constant(20.0),  # recovered copy: 20 + 5 = 25 <= 30
        )
        assert result.on_time == pytest.approx(1 - 0.4**2)
        assert result.lost == pytest.approx(0.4**2)

    def test_recovery_too_slow_is_late(self):
        result = delivery_probabilities_with_recovery(
            SINGLE,
            12.0,
            constant(5.0),
            losses({("S", "A"): 0.4}),
            constant(20.0),  # recovered arrival 25 > 12: late
        )
        assert result.on_time == pytest.approx(0.6)
        assert result.late == pytest.approx(0.4 * 0.6)
        assert result.lost == pytest.approx(0.16)

    def test_dead_link_stays_dead(self):
        result = delivery_probabilities_with_recovery(
            SINGLE, 30.0, constant(5.0), losses({("S", "A"): 1.0}), constant(20.0)
        )
        assert result.on_time == 0.0
        assert result.lost == 1.0

    def test_never_worse_than_plain(self):
        loss_map = {("S", "A"): 0.5, ("A", "T"): 0.3}
        plain = delivery_probabilities(
            SINGLE, 30.0, constant(5.0), losses(loss_map)
        )
        recovered = delivery_probabilities_with_recovery(
            SINGLE, 30.0, constant(5.0), losses(loss_map), constant(16.0)
        )
        assert recovered.on_time >= plain.on_time
        assert recovered.eventually >= plain.eventually

    def test_two_lossy_edges_exact(self):
        """Hand computation with recovery on both hops, deadline generous."""
        loss_map = {("S", "A"): 0.5, ("A", "T"): 0.5}
        result = delivery_probabilities_with_recovery(
            SINGLE, 100.0, constant(5.0), losses(loss_map), constant(20.0)
        )
        per_edge = 1 - 0.5**2
        assert result.on_time == pytest.approx(per_edge**2)

    def test_ternary_cap(self):
        wide = DisseminationGraph(
            "S",
            "T",
            frozenset({("S", f"M{i}") for i in range(13)} | {("M0", "T")}),
        )
        with pytest.raises(ReliabilityLimitError):
            delivery_probabilities_with_recovery(
                wide,
                30.0,
                constant(5.0),
                constant(0.5),
                constant(20.0),
                max_lossy_edges=5,
            )

    def test_latency_callback_read_once_per_edge(self):
        """Regression: the normal-latency callback must be consulted
        exactly once per edge.  The enumeration re-reads the stored
        values; a second invocation of a non-pure callable would let the
        two reads silently diverge."""
        calls: dict[tuple, int] = {}

        def counting_latency(edge):
            calls[edge] = calls.get(edge, 0) + 1
            return 5.0

        loss_map = {("S", "A"): 0.4, ("A", "T"): 0.3}
        result = delivery_probabilities_with_recovery(
            SINGLE, 30.0, counting_latency, losses(loss_map), constant(16.0)
        )
        assert set(calls) == set(SINGLE.edges)
        assert all(count == 1 for count in calls.values()), calls
        # And the values are the stored ones: same as a pure callable.
        assert result == delivery_probabilities_with_recovery(
            SINGLE, 30.0, constant(5.0), losses(loss_map), constant(16.0)
        )


class TestRecoveryReplay:
    def test_replay_halves_quadratically(self, diamond):
        """Blackout-free partial loss: recovery turns p into ~p^2."""
        timeline = ConditionTimeline(
            diamond,
            100.0,
            [Contribution(("S", "A"), 20.0, 60.0, LinkState(loss_rate=0.4))],
        )
        plain = replay_flow(
            diamond, timeline, FLOW, SERVICE, make_policy("static-single"),
            ReplayConfig(hop_recovery=False),
        )
        recovered = replay_flow(
            diamond, timeline, FLOW, SERVICE, make_policy("static-single"),
            ReplayConfig(hop_recovery=True),
        )
        assert plain.unavailable_s == pytest.approx(0.4 * 40.0)
        # Recovered copy: 3 * 2 ms + 10 ms = 16 ms crossing, total path
        # 16 + 2 = 18 > 15 ms deadline -- recovery is late here, so
        # unavailability stays (late, not lost).
        assert recovered.unavailable_s == pytest.approx(0.4 * 40.0)
        assert recovered.late_s > 0.0
        assert recovered.lost_s < plain.lost_s

    def test_recovery_with_slack_deadline(self, diamond):
        """With deadline slack the recovered copies count as on time."""
        service = ServiceSpec(
            deadline_ms=25.0, send_interval_ms=10.0, rtt_budget_ms=50.0
        )
        timeline = ConditionTimeline(
            diamond,
            100.0,
            [Contribution(("S", "A"), 20.0, 60.0, LinkState(loss_rate=0.4))],
        )
        recovered = replay_flow(
            diamond, timeline, FLOW, service, make_policy("static-single"),
            ReplayConfig(hop_recovery=True),
        )
        assert recovered.unavailable_s == pytest.approx(0.4**2 * 40.0)

    def test_ordering_survives_recovery(self, reference_topology):
        contributions = [
            Contribution(edge, 10.0, 70.0, LinkState(loss_rate=0.5))
            for edge in reference_topology.adjacent_edges("SJC")
        ]
        timeline = ConditionTimeline(reference_topology, 100.0, contributions)
        flow = FlowSpec("NYC", "SJC")
        config = ReplayConfig(hop_recovery=True)
        unavailable = {}
        for scheme in ("static-two-disjoint", "targeted", "flooding"):
            stats = replay_flow(
                reference_topology, timeline, flow, ServiceSpec(),
                make_policy(scheme), config,
            )
            unavailable[scheme] = stats.unavailable_s
        assert unavailable["targeted"] < unavailable["static-two-disjoint"]
        assert unavailable["flooding"] <= unavailable["targeted"] + 1e-9
