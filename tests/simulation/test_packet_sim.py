"""Per-packet Monte-Carlo engine: common random numbers and agreement
with the analytic engine."""

from __future__ import annotations

import pytest

from repro.netmodel.conditions import ConditionTimeline, Contribution, LinkState
from repro.netmodel.topology import FlowSpec, ServiceSpec
from repro.routing.registry import make_policy
from repro.simulation.interval import replay_flow
from repro.simulation.packet_sim import simulate_packets
from repro.simulation.results import ReplayConfig

FLOW = FlowSpec("S", "T")
SERVICE = ServiceSpec(deadline_ms=15.0, send_interval_ms=10.0, rtt_budget_ms=30.0)


def tl(diamond, *contributions, duration=100.0):
    return ConditionTimeline(diamond, duration, contributions)


class TestBasics:
    def test_clean_run_all_on_time(self, diamond):
        outcome = simulate_packets(
            diamond,
            tl(diamond),
            FLOW,
            SERVICE,
            make_policy("static-single"),
            0.0,
            10.0,
            seed=1,
            jitter_ms=0.0,
        )
        assert outcome.packets == 1000
        assert outcome.delivered_on_time == 1000
        assert outcome.lost == 0

    def test_packet_count_and_sequences(self, diamond):
        outcome = simulate_packets(
            diamond,
            tl(diamond),
            FLOW,
            SERVICE,
            make_policy("static-single"),
            5.0,
            6.0,
            seed=1,
        )
        assert outcome.packets == 100
        assert outcome.records[0].sequence == 500

    def test_blackout_loses_all(self, diamond):
        timeline = tl(
            diamond, Contribution(("S", "A"), 0.0, 100.0, LinkState(loss_rate=1.0))
        )
        outcome = simulate_packets(
            diamond,
            timeline,
            FLOW,
            SERVICE,
            make_policy("static-single"),
            0.0,
            5.0,
            seed=1,
        )
        assert outcome.lost == outcome.packets

    def test_message_cost_counted(self, diamond):
        outcome = simulate_packets(
            diamond,
            tl(diamond),
            FLOW,
            SERVICE,
            make_policy("static-two-disjoint"),
            0.0,
            1.0,
            seed=1,
        )
        # Four edges, all tails reached under clean conditions.
        assert outcome.total_messages == outcome.packets * 4

    def test_messages_shrink_when_copies_drop(self, diamond):
        timeline = tl(
            diamond, Contribution(("S", "A"), 0.0, 100.0, LinkState(loss_rate=1.0))
        )
        outcome = simulate_packets(
            diamond,
            timeline,
            FLOW,
            SERVICE,
            make_policy("static-two-disjoint"),
            0.0,
            1.0,
            seed=1,
        )
        # A's copy always drops, so A never forwards: 3 messages/packet.
        assert outcome.total_messages == outcome.packets * 3

    def test_bad_window_rejected(self, diamond):
        with pytest.raises(Exception):
            simulate_packets(
                diamond,
                tl(diamond),
                FLOW,
                SERVICE,
                make_policy("static-single"),
                50.0,
                50.0,
            )


class TestCommonRandomNumbers:
    def test_same_seed_reproducible(self, diamond):
        timeline = tl(
            diamond, Contribution(("S", "A"), 0.0, 100.0, LinkState(loss_rate=0.5))
        )
        outcomes = [
            simulate_packets(
                diamond,
                timeline,
                FLOW,
                SERVICE,
                make_policy("static-single"),
                0.0,
                10.0,
                seed=9,
            ).records
            for _ in range(2)
        ]
        assert outcomes[0] == outcomes[1]

    def test_schemes_see_identical_link_fates(self, diamond):
        """A packet lost on S->A under one scheme is lost on S->A under
        every scheme using that edge: common random numbers."""
        timeline = tl(
            diamond, Contribution(("S", "A"), 0.0, 100.0, LinkState(loss_rate=0.5))
        )
        single = simulate_packets(
            diamond, timeline, FLOW, SERVICE,
            make_policy("static-single"), 0.0, 20.0, seed=3, jitter_ms=0.0,
        )
        pair = simulate_packets(
            diamond, timeline, FLOW, SERVICE,
            make_policy("static-two-disjoint"), 0.0, 20.0, seed=3, jitter_ms=0.0,
        )
        for record_single, record_pair in zip(single.records, pair.records):
            # Whenever the single path delivered (S->A survived), the
            # two-path scheme delivered as well.
            if not record_single.lost:
                assert not record_pair.lost

    def test_different_seed_different_fates(self, diamond):
        timeline = tl(
            diamond, Contribution(("S", "A"), 0.0, 100.0, LinkState(loss_rate=0.5))
        )
        a = simulate_packets(
            diamond, timeline, FLOW, SERVICE,
            make_policy("static-single"), 0.0, 20.0, seed=3,
        )
        b = simulate_packets(
            diamond, timeline, FLOW, SERVICE,
            make_policy("static-single"), 0.0, 20.0, seed=4,
        )
        assert a.records != b.records


class TestAgreementWithAnalyticEngine:
    @pytest.mark.parametrize(
        "scheme", ["static-single", "static-two-disjoint", "dynamic-single", "targeted"]
    )
    def test_on_time_fraction_matches(self, diamond, scheme):
        """Monte-Carlo frequencies converge to the analytic probabilities."""
        timeline = tl(
            diamond,
            Contribution(("S", "A"), 100.0, 400.0, LinkState(loss_rate=0.6)),
            Contribution(("A", "T"), 200.0, 300.0, LinkState(loss_rate=0.4)),
            duration=500.0,
        )
        config = ReplayConfig(detection_delay_s=1.0)
        analytic = replay_flow(
            diamond, timeline, FLOW, SERVICE, make_policy(scheme), config
        )
        expected_fraction = 1.0 - analytic.unavailable_s / analytic.duration_s
        outcome = simulate_packets(
            diamond,
            timeline,
            FLOW,
            SERVICE,
            make_policy(scheme),
            0.0,
            500.0,
            seed=11,
            config=config,
            jitter_ms=0.0,
        )
        assert outcome.on_time_fraction == pytest.approx(
            expected_fraction, abs=0.01
        )
