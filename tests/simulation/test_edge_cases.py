"""Edge cases across the simulation layer."""

from __future__ import annotations

import pytest

from repro.netmodel.conditions import ConditionTimeline, Contribution, LinkState
from repro.netmodel.topology import FlowSpec, ServiceSpec
from repro.routing.registry import make_policy
from repro.simulation.interval import replay_flow, run_replay
from repro.simulation.packet_sim import simulate_packets
from repro.simulation.reliability import ReliabilityLimitError
from repro.simulation.timeline import build_decision_timeline

FLOW = FlowSpec("S", "T")
SERVICE = ServiceSpec(deadline_ms=15.0, send_interval_ms=10.0, rtt_budget_ms=30.0)


class TestReliabilityLimits:
    def test_replay_fails_loudly_past_cap(self, braided):
        """Dense simultaneous loss beyond the enumeration cap must raise,
        not silently approximate."""
        from repro.simulation.results import ReplayConfig

        contributions = [
            Contribution(edge, 10.0, 20.0, LinkState(loss_rate=0.5))
            for edge in braided.edges
        ]
        timeline = ConditionTimeline(braided, 100.0, contributions)
        with pytest.raises(ReliabilityLimitError):
            replay_flow(
                braided,
                timeline,
                FLOW,
                SERVICE,
                make_policy("flooding"),
                ReplayConfig(max_lossy_edges=3),
            )

    def test_limit_error_names_graph_and_window(self, braided):
        """The cap error must be diagnosable: which pair's installed
        graph, between which endpoints, in which window hit it."""
        from repro.simulation.results import ReplayConfig

        contributions = [
            Contribution(edge, 10.0, 20.0, LinkState(loss_rate=0.5))
            for edge in braided.edges
        ]
        timeline = ConditionTimeline(braided, 100.0, contributions)
        with pytest.raises(ReliabilityLimitError) as excinfo:
            replay_flow(
                braided,
                timeline,
                FLOW,
                SERVICE,
                make_policy("flooding"),
                ReplayConfig(max_lossy_edges=3),
            )
        message = str(excinfo.value)
        assert "exceed the exact-enumeration cap" in message
        assert "graph " in message
        assert "S -> T" in message
        assert "pair flooding/" in message
        assert "window [" in message

    def test_default_cap_handles_node_event(self, reference_topology):
        """A full sustained node event (all adjacent links lossy) stays
        within the default enumeration budget for every scheme."""
        from repro.simulation.results import ReplayConfig

        contributions = [
            Contribution(edge, 10.0, 40.0, LinkState(loss_rate=0.6))
            for edge in reference_topology.adjacent_edges("SJC")
        ]
        timeline = ConditionTimeline(reference_topology, 100.0, contributions)
        result = run_replay(
            reference_topology,
            timeline,
            [FlowSpec("NYC", "SJC")],
            ServiceSpec(),
            config=ReplayConfig(),
        )
        assert result.totals("flooding").unavailable_s >= 0.0


class TestPacketSimExtras:
    def test_precomputed_spans_reused(self, diamond):
        timeline = ConditionTimeline(diamond, 50.0)
        policy = make_policy("static-single")
        spans = build_decision_timeline(
            diamond, timeline, FLOW, SERVICE, policy, detection_delay_s=1.0
        )
        outcome = simulate_packets(
            diamond,
            timeline,
            FLOW,
            SERVICE,
            make_policy("static-single"),
            0.0,
            5.0,
            spans=spans,
        )
        assert outcome.packets == 500

    def test_jitter_spreads_latencies(self, diamond):
        timeline = ConditionTimeline(diamond, 20.0)
        jittered = simulate_packets(
            diamond, timeline, FLOW, SERVICE,
            make_policy("static-single"), 0.0, 10.0, jitter_ms=1.0,
        )
        flat = simulate_packets(
            diamond, timeline, FLOW, SERVICE,
            make_policy("static-single"), 0.0, 10.0, jitter_ms=0.0,
        )
        assert len(set(flat.latencies_ms())) == 1
        assert len(set(jittered.latencies_ms())) > 100

    def test_graph_names_recorded(self, diamond):
        timeline = ConditionTimeline(
            diamond,
            100.0,
            [Contribution(("S", "A"), 10.0, 90.0, LinkState(loss_rate=1.0))],
        )
        outcome = simulate_packets(
            diamond, timeline, FLOW, SERVICE,
            make_policy("dynamic-single"), 0.0, 40.0,
        )
        names = {record.graph_name for record in outcome.records}
        assert len(names) >= 1


class TestSchemeInvariantsUnderStress:
    def test_total_blackout_everyone_fails(self, diamond):
        """When every edge is dead even flooding delivers nothing --
        and the accounting still adds up."""
        contributions = [
            Contribution(edge, 10.0, 20.0, LinkState(loss_rate=1.0))
            for edge in diamond.edges
        ]
        timeline = ConditionTimeline(diamond, 50.0, contributions)
        for scheme in ("static-single", "flooding", "targeted"):
            stats = replay_flow(
                diamond, timeline, FLOW, SERVICE, make_policy(scheme)
            )
            assert stats.unavailable_s == pytest.approx(10.0), scheme
            assert stats.lost_s == pytest.approx(10.0), scheme

    def test_flow_to_neighbor(self, reference_topology):
        """A one-hop flow: single path is already optimal-ish."""
        timeline = ConditionTimeline(reference_topology, 30.0)
        flow = FlowSpec("NYC", "WAS")
        for scheme in ("static-single", "targeted", "flooding"):
            stats = replay_flow(
                reference_topology, timeline, flow, ServiceSpec(),
                make_policy(scheme),
            )
            assert stats.unavailable_s == 0.0

    def test_deadline_tighter_than_topology(self, reference_topology):
        """An infeasible deadline: everything is late all the time."""
        service = ServiceSpec(deadline_ms=5.0, send_interval_ms=10.0)
        timeline = ConditionTimeline(reference_topology, 30.0)
        stats = replay_flow(
            reference_topology,
            timeline,
            FlowSpec("NYC", "SJC"),
            service,
            make_policy("static-single"),
        )
        assert stats.unavailable_s == pytest.approx(30.0)
        assert stats.late_s == pytest.approx(30.0)
        assert stats.lost_s == 0.0
