"""Result containers, aggregation, and cost comparison."""

from __future__ import annotations

import pytest

from repro.netmodel.topology import FlowSpec, ServiceSpec
from repro.simulation.cost import cost_comparison
from repro.simulation.results import (
    FlowSchemeStats,
    ReplayConfig,
    ReplayResult,
)
from repro.util.validation import ValidationError

FLOW_A = FlowSpec("S", "T")
FLOW_B = FlowSpec("S", "U")


def stats(flow, scheme, unavailable=0.0, duration=100.0, edges=2):
    entry = FlowSchemeStats(flow=flow, scheme=scheme)
    clean = duration - unavailable
    if clean > 0:
        entry.add_window(0.0, clean, "g", edges, 1.0, 0.0, 0.0)
    if unavailable > 0:
        entry.add_window(clean, duration, "g", edges, 0.0, 1.0, 0.0)
    return entry


class TestFlowSchemeStats:
    def test_availability(self):
        entry = stats(FLOW_A, "x", unavailable=10.0)
        assert entry.availability == pytest.approx(0.9)
        assert entry.unavailable_s == pytest.approx(10.0)

    def test_expected_bad_packets(self):
        entry = stats(FLOW_A, "x", unavailable=10.0)
        service = ServiceSpec()  # 100 packets/s
        assert entry.expected_bad_packets(service) == pytest.approx(1000.0)

    def test_cost_time_weighted(self):
        entry = FlowSchemeStats(flow=FLOW_A, scheme="x")
        entry.add_window(0.0, 50.0, "a", 2, 1.0, 0.0, 0.0)
        entry.add_window(50.0, 100.0, "b", 6, 1.0, 0.0, 0.0)
        assert entry.average_cost_messages == pytest.approx(4.0)

    def test_window_collection_flag(self):
        entry = FlowSchemeStats(flow=FLOW_A, scheme="x")
        entry.add_window(0.0, 1.0, "a", 2, 1.0, 0.0, 0.0, collect=True)
        entry.add_window(1.0, 2.0, "a", 2, 1.0, 0.0, 0.0, collect=False)
        assert len(entry.windows) == 1

    def test_empty_stats_availability_one(self):
        assert FlowSchemeStats(flow=FLOW_A, scheme="x").availability == 1.0


class TestReplayResult:
    def build(self):
        result = ReplayResult(ServiceSpec(), ReplayConfig())
        result.add(stats(FLOW_A, "alpha", unavailable=10.0))
        result.add(stats(FLOW_B, "alpha", unavailable=30.0))
        result.add(stats(FLOW_A, "beta", unavailable=2.0, edges=6))
        result.add(stats(FLOW_B, "beta", unavailable=4.0, edges=6))
        return result

    def test_totals_sum_flows(self):
        totals = self.build().totals("alpha")
        assert totals.unavailable_s == pytest.approx(40.0)
        assert totals.flows == 2
        assert totals.duration_s == pytest.approx(200.0)

    def test_get_by_flow(self):
        result = self.build()
        assert result.get(FLOW_A, "alpha").unavailable_s == pytest.approx(10.0)
        assert result.get("S->U", "beta").unavailable_s == pytest.approx(4.0)

    def test_duplicate_add_rejected(self):
        result = self.build()
        with pytest.raises(ValidationError):
            result.add(stats(FLOW_A, "alpha"))

    def test_missing_lookup_rejected(self):
        with pytest.raises(ValidationError):
            self.build().get(FLOW_A, "nope")

    def test_schemes_in_insertion_order(self):
        assert self.build().schemes == ("alpha", "beta")

    def test_per_flow(self):
        per_flow = self.build().per_flow("alpha")
        assert set(per_flow) == {"S->T", "S->U"}


class TestCostComparison:
    def test_overhead_relative_to_baseline(self):
        result = ReplayResult(ServiceSpec(), ReplayConfig())
        result.add(stats(FLOW_A, "static-two-disjoint", edges=6))
        result.add(stats(FLOW_A, "targeted", edges=7))
        comparison = {c.scheme: c for c in cost_comparison(result)}
        assert comparison["static-two-disjoint"].overhead_vs_baseline == 0.0
        assert comparison["targeted"].overhead_vs_baseline == pytest.approx(1 / 6)
        assert comparison["targeted"].overhead_percent == pytest.approx(100 / 6)

    def test_missing_baseline_rejected(self):
        result = ReplayResult(ServiceSpec(), ReplayConfig())
        result.add(stats(FLOW_A, "targeted", edges=7))
        with pytest.raises(ValidationError):
            cost_comparison(result)


class TestReplayConfig:
    def test_validation(self):
        with pytest.raises(ValidationError):
            ReplayConfig(detection_delay_s=-1.0)
        with pytest.raises(ValidationError):
            ReplayConfig(max_lossy_edges=0)
