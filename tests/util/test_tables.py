"""ASCII table renderer."""

from __future__ import annotations

import pytest

from repro.util.tables import format_cell, render_table


class TestFormatCell:
    def test_none_is_dash(self):
        assert format_cell(None) == "-"

    def test_float_fixed_point(self):
        assert format_cell(1.23456, float_digits=2) == "1.23"

    def test_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_int_passthrough(self):
        assert format_cell(42) == "42"

    def test_string_passthrough(self):
        assert format_cell("abc") == "abc"


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        # Numeric column right-aligned: the "1" ends where "22" ends.
        assert lines[2].rstrip().endswith("1")
        assert lines[3].rstrip().endswith("22")
        assert len(lines[2].rstrip()) == len(lines[3].rstrip())

    def test_title(self):
        text = render_table(["h"], [["x"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_separator_row(self):
        text = render_table(["head"], [["x"]])
        assert "----" in text.splitlines()[1]

    def test_mismatched_row_raises(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_empty_rows_ok(self):
        text = render_table(["a"], [])
        assert "a" in text

    def test_wide_cell_grows_column(self):
        text = render_table(["h"], [["wider-than-header"]])
        header, separator, row = text.splitlines()
        assert len(separator) >= len("wider-than-header")
