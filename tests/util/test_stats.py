"""Pure-Python statistics helpers."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import empirical_cdf, mean, percentile, weighted_mean


class TestMean:
    def test_simple(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])


class TestWeightedMean:
    def test_equal_weights_match_mean(self):
        assert weighted_mean([1.0, 3.0], [1.0, 1.0]) == 2.0

    def test_weights_shift(self):
        assert weighted_mean([0.0, 10.0], [3.0, 1.0]) == 2.5

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [1.0, 2.0])

    def test_zero_weight_raises(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [0.0])


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 25) == 2.5

    def test_extremes(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 5.0

    def test_single_value(self):
        assert percentile([7.0], 99) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    @given(
        st.lists(
            st.floats(0, 1e6, allow_subnormal=False), min_size=1, max_size=50
        )
    )
    def test_within_bounds(self, values):
        for q in (0, 25, 50, 75, 100):
            result = percentile(values, q)
            assert min(values) <= result <= max(values)


class TestEmpiricalCdf:
    def test_basic(self):
        cdf = empirical_cdf([1.0, 2.0, 2.0, 4.0])
        assert cdf == [(1.0, 0.25), (2.0, 0.75), (4.0, 1.0)]

    def test_empty(self):
        assert empirical_cdf([]) == []

    def test_ends_at_one(self):
        cdf = empirical_cdf([3.0, 1.0, 2.0])
        assert cdf[-1][1] == 1.0

    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=40))
    def test_monotone(self, values):
        cdf = empirical_cdf(values)
        xs = [x for x, _ in cdf]
        ys = [y for _, y in cdf]
        assert xs == sorted(xs)
        assert ys == sorted(ys)
        assert all(0.0 < y <= 1.0 for y in ys)
