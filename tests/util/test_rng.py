"""Deterministic keyed RNG: the foundation of reproducible replays."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.rng import DeterministicStream, hash_randint, hash_uniform


class TestHashUniform:
    def test_deterministic(self):
        assert hash_uniform(1, "a", 2) == hash_uniform(1, "a", 2)

    def test_distinct_keys_differ(self):
        assert hash_uniform(1, "a") != hash_uniform(1, "b")

    def test_seed_changes_value(self):
        assert hash_uniform(1, "a") != hash_uniform(2, "a")

    def test_range(self):
        for i in range(200):
            value = hash_uniform("range", i)
            assert 0.0 <= value < 1.0

    def test_mean_roughly_half(self):
        values = [hash_uniform("mean-test", i) for i in range(2000)]
        assert abs(sum(values) / len(values) - 0.5) < 0.02

    def test_order_of_key_parts_matters(self):
        assert hash_uniform("a", "b") != hash_uniform("b", "a")

    def test_int_and_float_keys_distinct(self):
        # 1 and 1.0 are equal in Python but must hash as distinct key parts.
        assert hash_uniform("k", 1) != hash_uniform("k", 1.0)

    def test_bool_and_int_keys_distinct(self):
        assert hash_uniform("k", True) != hash_uniform("k", 1)

    def test_nested_tuples_supported(self):
        value = hash_uniform("edge", ("NYC", "CHI"), 42)
        assert 0.0 <= value < 1.0

    def test_none_supported(self):
        assert 0.0 <= hash_uniform(None) < 1.0

    def test_unsupported_key_type_raises(self):
        with pytest.raises(TypeError):
            hash_uniform(object())

    @given(st.integers(), st.text(max_size=20), st.integers())
    @settings(max_examples=50)
    def test_always_in_unit_interval(self, seed, key, extra):
        value = hash_uniform(seed, key, extra)
        assert 0.0 <= value < 1.0


class TestHashRandint:
    def test_range(self):
        for i in range(100):
            assert 0 <= hash_randint(7, "ri", i) < 7

    def test_invalid_upper(self):
        with pytest.raises(ValueError):
            hash_randint(0, "x")

    def test_covers_all_values(self):
        seen = {hash_randint(4, "cover", i) for i in range(200)}
        assert seen == {0, 1, 2, 3}


class TestDeterministicStream:
    def test_substream_context_extends(self):
        stream = DeterministicStream(5, "root")
        child = stream.substream("edge", "NYC")
        assert child.context == ("root", "edge", "NYC")
        assert child.seed == 5

    def test_substream_differs_from_parent(self):
        stream = DeterministicStream(5)
        assert stream.uniform("k") != stream.substream("sub").uniform("k")

    def test_substream_equivalent_to_inline_keys(self):
        stream = DeterministicStream(5, "a")
        assert stream.substream("b").uniform("c") == DeterministicStream(
            5, "a", "b"
        ).uniform("c")

    def test_uniform_between(self):
        stream = DeterministicStream(1)
        for i in range(100):
            value = stream.uniform_between(10.0, 20.0, i)
            assert 10.0 <= value < 20.0

    def test_uniform_between_empty_range_raises(self):
        with pytest.raises(ValueError):
            DeterministicStream(1).uniform_between(5.0, 4.0)

    def test_bernoulli_extremes(self):
        stream = DeterministicStream(2)
        assert not any(stream.bernoulli(0.0, i) for i in range(50))
        assert all(stream.bernoulli(1.0, i) for i in range(50))

    def test_bernoulli_rate(self):
        stream = DeterministicStream(3)
        hits = sum(stream.bernoulli(0.3, i) for i in range(5000))
        assert abs(hits / 5000 - 0.3) < 0.03

    def test_bernoulli_invalid_probability(self):
        with pytest.raises(ValueError):
            DeterministicStream(1).bernoulli(1.5)

    def test_exponential_mean(self):
        stream = DeterministicStream(4)
        values = [stream.exponential(10.0, i) for i in range(5000)]
        assert abs(sum(values) / len(values) - 10.0) < 0.6
        assert all(v >= 0 for v in values)

    def test_exponential_invalid_mean(self):
        with pytest.raises(ValueError):
            DeterministicStream(1).exponential(0.0)

    def test_lognormal_median(self):
        stream = DeterministicStream(5)
        values = sorted(stream.lognormal(45.0, 1.0, i) for i in range(4001))
        median = values[len(values) // 2]
        assert 38.0 < median < 53.0

    def test_lognormal_invalid_median(self):
        with pytest.raises(ValueError):
            DeterministicStream(1).lognormal(-1.0, 1.0)

    def test_normal_moments(self):
        stream = DeterministicStream(6)
        values = [stream.normal(i) for i in range(5000)]
        mean = sum(values) / len(values)
        variance = sum((v - mean) ** 2 for v in values) / len(values)
        assert abs(mean) < 0.05
        assert abs(variance - 1.0) < 0.1

    def test_choice(self):
        stream = DeterministicStream(7)
        options = ["a", "b", "c"]
        picks = {stream.choice(options, i) for i in range(100)}
        assert picks == set(options)

    def test_choice_empty_raises(self):
        with pytest.raises(ValueError):
            DeterministicStream(1).choice([])

    def test_randint(self):
        stream = DeterministicStream(8)
        assert all(0 <= stream.randint(5, i) < 5 for i in range(100))

    def test_draws_independent_of_call_order(self):
        a = DeterministicStream(9)
        first = a.uniform("x")
        second = a.uniform("y")
        b = DeterministicStream(9)
        assert b.uniform("y") == second
        assert b.uniform("x") == first

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=30)
    def test_exponential_finite(self, seed):
        value = DeterministicStream(seed).exponential(1.0, "k")
        assert math.isfinite(value)
