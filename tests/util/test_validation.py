"""Argument-validation helpers."""

from __future__ import annotations

import pytest

from repro.util.validation import (
    ValidationError,
    fail,
    require,
    require_non_negative,
    require_positive,
    require_probability,
)


def test_require_passes():
    require(True, "never raised")


def test_require_raises_with_message():
    with pytest.raises(ValidationError, match="custom message"):
        require(False, "custom message")


def test_fail_always_raises():
    with pytest.raises(ValidationError):
        fail("boom")


def test_probability_bounds():
    assert require_probability(0.0, "p") == 0.0
    assert require_probability(1.0, "p") == 1.0
    with pytest.raises(ValidationError):
        require_probability(1.01, "p")
    with pytest.raises(ValidationError):
        require_probability(-0.01, "p")


def test_positive():
    assert require_positive(0.5, "x") == 0.5
    with pytest.raises(ValidationError):
        require_positive(0.0, "x")


def test_non_negative():
    assert require_non_negative(0.0, "x") == 0.0
    with pytest.raises(ValidationError):
        require_non_negative(-1e-9, "x")


def test_validation_error_is_value_error():
    assert issubclass(ValidationError, ValueError)
