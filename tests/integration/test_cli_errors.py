"""CLI error handling: bad inputs fail with messages, not tracebacks."""

from __future__ import annotations

from repro.cli import main


class TestGracefulErrors:
    def test_unknown_node_in_graphs(self, capsys):
        code = main(["graphs", "NYC", "NOWHERE"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_preset(self, capsys):
        code = main(["evaluate", "--weeks", "0.01", "--preset", "apocalypse"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown scenario preset" in err

    def test_missing_trace_file(self, capsys):
        code = main(["classify", "--trace-file", "/nonexistent/trace.jsonl"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_malformed_trace_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"format": "something-else"}\n')
        code = main(["evaluate", "--trace-file", str(bad)])
        assert code == 2
        assert "not a repro-dgraphs" in capsys.readouterr().err

    def test_unreadable_trace_path_is_one_line(self, tmp_path, capsys):
        code = main(["evaluate", "--trace-file", str(tmp_path / "missing.jsonl")])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_trace_path_is_a_directory(self, tmp_path, capsys):
        code = main(["evaluate", "--trace-file", str(tmp_path)])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_chaos_unknown_scheme(self, capsys):
        code = main(["chaos", "--schemes", "teleportation"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown scheme" in err
        assert "Traceback" not in err

    def test_chaos_unknown_flow(self, capsys):
        code = main(["chaos", "--flows", "S->NOWHERE"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown flow" in err
        assert "Traceback" not in err

    def test_chaos_impossible_spec(self, capsys):
        # Faults cannot fit in the run: duration < max fault + settle.
        code = main(["chaos", "--duration", "3"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestServeClientErrors:
    # Satellite: daemon/client failures are one-line errors, not
    # tracebacks -- busy port, unreachable server, malformed request.

    def test_serve_port_in_use(self, capsys):
        import socket

        blocker = socket.socket()
        try:
            blocker.bind(("127.0.0.1", 0))
            blocker.listen(1)
            port = blocker.getsockname()[1]
            code = main(["serve", "--port", str(port)])
        finally:
            blocker.close()
        assert code == 2
        err = capsys.readouterr().err
        assert "already in use" in err
        assert "Traceback" not in err

    def test_client_server_unreachable(self, capsys):
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nothing listens here any more
        code = main(["client", "status", "--port", str(port)])
        assert code == 2
        err = capsys.readouterr().err
        assert "server unreachable" in err
        assert "Traceback" not in err

    def test_client_malformed_request_file(self, tmp_path, capsys):
        bad = tmp_path / "request.json"
        bad.write_text("{not json")
        # The file is rejected before any connection is attempted, so a
        # dead port is fine here.
        code = main(["client", "submit", "--file", str(bad), "--port", "1"])
        assert code == 2
        err = capsys.readouterr().err
        assert "not valid JSON" in err
        assert "Traceback" not in err

    def test_client_missing_request_file(self, tmp_path, capsys):
        code = main(
            ["client", "submit", "--file", str(tmp_path / "nope.json"),
             "--port", "1"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_client_invalid_field_value(self, capsys):
        # Schema validation fires client-side before any network use.
        code = main(["client", "evaluate", "--weeks", "-1", "--port", "1"])
        assert code == 2
        assert "weeks" in capsys.readouterr().err
