"""E21 end to end: one description, analytic matrix, live reconciliation."""

from __future__ import annotations

import pytest

from repro.analysis.degradation import degradation_rows
from repro.cli import main
from repro.scenarios import (
    FAMILY_NAMES,
    check_world_consistency,
    compile_family,
    event_windows,
    reconcile,
    run_live_family,
)
from repro.simulation.interval import run_replay
from repro.simulation.results import ReplayConfig

SCHEMES = (
    "static-single",
    "static-two-disjoint",
    "dynamic-two-disjoint",
    "targeted",
    "flooding",
)
DURATION_S = 240.0
SEED = 7


class TestSchemeMatrix:
    @pytest.mark.parametrize("family", FAMILY_NAMES)
    def test_targeted_never_cliffs_below_static_single(
        self, family, reference_topology, flows, service
    ):
        compiled = compile_family(
            reference_topology, family, seed=SEED, duration_s=DURATION_S
        )
        assert check_world_consistency(compiled) == []
        result = run_replay(
            reference_topology,
            compiled.timeline(),
            flows[:4],
            service,
            scheme_names=SCHEMES,
            config=ReplayConfig(detection_delay_s=1.0, collect_windows=True),
        )
        rows = degradation_rows(
            result,
            list(compiled.events),
            baseline="static-single",
            optimal="flooding",
        )
        by_scheme = {row["scheme"]: row for row in rows}
        assert set(by_scheme) == set(SCHEMES)
        assert (
            by_scheme["targeted"]["unavailable_s"]
            <= by_scheme["static-single"]["unavailable_s"] + 1e-9
        )


class TestLiveReconciliation:
    def test_live_overlay_matches_the_replay_per_event_window(
        self, reference_topology, flows, service
    ):
        duration_s = 16.0
        compiled = compile_family(
            reference_topology, "srlg-outage", seed=SEED, duration_s=duration_s
        )
        assert compiled.fault_schedule().blackholes  # the run injects faults
        harness = run_live_family(
            compiled, flows[:2], service, "targeted", seed=SEED
        )
        assert harness.invariants.violations == []
        replay = run_replay(
            reference_topology,
            compiled.timeline(),
            flows[:2],
            service,
            scheme_names=("targeted",),
            config=ReplayConfig(detection_delay_s=1.0, collect_windows=True),
        )
        windows = event_windows(compiled.events, duration_s)
        assert windows
        checked = 0
        for flow in flows[:2]:
            report = harness.reports[flow.name]
            rows = reconcile(
                report.send_times_s,
                report.deliveries,
                replay.get(flow.name, "targeted").windows,
                windows,
                deadline_ms=service.deadline_ms,
            )
            checked += len(rows)
            assert all(row.ok for row in rows), [
                (row.observed_on_time, row.expected_on_time, row.tolerance)
                for row in rows
                if not row.ok
            ]
        assert checked > 0


class TestCli:
    def test_evaluate_with_scenario_family(self, capsys):
        code = main(
            [
                "evaluate",
                "--scenario-family",
                "srlg-outage",
                "--scenario-seed",
                "3",
                "--weeks",
                "0.0005",
                "--no-cache",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "srlg-outage" in output

    def test_chaos_with_scenario_family(self, capsys):
        code = main(
            [
                "chaos",
                "--scenario-family",
                "srlg-outage",
                "--scenario-seed",
                "3",
                "--duration",
                "10",
                "--schemes",
                "static-single",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "srlg-outage" in output

    def test_unknown_family_is_a_one_line_error(self, capsys):
        code = main(["chaos", "--scenario-family", "solar-flare"])
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown scenario family" in err
        assert err.strip().count("\n") == 0

    def test_trace_file_conflicts_with_family(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(["generate-trace", str(trace), "--weeks", "0.001"]) == 0
        capsys.readouterr()
        code = main(
            [
                "evaluate",
                "--trace-file",
                str(trace),
                "--scenario-family",
                "diurnal",
            ]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "cannot be combined" in err
