"""End-to-end integration: the paper's claims at reduced scale.

These tests run the full pipeline (scenario generation -> trace -> replay
-> metrics) on short traces so they stay fast; the full 4-week headline
numbers live in the benches and EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro import (
    ReplayConfig,
    Scenario,
    ServiceSpec,
    build_reference_topology,
    generate_timeline,
    reference_flows,
    run_replay,
)
from repro.analysis.metrics import gap_coverage
from repro.netmodel.scenarios import DAY_S
from repro.simulation.cost import cost_comparison

pytestmark = pytest.mark.integration


@pytest.fixture(scope="module")
def replay_result():
    topology = build_reference_topology()
    scenario = Scenario(duration_s=2 * DAY_S)
    _events, timeline = generate_timeline(topology, scenario, seed=7)
    return run_replay(
        topology,
        timeline,
        reference_flows(),
        ServiceSpec(),
        config=ReplayConfig(detection_delay_s=1.0),
    )


class TestSchemeOrdering:
    """The qualitative ordering the paper establishes must hold on any
    reasonably sized trace: single < two disjoint < targeted <= flooding."""

    def test_flooding_is_best(self, replay_result):
        flooding = replay_result.totals("flooding").unavailable_s
        for scheme in replay_result.schemes:
            assert flooding <= replay_result.totals(scheme).unavailable_s + 1e-6

    def test_static_single_is_worst(self, replay_result):
        worst = replay_result.totals("static-single").unavailable_s
        for scheme in replay_result.schemes:
            assert replay_result.totals(scheme).unavailable_s <= worst + 1e-6

    def test_redundancy_beats_single(self, replay_result):
        assert (
            replay_result.totals("static-two-disjoint").unavailable_s
            < replay_result.totals("static-single").unavailable_s
        )

    def test_targeted_beats_two_disjoint(self, replay_result):
        assert (
            replay_result.totals("targeted").unavailable_s
            < replay_result.totals("dynamic-two-disjoint").unavailable_s
        )

    def test_targeted_close_to_flooding(self, replay_result):
        """Claim C4 qualitatively: targeted covers most of the gap."""
        coverage = gap_coverage(replay_result, "targeted")
        assert coverage > 0.9

    def test_everyone_highly_available(self, replay_result):
        """Claim C1: even the worst scheme keeps multi-nines availability."""
        for scheme in replay_result.schemes:
            assert replay_result.totals(scheme).availability > 0.99


class TestCostClaim:
    def test_targeted_cost_within_a_few_percent(self, replay_result):
        """Claim C6: targeted costs ~2% more than two disjoint paths."""
        comparison = {c.scheme: c for c in cost_comparison(replay_result)}
        overhead = comparison["targeted"].overhead_vs_baseline
        assert 0.0 < overhead < 0.08

    def test_flooding_cost_prohibitive(self, replay_result):
        comparison = {c.scheme: c for c in cost_comparison(replay_result)}
        assert comparison["flooding"].overhead_vs_baseline > 3.0

    def test_single_path_cheapest(self, replay_result):
        costs = {
            scheme: replay_result.totals(scheme).average_cost_messages
            for scheme in replay_result.schemes
        }
        assert min(costs, key=costs.get) in ("static-single", "dynamic-single")


class TestTracePersistenceIntegration:
    def test_replay_from_file_matches_in_memory(self, tmp_path):
        from repro.netmodel.scenarios import generate_events
        from repro.netmodel.trace import load_timeline, write_trace

        topology = build_reference_topology()
        scenario = Scenario(duration_s=0.5 * DAY_S)
        events = generate_events(topology, scenario, seed=13)
        path = tmp_path / "trace.jsonl"
        write_trace(path, topology, scenario.duration_s, events)
        _loaded, timeline = load_timeline(path, topology)

        _fresh_events, fresh_timeline = generate_timeline(topology, scenario, seed=13)
        flows = reference_flows()[:4]
        service = ServiceSpec()
        from_file = run_replay(
            topology, timeline, flows, service, scheme_names=("targeted",)
        )
        in_memory = run_replay(
            topology, fresh_timeline, flows, service, scheme_names=("targeted",)
        )
        assert from_file.totals("targeted").unavailable_s == pytest.approx(
            in_memory.totals("targeted").unavailable_s
        )
