"""CLI observability: ``--trace`` runs, the ``obs`` subcommand, logging."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.obs import read_manifest

EVALUATE = ["evaluate", "--weeks", "0.02", "--seed", "5", "--no-cache"]


class TestParser:
    def test_trace_flags_parse(self):
        parsed = build_parser().parse_args(
            EVALUATE + ["--trace", "--trace-out", "artifacts"]
        )
        assert parsed.trace is True
        assert parsed.trace_out == "artifacts"

    def test_trace_defaults_off(self):
        parsed = build_parser().parse_args(["evaluate"])
        assert parsed.trace is False
        assert parsed.trace_out == "trace-out"

    def test_obs_subcommand_registered(self):
        parsed = build_parser().parse_args(["obs", "summary", "some-dir"])
        assert parsed.command == "obs"
        assert parsed.action == "summary"
        assert parsed.dir == "some-dir"

    def test_log_level_choices(self):
        parsed = build_parser().parse_args(
            ["--log-level", "debug", "graphs", "NYC", "SJC"]
        )
        assert parsed.log_level == "debug"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["--log-level", "loud", "graphs", "NYC", "SJC"]
            )


class TestEvaluateTrace:
    @pytest.fixture(scope="class")
    def artifacts(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("trace-out")
        assert main(EVALUATE + ["--trace", "--trace-out", str(out)]) == 0
        return out

    def test_writes_all_three_artifacts(self, artifacts):
        for name in ("trace.json", "spans.jsonl", "manifest.json"):
            assert (artifacts / name).exists()

    def test_chrome_trace_loadable(self, artifacts):
        payload = json.loads((artifacts / "trace.json").read_text())
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert events
        assert {event["ph"] for event in events} <= {"M", "X", "i"}
        for event in events:
            if event["ph"] == "X":
                assert event["dur"] >= 0

    def test_manifest_identity_fields(self, artifacts):
        manifest = read_manifest(artifacts / "manifest.json")
        assert manifest.label == "evaluate"
        assert manifest.seed == 5
        assert manifest.schemes
        assert manifest.flows
        assert manifest.exec["shards_run"] > 0
        assert manifest.spans["recorded"] > 0

    def test_replay_counters_reconcile(self, artifacts):
        """Per-scheme replay.* counters in the manifest form a coherent
        accounting: every scheme replayed the same flow-seconds, and the
        problem time never exceeds it.  (Bitwise agreement with
        ``ReplayResult.all_totals()`` is locked down at the engine level
        in tests/exec/test_engine_obs.py.)"""
        manifest = read_manifest(artifacts / "manifest.json")
        durations = set()
        for scheme in manifest.schemes:
            duration = manifest.metrics[f"replay.duration_s.{scheme}"]["value"]
            durations.add(duration)
            for kind in ("unavailable_s", "lost_s", "late_s"):
                value = manifest.metrics[f"replay.{kind}.{scheme}"]["value"]
                assert 0.0 <= value <= duration
        assert len(durations) == 1

    def test_obs_summary(self, artifacts, capsys):
        assert main(["obs", "summary", str(artifacts)]) == 0
        output = capsys.readouterr().out
        assert "run manifest" in output
        assert "spans recorded" in output

    def test_obs_summary_prefix(self, artifacts, capsys):
        assert main(
            ["obs", "summary", str(artifacts), "--prefix", "replay."]
        ) == 0
        output = capsys.readouterr().out
        assert "replay.duration_s." in output
        assert "[counter]" in output

    def test_obs_export_reproduces_trace(self, artifacts, tmp_path, capsys):
        out = tmp_path / "rebuilt.json"
        assert main(
            ["obs", "export", str(artifacts), "--out", str(out)]
        ) == 0
        rebuilt = json.loads(out.read_text())
        direct = json.loads((artifacts / "trace.json").read_text())
        assert rebuilt == direct

    def test_untraced_run_writes_nothing(self, tmp_path, capsys):
        assert main(EVALUATE + ["--trace-out", str(tmp_path / "off")]) == 0
        assert "wrote trace artifacts" not in capsys.readouterr().out
        assert not (tmp_path / "off").exists()


class TestChaosTrace:
    def test_chaos_trace_writes_artifacts(self, tmp_path, capsys):
        out = tmp_path / "chaos-out"
        code = main(
            [
                "chaos",
                "--duration",
                "20",
                "--seed",
                "7",
                "--crashes",
                "0",
                "--schemes",
                "static-single",
                "--trace",
                "--trace-out",
                str(out),
            ]
        )
        assert code in (0, 1)  # 1 = invariant violations, still traced
        manifest = read_manifest(out / "manifest.json")
        assert manifest.label == "chaos"
        assert "schedule" in manifest.extra
        assert (out / "trace.json").exists()
        capsys.readouterr()

        assert main(["obs", "flight", str(out)]) == 0
        flight_output = capsys.readouterr().out
        snapshots = list(out.glob("flight_*.json"))
        if snapshots:
            assert snapshots[0].name in flight_output
        else:
            assert "no flight snapshots" in flight_output


class TestObsErrors:
    def test_summary_missing_manifest(self, tmp_path, capsys):
        assert main(["obs", "summary", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err

    def test_export_missing_spans(self, tmp_path, capsys):
        assert main(["obs", "export", str(tmp_path)]) == 2
        assert "error:" in capsys.readouterr().err


class TestLogging:
    def test_debug_level_accepted(self, capsys):
        assert main(["--log-level", "debug", "graphs", "NYC", "SJC"]) == 0

    def test_errors_logged_to_stderr(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        assert main(["classify", "--trace-file", str(missing)]) == 2
        assert "error:" in capsys.readouterr().err
