"""`repro topology` subcommands and --topology-* evaluation overrides."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.topogen import GeneratedTopology, generate_topology


class TestGenerate:
    def test_stdout_is_the_exact_artifact_bytes(self, capsys):
        code = main(
            ["topology", "generate", "--family", "waxman", "--size", "30",
             "--seed", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out == generate_topology("waxman", 30, 2).to_json()

    def test_stdout_is_byte_stable_across_runs(self, capsys):
        argv = ["topology", "generate", "--family", "isp-hier", "--size",
                "50", "--seed", "7"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_out_writes_loadable_artifact(self, tmp_path, capsys):
        path = tmp_path / "topo.json"
        code = main(
            ["topology", "generate", "--family", "random-geo", "--size",
             "20", "--seed", "1", "--out", str(path)]
        )
        assert code == 0
        loaded = GeneratedTopology.load(path)
        assert loaded == generate_topology("random-geo", 20, 1)
        summary = capsys.readouterr().out
        assert loaded.digest[:12] in summary

    def test_seed_defaults_to_zero(self, capsys):
        parsed = build_parser().parse_args(
            ["topology", "generate", "--family", "waxman", "--size", "30"]
        )
        assert parsed.seed == 0


class TestInfo:
    def test_info_from_triple(self, capsys):
        code = main(
            ["topology", "info", "--family", "isp-hier", "--size", "50",
             "--seed", "7"]
        )
        assert code == 0
        out = capsys.readouterr().out
        artifact = generate_topology("isp-hier", 50, 7)
        assert artifact.name in out
        assert artifact.digest in out
        assert "nodes:" in out and "links:" in out
        assert "degree:" in out and "latency:" in out

    def test_info_from_file(self, tmp_path, capsys):
        artifact = generate_topology("random-geo", 20, 1)
        path = artifact.dump(tmp_path / "topo.json")
        assert main(["topology", "info", str(path)]) == 0
        assert artifact.digest in capsys.readouterr().out

    def test_flows_listed_on_request(self, capsys):
        code = main(
            ["topology", "info", "--family", "random-geo", "--size", "20",
             "--seed", "1", "--flows"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "->" in out  # flow names like G3->G17


class TestErrors:
    def test_unknown_family_one_line(self, capsys):
        code = main(
            ["topology", "generate", "--family", "fat-tree", "--size", "50"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown topology family" in err
        assert "Traceback" not in err

    def test_size_envelope_one_line(self, capsys):
        code = main(
            ["topology", "generate", "--family", "isp-hier", "--size", "8"]
        )
        assert code == 2
        assert "supports sizes" in capsys.readouterr().err

    def test_info_path_and_family_conflict(self, tmp_path, capsys):
        path = generate_topology("random-geo", 20, 1).dump(tmp_path / "t.json")
        code = main(
            ["topology", "info", str(path), "--family", "waxman", "--size",
             "30"]
        )
        assert code == 2
        assert "not both" in capsys.readouterr().err

    def test_info_needs_some_source(self, capsys):
        assert main(["topology", "info"]) == 2
        assert "artifact path or --family" in capsys.readouterr().err

    def test_info_corrupt_artifact_one_line(self, tmp_path, capsys):
        path = tmp_path / "t.json"
        document = json.loads(generate_topology("random-geo", 20, 1).to_json())
        document["digest"] = "0" * 64
        path.write_text(json.dumps(document) + "\n")
        assert main(["topology", "info", str(path)]) == 2
        assert "digest mismatch" in capsys.readouterr().err

    def test_evaluate_unknown_family_one_line(self, capsys):
        code = main(
            ["evaluate", "--weeks", "0.01", "--topology-family", "fat-tree",
             "--topology-size", "50"]
        )
        assert code == 2
        assert "unknown topology family" in capsys.readouterr().err


class TestEvaluateOverride:
    @pytest.mark.slow
    def test_evaluate_on_generated_topology(self, tmp_path, capsys):
        code = main(
            ["evaluate", "--weeks", "0.05", "--seed", "3",
             "--topology-family", "random-geo", "--topology-size", "20",
             "--topology-seed", "4", "--schemes", "targeted",
             "--no-cache", "--trace", "--trace-out", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "generated topology topogen-random-geo-20-s4" in out
        assert "timings:" in out
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        extra = manifest["extra"]
        assert extra["generated_topology"]["name"] == "topogen-random-geo-20-s4"
        assert set(extra["timings"]) >= {
            "resolve_topology_s", "build_timeline_s", "replay_s",
        }
