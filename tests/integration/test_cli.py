"""Command-line interface end to end."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_registered(self):
        parser = build_parser()
        for command in ("generate-trace", "evaluate", "classify", "graphs", "cache"):
            args = {
                "generate-trace": ["generate-trace", "out.jsonl"],
                "evaluate": ["evaluate"],
                "classify": ["classify"],
                "graphs": ["graphs", "NYC", "SJC"],
                "cache": ["cache", "info"],
            }[command]
            parsed = parser.parse_args(args)
            assert parsed.command == command

    def test_evaluate_exec_flags_parse(self):
        parsed = build_parser().parse_args(
            [
                "evaluate",
                "--workers",
                "4",
                "--time-shards",
                "3",
                "--no-cache",
                "--cache-dir",
                "/tmp/x",
            ]
        )
        assert parsed.workers == 4
        assert parsed.time_shards == 3
        assert parsed.no_cache is True
        assert parsed.cache_dir == "/tmp/x"


class TestGraphsCommand:
    def test_prints_all_families(self, capsys):
        assert main(["graphs", "NYC", "SJC"]) == 0
        output = capsys.readouterr().out
        for family in (
            "single path",
            "two disjoint paths",
            "time-constrained flooding",
            "source-problem graph",
            "destination-problem graph",
            "robust source+destination",
        ):
            assert family in output

    def test_deadline_flag(self, capsys):
        assert main(["graphs", "NYC", "SJC", "--deadline-ms", "40"]) == 0
        narrow = capsys.readouterr().out
        main(["graphs", "NYC", "SJC", "--deadline-ms", "100"])
        wide = capsys.readouterr().out
        assert len(wide) > len(narrow)


class TestTraceCommands:
    def test_generate_then_classify(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        assert main(
            ["generate-trace", str(trace), "--weeks", "0.1", "--seed", "3"]
        ) == 0
        assert trace.exists()
        capsys.readouterr()
        assert main(["classify", "--trace-file", str(trace)]) == 0
        output = capsys.readouterr().out
        assert "destination" in output

    def test_classify_rejects_old_trace_spelling(self, tmp_path, capsys):
        # ``--trace`` was the pre-PR-4 spelling; classify and evaluate now
        # agree on ``--trace-file`` for condition-trace inputs.
        with pytest.raises(SystemExit):
            main(["classify", "--trace", str(tmp_path / "t.jsonl")])

    def test_evaluate_from_trace(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        main(["generate-trace", str(trace), "--weeks", "0.05", "--seed", "3"])
        capsys.readouterr()
        assert main(["evaluate", "--trace-file", str(trace)]) == 0
        output = capsys.readouterr().out
        assert "targeted" in output
        assert "gap cov %" in output
        assert "msgs/pkt" in output

    def test_evaluate_exits_nonzero_on_zero_windows(self, monkeypatch, capsys):
        from repro.exec.telemetry import ExecTelemetry
        from repro.netmodel.topology import ServiceSpec
        from repro.simulation.results import ReplayConfig, ReplayResult

        def empty_replay(*_args, **_kwargs):
            return ReplayResult(ServiceSpec(), ReplayConfig()), ExecTelemetry()

        monkeypatch.setattr("repro.cli.run_replay_parallel", empty_replay)
        assert main(["evaluate", "--weeks", "0.01", "--seed", "5"]) == 2
        # the empty result tables must not have been printed
        assert "gap cov %" not in capsys.readouterr().out

    def test_evaluate_generates_when_no_trace(self, capsys):
        assert main(["evaluate", "--weeks", "0.02", "--seed", "5", "--no-cache"]) == 0
        output = capsys.readouterr().out
        assert "flooding" in output


class TestExecutionEngineCommands:
    EVALUATE = ["evaluate", "--weeks", "0.02", "--seed", "5", "--workers", "0"]

    def test_evaluate_prints_telemetry(self, tmp_path, capsys):
        argv = self.EVALUATE + ["--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        output = capsys.readouterr().out
        assert "execution engine" in output
        assert "shards run" in output
        assert "shards cached" in output

    def test_second_evaluate_hits_cache(self, tmp_path, capsys):
        argv = self.EVALUATE + ["--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out

        def telemetry_count(output: str, label: str) -> int:
            for line in output.splitlines():
                if line.startswith(label):
                    return int(line.split()[-1])
            raise AssertionError(f"no {label!r} row in output")

        total = telemetry_count(first, "shards total")
        assert telemetry_count(first, "shards run") == total
        assert telemetry_count(second, "shards cached") == total
        assert telemetry_count(second, "shards run") == 0
        # cached and fresh replays print identical result tables
        assert first.split("execution engine")[0] == second.split("execution engine")[0]

    def test_no_cache_flag_bypasses_cache(self, tmp_path, capsys):
        argv = self.EVALUATE + ["--no-cache", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        assert not list(tmp_path.glob("*/*.json"))

    def test_evaluate_with_workers_and_time_shards(self, tmp_path, capsys):
        argv = [
            "evaluate",
            "--weeks",
            "0.01",
            "--seed",
            "5",
            "--workers",
            "2",
            "--time-shards",
            "2",
            "--cache-dir",
            str(tmp_path),
        ]
        assert main(argv) == 0
        output = capsys.readouterr().out
        assert "targeted" in output
        assert "execution engine" in output

    def test_cache_info_and_clear(self, tmp_path, capsys):
        argv = self.EVALUATE + ["--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        capsys.readouterr()

        assert main(["cache", "info", "--cache-dir", str(tmp_path)]) == 0
        info = capsys.readouterr().out
        assert str(tmp_path) in info
        entries = int(
            [line for line in info.splitlines() if line.startswith("entries")][0].split()[-1]
        )
        assert entries > 0

        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        cleared = capsys.readouterr().out
        assert f"removed {entries}" in cleared

        assert main(["cache", "info", "--cache-dir", str(tmp_path)]) == 0
        assert "entries:    0" in capsys.readouterr().out
