"""Command-line interface end to end."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_registered(self):
        parser = build_parser()
        for command in ("generate-trace", "evaluate", "classify", "graphs"):
            args = {
                "generate-trace": ["generate-trace", "out.jsonl"],
                "evaluate": ["evaluate"],
                "classify": ["classify"],
                "graphs": ["graphs", "NYC", "SJC"],
            }[command]
            parsed = parser.parse_args(args)
            assert parsed.command == command


class TestGraphsCommand:
    def test_prints_all_families(self, capsys):
        assert main(["graphs", "NYC", "SJC"]) == 0
        output = capsys.readouterr().out
        for family in (
            "single path",
            "two disjoint paths",
            "time-constrained flooding",
            "source-problem graph",
            "destination-problem graph",
            "robust source+destination",
        ):
            assert family in output

    def test_deadline_flag(self, capsys):
        assert main(["graphs", "NYC", "SJC", "--deadline-ms", "40"]) == 0
        narrow = capsys.readouterr().out
        main(["graphs", "NYC", "SJC", "--deadline-ms", "100"])
        wide = capsys.readouterr().out
        assert len(wide) > len(narrow)


class TestTraceCommands:
    def test_generate_then_classify(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        assert main(
            ["generate-trace", str(trace), "--weeks", "0.1", "--seed", "3"]
        ) == 0
        assert trace.exists()
        capsys.readouterr()
        assert main(["classify", "--trace", str(trace)]) == 0
        output = capsys.readouterr().out
        assert "destination" in output

    def test_evaluate_from_trace(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        main(["generate-trace", str(trace), "--weeks", "0.05", "--seed", "3"])
        capsys.readouterr()
        assert main(["evaluate", "--trace", str(trace)]) == 0
        output = capsys.readouterr().out
        assert "targeted" in output
        assert "gap cov %" in output
        assert "msgs/pkt" in output

    def test_evaluate_generates_when_no_trace(self, capsys):
        assert main(["evaluate", "--weeks", "0.02", "--seed", "5"]) == 0
        output = capsys.readouterr().out
        assert "flooding" in output
