"""Simulated message fabric."""

from __future__ import annotations

import pytest

from repro.netmodel.conditions import ConditionTimeline, Contribution, LinkState
from repro.overlay.kernel import EventKernel
from repro.overlay.network import SimNetwork
from repro.util.validation import ValidationError


class Recorder:
    def __init__(self):
        self.received = []

    def receive(self, from_node, message):
        self.received.append((from_node, message))


def build(diamond, *contributions, duration=100.0, seed=0):
    kernel = EventKernel()
    timeline = ConditionTimeline(diamond, duration, contributions)
    network = SimNetwork(diamond, timeline, kernel, seed=seed)
    sinks = {}
    for node in diamond.nodes:
        sinks[node] = Recorder()
        network.register(node, sinks[node])
    return kernel, network, sinks


class TestDelivery:
    def test_clean_link_delivers_after_latency(self, diamond):
        kernel, network, sinks = build(diamond)
        network.send("S", "A", "hello")
        kernel.run_until(0.001)
        assert sinks["A"].received == []  # 2 ms latency not yet elapsed
        kernel.run_until(0.01)
        assert sinks["A"].received == [("S", "hello")]

    def test_lossy_link_drops(self, diamond):
        kernel, network, _sinks = build(
            diamond,
            Contribution(("S", "A"), 0.0, 100.0, LinkState(loss_rate=1.0)),
        )
        for _ in range(20):
            network.send("S", "A", "x")
        kernel.run_until(1.0)
        assert network.dropped[("S", "A")] == 20

    def test_partial_loss_rate(self, diamond):
        kernel, network, sinks = build(
            diamond,
            Contribution(("S", "A"), 0.0, 1000.0, LinkState(loss_rate=0.4)),
            duration=1000.0,
        )
        for _ in range(2000):
            network.send("S", "A", "x")
        kernel.run_until(10.0)
        delivered = len(sinks["A"].received)
        assert 0.55 * 2000 < delivered < 0.65 * 2000

    def test_non_neighbor_send_rejected(self, diamond):
        _kernel, network, _sinks = build(diamond)
        with pytest.raises(ValidationError):
            network.send("S", "T", "x")  # S and T are not adjacent

    def test_unregistered_sink_silently_drops(self, diamond):
        kernel = EventKernel()
        timeline = ConditionTimeline(diamond, 10.0)
        network = SimNetwork(diamond, timeline, kernel)
        network.send("S", "A", "x")  # nobody registered: models a crash
        kernel.run_until(1.0)

    def test_latency_inflation_delays(self, diamond):
        kernel, network, sinks = build(
            diamond,
            Contribution(("S", "A"), 0.0, 100.0, LinkState(extra_latency_ms=50.0)),
        )
        network.send("S", "A", "slow")
        kernel.run_until(0.05)
        assert sinks["A"].received == []
        kernel.run_until(0.06)
        assert len(sinks["A"].received) == 1

    def test_deterministic_for_seed(self, diamond):
        outcomes = []
        for _ in range(2):
            kernel, network, sinks = build(
                diamond,
                Contribution(("S", "A"), 0.0, 100.0, LinkState(loss_rate=0.5)),
                seed=7,
            )
            for _i in range(100):
                network.send("S", "A", "x")
            kernel.run_until(1.0)
            outcomes.append(len(sinks["A"].received))
        assert outcomes[0] == outcomes[1]

    def test_stats(self, diamond):
        kernel, network, _sinks = build(diamond)
        network.send("S", "A", "x")
        network.send("A", "T", "y")
        assert network.total_sent() == 2
        assert network.total_dropped() == 0

    def test_double_registration_rejected(self, diamond):
        _kernel, network, _sinks = build(diamond)
        with pytest.raises(ValidationError):
            network.register("S", Recorder())
