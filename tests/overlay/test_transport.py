"""Sending/receiving apps and flow-report accounting."""

from __future__ import annotations

import pytest

from repro.netmodel.conditions import ConditionTimeline
from repro.netmodel.topology import FlowSpec, ServiceSpec
from repro.overlay.harness import build_overlay
from repro.overlay.transport import FlowReport, ReceivingApp, SendingApp

FLOW = FlowSpec("S", "T")
SERVICE = ServiceSpec(deadline_ms=15.0, send_interval_ms=10.0, rtt_budget_ms=30.0)


def _harness(diamond, duration_s=30.0):
    timeline = ConditionTimeline(diamond, duration_s)
    return build_overlay(
        diamond, timeline, [FLOW], SERVICE, scheme="static-single", seed=3
    )


class TestFlowReport:
    def test_lost_and_late_derive_from_counts(self):
        report = FlowReport(FLOW, sent=10, delivered=7, on_time=5)
        assert report.lost == 3
        assert report.late == 2
        assert report.on_time_fraction == 0.5

    def test_nothing_sent_counts_as_perfect(self):
        report = FlowReport(FLOW)
        assert report.lost == 0
        assert report.late == 0
        assert report.on_time_fraction == 1.0

    def test_all_on_time(self):
        report = FlowReport(FLOW, sent=4, delivered=4, on_time=4)
        assert report.on_time_fraction == 1.0
        assert report.late == 0


class TestPerPacketLog:
    def test_send_times_and_deliveries_match_counters(self, diamond):
        harness = _harness(diamond)
        harness.start()
        harness.run(1.0)
        harness.stop_traffic()
        harness.run(0.5)  # drain in-flight packets
        report = harness.reports[FLOW.name]
        assert report.sent > 0
        assert len(report.send_times_s) == report.sent
        assert len(report.deliveries) == report.delivered
        on_time = sum(
            1
            for _sent_at, latency_ms in report.deliveries
            if latency_ms <= SERVICE.deadline_ms
        )
        assert on_time == report.on_time

    def test_send_times_are_monotone_and_in_window(self, diamond):
        harness = _harness(diamond)
        harness.start()
        harness.run(1.0)
        report = harness.reports[FLOW.name]
        assert report.send_times_s == sorted(report.send_times_s)
        assert all(0.0 <= t <= 1.0 for t in report.send_times_s)

    def test_deliveries_carry_send_timestamps(self, diamond):
        harness = _harness(diamond)
        harness.start()
        harness.run(1.0)
        harness.stop_traffic()
        harness.run(0.5)
        report = harness.reports[FLOW.name]
        sends = set(report.send_times_s)
        assert all(sent_at in sends for sent_at, _latency in report.deliveries)
        assert all(latency >= 0.0 for _sent_at, latency in report.deliveries)


class TestReceivingApp:
    def test_must_run_at_destination(self, diamond):
        harness = _harness(diamond)
        with pytest.raises(Exception, match="destination"):
            ReceivingApp(harness.nodes["S"], FLOW, SERVICE)

    def test_deadline_boundary_is_inclusive(self, diamond):
        """A packet arriving at exactly the deadline is on time."""
        from repro.overlay.messages import DataPacket

        harness = _harness(diamond)
        receiver_report = harness.reports[FLOW.name]
        packet = DataPacket(
            flow=FLOW.name,
            source="S",
            destination="T",
            sequence=0,
            sent_at_s=0.0,
            graph_encoding=b"",
        )
        deliver = harness.nodes["T"]._delivery_callbacks[FLOW.name]
        deliver(packet, SERVICE.deadline_ms / 1000.0)
        assert receiver_report.on_time == 1
        deliver(packet, SERVICE.deadline_ms / 1000.0 + 1e-4)
        assert receiver_report.delivered == 2
        assert receiver_report.on_time == 1
        assert receiver_report.late == 1


class TestSendingApp:
    def test_must_run_at_source(self, diamond):
        harness = _harness(diamond)
        daemon = harness.daemons[FLOW.name]
        receiver = ReceivingApp(
            harness.nodes["T"], FlowSpec("A", "T"), SERVICE
        )
        with pytest.raises(Exception, match="source"):
            SendingApp(harness.nodes["T"], daemon, receiver)

    def test_start_is_idempotent(self, diamond):
        harness = _harness(diamond)
        harness.start()
        harness.senders[FLOW.name].start()  # second call must not double-send
        harness.run(1.0)
        report = harness.reports[FLOW.name]
        # 10 ms interval over 1 s: ~100 packets, not ~200.
        assert report.sent <= 105

    def test_stop_halts_sending_but_not_delivery(self, diamond):
        harness = _harness(diamond)
        harness.start()
        harness.run(1.0)
        harness.senders[FLOW.name].stop()
        sent_at_stop = harness.reports[FLOW.name].sent
        harness.run(1.0)
        report = harness.reports[FLOW.name]
        assert report.sent == sent_at_stop
        # In-flight packets still landed after the stop.
        assert report.delivered == report.sent

    def test_sequences_are_consecutive(self, diamond):
        harness = _harness(diamond)
        seen = []
        original = harness.nodes["S"].originate

        def spy(packet):
            seen.append(packet.sequence)
            return original(packet)

        harness.nodes["S"].originate = spy
        harness.start()
        harness.run(0.5)
        assert seen == list(range(len(seen)))
        assert len(seen) > 1

    def test_restart_after_stop_resumes(self, diamond):
        harness = _harness(diamond)
        harness.start()
        harness.run(0.5)
        sender = harness.senders[FLOW.name]
        sender.stop()
        harness.run(0.5)
        sender.start()
        sent_before = harness.reports[FLOW.name].sent
        harness.run(0.5)
        assert harness.reports[FLOW.name].sent > sent_before
