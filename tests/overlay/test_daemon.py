"""Per-flow routing daemon."""

from __future__ import annotations

import pytest

from repro.core.encoding import decode_graph
from repro.netmodel.conditions import ConditionTimeline, Contribution, LinkState
from repro.netmodel.topology import FlowSpec, ServiceSpec
from repro.overlay.daemon import FlowRoutingDaemon
from repro.overlay.kernel import EventKernel
from repro.overlay.network import SimNetwork
from repro.overlay.node import OverlayNode
from repro.routing.registry import make_policy
from repro.util.validation import ValidationError

FLOW = FlowSpec("S", "T")
SERVICE = ServiceSpec(deadline_ms=15.0, send_interval_ms=10.0, rtt_budget_ms=30.0)


def deploy(diamond, *contributions, duration=200.0):
    kernel = EventKernel()
    timeline = ConditionTimeline(diamond, duration, contributions)
    network = SimNetwork(diamond, timeline, kernel, seed=2)
    nodes = {
        node_id: OverlayNode(node_id, diamond, network, kernel)
        for node_id in diamond.nodes
    }
    for node in nodes.values():
        node.start()
    return kernel, nodes


class TestDaemon:
    def test_initial_graph_installed_immediately(self, diamond):
        _kernel, nodes = deploy(diamond)
        daemon = FlowRoutingDaemon(nodes["S"], FLOW, SERVICE, make_policy("targeted"))
        assert daemon.current_graph.connects()
        # The wire encoding round-trips to the same graph.
        decoded = decode_graph(diamond, daemon.current_encoding)
        assert decoded.edges == daemon.current_graph.edges

    def test_must_run_at_source(self, diamond):
        _kernel, nodes = deploy(diamond)
        with pytest.raises(ValidationError):
            FlowRoutingDaemon(nodes["A"], FLOW, SERVICE, make_policy("targeted"))

    def test_switches_on_observed_problem(self, diamond):
        kernel, nodes = deploy(
            diamond,
            Contribution(("S", "A"), 10.0, 100.0, LinkState(loss_rate=1.0)),
        )
        daemon = FlowRoutingDaemon(
            nodes["S"], FLOW, SERVICE, make_policy("dynamic-single"),
            update_interval_s=0.25,
        )
        daemon.start()
        initial = daemon.current_graph
        assert ("S", "A") in initial.edges
        kernel.run_until(30.0)
        assert ("S", "A") not in daemon.current_graph.edges
        assert daemon.graph_switches >= 1

    def test_static_scheme_never_switches(self, diamond):
        kernel, nodes = deploy(
            diamond,
            Contribution(("S", "A"), 10.0, 100.0, LinkState(loss_rate=1.0)),
        )
        daemon = FlowRoutingDaemon(
            nodes["S"], FLOW, SERVICE, make_policy("static-single")
        )
        daemon.start()
        kernel.run_until(60.0)
        assert daemon.graph_switches == 0

    def test_update_interval_validated(self, diamond):
        _kernel, nodes = deploy(diamond)
        with pytest.raises(ValidationError):
            FlowRoutingDaemon(
                nodes["S"], FLOW, SERVICE, make_policy("targeted"),
                update_interval_s=0.0,
            )
