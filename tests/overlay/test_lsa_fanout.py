"""Capped link-state flooding on generated topologies.

With ``lsa_flood_fanout`` set, a node forwards a received LSA to at most
that many neighbours (ranked by a keyed hash), bounding flood cost to
O(fanout * nodes) per update on large overlays.  Origination is never
capped, and the default (None) floods every neighbour exactly as before.
"""

from __future__ import annotations

import pytest

from repro.netmodel.conditions import Contribution, LinkState
from repro.overlay.kernel import EventKernel
from repro.overlay.network import SimNetwork
from repro.overlay.node import NodeConfig, OverlayNode
from repro.netmodel.conditions import ConditionTimeline
from repro.topogen import resolve_workload
from repro.util.validation import ValidationError


def deploy(topology, *contributions, duration=120.0, config=None, seed=0):
    kernel = EventKernel()
    timeline = ConditionTimeline(topology, duration, contributions)
    network = SimNetwork(topology, timeline, kernel, seed=seed)
    nodes = {
        node_id: OverlayNode(
            node_id, topology, network, kernel, config or NodeConfig()
        )
        for node_id in topology.nodes
    }
    for node in nodes.values():
        node.start()
    return kernel, network, nodes


def lossy_run(config, seed=0):
    """Run a degraded generated overlay and return the node map."""
    topology = resolve_workload("random-geo", 20, 4).topology
    a, b = sorted(topology.edges)[0]
    kernel, _network, nodes = deploy(
        topology,
        Contribution((a, b), 0.0, 120.0, LinkState(loss_rate=0.6)),
        config=config,
        seed=seed,
    )
    kernel.run_until(60.0)
    return nodes


class TestConfig:
    def test_fanout_below_two_rejected(self):
        with pytest.raises(ValidationError, match="lsa_flood_fanout"):
            NodeConfig(lsa_flood_fanout=1)
        with pytest.raises(ValidationError, match="lsa_flood_fanout"):
            NodeConfig(lsa_flood_fanout=0)

    def test_default_is_uncapped(self):
        assert NodeConfig().lsa_flood_fanout is None


class TestFlooding:
    def test_default_never_suppresses(self):
        nodes = lossy_run(NodeConfig())
        assert all(
            node.stats["lsas_fanout_suppressed"] == 0
            for node in nodes.values()
        )

    def test_cap_suppresses_forwards_on_dense_overlay(self):
        # random-geo targets degree ~6, so fanout=2 must bind somewhere.
        capped = lossy_run(NodeConfig(lsa_flood_fanout=2))
        suppressed = sum(
            node.stats["lsas_fanout_suppressed"] for node in capped.values()
        )
        assert suppressed > 0
        uncapped = lossy_run(NodeConfig())
        assert sum(
            node.stats["lsas_forwarded"] for node in capped.values()
        ) < sum(node.stats["lsas_forwarded"] for node in uncapped.values())

    def test_capped_flood_still_reaches_everyone(self):
        # The capped subgraph stays connected in practice; every node must
        # still learn about the degraded link via flood or refresh.
        nodes = lossy_run(NodeConfig(lsa_flood_fanout=2))
        topology = resolve_workload("random-geo", 20, 4).topology
        a, b = sorted(topology.edges)[0]
        aware = sum(
            1
            for node in nodes.values()
            if any(edge == (a, b) for _orig, edge in node._lsdb)
        )
        assert aware == topology.num_nodes

    def test_suppression_is_deterministic(self):
        first = lossy_run(NodeConfig(lsa_flood_fanout=2))
        second = lossy_run(NodeConfig(lsa_flood_fanout=2))
        assert {
            name: node.stats["lsas_fanout_suppressed"]
            for name, node in first.items()
        } == {
            name: node.stats["lsas_fanout_suppressed"]
            for name, node in second.items()
        }
