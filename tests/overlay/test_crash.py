"""Daemon crash modeling: site failure at the process level."""

from __future__ import annotations

from repro.core.builders import single_path_graph, two_disjoint_paths_graph
from repro.core.encoding import encode_graph
from repro.netmodel.conditions import ConditionTimeline
from repro.netmodel.topology import FlowSpec, ServiceSpec
from repro.overlay.harness import build_overlay
from repro.overlay.messages import DataPacket

FLOW = FlowSpec("S", "T")
SERVICE = ServiceSpec(deadline_ms=15.0, send_interval_ms=10.0, rtt_budget_ms=30.0)


def packet(topology, graph, sequence=0, sent_at=0.0):
    return DataPacket(
        flow="f",
        source=graph.source,
        destination=graph.destination,
        sequence=sequence,
        sent_at_s=sent_at,
        graph_encoding=encode_graph(topology, graph),
    )


def harness_for(diamond, seed=1):
    timeline = ConditionTimeline(diamond, 120.0)
    harness = build_overlay(diamond, timeline, flows=(), seed=seed)
    for node in harness.nodes.values():
        node.start()
    return harness


class TestCrash:
    def test_crashed_relay_blackholes_single_path(self, diamond):
        harness = harness_for(diamond)
        harness.run(2.0)
        graph = single_path_graph(diamond, "S", "T")  # S -> A -> T
        delivered = []
        harness.nodes["T"].register_delivery("f", lambda p, at: delivered.append(p))
        harness.nodes["A"].stop()
        harness.nodes["S"].originate(packet(diamond, graph, sent_at=harness.kernel.now))
        harness.run(2.0)
        assert delivered == []

    def test_redundancy_survives_crashed_relay(self, diamond):
        harness = harness_for(diamond)
        harness.run(2.0)
        graph = two_disjoint_paths_graph(diamond, "S", "T")
        delivered = []
        harness.nodes["T"].register_delivery("f", lambda p, at: delivered.append(p))
        harness.nodes["A"].stop()
        harness.nodes["S"].originate(packet(diamond, graph, sent_at=harness.kernel.now))
        harness.run(2.0)
        assert len(delivered) == 1  # via B

    def test_neighbors_detect_crash(self, diamond):
        harness = harness_for(diamond)
        harness.run(5.0)
        assert harness.nodes["S"].loss_estimate("A") == 0.0
        harness.nodes["A"].stop()
        harness.run(15.0)
        # Unanswered hellos drive the estimate toward 100% loss.
        assert harness.nodes["S"].loss_estimate("A") > 0.8
        # The crash is flooded network-wide: T learns of S->A trouble.
        assert ("S", "A") in harness.nodes["T"].observed_view()

    def test_warm_restart_recovers(self, diamond):
        harness = harness_for(diamond)
        harness.run(5.0)
        harness.nodes["A"].stop()
        harness.run(15.0)
        harness.nodes["A"].start()
        harness.run(30.0)
        assert harness.nodes["S"].loss_estimate("A") < 0.2

    def test_dynamic_routing_avoids_crashed_node(self, diamond):
        timeline = ConditionTimeline(diamond, 120.0)
        harness = build_overlay(
            diamond,
            timeline,
            flows=[FLOW],
            service=SERVICE,
            scheme="dynamic-single",
            seed=3,
            update_interval_s=0.25,
        )
        harness.start()
        harness.run(5.0)
        daemon = harness.daemons[FLOW.name]
        assert "A" in daemon.current_graph.nodes  # shortest path via A
        harness.nodes["A"].stop()
        harness.run(20.0)
        assert "A" not in daemon.current_graph.nodes  # rerouted via B
        report = harness.reports[FLOW.name]
        # Traffic kept flowing after the reroute.
        assert report.on_time > 0
