"""Discrete-event kernel."""

from __future__ import annotations

import pytest

from repro.overlay.kernel import EventKernel
from repro.util.validation import ValidationError


class TestScheduling:
    def test_fires_in_time_order(self):
        kernel = EventKernel()
        fired = []
        kernel.schedule(2.0, lambda: fired.append("b"))
        kernel.schedule(1.0, lambda: fired.append("a"))
        kernel.schedule(3.0, lambda: fired.append("c"))
        kernel.run_until(10.0)
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_insertion_order(self):
        kernel = EventKernel()
        fired = []
        for label in "abc":
            kernel.schedule(1.0, lambda l=label: fired.append(l))
        kernel.run_until(2.0)
        assert fired == ["a", "b", "c"]

    def test_now_advances_to_event_time(self):
        kernel = EventKernel()
        seen = []
        kernel.schedule(1.5, lambda: seen.append(kernel.now))
        kernel.run_until(10.0)
        assert seen == [1.5]
        assert kernel.now == 10.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValidationError):
            EventKernel().schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self):
        kernel = EventKernel()
        kernel.schedule(1.0, lambda: None)
        kernel.run_until(5.0)
        with pytest.raises(ValidationError):
            kernel.schedule_at(4.0, lambda: None)

    def test_run_until_backwards_rejected(self):
        kernel = EventKernel()
        kernel.run_until(5.0)
        with pytest.raises(ValidationError):
            kernel.run_until(4.0)


class TestRunControl:
    def test_events_beyond_horizon_wait(self):
        kernel = EventKernel()
        fired = []
        kernel.schedule(5.0, lambda: fired.append("later"))
        kernel.run_until(4.0)
        assert fired == []
        kernel.run_until(6.0)
        assert fired == ["later"]

    def test_cascading_events(self):
        kernel = EventKernel()
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 3:
                kernel.schedule(1.0, lambda: chain(depth + 1))

        kernel.schedule(0.0, lambda: chain(0))
        kernel.run_until(10.0)
        assert fired == [0, 1, 2, 3]

    def test_max_events_bound(self):
        kernel = EventKernel()

        def forever():
            kernel.schedule(0.001, forever)

        kernel.schedule(0.0, forever)
        fired = kernel.run_until(100.0, max_events=50)
        assert fired == 50

    def test_counters(self):
        kernel = EventKernel()
        kernel.schedule(1.0, lambda: None)
        kernel.schedule(2.0, lambda: None)
        assert kernel.pending == 2
        kernel.run_until(5.0)
        assert kernel.pending == 0
        assert kernel.processed == 2

    def test_run_all(self):
        kernel = EventKernel()
        fired = []
        kernel.schedule(100.0, lambda: fired.append(1))
        kernel.run_all()
        assert fired == [1]
