"""Whole-overlay harness: daemons, apps, and live graph switching."""

from __future__ import annotations

import pytest

from repro.netmodel.conditions import ConditionTimeline, Contribution, LinkState
from repro.netmodel.topology import FlowSpec, ServiceSpec
from repro.overlay.harness import build_overlay
from repro.util.validation import ValidationError

FLOW = FlowSpec("S", "T")
SERVICE = ServiceSpec(deadline_ms=15.0, send_interval_ms=10.0, rtt_budget_ms=30.0)


def harness_for(diamond, *contributions, duration=120.0, scheme="targeted", seed=1):
    timeline = ConditionTimeline(diamond, duration, contributions)
    harness = build_overlay(
        diamond,
        timeline,
        flows=[FLOW],
        service=SERVICE,
        scheme=scheme,
        seed=seed,
        update_interval_s=0.25,
    )
    harness.start()
    return harness


class TestCleanOperation:
    def test_every_packet_on_time(self, diamond):
        harness = harness_for(diamond)
        harness.run(10.0)
        harness.stop_traffic()
        harness.run(1.0)  # drain in-flight packets
        report = harness.reports[FLOW.name]
        assert report.sent == 1001
        assert report.on_time == report.sent
        assert report.lost == 0

    def test_summary_shape(self, diamond):
        harness = harness_for(diamond)
        harness.run(2.0)
        summary = harness.summary()
        assert FLOW.name in summary
        assert summary[FLOW.name]["sent"] > 0

    def test_duplicate_flow_rejected(self, diamond):
        harness = harness_for(diamond)
        with pytest.raises(ValidationError):
            harness.add_flow(FLOW, SERVICE, "targeted")


class TestProblemReaction:
    def test_daemon_switches_and_recovers_delivery(self, diamond):
        # Blackout of S->A from t=20 to t=60.
        harness = harness_for(
            diamond,
            Contribution(("S", "A"), 20.0, 60.0, LinkState(loss_rate=1.0)),
            scheme="dynamic-single",
        )
        daemon = harness.daemons[FLOW.name]
        harness.run(19.0)
        assert ("S", "A") in daemon.current_graph.edges
        harness.run(20.0)  # now at t=39, problem detected long ago
        assert ("S", "A") not in daemon.current_graph.edges
        assert daemon.graph_switches >= 1
        harness.run(61.0)  # now at t=100, problem over and estimate clean
        assert ("S", "A") in daemon.current_graph.edges

    def test_targeted_beats_single_under_destination_problem(self, diamond):
        contributions = [
            Contribution(edge, 20.0, 100.0, LinkState(loss_rate=0.6))
            for edge in diamond.adjacent_edges("T")
        ]
        reports = {}
        for scheme in ("static-single", "targeted"):
            harness = harness_for(diamond, *contributions, scheme=scheme, seed=5)
            harness.run(110.0)
            reports[scheme] = harness.reports[FLOW.name]
        assert reports["targeted"].on_time > reports["static-single"].on_time

    def test_cost_rises_only_during_problem(self, diamond):
        harness = harness_for(
            diamond,
            Contribution(("S", "A"), 20.0, 40.0, LinkState(loss_rate=0.9)),
            scheme="targeted",
        )
        network = harness.network
        harness.run(19.0)
        sent_before = network.total_sent()
        harness.run(100.0)
        sent_after = network.total_sent()
        # Sanity: traffic flowed in both phases.
        assert sent_before > 0
        assert sent_after > sent_before
