"""Protocol message types and their invariants."""

from __future__ import annotations

from repro.core.builders import single_path_graph
from repro.core.encoding import encode_graph, encoded_size
from repro.overlay.messages import (
    DataPacket,
    Hello,
    HelloAck,
    LinkAck,
    LinkStateUpdate,
)


class TestMessageTypes:
    def test_messages_hashable_and_frozen(self):
        hello = Hello("NYC", 1, 0.5)
        assert hash(hello) == hash(Hello("NYC", 1, 0.5))

    def test_hello_ack_echoes_fields(self):
        ack = HelloAck("CHI", hello_sequence=7, hello_sent_at_s=1.25)
        assert ack.hello_sequence == 7
        assert ack.hello_sent_at_s == 1.25

    def test_lsa_ordering_fields(self):
        update = LinkStateUpdate(
            originator="NYC",
            sequence=3,
            edge=("NYC", "CHI"),
            loss_rate=0.4,
            latency_ms=8.0,
            originated_at_s=10.0,
        )
        assert update.sequence == 3
        assert update.edge == ("NYC", "CHI")

    def test_data_packet_carries_wire_graph(self, reference_topology):
        graph = single_path_graph(reference_topology, "NYC", "SJC")
        encoding = encode_graph(reference_topology, graph)
        packet = DataPacket(
            flow="f",
            source="NYC",
            destination="SJC",
            sequence=0,
            sent_at_s=0.0,
            graph_encoding=encoding,
        )
        assert len(packet.graph_encoding) == encoded_size(reference_topology)

    def test_link_ack_key_fields(self):
        ack = LinkAck("CHI", "f", 42)
        assert (ack.flow, ack.sequence) == ("f", 42)
