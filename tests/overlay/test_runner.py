"""Protocol-level scheme evaluation runner."""

from __future__ import annotations

import pytest

from repro.netmodel.conditions import ConditionTimeline, Contribution, LinkState
from repro.netmodel.topology import FlowSpec, ServiceSpec
from repro.overlay.runner import ProtocolRunResult, run_protocol_evaluation

FLOW = FlowSpec("S", "T")
SERVICE = ServiceSpec(deadline_ms=15.0, send_interval_ms=10.0, rtt_budget_ms=30.0)


def destination_problem(diamond, start=20.0, end=80.0, rate=0.6):
    return [
        Contribution(edge, start, end, LinkState(loss_rate=rate))
        for edge in diamond.adjacent_edges("T")
    ]


class TestProtocolEvaluation:
    def test_clean_run_perfect_delivery(self, diamond):
        timeline = ConditionTimeline(diamond, 40.0)
        results = run_protocol_evaluation(
            diamond,
            timeline,
            [FLOW],
            SERVICE,
            scheme_names=("static-single", "targeted"),
            duration_s=20.0,
            seed=3,
        )
        for outcome in results.values():
            assert outcome.sent > 0
            assert outcome.on_time_fraction == 1.0

    def test_scheme_ordering_under_problem(self, diamond):
        timeline = ConditionTimeline(
            diamond, 120.0, destination_problem(diamond)
        )
        results = run_protocol_evaluation(
            diamond,
            timeline,
            [FLOW],
            SERVICE,
            scheme_names=("static-single", "static-two-disjoint", "targeted"),
            duration_s=100.0,
            seed=3,
        )
        assert (
            results["static-single"].on_time_fraction
            < results["static-two-disjoint"].on_time_fraction
        )
        # The diamond's destination has only two in-links, so targeted's
        # destination graph equals the two-disjoint graph here; it must
        # not do *worse*.
        assert (
            results["targeted"].on_time_fraction
            >= results["static-two-disjoint"].on_time_fraction - 0.02
        )

    def test_cost_ordering(self, diamond):
        timeline = ConditionTimeline(diamond, 40.0)
        results = run_protocol_evaluation(
            diamond,
            timeline,
            [FLOW],
            SERVICE,
            scheme_names=("static-single", "static-two-disjoint"),
            duration_s=20.0,
            seed=3,
        )
        assert (
            results["static-single"].data_messages_per_packet
            < results["static-two-disjoint"].data_messages_per_packet
        )

    def test_dynamic_scheme_switches(self, diamond):
        timeline = ConditionTimeline(
            diamond,
            120.0,
            [Contribution(("S", "A"), 20.0, 70.0, LinkState(loss_rate=1.0))],
        )
        results = run_protocol_evaluation(
            diamond,
            timeline,
            [FLOW],
            SERVICE,
            scheme_names=("dynamic-single",),
            duration_s=100.0,
            seed=3,
        )
        assert results["dynamic-single"].graph_switches >= 1

    def test_run_must_fit_timeline(self, diamond):
        timeline = ConditionTimeline(diamond, 10.0)
        with pytest.raises(Exception):
            run_protocol_evaluation(
                diamond, timeline, [FLOW], SERVICE, duration_s=100.0
            )

    def test_no_flows_rejected(self, diamond):
        timeline = ConditionTimeline(diamond, 10.0)
        with pytest.raises(Exception):
            run_protocol_evaluation(diamond, timeline, [], SERVICE)


class TestDefaultsAndEdgeCases:
    def test_duration_defaults_to_timeline_minus_margins(self, diamond):
        """With no explicit duration, the run fills the timeline after
        warmup and drain -- and must not overrun it."""
        timeline = ConditionTimeline(diamond, 16.0)
        results = run_protocol_evaluation(
            diamond,
            timeline,
            [FLOW],
            SERVICE,
            scheme_names=("static-single",),
            warmup_s=5.0,
            drain_s=1.0,
            seed=3,
        )
        outcome = results["static-single"]
        # duration_s = 16 - 5 - 1 = 10 s of traffic at 10 ms interval.
        assert outcome.sent == pytest.approx(1000, abs=5)
        assert outcome.run_duration_s == pytest.approx(11.0)

    def test_warmup_packets_not_counted(self, diamond):
        """Traffic starts after warmup, so the report counts only the
        measured window."""
        timeline = ConditionTimeline(diamond, 60.0)
        results = run_protocol_evaluation(
            diamond,
            timeline,
            [FLOW],
            SERVICE,
            scheme_names=("static-single",),
            duration_s=10.0,
            warmup_s=20.0,
            seed=3,
        )
        # 10 s at 10 ms interval, regardless of the 20 s warmup.
        assert results["static-single"].sent == pytest.approx(1000, abs=5)

    def test_empty_result_properties(self):
        outcome = ProtocolRunResult(
            scheme="x",
            reports={},
            messages_sent=0,
            messages_dropped=0,
            graph_switches=0,
            events_processed=0,
        )
        assert outcome.sent == 0
        assert outcome.on_time_fraction == 1.0
        assert outcome.data_messages_per_packet == 0.0
        assert outcome.control_messages_per_second == 0.0

    def test_zero_duration_control_rate_guarded(self):
        outcome = ProtocolRunResult(
            scheme="x",
            reports={},
            messages_sent=5,
            messages_dropped=0,
            graph_switches=0,
            events_processed=9,
            control_messages=100,
            run_duration_s=0.0,
        )
        assert outcome.control_messages_per_second == 0.0


class TestControlPlaneAccounting:
    def test_control_rate_scheme_independent(self, diamond):
        """Control load is a property of the overlay, not the scheme."""
        timeline = ConditionTimeline(diamond, 40.0)
        results = run_protocol_evaluation(
            diamond,
            timeline,
            [FLOW],
            SERVICE,
            scheme_names=("static-single", "flooding"),
            duration_s=20.0,
            seed=3,
        )
        rates = [r.control_messages_per_second for r in results.values()]
        assert all(rate > 0 for rate in rates)
        # Within 15% of each other: hellos/acks dominate, schemes differ
        # only in incidental LSA traffic.
        assert abs(rates[0] - rates[1]) / max(rates) < 0.15

    def test_control_excluded_from_data_cost(self, diamond):
        timeline = ConditionTimeline(diamond, 40.0)
        results = run_protocol_evaluation(
            diamond,
            timeline,
            [FLOW],
            SERVICE,
            scheme_names=("static-single",),
            duration_s=20.0,
            seed=3,
        )
        outcome = results["static-single"]
        # Single path on the diamond: exactly 2 data transmissions/packet.
        assert outcome.data_messages_per_packet == pytest.approx(2.0, abs=0.05)
        assert outcome.control_messages > 0
