"""Overlay daemon protocols: monitoring, flooding, forwarding, recovery."""

from __future__ import annotations

import pytest

from repro.core.encoding import encode_graph
from repro.core.builders import single_path_graph, two_disjoint_paths_graph
from repro.netmodel.conditions import ConditionTimeline, Contribution, LinkState
from repro.overlay.kernel import EventKernel
from repro.overlay.messages import DataPacket
from repro.overlay.network import SimNetwork
from repro.overlay.node import NodeConfig, OverlayNode


def deploy(topology, *contributions, duration=300.0, config=None, seed=0):
    kernel = EventKernel()
    timeline = ConditionTimeline(topology, duration, contributions)
    network = SimNetwork(topology, timeline, kernel, seed=seed)
    nodes = {
        node_id: OverlayNode(node_id, topology, network, kernel, config or NodeConfig())
        for node_id in topology.nodes
    }
    for node in nodes.values():
        node.start()
    return kernel, network, nodes


def data_packet(topology, graph, sequence=0, sent_at=0.0, flow="f"):
    return DataPacket(
        flow=flow,
        source=graph.source,
        destination=graph.destination,
        sequence=sequence,
        sent_at_s=sent_at,
        graph_encoding=encode_graph(topology, graph),
    )


class TestLinkMonitoring:
    def test_clean_link_estimates_zero_loss(self, diamond):
        kernel, _network, nodes = deploy(diamond)
        kernel.run_until(20.0)
        assert nodes["S"].loss_estimate("A") == 0.0

    def test_lossy_link_detected(self, diamond):
        kernel, _network, nodes = deploy(
            diamond,
            Contribution(("S", "A"), 0.0, 300.0, LinkState(loss_rate=0.6)),
        )
        kernel.run_until(30.0)
        estimate = nodes["S"].loss_estimate("A")
        # Probe round trip crosses the lossy direction once plus the clean
        # ack direction: estimate tracks the forward loss rate.
        assert estimate > 0.3

    def test_latency_estimate_near_base(self, diamond):
        kernel, _network, nodes = deploy(diamond)
        kernel.run_until(20.0)
        base = diamond.latency("S", "A")
        assert nodes["S"].latency_estimate_ms("A") == pytest.approx(base, abs=1.0)

    def test_latency_inflation_tracked(self, diamond):
        kernel, _network, nodes = deploy(
            diamond,
            Contribution(("S", "A"), 0.0, 300.0, LinkState(extra_latency_ms=40.0)),
            Contribution(("A", "S"), 0.0, 300.0, LinkState(extra_latency_ms=40.0)),
        )
        kernel.run_until(30.0)
        assert nodes["S"].latency_estimate_ms("A") > 30.0

    def test_recovery_estimate_after_problem_ends(self, diamond):
        kernel, _network, nodes = deploy(
            diamond,
            Contribution(("S", "A"), 0.0, 50.0, LinkState(loss_rate=0.8)),
        )
        kernel.run_until(50.0)
        assert nodes["S"].loss_estimate("A") > 0.4
        kernel.run_until(120.0)
        assert nodes["S"].loss_estimate("A") < 0.1


class TestLinkStateFlooding:
    def test_problem_reaches_remote_node(self, diamond):
        kernel, _network, nodes = deploy(
            diamond,
            Contribution(("A", "T"), 0.0, 300.0, LinkState(loss_rate=0.8)),
        )
        kernel.run_until(30.0)
        # S is not adjacent to (A, T) but must learn of it via flooding.
        view = nodes["S"].observed_view()
        assert ("A", "T") in view
        assert view[("A", "T")].loss_rate > 0.3

    def test_clean_network_views_empty(self, diamond):
        kernel, _network, nodes = deploy(diamond)
        kernel.run_until(20.0)
        for node in nodes.values():
            assert node.observed_view() == {}

    def test_stale_lsa_not_refloooded(self, diamond):
        kernel, network, nodes = deploy(
            diamond,
            Contribution(("A", "T"), 0.0, 300.0, LinkState(loss_rate=0.8)),
        )
        kernel.run_until(60.0)
        sent_at_60 = network.total_sent()
        forwarded_at_60 = sum(n.stats["lsas_forwarded"] for n in nodes.values())
        kernel.run_until(90.0)
        forwarded_at_90 = sum(n.stats["lsas_forwarded"] for n in nodes.values())
        # Steady state: estimates stop moving, so flooding stops growing
        # much faster than linearly (no flood storms).
        assert forwarded_at_90 - forwarded_at_60 < forwarded_at_60 + 50
        del sent_at_60


class TestForwarding:
    def test_single_path_delivery(self, diamond):
        kernel, _network, nodes = deploy(diamond)
        graph = single_path_graph(diamond, "S", "T")
        delivered = []
        nodes["T"].register_delivery("f", lambda packet, at: delivered.append(packet))
        kernel.run_until(1.0)
        nodes["S"].originate(data_packet(diamond, graph, sent_at=kernel.now))
        kernel.run_until(2.0)
        assert len(delivered) == 1

    def test_duplicate_suppression(self, diamond):
        kernel, _network, nodes = deploy(diamond)
        graph = two_disjoint_paths_graph(diamond, "S", "T")
        delivered = []
        nodes["T"].register_delivery("f", lambda packet, at: delivered.append(packet))
        nodes["S"].originate(data_packet(diamond, graph))
        kernel.run_until(1.0)
        assert len(delivered) == 1  # two copies arrive; one delivery
        assert nodes["T"].stats["duplicates_suppressed"] == 1

    def test_redundancy_survives_blackout(self, diamond):
        kernel, _network, nodes = deploy(
            diamond,
            Contribution(("S", "A"), 0.0, 300.0, LinkState(loss_rate=1.0)),
        )
        graph = two_disjoint_paths_graph(diamond, "S", "T")
        delivered = []
        nodes["T"].register_delivery("f", lambda packet, at: delivered.append(packet))
        nodes["S"].originate(data_packet(diamond, graph))
        kernel.run_until(1.0)
        assert len(delivered) == 1  # via B

    def test_distinct_flows_tracked_separately(self, diamond):
        kernel, _network, nodes = deploy(diamond)
        graph = single_path_graph(diamond, "S", "T")
        delivered = []
        nodes["T"].register_delivery("f1", lambda p, at: delivered.append("f1"))
        nodes["T"].register_delivery("f2", lambda p, at: delivered.append("f2"))
        nodes["S"].originate(data_packet(diamond, graph, sequence=0, flow="f1"))
        nodes["S"].originate(data_packet(diamond, graph, sequence=0, flow="f2"))
        kernel.run_until(1.0)
        assert sorted(delivered) == ["f1", "f2"]

    def test_originate_at_wrong_node_rejected(self, diamond):
        _kernel, _network, nodes = deploy(diamond)
        graph = single_path_graph(diamond, "S", "T")
        with pytest.raises(Exception):
            nodes["A"].originate(data_packet(diamond, graph))


class TestHopByHopRecovery:
    def test_retransmission_recovers_loss(self, diamond):
        config = NodeConfig(enable_recovery=True, recovery_timeout_s=0.05)
        delivered_counts = []
        for seed in range(8):
            kernel, _network, nodes = deploy(
                diamond,
                Contribution(("S", "A"), 0.0, 300.0, LinkState(loss_rate=0.5)),
                config=config,
                seed=seed,
            )
            graph = single_path_graph(diamond, "S", "T")
            delivered = []
            nodes["T"].register_delivery(
                "f", lambda packet, at: delivered.append(packet)
            )
            for sequence in range(40):
                nodes["S"].originate(
                    data_packet(diamond, graph, sequence=sequence)
                )
            kernel.run_until(5.0)
            delivered_counts.append(len(delivered))
        # Without recovery ~50% arrive; one retransmission lifts it to ~75%.
        average = sum(delivered_counts) / len(delivered_counts) / 40
        assert average > 0.65

    def test_no_retransmit_after_ack(self, diamond):
        config = NodeConfig(enable_recovery=True, recovery_timeout_s=0.05)
        kernel, network, nodes = deploy(diamond, config=config)
        graph = single_path_graph(diamond, "S", "T")
        nodes["S"].originate(data_packet(diamond, graph))
        kernel.run_until(2.0)
        assert nodes["S"].stats["recoveries"] == 0
        assert nodes["A"].stats["recoveries"] == 0
