"""Trace collection from a running overlay (the paper's data pipeline)."""

from __future__ import annotations

import pytest

from repro.netmodel.conditions import ConditionTimeline, Contribution, LinkState
from repro.overlay.collect import collect_measured_trace


def ground_truth(diamond, *contributions, duration=120.0):
    return ConditionTimeline(diamond, duration, contributions)


class TestCollection:
    def test_clean_network_yields_clean_trace(self, diamond):
        measured, samples = collect_measured_trace(
            diamond, ground_truth(diamond), duration_s=60.0, seed=1
        )
        assert samples  # monitoring ran
        assert measured.recorded_edges() == ()

    def test_loss_episode_recorded(self, diamond):
        truth = ground_truth(
            diamond,
            Contribution(("S", "A"), 20.0, 100.0, LinkState(loss_rate=0.6)),
        )
        measured, _samples = collect_measured_trace(
            diamond, truth, duration_s=120.0, seed=1
        )
        assert ("S", "A") in measured.recorded_edges()
        # Mid-episode the measured loss should be in the neighbourhood of
        # the true rate (probe estimates are noisy but unbiased-ish).
        measured_loss = measured.loss_at(("S", "A"), 60.0)
        assert 0.35 < measured_loss < 0.85

    def test_measurement_lags_reality(self, diamond):
        """The measured onset trails the true onset by up to a probe
        window -- the artefact the paper's recorded data carries."""
        truth = ground_truth(
            diamond,
            Contribution(("S", "A"), 30.0, 100.0, LinkState(loss_rate=1.0)),
        )
        measured, _samples = collect_measured_trace(
            diamond, truth, duration_s=120.0, seed=1, sample_interval_s=5.0
        )
        assert measured.loss_at(("S", "A"), 29.0) == 0.0
        # Well into the episode it is clearly visible.
        assert measured.loss_at(("S", "A"), 60.0) > 0.5

    def test_recovery_recorded(self, diamond):
        truth = ground_truth(
            diamond,
            Contribution(("S", "A"), 10.0, 40.0, LinkState(loss_rate=0.9)),
        )
        measured, _samples = collect_measured_trace(
            diamond, truth, duration_s=120.0, seed=1
        )
        # Long after the episode the link reads clean again.
        assert measured.loss_at(("S", "A"), 110.0) == 0.0

    def test_latency_inflation_recorded(self, diamond):
        truth = ground_truth(
            diamond,
            Contribution(("S", "A"), 10.0, 100.0, LinkState(extra_latency_ms=40.0)),
            Contribution(("A", "S"), 10.0, 100.0, LinkState(extra_latency_ms=40.0)),
        )
        measured, _samples = collect_measured_trace(
            diamond, truth, duration_s=120.0, seed=1
        )
        assert measured.state_at(("S", "A"), 60.0).extra_latency_ms > 20.0

    def test_window_validation(self, diamond):
        with pytest.raises(Exception):
            collect_measured_trace(
                diamond, ground_truth(diamond, duration=10.0), duration_s=50.0
            )

    def test_replayable(self, diamond):
        """The measured trace feeds straight into the replay engine."""
        from repro.netmodel.topology import FlowSpec, ServiceSpec
        from repro.simulation.interval import replay_flow
        from repro.routing.registry import make_policy

        truth = ground_truth(
            diamond,
            Contribution(("S", "A"), 20.0, 100.0, LinkState(loss_rate=0.8)),
        )
        measured, _samples = collect_measured_trace(
            diamond, truth, duration_s=120.0, seed=1
        )
        stats = replay_flow(
            diamond,
            measured,
            FlowSpec("S", "T"),
            ServiceSpec(deadline_ms=15.0, send_interval_ms=10.0, rtt_budget_ms=30.0),
            make_policy("static-single"),
        )
        assert stats.unavailable_s > 10.0  # the episode shows up in replay
