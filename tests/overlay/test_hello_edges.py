"""Hello-protocol edge cases: attribution, timeout boundary, wraparound."""

from __future__ import annotations

from repro.netmodel.conditions import ConditionTimeline, Contribution, LinkState
from repro.overlay.harness import build_overlay
from repro.overlay.messages import HelloAck
from repro.overlay.node import NodeConfig


def harness_for(diamond, contributions=(), node_config=NodeConfig(), seed=2):
    timeline = ConditionTimeline(diamond, 120.0, contributions)
    harness = build_overlay(
        diamond, timeline, flows=(), seed=seed, node_config=node_config
    )
    return harness


class TestLossAttribution:
    """Probing measures the round trip; loss lands on the probed direction."""

    def test_probe_loss_attributed_by_both_enders(self, diamond):
        # Forward direction S->A is fully lossy; A->S is clean.
        harness = harness_for(
            diamond,
            [Contribution(("S", "A"), 0.0, 60.0, LinkState(loss_rate=1.0))],
        )
        harness.start()
        harness.run(10.0)
        # S's probes die on the way out: loss charged to S->A.
        assert harness.nodes["S"].loss_estimate("A") > 0.8
        # A's probes arrive fine, but S's *acks* die crossing S->A, so A
        # charges its own outgoing link A->S -- the round-trip
        # simplification documented in the node.
        assert harness.nodes["A"].loss_estimate("S") > 0.8

    def test_ack_loss_indistinguishable_from_probe_loss(self, diamond):
        # Only the ack direction A->S is lossy; S's probes all arrive.
        harness = harness_for(
            diamond,
            [Contribution(("A", "S"), 0.0, 60.0, LinkState(loss_rate=1.0))],
        )
        harness.start()
        harness.run(10.0)
        # S cannot tell lost acks from lost probes: S->A looks dead.
        assert harness.nodes["S"].loss_estimate("A") > 0.8
        # The genuinely clean direction S->A is what A's probes measure
        # ... but A's own hellos to S travel the lossy A->S link.
        assert harness.nodes["A"].loss_estimate("S") > 0.8
        # B's links are untouched by any of this.
        assert harness.nodes["S"].loss_estimate("B") == 0.0


class TestTimeoutBoundary:
    def test_probe_at_exactly_timeout_expires(self, diamond):
        harness = harness_for(diamond)
        node = harness.nodes["S"]
        harness.run(2.0)  # advance the clock without starting protocols
        monitor = node._monitors["A"]
        sent_at = harness.kernel.now - node.config.hello_timeout_s
        monitor.outstanding[999] = sent_at  # unacked for exactly timeout
        node._expire_hellos("A")
        assert 999 not in monitor.outstanding
        assert list(monitor.outcomes) == [(999, False)]
        assert monitor.consecutive_timeouts == 1

    def test_ack_arriving_after_expiry_is_ignored(self, diamond):
        harness = harness_for(diamond)
        node = harness.nodes["S"]
        node.start()
        harness.run(2.0)
        monitor = node._monitors["A"]
        sent_at = harness.kernel.now - node.config.hello_timeout_s
        monitor.outstanding[999] = sent_at
        node._expire_hellos("A")
        outcomes_after_expiry = list(monitor.outcomes)
        # The ack shows up just after the probe was declared lost: it
        # must neither resurrect the probe nor record a second outcome.
        node._handle_hello_ack("A", HelloAck("A", 999, sent_at))
        assert list(monitor.outcomes) == outcomes_after_expiry
        assert monitor.consecutive_timeouts >= 1

    def test_probe_just_inside_timeout_survives(self, diamond):
        harness = harness_for(diamond)
        node = harness.nodes["S"]
        harness.run(2.0)
        monitor = node._monitors["A"]
        sent_at = harness.kernel.now - node.config.hello_timeout_s + 1e-6
        monitor.outstanding[999] = sent_at
        node._expire_hellos("A")
        assert 999 in monitor.outstanding
        assert monitor.consecutive_timeouts == 0


class TestWindowWraparound:
    def config(self) -> NodeConfig:
        return NodeConfig(hello_window=4)

    def test_window_keeps_only_newest_outcomes(self, diamond):
        harness = harness_for(diamond, node_config=self.config())
        node = harness.nodes["S"]
        for sequence in range(3):
            node._record_outcome("A", sequence, acked=False)
        assert node.loss_estimate("A") == 1.0
        for sequence in range(3, 7):
            node._record_outcome("A", sequence, acked=True)
        # The four acks pushed every loss out of the window.
        assert node.loss_estimate("A") == 0.0
        assert len(node._monitors["A"].outcomes) == 4

    def test_estimate_tracks_rolling_mix(self, diamond):
        harness = harness_for(diamond, node_config=self.config())
        node = harness.nodes["S"]
        outcomes = [False, True, False, True, True, False]
        for sequence, acked in enumerate(outcomes):
            node._record_outcome("A", sequence, acked=acked)
        # Window holds the last 4: [False, True, True, False] -> 2/4.
        assert node.loss_estimate("A") == 0.5

    def test_window_never_exceeds_capacity(self, diamond):
        harness = harness_for(diamond, node_config=self.config())
        node = harness.nodes["S"]
        for sequence in range(50):
            node._record_outcome("A", sequence, acked=sequence % 2 == 0)
        assert len(node._monitors["A"].outcomes) == 4
