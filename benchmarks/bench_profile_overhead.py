"""Profiler-overhead guard: sampling must stay cheap while attached.

Runs the E2 headline replay twice on identical inputs -- once bare,
once with a live :class:`repro.obs.profile.SamplingProfiler` snapshotting
the replay thread at the default interval -- and requires the profiled
run to finish within ``REPRO_PROFILE_OVERHEAD_MAX`` (default 10 %) of
the baseline.  Both runs bypass the result cache so they do equal work,
and the faster of several rounds is compared to damp scheduler noise.

This is the ISSUE's acceptance guard for continuous profiling: the
sampler has to be cheap enough to leave attached to real runs
(``evaluate --profile`` and the serve request flag), not just toy ones.
"""

from __future__ import annotations

import os
import time

import common

from repro.exec.engine import run_replay_parallel
from repro.obs.profile import SamplingProfiler
from repro.simulation.results import ReplayConfig

OVERHEAD_MAX = float(os.environ.get("REPRO_PROFILE_OVERHEAD_MAX", "0.10"))
ROUNDS = 3
#: A shorter trace than the headline bench: each round replays twice.
WEEKS = min(common.BENCH_WEEKS, 1.0)


def _replay_once(profile: bool) -> tuple[float, int]:
    _events, timeline = common.trace(WEEKS, common.BENCH_SEED)
    profiler = SamplingProfiler() if profile else None
    started = time.perf_counter()
    if profiler is not None:
        profiler.start()
    try:
        run_replay_parallel(
            common.topology(),
            timeline,
            common.flows(),
            common.service(),
            config=ReplayConfig(detection_delay_s=common.DETECTION_DELAY_S),
            max_workers=0,
            use_cache=False,
            label="profile overhead guard",
        )
    finally:
        if profiler is not None:
            profiler.stop()
    elapsed = time.perf_counter() - started
    return elapsed, profiler.samples if profiler is not None else 0


def test_profiler_sampling_overhead(benchmark):
    def measure() -> tuple[float, float, int]:
        baseline = min(_replay_once(False)[0] for _ in range(ROUNDS))
        profiled_runs = [_replay_once(True) for _ in range(ROUNDS)]
        profiled = min(elapsed for elapsed, _samples in profiled_runs)
        samples = max(samples for _elapsed, samples in profiled_runs)
        return baseline, profiled, samples

    baseline, profiled, samples = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    overhead = profiled / baseline - 1.0
    print(common.banner("obs: sampling-profiler overhead on the E2 replay"))
    print(f"  baseline (bare)     {baseline:7.3f} s")
    print(f"  profiled (sampling) {profiled:7.3f} s  ({samples} samples)")
    print(f"  overhead            {100 * overhead:+6.1f} %  (max {100 * OVERHEAD_MAX:.0f} %)")
    common.stage_metrics(
        baseline_s=baseline,
        profiled_s=profiled,
        overhead=overhead,
        samples=samples,
    )
    assert samples > 0, "profiler collected zero samples on the E2 replay"
    assert overhead < OVERHEAD_MAX, (
        f"profiler overhead {100 * overhead:.1f}% exceeds "
        f"{100 * OVERHEAD_MAX:.0f}% budget"
    )
