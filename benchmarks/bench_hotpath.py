"""Hotpath -- interval-replay speed guard (tier-1 for CI).

PR 5's contract: the reworked replay core (incremental observed views,
canonical probability-cache keys, mask-classification reuse, delta-hinted
policies) must be **bitwise-identical** to the historical implementation
and at least 1.5x faster on the reference E2 workload.

The reference below is the pre-PR-5 replay loop, frozen inline so the
comparison survives future changes to ``repro.simulation``: per-boundary
full ``observed_view``/``degraded_at`` rebuilds, a probability cache
keyed on the raw ``(edge set, endpoints, conditions)`` tuple, and a
policy-stepping loop with no delta hints and no static fast path, down
to the dict-keyed Dijkstra and the fused enumeration loop the seed's
``delivery_probabilities`` used.  The guard therefore measures exactly
the hot-path machinery this PR touched.

``REPRO_BENCH_HOTPATH_WEEKS`` overrides the trace length (default: the
smaller of ``REPRO_BENCH_WEEKS`` and 0.25 -- the reference side is the
historical slow path, so the guard keeps its own scale modest).

The replay comparison is pinned to the **pure** kernel backend
(:mod:`repro.simulation.kernel`), which is the bitwise-identical
successor of the seed's fused loop; a second stage harvests the actual
accumulation stream the replay performs and times its kernel-bound
subset (classifications with at least ``VECTOR_MIN_CASES`` enumeration
cases) on both backends, guarding the vectorization win (>= 3x) and the
numpy-vs-pure reassociation tolerance whenever numpy is importable.
"""

from __future__ import annotations

import heapq
import os
import time

import common

from repro.netmodel.scenarios import WEEK_S, Scenario, generate_timeline
from repro.routing.registry import STANDARD_SCHEME_NAMES, make_policy
from repro.simulation import kernel
from repro.simulation.interval import _ProbabilityCache, replay_flow
from repro.simulation.reliability import DeliveryProbabilities
from repro.simulation.results import FlowSchemeStats, ReplayConfig
from repro.simulation.timeline import (
    DecisionSpan,
    decision_boundaries,
    observed_view,
    observed_views_with_deltas,
)
from repro.util.tables import render_table

HOTPATH_WEEKS = float(
    os.environ.get(
        "REPRO_BENCH_HOTPATH_WEEKS", str(min(common.BENCH_WEEKS, 0.25))
    )
)
MIN_SPEEDUP = 1.5
MIN_KERNEL_SPEEDUP = 3.0
#: numpy-vs-pure agreement bound on raw accumulation sums: identical
#: multiplications, different summation tree, so the divergence is pure
#: reassociation noise (~cases * eps on sums bounded by 1).
KERNEL_TOLERANCE = 1e-9

BITWISE_FIELDS = (
    "duration_s",
    "unavailable_s",
    "lost_s",
    "late_s",
    "message_seconds",
)


_INF = float("inf")


def _reference_earliest_arrival(source, destination, adjacency, present):
    """The historical dict-keyed Dijkstra over present edges."""
    best = {source: 0.0}
    heap = [(0.0, source)]
    while heap:
        time_now, node = heapq.heappop(heap)
        if node == destination:
            return time_now
        if time_now > best.get(node, _INF):
            continue
        for neighbor, latency in adjacency.get(node, {}).items():
            if not present[(node, neighbor)]:
                continue
            candidate = time_now + latency
            if candidate < best.get(neighbor, _INF):
                best[neighbor] = candidate
                heapq.heappush(heap, (candidate, neighbor))
    return best.get(destination, _INF)


def _reference_delivery_probabilities(
    graph, deadline_ms, latency_of, loss_of, max_lossy_edges
):
    """The historical fused classification+accumulation enumeration."""
    adjacency: dict = {}
    certain: dict = {}
    lossy: list = []
    for edge in graph.sorted_edges():
        loss = loss_of(edge)
        adjacency.setdefault(edge[0], {})[edge[1]] = latency_of(edge)
        if loss <= 0.0:
            certain[edge] = True
        elif loss >= 1.0:
            certain[edge] = False
        else:
            certain[edge] = False  # toggled during enumeration
            lossy.append((edge, loss))
    assert len(lossy) <= max_lossy_edges
    source, destination = graph.source, graph.destination
    baseline = _reference_earliest_arrival(
        source, destination, adjacency, certain
    )
    if baseline <= deadline_ms:
        return DeliveryProbabilities(on_time=1.0, eventually=1.0)
    if not lossy:
        eventually = 1.0 if baseline < _INF else 0.0
        return DeliveryProbabilities(on_time=0.0, eventually=eventually)
    present = dict(certain)
    for edge, _loss in lossy:
        present[edge] = True
    best_case = _reference_earliest_arrival(
        source, destination, adjacency, present
    )
    best_on_time = best_case <= deadline_ms
    if not best_case < _INF:
        return DeliveryProbabilities(on_time=0.0, eventually=0.0)
    on_time_total = 0.0
    eventually_total = 0.0
    count = len(lossy)
    for mask in range(1 << count):
        probability = 1.0
        for bit, (edge, loss) in enumerate(lossy):
            if mask >> bit & 1:
                present[edge] = True
                probability *= 1.0 - loss
            else:
                present[edge] = False
                probability *= loss
        if probability == 0.0:
            continue
        arrival = _reference_earliest_arrival(
            source, destination, adjacency, present
        )
        if arrival <= deadline_ms:
            on_time_total += probability
            eventually_total += probability
        elif arrival < _INF:
            eventually_total += probability
    if not best_on_time:
        on_time_total = 0.0  # numerical hygiene: cannot exceed best case
    return DeliveryProbabilities(
        on_time=min(1.0, on_time_total), eventually=min(1.0, eventually_total)
    )


class _ReferenceCache:
    """The historical probability memo: raw keys, per-endpoint entries."""

    def __init__(self, deadline_ms: float, max_lossy_edges: int) -> None:
        self.deadline_ms = deadline_ms
        self.max_lossy_edges = max_lossy_edges
        self._cache: dict[object, object] = {}
        self._clean_cache: dict[object, object] = {}

    def probabilities(self, topology, graph, degraded):
        relevant = tuple(
            (edge, degraded[edge])
            for edge in graph.sorted_edges()
            if edge in degraded
        )
        if not relevant:
            key = (graph.edges, graph.source, graph.destination)
            cached = self._clean_cache.get(key)
            if cached is None:
                cached = _reference_delivery_probabilities(
                    graph,
                    self.deadline_ms,
                    lambda edge: topology.latency(*edge),
                    lambda edge: 0.0,
                    max_lossy_edges=self.max_lossy_edges,
                )
                self._clean_cache[key] = cached
            return cached
        key = (graph.edges, graph.source, graph.destination, relevant)
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        def latency_of(edge):
            state = degraded.get(edge)
            extra = state.extra_latency_ms if state is not None else 0.0
            return topology.latency(*edge) + extra

        def loss_of(edge):
            state = degraded.get(edge)
            return state.loss_rate if state is not None else 0.0

        result = _reference_delivery_probabilities(
            graph,
            self.deadline_ms,
            latency_of,
            loss_of,
            max_lossy_edges=self.max_lossy_edges,
        )
        self._cache[key] = result
        return result


def _reference_decision_timeline(
    topology, timeline, flow, service, policy, boundaries, observed_views
):
    """The historical stepping loop: every boundary, no hints."""
    if policy._topology is None:  # noqa: SLF001 - attach-once convenience
        policy.attach(topology, flow, service)
    spans: list[DecisionSpan] = []
    for index in range(len(boundaries) - 1):
        start, end = boundaries[index], boundaries[index + 1]
        graph = policy.update(start, observed_views[index])
        if spans and spans[-1].graph == graph:
            spans[-1] = DecisionSpan(spans[-1].start_s, end, graph)
        else:
            spans.append(DecisionSpan(start, end, graph))
    return spans


def _iter_windows(boundaries, spans):
    span_index = 0
    for start, end in zip(boundaries, boundaries[1:]):
        while spans[span_index].end_s <= start:
            span_index += 1
        yield start, end, spans[span_index].graph


def _reference_replay(topology, timeline, flows, service, config):
    """The frozen pre-PR-5 serial replay (see module docstring)."""
    assert not config.hop_recovery
    boundaries = decision_boundaries(timeline, config.detection_delay_s)
    observed_views = [
        observed_view(timeline, b, config.detection_delay_s)
        for b in boundaries[:-1]
    ]
    actual_views = [timeline.degraded_at(b) for b in boundaries[:-1]]
    cache = _ReferenceCache(service.deadline_ms, config.max_lossy_edges)
    stats_by_pair = {}
    for scheme_name in STANDARD_SCHEME_NAMES:
        for flow in flows:
            policy = make_policy(scheme_name)
            spans = _reference_decision_timeline(
                topology, timeline, flow, service, policy,
                boundaries, observed_views,
            )
            stats = FlowSchemeStats(flow=flow, scheme=policy.name)
            stats.decision_changes = len(spans) - 1
            for index, (start, end, graph) in enumerate(
                _iter_windows(boundaries, spans)
            ):
                probabilities = cache.probabilities(
                    topology, graph, actual_views[index]
                )
                stats.add_window(
                    start,
                    end,
                    graph.name,
                    graph.num_edges,
                    probabilities.on_time,
                    probabilities.lost,
                    probabilities.late,
                    collect=config.collect_windows,
                )
            stats_by_pair[(scheme_name, flow.name)] = stats
    return stats_by_pair


def _optimized_replay(topology, timeline, flows, service, config):
    """The current serial path, with an inspectable shared cache."""
    boundaries = decision_boundaries(timeline, config.detection_delay_s)
    observed_views, observed_deltas = observed_views_with_deltas(
        timeline, boundaries, config.detection_delay_s
    )
    actual_views, actual_deltas = timeline.degraded_views(
        list(boundaries[:-1])
    )
    cache = _ProbabilityCache(service.deadline_ms, config.max_lossy_edges)
    stats_by_pair = {}
    for scheme_name in STANDARD_SCHEME_NAMES:
        for flow in flows:
            stats_by_pair[(scheme_name, flow.name)] = replay_flow(
                topology,
                timeline,
                flow,
                service,
                make_policy(scheme_name),
                config,
                boundaries=boundaries,
                observed_views=observed_views,
                actual_views=actual_views,
                cache=cache,
                observed_deltas=observed_deltas,
                actual_deltas=actual_deltas,
            )
    return stats_by_pair, cache


def _harvest_kernel_stream(topology, timeline, flows, service, config):
    """Record every accumulation call an E2 replay feeds the kernel.

    Patches the kernel's mask entry points to capture ``(classes, rows)``
    before delegating, so the stream is exactly the arithmetic workload
    the replay performs -- call shapes, batch sizes and all.
    """
    stream: list[tuple[bytes, list[list[float]]]] = []
    original_single = kernel.mask_totals
    original_batch = kernel.mask_totals_batch

    def record_single(classes, losses):
        stream.append((classes, [list(losses)]))
        return original_single(classes, losses)

    def record_batch(classes, rows):
        stream.append((classes, [list(row) for row in rows]))
        return original_batch(classes, rows)

    kernel.mask_totals = record_single
    kernel.mask_totals_batch = record_batch
    try:
        _optimized_replay(topology, timeline, flows, service, config)
    finally:
        kernel.mask_totals = original_single
        kernel.mask_totals_batch = original_batch
    return stream


def _replay_kernel_stream(stream):
    """Run a harvested stream on the active backend; returns all totals."""
    totals: list[tuple[float, float]] = []
    for classes, rows in stream:
        totals.extend(kernel.mask_totals_batch(classes, rows))
    return totals


def test_hotpath_bitwise_identity_and_speedup(benchmark):
    topology = common.topology()
    flows = common.flows()
    service = common.service()
    scenario = Scenario(duration_s=HOTPATH_WEEKS * WEEK_S)
    _events, timeline = generate_timeline(
        topology, scenario, seed=common.BENCH_SEED
    )
    config = ReplayConfig(detection_delay_s=common.DETECTION_DELAY_S)

    def run_both():
        # The reference is the seed's fused loop, so the comparison runs
        # on the bitwise-identical pure backend; the vector backend is
        # guarded separately below under its reassociation tolerance.
        with kernel.force_backend("pure"):
            started = time.perf_counter()
            reference = _reference_replay(
                topology, timeline, flows, service, config
            )
            reference_wall = time.perf_counter() - started
            started = time.perf_counter()
            optimized, cache = _optimized_replay(
                topology, timeline, flows, service, config
            )
            optimized_wall = time.perf_counter() - started
        return reference, reference_wall, optimized, optimized_wall, cache

    reference, reference_wall, optimized, optimized_wall, cache = (
        benchmark.pedantic(run_both, rounds=1, iterations=1)
    )

    # 1) bitwise identity, field by field, for every (scheme, flow) pair.
    assert set(reference) == set(optimized)
    for pair, reference_stats in reference.items():
        optimized_stats = optimized[pair]
        for field in BITWISE_FIELDS:
            ref_value = getattr(reference_stats, field)
            opt_value = getattr(optimized_stats, field)
            assert ref_value.hex() == opt_value.hex(), (pair, field)
        assert (
            reference_stats.decision_changes == optimized_stats.decision_changes
        ), pair

    # 2) speed: the reworked hot path must clear the CI bar.
    speedup = reference_wall / optimized_wall
    assert speedup >= MIN_SPEEDUP, (
        f"hot path regressed: {speedup:.2f}x < {MIN_SPEEDUP}x "
        f"(reference {reference_wall:.1f} s, optimized {optimized_wall:.1f} s)"
    )

    # 3) canonical keys must share entries across (scheme, flow) groups:
    #    the overall hit rate strictly exceeds what the same lookups would
    #    have achieved with per-group keys (i.e. without the shared hits).
    lookups = cache.hits + cache.misses
    canonical_rate = cache.hits / lookups
    per_group_rate = (cache.hits - cache.shared_hits) / lookups
    assert cache.shared_hits > 0
    assert canonical_rate > per_group_rate

    print(common.banner(f"hotpath: replay core guard ({HOTPATH_WEEKS:g} weeks)"))
    print(
        render_table(
            ("measure", "value"),
            [
                ["reference wall", f"{reference_wall:.2f} s"],
                ["optimized wall", f"{optimized_wall:.2f} s"],
                ["speedup", f"{speedup:.2f}x"],
                ["canonical hit rate", f"{100 * canonical_rate:.1f} %"],
                ["per-group baseline", f"{100 * per_group_rate:.1f} %"],
                ["shared hits", str(cache.shared_hits)],
                ["mask hits", str(cache.mask_hits)],
                ["evictions", str(cache.evictions)],
            ],
        )
    )
    common.stage_metrics(
        weeks=HOTPATH_WEEKS,
        reference_wall_s=reference_wall,
        optimized_wall_s=optimized_wall,
        speedup=speedup,
        canonical_hit_rate=canonical_rate,
        per_group_baseline_hit_rate=per_group_rate,
        shared_hits=cache.shared_hits,
        mask_hits=cache.mask_hits,
        evictions=cache.evictions,
    )

    # 4) the vectorized kernel: harvest the accumulation stream the replay
    #    actually performs, keep its kernel-bound subset (classifications
    #    large enough for the vector path), and time it on both backends.
    with kernel.force_backend("pure"):
        stream = _harvest_kernel_stream(
            topology, timeline, flows, service, config
        )
    bound = [
        (classes, rows)
        for classes, rows in stream
        if len(classes) >= kernel.VECTOR_MIN_CASES
    ]
    bound_rows = sum(len(rows) for _classes, rows in bound)
    with kernel.force_backend("pure"):
        started = time.perf_counter()
        pure_totals = _replay_kernel_stream(bound)
        pure_wall = time.perf_counter() - started
    numpy_wall = None
    kernel_speedup = None
    worst_divergence = None
    if kernel.numpy_available() and bound:
        with kernel.force_backend("numpy"):
            started = time.perf_counter()
            numpy_totals = _replay_kernel_stream(bound)
            numpy_wall = time.perf_counter() - started
        worst_divergence = max(
            max(abs(p[0] - n[0]), abs(p[1] - n[1]))
            for p, n in zip(pure_totals, numpy_totals)
        )
        assert worst_divergence <= KERNEL_TOLERANCE, (
            f"numpy kernel diverged beyond reassociation tolerance: "
            f"{worst_divergence:.3e} > {KERNEL_TOLERANCE:.0e}"
        )
        kernel_speedup = pure_wall / numpy_wall
        assert kernel_speedup >= MIN_KERNEL_SPEEDUP, (
            f"vector kernel regressed: {kernel_speedup:.2f}x < "
            f"{MIN_KERNEL_SPEEDUP}x (pure {pure_wall:.2f} s, "
            f"numpy {numpy_wall:.2f} s over {bound_rows} rows)"
        )

    print(common.banner("hotpath: kernel-bound accumulation (pure vs numpy)"))
    print(
        render_table(
            ("measure", "value"),
            [
                ["accumulate calls", str(len(stream))],
                ["kernel-bound calls", str(len(bound))],
                ["kernel-bound rows", str(bound_rows)],
                ["pure wall", f"{pure_wall:.3f} s"],
                [
                    "numpy wall",
                    "n/a" if numpy_wall is None else f"{numpy_wall:.3f} s",
                ],
                [
                    "kernel speedup",
                    "n/a"
                    if kernel_speedup is None
                    else f"{kernel_speedup:.1f}x",
                ],
                [
                    "worst divergence",
                    "n/a"
                    if worst_divergence is None
                    else f"{worst_divergence:.2e}",
                ],
            ],
        )
    )
    common.stage_metrics(
        kernel_backend_default=kernel.describe()["backend"],
        kernel_numpy_available=kernel.numpy_available(),
        kernel_accumulate_calls=len(stream),
        kernel_bound_calls=len(bound),
        kernel_bound_rows=bound_rows,
        kernel_pure_wall_s=pure_wall,
        kernel_numpy_wall_s=numpy_wall,
        kernel_speedup=kernel_speedup,
        kernel_worst_divergence=worst_divergence,
    )
