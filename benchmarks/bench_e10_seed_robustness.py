"""E10 -- Seed robustness of the headline claims.

Heavy-tailed outage episodes make single traces noisy; the abstract's
numbers must hold *across* traces.  This bench sweeps several generator
seeds at reduced scale (1 week each) and reports mean/min/max gap
coverage per scheme; EXPERIMENTS.md records the full 4-week sweep.
"""

from __future__ import annotations

import common

from repro.analysis.robustness import run_seed_sweep, summarize
from repro.netmodel.scenarios import WEEK_S, Scenario
from repro.util.tables import render_table

SWEEP_SEEDS = (7, 11, 42)
SWEEP_WEEKS = 1.0


def test_e10_seed_robustness(benchmark):
    def sweep():
        return run_seed_sweep(
            common.topology(),
            Scenario(duration_s=SWEEP_WEEKS * WEEK_S),
            common.flows(),
            common.service(),
            seeds=SWEEP_SEEDS,
            max_workers=common.BENCH_WORKERS,
            use_cache=common.BENCH_USE_CACHE,
        )

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    summaries = summarize(outcomes)
    rows = [
        [
            summary.scheme,
            f"{100 * summary.mean_coverage:.1f}",
            f"{100 * summary.min_coverage:.1f}",
            f"{100 * summary.max_coverage:.1f}",
        ]
        for summary in summaries
    ]
    print(
        common.banner(
            f"E10: gap coverage across seeds {SWEEP_SEEDS} "
            f"({SWEEP_WEEKS:g}-week traces)"
        )
    )
    print(render_table(("scheme", "mean %", "min %", "max %"), rows))
    overheads = [outcome.cost_overhead_targeted for outcome in outcomes]
    print(
        f"\n  targeted cost overhead across seeds: "
        f"{100 * min(overheads):+.2f}% .. {100 * max(overheads):+.2f}%"
    )
