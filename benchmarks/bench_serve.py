"""E20 -- Evaluation-as-a-service: warm daemon vs. cold request (tier-2).

Starts the serve daemon in-process with a fresh disk cache, submits the
E2 evaluation workload twice, and compares wall times.  The first
request is fully cold (new shard context, empty disk cache); the second
is identical, so it is served from the warm shard context plus the
content-addressed shard cache and must come back at least 1.3x faster.
The returned run manifest must prove the warmth: non-zero
``serve.cache.*`` hit counters and ``shards_cached`` covering every
shard of the repeat.

``REPRO_BENCH_SERVE_WEEKS`` overrides the request's trace length
(default 0.25 -- the serve speedup is about cache reuse, not trace
scale, so a short trace keeps the bench fast at full fidelity).
"""

from __future__ import annotations

import os
import time

import common

from repro.routing.registry import STANDARD_SCHEME_NAMES
from repro.serve import EvaluateRequest, ServeClient, ServeConfig, ServerThread
from repro.util.tables import render_table

SERVE_WEEKS = float(os.environ.get("REPRO_BENCH_SERVE_WEEKS", "0.25"))
MIN_WARM_SPEEDUP = 1.3


def test_e20_serve_warm_cache(benchmark, tmp_path):
    request = EvaluateRequest(
        weeks=SERVE_WEEKS,
        seed=common.BENCH_SEED,
        schemes=tuple(STANDARD_SCHEME_NAMES),
    )
    thread = ServerThread(
        ServeConfig(port=0, max_active=2, cache_dir=str(tmp_path / "serve-cache"))
    )
    port = thread.start()
    client = ServeClient(port=port, timeout_s=1200.0)

    def cold_then_warm():
        started = time.perf_counter()
        cold_result, cold_manifest, _ = client.run(request)
        cold_s = time.perf_counter() - started
        started = time.perf_counter()
        warm_result, warm_manifest, _ = client.run(request)
        warm_s = time.perf_counter() - started
        return cold_result, cold_manifest, cold_s, warm_result, warm_manifest, warm_s

    try:
        (
            cold_result, cold_manifest, cold_s,
            warm_result, warm_manifest, warm_s,
        ) = benchmark.pedantic(cold_then_warm, rounds=1, iterations=1)
        status = client.status()
        client.shutdown()
    finally:
        thread.stop()

    assert warm_result == cold_result, "warm result must be bitwise identical"
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")

    serve_extra = warm_manifest["extra"]["serve"]
    metrics = warm_manifest["metrics"]
    print(
        common.banner(
            f"E20: evaluation-as-a-service ({SERVE_WEEKS:g} weeks, "
            f"seed {common.BENCH_SEED}, {len(STANDARD_SCHEME_NAMES)} schemes)"
        )
    )
    rows = [
        ["cold request", f"{cold_s:.2f} s"],
        ["warm repeat", f"{warm_s:.2f} s"],
        ["speedup", f"{speedup:.1f}x"],
        ["context warm", str(serve_extra["context_warm"])],
        ["shards from cache", str(serve_extra["shards_cached"])],
        [
            "serve.cache.context_hits",
            f"{metrics['serve.cache.context_hits']['value']:g}",
        ],
        [
            "serve.cache.prob_hits",
            f"{metrics['serve.cache.prob_hits']['value']:g}",
        ],
        [
            "serve.cache.shards_cached",
            f"{metrics['serve.cache.shards_cached']['value']:g}",
        ],
    ]
    print(render_table(("serve bench", f"port {port}"), rows))

    # The warmth must be visible in the returned manifest, not only in
    # the wall times.
    assert serve_extra["context_warm"] is True
    assert serve_extra["shards_cached"] > 0
    assert metrics["serve.cache.context_hits"]["value"] > 0
    assert metrics["serve.cache.shards_cached"]["value"] > 0
    assert status["requests"]["completed"] >= 2
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm repeat only {speedup:.2f}x faster than cold "
        f"(needs >= {MIN_WARM_SPEEDUP}x)"
    )

    common.stage_metrics(
        serve_weeks=SERVE_WEEKS,
        cold_s=cold_s,
        warm_s=warm_s,
        warm_speedup=speedup,
        context_warm=serve_extra["context_warm"],
        shards_cached=serve_extra["shards_cached"],
        cache_context_hits=metrics["serve.cache.context_hits"]["value"],
        cache_prob_hits=metrics["serve.cache.prob_hits"]["value"],
        cache_shards_cached=metrics["serve.cache.shards_cached"]["value"],
        requests_completed=status["requests"]["completed"],
    )
