"""E21 -- Graceful degradation under adversarial scenario families.

One compiled description per family drives everything here: the
analytic replay (scheme matrix + degradation accounting) and a live
overlay run whose fault schedule is *derived from the same events*.
The bench checks the single-world contract on both sides:

* the scheme matrix (static-single, static/dynamic two-disjoint,
  targeted, flooding) per family, with worst-window and time-to-recover
  columns next to the classic coverage/cost ones;
* the no-cliff criterion: targeted never does worse than the static
  single path, in any family;
* a live reconciliation stage: one family runs on the real overlay
  under the derived fault schedule, and the observed per-window on-time
  fraction must agree with the replay's prediction within tolerance.
"""

from __future__ import annotations

import common

from repro.analysis.degradation import degradation_rows
from repro.analysis.reporting import format_degradation_table
from repro.scenarios import (
    FAMILY_NAMES,
    check_world_consistency,
    compile_family,
    event_windows,
    reconcile,
    run_live_family,
)
from repro.simulation.interval import run_replay
from repro.simulation.results import ReplayConfig

SCHEMES = (
    "static-single",
    "static-two-disjoint",
    "dynamic-two-disjoint",
    "targeted",
    "flooding",
)

#: Analytic-replay horizon per family (one hour of adversarial weather).
FAMILY_DURATION_S = 3600.0

#: Live-overlay stage: short enough for CI, long enough for real windows.
LIVE_FAMILY = "srlg-outage"
LIVE_DURATION_S = 20.0


def _slug(name: str) -> str:
    return name.replace("-", "_")


def test_e21_scenario_families(benchmark):
    flows = common.flows()
    service = common.service()
    config = ReplayConfig(
        detection_delay_s=common.DETECTION_DELAY_S, collect_windows=True
    )

    def sweep():
        tables = {}
        for family in FAMILY_NAMES:
            compiled = compile_family(
                common.topology(),
                family,
                seed=common.BENCH_SEED,
                duration_s=FAMILY_DURATION_S,
            )
            discrepancies = check_world_consistency(compiled)
            assert not discrepancies, discrepancies
            result = run_replay(
                common.topology(),
                compiled.timeline(),
                flows,
                service,
                scheme_names=SCHEMES,
                config=config,
            )
            tables[family] = degradation_rows(
                result,
                list(compiled.events),
                baseline="static-single",
                optimal="flooding",
            )
        return tables

    tables = benchmark.pedantic(sweep, rounds=1, iterations=1)

    metrics: dict[str, object] = {}
    for family, rows in tables.items():
        by_scheme = {row["scheme"]: row for row in rows}
        targeted = by_scheme["targeted"]
        baseline = by_scheme["static-single"]
        # The no-cliff acceptance criterion: targeted never falls below
        # the static single path, whatever the family throws at it.
        assert targeted["unavailable_s"] <= baseline["unavailable_s"] + 1e-9, (
            family,
            targeted["unavailable_s"],
            baseline["unavailable_s"],
        )
        metrics[f"{_slug(family)}_targeted_unavailable_s"] = targeted[
            "unavailable_s"
        ]
        metrics[f"{_slug(family)}_static_single_unavailable_s"] = baseline[
            "unavailable_s"
        ]
        metrics[f"{_slug(family)}_targeted_worst_window_on_time"] = targeted[
            "worst_window_on_time"
        ]
        metrics[f"{_slug(family)}_targeted_cost_messages"] = targeted[
            "cost_messages"
        ]
        print(
            format_degradation_table(
                rows,
                title=(
                    f"E21: graceful degradation -- {family} "
                    f"({FAMILY_DURATION_S:g}s, seed {common.BENCH_SEED})"
                ),
            )
        )

    # Live stage: same description, real overlay, derived fault schedule.
    compiled = compile_family(
        common.topology(),
        LIVE_FAMILY,
        seed=common.BENCH_SEED,
        duration_s=LIVE_DURATION_S,
    )
    harness = run_live_family(
        compiled, flows[:2], service, "targeted", seed=common.BENCH_SEED
    )
    assert not harness.invariants.violations, harness.invariants.violations
    replay = run_replay(
        common.topology(),
        compiled.timeline(),
        flows[:2],
        service,
        scheme_names=("targeted",),
        config=config,
    )
    windows = event_windows(compiled.events, LIVE_DURATION_S)
    bad = 0
    checked = 0
    for flow in flows[:2]:
        report = harness.reports[flow.name]
        records = replay.get(flow.name, "targeted").windows
        for row in reconcile(
            report.send_times_s,
            report.deliveries,
            records,
            windows,
            deadline_ms=service.deadline_ms,
        ):
            checked += 1
            bad += 0 if row.ok else 1
    metrics["live_windows_checked"] = checked
    metrics["live_windows_out_of_tolerance"] = bad
    assert bad == 0, f"{bad}/{checked} reconciliation windows out of tolerance"
    print(
        f"\n  live reconciliation ({LIVE_FAMILY}, {LIVE_DURATION_S:g}s): "
        f"{checked} event window(s) checked, all within tolerance"
    )

    common.stage_metrics(**metrics)
