"""E5 -- Per-flow breakdown: gap coverage for each of the 16 flows.

The paper reports that the targeted approach's advantage holds across the
transcontinental flows, not just in aggregate.
"""

from __future__ import annotations

import common

from repro.analysis.metrics import per_flow_gap_coverage
from repro.analysis.reporting import format_per_flow_table

SCHEMES = ("static-two-disjoint", "dynamic-two-disjoint", "targeted")


def test_e5_per_flow(benchmark):
    result = common.headline_replay()
    coverage = benchmark(per_flow_gap_coverage, result, "targeted")
    print(common.banner("E5: per-flow gap coverage"))
    print(format_per_flow_table(result, schemes=SCHEMES))
    defined = [value for value in coverage.values() if value is not None]
    print(
        f"\n  targeted per-flow coverage: min {100 * min(defined):.1f}%  "
        f"median {100 * sorted(defined)[len(defined) // 2]:.1f}%  "
        f"max {100 * max(defined):.1f}%"
    )
