"""Tracing-overhead guard: observability must stay cheap when enabled.

Runs the E2 headline replay twice on identical inputs -- once
uninstrumented, once with a live :class:`repro.obs.Observability`
recording spans and metrics -- and requires the instrumented run to
finish within ``REPRO_OBS_OVERHEAD_MAX`` (default 15 %) of the baseline.
Both runs bypass the result cache so they do equal work, and the faster
of several rounds is compared to damp scheduler noise.

The zero-overhead-when-*off* property is a functional guarantee and is
locked by tier-1 tests (identical results with and without ``obs``);
this bench guards the *enabled* path's cost, which only a wall-clock
measurement can.
"""

from __future__ import annotations

import os
import time

import common

from repro.exec.engine import run_replay_parallel
from repro.obs import Observability
from repro.simulation.results import ReplayConfig

OVERHEAD_MAX = float(os.environ.get("REPRO_OBS_OVERHEAD_MAX", "0.15"))
ROUNDS = 3
#: A shorter trace than the headline bench: each round replays twice.
WEEKS = min(common.BENCH_WEEKS, 1.0)


def _replay_once(obs: Observability | None) -> float:
    _events, timeline = common.trace(WEEKS, common.BENCH_SEED)
    started = time.perf_counter()
    run_replay_parallel(
        common.topology(),
        timeline,
        common.flows(),
        common.service(),
        config=ReplayConfig(detection_delay_s=common.DETECTION_DELAY_S),
        max_workers=0,
        use_cache=False,
        label="obs overhead guard",
        obs=obs,
    )
    return time.perf_counter() - started


def test_obs_tracing_overhead(benchmark):
    def measure() -> tuple[float, float]:
        baseline = min(_replay_once(None) for _ in range(ROUNDS))
        traced = min(_replay_once(Observability()) for _ in range(ROUNDS))
        return baseline, traced

    baseline, traced = benchmark.pedantic(measure, rounds=1, iterations=1)
    overhead = traced / baseline - 1.0
    print(common.banner("obs: tracing overhead on the E2 replay"))
    print(f"  baseline (obs off) {baseline:7.3f} s")
    print(f"  traced   (obs on)  {traced:7.3f} s")
    print(f"  overhead           {100 * overhead:+6.1f} %  (max {100 * OVERHEAD_MAX:.0f} %)")
    common.stage_metrics(
        baseline_s=baseline, traced_s=traced, overhead=overhead
    )
    assert overhead < OVERHEAD_MAX, (
        f"tracing overhead {100 * overhead:.1f}% exceeds "
        f"{100 * OVERHEAD_MAX:.0f}% budget"
    )
