"""E16 -- Outage-episode durations: the SLA view.

Total unavailable seconds hide failure shape; a surgeon cares whether the
instrument freezes for 200 ms or for 30 s.  This bench extracts maximal
degraded runs per scheme and reports their count and duration
distribution: redundancy does not just shrink the total, it removes the
long episodes.
"""

from __future__ import annotations

import common

from repro.analysis.availability import summarize_outages
from repro.netmodel.scenarios import WEEK_S, Scenario, generate_timeline
from repro.simulation.interval import run_replay
from repro.simulation.results import ReplayConfig
from repro.util.tables import render_table

OUTAGE_WEEKS = 1.0
SCHEMES = (
    "static-single",
    "dynamic-single",
    "static-two-disjoint",
    "dynamic-two-disjoint",
    "targeted",
    "flooding",
)


def test_e16_outage_durations(benchmark):
    _events, timeline = generate_timeline(
        common.topology(),
        Scenario(duration_s=OUTAGE_WEEKS * WEEK_S),
        seed=common.BENCH_SEED,
    )

    def run():
        result = run_replay(
            common.topology(),
            timeline,
            common.flows(),
            common.service(),
            scheme_names=SCHEMES,
            config=ReplayConfig(
                detection_delay_s=common.DETECTION_DELAY_S, collect_windows=True
            ),
        )
        return summarize_outages(result, SCHEMES)

    summaries = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [
            summary.scheme,
            summary.episodes,
            f"{summary.total_unavailable_s:.0f}",
            f"{summary.mean_duration_s:.1f}",
            f"{summary.p95_duration_s:.1f}",
            f"{summary.max_duration_s:.1f}",
        ]
        for summary in summaries
    ]
    print(
        common.banner(
            f"E16: outage episodes across 16 flows ({OUTAGE_WEEKS:g}-week trace)"
        )
    )
    print(
        render_table(
            (
                "scheme",
                "episodes",
                "unavail s",
                "mean dur s",
                "p95 dur s",
                "max dur s",
            ),
            rows,
        )
    )
    print(
        "  (an episode = a maximal run of windows with on-time probability"
        " < 99.9%)"
    )
