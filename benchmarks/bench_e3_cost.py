"""E3 -- Message cost per packet (claim C6).

Paper: the targeted approach's performance "is obtained at a cost
increase of about 2% over two disjoint paths", while flooding is
prohibitively expensive.
"""

from __future__ import annotations

import common

from repro.analysis.reporting import format_cost_table
from repro.simulation.cost import cost_comparison


def test_e3_cost(benchmark):
    result = common.headline_replay()
    comparison = benchmark(cost_comparison, result)
    print(common.banner("E3: message cost per packet"))
    print(format_cost_table(result))
    targeted = next(c for c in comparison if c.scheme == "targeted")
    print(
        f"\n  targeted overhead over two disjoint paths: "
        f"{targeted.overhead_percent:+.2f}%   (paper: about +2%)"
    )
