"""E2 -- The headline table: scheme performance over the whole trace.

Paper claims reproduced in shape (abstract):

* targeted covers  > 99 % of the single-path -> optimal gap (C4);
* dynamic two disjoint paths cover ~70 %, static ~45 % (C5).

The bench replays the full trace under all six schemes and prints the
performance table with the gap-coverage column.
"""

from __future__ import annotations

import common

from repro.analysis.metrics import gap_coverage
from repro.analysis.reporting import format_scheme_performance_table


def test_e2_scheme_performance(benchmark):
    result = benchmark.pedantic(common.headline_replay, rounds=1, iterations=1)
    print(
        common.banner(
            f"E2: scheme performance ({common.BENCH_WEEKS:g} weeks, "
            f"seed {common.BENCH_SEED}, 16 flows)"
        )
    )
    print(format_scheme_performance_table(result))
    print()
    for scheme, paper in (
        ("static-two-disjoint", "~45%"),
        ("dynamic-two-disjoint", "~70%"),
        ("targeted", ">99%"),
    ):
        measured = 100 * gap_coverage(result, scheme)
        print(f"  {scheme:22s} gap coverage {measured:5.1f}%   (paper: {paper})")
        common.stage_metrics(**{f"gap_coverage_pct.{scheme}": measured})
    common.stage_metrics(
        **{
            f"availability.{totals.scheme}": totals.availability
            for totals in result.all_totals()
        }
    )
