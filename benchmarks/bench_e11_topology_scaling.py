"""E11 -- Does the result survive other topologies, and at what scale?

The paper evaluates one commercial 12-site overlay.  This bench
regenerates the headline comparison on seeded :mod:`repro.topogen`
overlays of growing size, in two parts:

* **scaling points** (N in ``SIZES``): per-subsystem timings of the
  operations that must stay tractable at scale -- artifact generation,
  targeted-policy attach (problem-graph precomputation), and one
  targeted re-route decision, with the candidate-beam counters from
  :mod:`repro.obs` recording how hard the pruning works;
* **end-to-end replay** (N in ``REPLAY_SIZES``): the four-scheme
  gap-coverage table (dynamic-single baseline, flooding optimal) over a
  ``REPRO_BENCH_E11_WEEKS``-week trace, showing the targeted approach's
  advantage is a property of the method, not of the 12-site layout.

Replay is restricted to the smaller sizes so the bench fits a CI budget;
the scaling points still cover every size.  Knobs:

* ``REPRO_BENCH_E11_WEEKS`` -- replay trace length (default 0.25);
* ``REPRO_BENCH_E11_FAMILY`` -- generator family (default ``isp-hier``).
"""

from __future__ import annotations

import os
import time

import common

from repro.analysis.metrics import gap_coverage
from repro.exec.engine import run_replay_parallel
from repro.netmodel.conditions import LinkState
from repro.netmodel.scenarios import WEEK_S, Scenario, generate_timeline
from repro.netmodel.topologies import coast_to_coast_flows
from repro.obs import Observability
from repro.routing.registry import make_policy
from repro.simulation import kernel
from repro.simulation.results import ReplayConfig
from repro.topogen import generate_topology
from repro.util.tables import render_table
from repro.util.validation import ValidationError

SIZES = (50, 100, 250, 500)
REPLAY_SIZES = (50, 100)
REPLAY_WEEKS = float(os.environ.get("REPRO_BENCH_E11_WEEKS", "0.25"))
FAMILY = os.environ.get("REPRO_BENCH_E11_FAMILY", "isp-hier")
REPLAY_FLOWS = 4
SCHEMES = ("dynamic-single", "static-two-disjoint", "targeted", "flooding")


def _scaling_point(size: int) -> dict[str, float]:
    """Generation / attach / decide timings plus beam counters at one N."""
    generate_topology.cache_clear()  # time a cold generation
    start = time.perf_counter()
    generated = generate_topology(FAMILY, size, common.BENCH_SEED)
    generate_s = time.perf_counter() - start
    topology = generated.topology()
    flow = coast_to_coast_flows(topology, 2)[0]
    policy = make_policy("targeted")
    obs = Observability()
    policy.set_observability(obs)
    start = time.perf_counter()
    policy.attach(topology, flow, common.service())
    attach_s = time.perf_counter() - start
    # Degrade one middle edge of the base graph so the decision takes the
    # re-route path -- the candidate-enumeration hot spot this bench (and
    # the beam cap) exists for.
    middle = next(
        edge
        for edge in policy._base_graph.edges
        if flow.source not in edge and flow.destination not in edge
    )
    observed = {middle: LinkState(loss_rate=0.5)}
    start = time.perf_counter()
    policy.update(0.0, observed)
    decide_s = time.perf_counter() - start
    return {
        "generate_s": round(generate_s, 6),
        "attach_s": round(attach_s, 6),
        "decide_s": round(decide_s, 6),
        "links": float(len(generated.links)),
        "candidates_considered": obs.metrics.counter(
            "routing.targeted.candidates.considered"
        ).value,
        "candidates_kept": obs.metrics.counter(
            "routing.targeted.candidates.kept"
        ).value,
        "candidate_cap": float(policy.candidate_cap),
    }


def _replay_point(size: int) -> dict[str, float]:
    """Four-scheme gap coverage on one generated overlay."""
    generated = generate_topology(FAMILY, size, common.BENCH_SEED)
    topology = generated.topology()
    flows = coast_to_coast_flows(topology, REPLAY_FLOWS)
    scenario = Scenario(duration_s=REPLAY_WEEKS * WEEK_S)
    _events, timeline = generate_timeline(
        topology, scenario, seed=common.BENCH_SEED
    )
    result, _telemetry = run_replay_parallel(
        topology,
        timeline,
        flows,
        common.service(),
        scheme_names=SCHEMES,
        config=ReplayConfig(detection_delay_s=common.DETECTION_DELAY_S),
        max_workers=common.BENCH_WORKERS,
        use_cache=common.BENCH_USE_CACHE,
        label=f"topology scaling ({FAMILY} N={size})",
    )
    point = {
        "targeted_availability": result.totals("targeted").availability,
        "targeted_msgs": result.totals("targeted").average_cost_messages,
        "flooding_msgs": result.totals("flooding").average_cost_messages,
    }
    try:
        point["static2_gap_pct"] = 100 * gap_coverage(
            result, "static-two-disjoint"
        )
        point["targeted_gap_pct"] = 100 * gap_coverage(result, "targeted")
    except ValidationError:
        # A short trace can leave the dynamic-single baseline flawless on
        # a small overlay; gap coverage is then undefined and the point
        # reports availabilities only.
        pass
    return point


def test_e11_topology_scaling(benchmark):
    def sweep():
        scaling = {size: _scaling_point(size) for size in SIZES}
        replays = {size: _replay_point(size) for size in REPLAY_SIZES}
        return scaling, replays

    kernel_before = kernel.counters()
    scaling, replays = benchmark.pedantic(sweep, rounds=1, iterations=1)
    kernel_delta = kernel.counters_delta(kernel_before, kernel.counters())
    common.stage_metrics(
        kernel_backend=kernel.active_backend(),
        **{f"kernel_{name}": value for name, value in kernel_delta.items()},
    )
    for size, point in scaling.items():
        common.stage_metrics(
            **{f"n{size}_{name}": value for name, value in point.items()}
        )
    for size, point in replays.items():
        common.stage_metrics(
            **{f"n{size}_{name}": value for name, value in point.items()}
        )
    print(
        common.banner(
            f"E11: {FAMILY} scaling points (generate / attach / decide)"
        )
    )
    print(
        render_table(
            (
                "N",
                "links",
                "generate s",
                "attach s",
                "decide s",
                "beam kept/considered",
            ),
            [
                [
                    str(size),
                    f"{point['links']:.0f}",
                    f"{point['generate_s']:.3f}",
                    f"{point['attach_s']:.3f}",
                    f"{point['decide_s']:.4f}",
                    f"{point['candidates_kept']:.0f}/"
                    f"{point['candidates_considered']:.0f}"
                    f" (cap {point['candidate_cap']:.0f})",
                ]
                for size, point in scaling.items()
            ],
        )
    )
    print(
        common.banner(
            f"E11: gap coverage on {FAMILY} overlays "
            f"({REPLAY_WEEKS:g}-week traces, {REPLAY_FLOWS} flows)"
        )
    )
    print(
        render_table(
            (
                "topology",
                "static-2 %",
                "targeted %",
                "targeted avail",
                "targeted msgs/pkt",
                "flooding msgs/pkt",
            ),
            [
                [
                    f"N={size}",
                    (
                        f"{point['static2_gap_pct']:.1f}"
                        if "static2_gap_pct" in point
                        else "n/a"
                    ),
                    (
                        f"{point['targeted_gap_pct']:.1f}"
                        if "targeted_gap_pct" in point
                        else "n/a"
                    ),
                    f"{point['targeted_availability']:.6f}",
                    f"{point['targeted_msgs']:.2f}",
                    f"{point['flooding_msgs']:.2f}",
                ]
                for size, point in replays.items()
            ],
        )
    )
    print("  (targeted stays near-optimal while flooding's cost grows with size)")
