"""E11 -- Does the result survive other topologies?

The paper evaluates one commercial overlay.  This bench regenerates the
headline comparison on synthetic continental overlays of growing size
(the generator guarantees the biconnectivity every scheme needs) to show
the targeted approach's advantage is a property of the method, not of
the 12-site layout.
"""

from __future__ import annotations

import common

from repro.analysis.metrics import gap_coverage
from repro.exec.engine import run_replay_parallel
from repro.netmodel.scenarios import WEEK_S, Scenario, generate_timeline
from repro.netmodel.topologies import (
    coast_to_coast_flows,
    synthetic_continental_topology,
)
from repro.simulation.results import ReplayConfig
from repro.util.tables import render_table

SIZES = (12, 18, 24)
SCALING_WEEKS = 0.5


def test_e11_topology_scaling(benchmark):
    def sweep():
        rows = []
        for size in SIZES:
            topology = synthetic_continental_topology(size, seed=size)
            flows = coast_to_coast_flows(topology, 8)
            scenario = Scenario(duration_s=SCALING_WEEKS * WEEK_S)
            _events, timeline = generate_timeline(topology, scenario, seed=7)
            result, _telemetry = run_replay_parallel(
                topology,
                timeline,
                flows,
                common.service(),
                scheme_names=(
                    "dynamic-single",
                    "static-two-disjoint",
                    "dynamic-two-disjoint",
                    "targeted",
                    "flooding",
                ),
                config=ReplayConfig(detection_delay_s=common.DETECTION_DELAY_S),
                max_workers=common.BENCH_WORKERS,
                use_cache=common.BENCH_USE_CACHE,
                label=f"topology scaling ({size} sites)",
            )
            rows.append(
                [
                    f"{size} sites",
                    f"{100 * gap_coverage(result, 'static-two-disjoint'):.1f}",
                    f"{100 * gap_coverage(result, 'dynamic-two-disjoint'):.1f}",
                    f"{100 * gap_coverage(result, 'targeted'):.1f}",
                    f"{result.totals('targeted').average_cost_messages:.2f}",
                    f"{result.totals('flooding').average_cost_messages:.2f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(
        common.banner(
            f"E11: gap coverage on synthetic overlays ({SCALING_WEEKS:g}-week traces)"
        )
    )
    print(
        render_table(
            (
                "topology",
                "static-2 %",
                "dynamic-2 %",
                "targeted %",
                "targeted msgs/pkt",
                "flooding msgs/pkt",
            ),
            rows,
        )
    )
    print("  (targeted stays near-optimal while flooding's cost grows with size)")
