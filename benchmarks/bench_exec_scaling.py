"""E18 -- Execution-engine scaling smoke (tier-2).

Measures the full six-scheme replay on a 1-week trace three ways --
serial in-process, 2 workers, 4 workers -- plus a cold-vs-warm cache
comparison, and prints the wall times and speedups.  On machines with
fewer than 4 cores the parallel numbers are not representative, so the
bench emits a warning instead of asserting a speedup.

``REPRO_BENCH_EXEC_WEEKS`` overrides the trace length (default 1).
"""

from __future__ import annotations

import os
import time
import warnings

import common

from repro.exec.engine import run_replay_parallel
from repro.netmodel.scenarios import WEEK_S, Scenario, generate_timeline
from repro.simulation.results import ReplayConfig
from repro.util.tables import render_table

EXEC_WEEKS = float(os.environ.get("REPRO_BENCH_EXEC_WEEKS", "1"))
WORKER_COUNTS = (2, 4)


def test_e18_exec_scaling(benchmark, tmp_path):
    cores = os.cpu_count() or 1
    if cores < 4:
        warnings.warn(
            f"machine has only {cores} core(s); parallel wall times below "
            "measure overhead, not speedup",
            stacklevel=1,
        )
    topology = common.topology()
    scenario = Scenario(duration_s=EXEC_WEEKS * WEEK_S)
    _events, timeline = generate_timeline(topology, scenario, seed=common.BENCH_SEED)
    config = ReplayConfig(detection_delay_s=common.DETECTION_DELAY_S)
    cache_dir = tmp_path / "exec-cache"

    def replay(workers: int, use_cache: bool = False) -> float:
        started = time.perf_counter()
        run_replay_parallel(
            topology,
            timeline,
            common.flows(),
            common.service(),
            config=config,
            max_workers=workers,
            use_cache=use_cache,
            cache_dir=str(cache_dir),
            label=f"exec scaling ({workers} workers)",
        )
        return time.perf_counter() - started

    def sweep():
        rows = []
        serial_s = replay(0)
        rows.append(["serial", f"{serial_s:.1f}", "1.00x"])
        for workers in WORKER_COUNTS:
            elapsed = replay(workers)
            rows.append([f"{workers} workers", f"{elapsed:.1f}", f"{serial_s / elapsed:.2f}x"])
        cold_s = replay(0, use_cache=True)
        warm_s = replay(0, use_cache=True)
        rows.append(["cache cold", f"{cold_s:.1f}", f"{serial_s / cold_s:.2f}x"])
        rows.append(["cache warm", f"{warm_s:.1f}", f"{serial_s / warm_s:.2f}x"])
        return rows, serial_s, warm_s

    rows, serial_s, warm_s = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(
        common.banner(
            f"E18: execution-engine scaling ({EXEC_WEEKS:g}-week trace, "
            f"{cores} core(s))"
        )
    )
    print(render_table(("configuration", "wall s", "vs serial"), rows))
    if warm_s > 0.1 * serial_s:
        warnings.warn(
            f"warm cache run took {warm_s:.1f}s (> 10% of the {serial_s:.1f}s "
            "serial run); cache hit path is slower than expected",
            stacklevel=1,
        )
