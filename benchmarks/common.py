"""Shared fixtures for the benchmark suite.

The headline experiments replay a multi-week trace under all six schemes,
which is the expensive step; it is computed once per pytest session and
shared by every bench that needs it.  Scale and seed are controlled by
environment variables so a quick run and the full paper-scale run use the
same code:

* ``REPRO_BENCH_WEEKS`` -- trace length in weeks (default 2; the
  EXPERIMENTS.md headline numbers use 4);
* ``REPRO_BENCH_SEED`` -- generator seed (default 7);
* ``REPRO_BENCH_WORKERS`` -- execution-engine worker processes
  (default 0 = in-process serial);
* ``REPRO_BENCH_NO_CACHE`` -- set to ``1`` to bypass the execution
  engine's content-addressed result cache;
* ``REPRO_BENCH_OUT`` -- directory for the machine-readable
  ``BENCH_<exp>.json`` artifacts (default ``bench-out``).

All replays route through :mod:`repro.exec`, so a repeated bench
invocation with unchanged inputs (e.g. the ``REPRO_BENCH_WEEKS=4``
paper-scale run) reuses cached shards instead of recomputing them.

Every bench test additionally writes ``BENCH_<exp>.json`` (via an
autouse fixture in ``conftest.py``): a run manifest -- scale knobs,
topology fingerprint, the engine telemetry of the replays this bench
triggered -- plus whatever headline figures the bench staged through
:func:`stage_metrics`.  The JSON is the scrape-free counterpart of the
printed tables, comparable across commits.
"""

from __future__ import annotations

import functools
import json
import os
from pathlib import Path

from repro.exec.engine import run_replay_parallel
from repro.exec.telemetry import aggregate_telemetry, session_records
from repro.netmodel.scenarios import WEEK_S, Scenario, generate_timeline
from repro.netmodel.topology import (
    ServiceSpec,
    build_reference_topology,
    reference_flows,
)
from repro.obs.manifest import MANIFEST_VERSION, topology_fingerprint
from repro.simulation.results import ReplayConfig

BENCH_WEEKS = float(os.environ.get("REPRO_BENCH_WEEKS", "2"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "7"))
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "0"))
BENCH_USE_CACHE = os.environ.get("REPRO_BENCH_NO_CACHE", "") != "1"
BENCH_OUT = Path(os.environ.get("REPRO_BENCH_OUT", "bench-out"))
DETECTION_DELAY_S = 1.0


@functools.lru_cache(maxsize=None)
def topology():
    return build_reference_topology()


@functools.lru_cache(maxsize=None)
def flows():
    return reference_flows()


@functools.lru_cache(maxsize=None)
def service():
    return ServiceSpec()


@functools.lru_cache(maxsize=None)
def scenario(weeks: float = BENCH_WEEKS):
    return Scenario(duration_s=weeks * WEEK_S)


@functools.lru_cache(maxsize=None)
def trace(weeks: float = BENCH_WEEKS, seed: int = BENCH_SEED):
    """(events, timeline) of the benchmark trace."""
    return generate_timeline(topology(), scenario(weeks), seed=seed)


@functools.lru_cache(maxsize=None)
def headline_replay(weeks: float = BENCH_WEEKS, seed: int = BENCH_SEED):
    """The full six-scheme replay every headline bench reads from."""
    _events, timeline = trace(weeks, seed)
    result, _telemetry = run_replay_parallel(
        topology(),
        timeline,
        flows(),
        service(),
        config=ReplayConfig(detection_delay_s=DETECTION_DELAY_S),
        max_workers=BENCH_WORKERS,
        use_cache=BENCH_USE_CACHE,
        label=f"headline replay ({weeks:g}w, seed {seed})",
    )
    return result


def banner(title: str) -> str:
    line = "=" * len(title)
    return f"\n{line}\n{title}\n{line}"


# -- machine-readable bench artifacts ---------------------------------------------

_staged_metrics: dict[str, object] = {}
_telemetry_mark = 0


def begin_bench() -> None:
    """Reset per-bench staging (called by the autouse conftest fixture)."""
    global _telemetry_mark
    _staged_metrics.clear()
    _telemetry_mark = len(session_records())


def stage_metrics(**metrics: object) -> None:
    """Stage headline figures for the current bench's ``BENCH_<exp>.json``."""
    _staged_metrics.update(metrics)


def _telemetry_delta() -> dict | None:
    """Aggregate engine telemetry of the replays this bench triggered.

    A bench reading a session-cached replay (``headline_replay``) records
    no new engine invocation, so the delta is ``None`` for it -- the JSON
    then documents that the bench reused an earlier replay.
    """
    records = session_records()[_telemetry_mark:]
    total = aggregate_telemetry(records, label=f"bench ({len(records)} run(s))")
    return None if total is None else total.to_dict()


def flush_bench_json(exp: str) -> Path:
    """Write ``BENCH_<exp>.json`` into :data:`BENCH_OUT` and return it."""
    BENCH_OUT.mkdir(parents=True, exist_ok=True)
    payload = {
        "manifest_version": MANIFEST_VERSION,
        "experiment": exp,
        "weeks": BENCH_WEEKS,
        "seed": BENCH_SEED,
        "workers": BENCH_WORKERS,
        "use_cache": BENCH_USE_CACHE,
        "topology": topology_fingerprint(topology()),
        "exec": _telemetry_delta(),
        "metrics": dict(sorted(_staged_metrics.items())),
    }
    path = BENCH_OUT / f"BENCH_{exp}.json"
    path.write_text(json.dumps(payload, indent=1, sort_keys=True))
    return path
