"""Shared fixtures for the benchmark suite.

The headline experiments replay a multi-week trace under all six schemes,
which is the expensive step; it is computed once per pytest session and
shared by every bench that needs it.  Scale and seed are controlled by
environment variables so a quick run and the full paper-scale run use the
same code:

* ``REPRO_BENCH_WEEKS`` -- trace length in weeks (default 2; the
  EXPERIMENTS.md headline numbers use 4);
* ``REPRO_BENCH_SEED`` -- generator seed (default 7).
"""

from __future__ import annotations

import functools
import os

from repro.netmodel.scenarios import WEEK_S, Scenario, generate_timeline
from repro.netmodel.topology import (
    ServiceSpec,
    build_reference_topology,
    reference_flows,
)
from repro.simulation.interval import run_replay
from repro.simulation.results import ReplayConfig

BENCH_WEEKS = float(os.environ.get("REPRO_BENCH_WEEKS", "2"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "7"))
DETECTION_DELAY_S = 1.0


@functools.lru_cache(maxsize=None)
def topology():
    return build_reference_topology()


@functools.lru_cache(maxsize=None)
def flows():
    return reference_flows()


@functools.lru_cache(maxsize=None)
def service():
    return ServiceSpec()


@functools.lru_cache(maxsize=None)
def scenario(weeks: float = BENCH_WEEKS):
    return Scenario(duration_s=weeks * WEEK_S)


@functools.lru_cache(maxsize=None)
def trace(weeks: float = BENCH_WEEKS, seed: int = BENCH_SEED):
    """(events, timeline) of the benchmark trace."""
    return generate_timeline(topology(), scenario(weeks), seed=seed)


@functools.lru_cache(maxsize=None)
def headline_replay(weeks: float = BENCH_WEEKS, seed: int = BENCH_SEED):
    """The full six-scheme replay every headline bench reads from."""
    _events, timeline = trace(weeks, seed)
    return run_replay(
        topology(),
        timeline,
        flows(),
        service(),
        config=ReplayConfig(detection_delay_s=DETECTION_DELAY_S),
    )


def banner(title: str) -> str:
    line = "=" * len(title)
    return f"\n{line}\n{title}\n{line}"
