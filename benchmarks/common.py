"""Shared fixtures for the benchmark suite.

The headline experiments replay a multi-week trace under all six schemes,
which is the expensive step; it is computed once per pytest session and
shared by every bench that needs it.  Scale and seed are controlled by
environment variables so a quick run and the full paper-scale run use the
same code:

* ``REPRO_BENCH_WEEKS`` -- trace length in weeks (default 2; the
  EXPERIMENTS.md headline numbers use 4);
* ``REPRO_BENCH_SEED`` -- generator seed (default 7);
* ``REPRO_BENCH_WORKERS`` -- execution-engine worker processes
  (default 0 = in-process serial);
* ``REPRO_BENCH_NO_CACHE`` -- set to ``1`` to bypass the execution
  engine's content-addressed result cache.

All replays route through :mod:`repro.exec`, so a repeated bench
invocation with unchanged inputs (e.g. the ``REPRO_BENCH_WEEKS=4``
paper-scale run) reuses cached shards instead of recomputing them.
"""

from __future__ import annotations

import functools
import os

from repro.exec.engine import run_replay_parallel
from repro.netmodel.scenarios import WEEK_S, Scenario, generate_timeline
from repro.netmodel.topology import (
    ServiceSpec,
    build_reference_topology,
    reference_flows,
)
from repro.simulation.results import ReplayConfig

BENCH_WEEKS = float(os.environ.get("REPRO_BENCH_WEEKS", "2"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "7"))
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "0"))
BENCH_USE_CACHE = os.environ.get("REPRO_BENCH_NO_CACHE", "") != "1"
DETECTION_DELAY_S = 1.0


@functools.lru_cache(maxsize=None)
def topology():
    return build_reference_topology()


@functools.lru_cache(maxsize=None)
def flows():
    return reference_flows()


@functools.lru_cache(maxsize=None)
def service():
    return ServiceSpec()


@functools.lru_cache(maxsize=None)
def scenario(weeks: float = BENCH_WEEKS):
    return Scenario(duration_s=weeks * WEEK_S)


@functools.lru_cache(maxsize=None)
def trace(weeks: float = BENCH_WEEKS, seed: int = BENCH_SEED):
    """(events, timeline) of the benchmark trace."""
    return generate_timeline(topology(), scenario(weeks), seed=seed)


@functools.lru_cache(maxsize=None)
def headline_replay(weeks: float = BENCH_WEEKS, seed: int = BENCH_SEED):
    """The full six-scheme replay every headline bench reads from."""
    _events, timeline = trace(weeks, seed)
    result, _telemetry = run_replay_parallel(
        topology(),
        timeline,
        flows(),
        service(),
        config=ReplayConfig(detection_delay_s=DETECTION_DELAY_S),
        max_workers=BENCH_WORKERS,
        use_cache=BENCH_USE_CACHE,
        label=f"headline replay ({weeks:g}w, seed {seed})",
    )
    return result


def banner(title: str) -> str:
    line = "=" * len(title)
    return f"\n{line}\n{title}\n{line}"
