"""E8 -- Ablations of the design choices DESIGN.md calls out.

Four sweeps over a shorter (one-week) trace:

1. **detection delay** -- the paper argues problems last long enough that
   reaction latency does not erase targeted redundancy's benefit;
2. **hold-down** -- reverting instantly after a burst re-exposes the flow
   to the episode's next burst;
3. **targeted-graph breadth** -- how many of the endpoint's adjacent
   links the problem graphs cover;
4. **flooding deadline** -- how the latency budget shapes the optimal
   scheme's edge set (and hence its cost).
"""

from __future__ import annotations

import common

from repro.analysis.metrics import gap_coverage
from repro.core.builders import time_constrained_flooding_graph
from repro.netmodel.scenarios import WEEK_S, Scenario, generate_timeline
from repro.routing.targeted import TargetedRedundancyPolicy
from repro.simulation.interval import replay_flow, run_replay
from repro.simulation.results import ReplayConfig
from repro.util.tables import render_table

ABLATION_WEEKS = 1.0


def ablation_trace():
    return generate_timeline(
        common.topology(),
        Scenario(duration_s=ABLATION_WEEKS * WEEK_S),
        seed=common.BENCH_SEED,
    )


def test_e8a_detection_delay(benchmark):
    _events, timeline = ablation_trace()

    def sweep():
        rows = []
        for delay in (0.0, 1.0, 3.0, 10.0):
            result = run_replay(
                common.topology(),
                timeline,
                common.flows(),
                common.service(),
                scheme_names=("dynamic-single", "targeted", "flooding"),
                config=ReplayConfig(detection_delay_s=delay),
            )
            rows.append(
                [
                    f"{delay:g}s",
                    f"{result.totals('targeted').unavailable_s:.1f}",
                    f"{100 * gap_coverage(result, 'targeted'):.1f}%",
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(common.banner("E8a: sensitivity to detection/propagation delay"))
    print(render_table(("detection delay", "targeted unavail s", "gap coverage"), rows))
    print("  (coverage degrades gracefully: problems outlast the reaction)")


def test_e8b_hold_down(benchmark):
    _events, timeline = ablation_trace()
    flow = common.flows()[0]

    def sweep():
        rows = []
        for hold in (0.0, 5.0, 30.0, 120.0):
            stats = replay_flow(
                common.topology(),
                timeline,
                flow,
                common.service(),
                TargetedRedundancyPolicy(hold_down_s=hold),
                ReplayConfig(detection_delay_s=common.DETECTION_DELAY_S),
            )
            rows.append(
                [
                    f"{hold:g}s",
                    f"{stats.unavailable_s:.1f}",
                    f"{stats.average_cost_messages:.2f}",
                    stats.decision_changes,
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(common.banner(f"E8b: hold-down sweep (flow {flow.name})"))
    print(
        render_table(
            ("hold-down", "unavail s", "msgs/pkt", "graph switches"), rows
        )
    )
    print("  (longer hold-down: fewer switches, slightly higher cost)")


def test_e8c_targeted_breadth(benchmark):
    _events, timeline = ablation_trace()
    flow = common.flows()[0]

    def sweep():
        rows = []
        for limit in (1, 2, 3, None):
            stats = replay_flow(
                common.topology(),
                timeline,
                flow,
                common.service(),
                TargetedRedundancyPolicy(
                    max_entry_links=limit, max_exit_links=limit
                ),
                ReplayConfig(detection_delay_s=common.DETECTION_DELAY_S),
            )
            rows.append(
                [
                    "all" if limit is None else str(limit),
                    f"{stats.unavailable_s:.1f}",
                    f"{stats.average_cost_messages:.2f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(common.banner(f"E8c: problem-graph breadth (flow {flow.name})"))
    print(render_table(("entry/exit links", "unavail s", "msgs/pkt"), rows))
    print("  (more covered links: better delivery, modestly higher cost)")


def test_e8d_flooding_deadline(benchmark):
    topology = common.topology()
    flow = common.flows()[0]

    def sweep():
        rows = []
        for deadline in (30.0, 40.0, 50.0, 65.0, 80.0, 100.0, 130.0):
            graph = time_constrained_flooding_graph(
                topology, flow.source, flow.destination, deadline
            )
            rows.append([f"{deadline:g} ms", graph.num_edges])
        return rows

    rows = benchmark(sweep)
    print(common.banner(f"E8d: flooding edge set vs latency budget ({flow.name})"))
    print(render_table(("deadline", "edges (msgs/pkt)"), rows))
    print("  (the optimal scheme's cost grows steeply with the budget)")
