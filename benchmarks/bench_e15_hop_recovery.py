"""E15 -- Hop-by-hop recovery vs. redundancy.

The Spines line of work adds one link-level retransmission to the timely
service.  Does retransmission substitute for redundancy?  This bench
replays the trace with and without hop recovery:

* recovery squares every link's effective loss (p -> ~p^2 for deliveries,
  at ~3x the link latency for recovered copies), so *every* scheme
  improves;
* but a recovered copy must still fit the deadline, and a fully dead
  link stays dead -- so the scheme ordering, and targeted redundancy's
  advantage, survive.

Recovery and targeted redundancy compose: they attack different parts of
the loss distribution.
"""

from __future__ import annotations

import common

from repro.netmodel.scenarios import WEEK_S, Scenario, generate_timeline
from repro.simulation.interval import run_replay
from repro.simulation.results import ReplayConfig
from repro.util.tables import render_table

RECOVERY_WEEKS = 0.5
SCHEMES = (
    "dynamic-single",
    "static-two-disjoint",
    "dynamic-two-disjoint",
    "targeted",
    "flooding",
)


def test_e15_hop_recovery(benchmark):
    _events, timeline = generate_timeline(
        common.topology(),
        Scenario(duration_s=RECOVERY_WEEKS * WEEK_S),
        seed=common.BENCH_SEED,
    )

    def sweep():
        results = {}
        for recovery in (False, True):
            results[recovery] = run_replay(
                common.topology(),
                timeline,
                common.flows(),
                common.service(),
                scheme_names=SCHEMES,
                config=ReplayConfig(
                    detection_delay_s=common.DETECTION_DELAY_S,
                    hop_recovery=recovery,
                ),
            )
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for scheme in SCHEMES:
        plain = results[False].totals(scheme).unavailable_s
        recovered = results[True].totals(scheme).unavailable_s
        rows.append(
            [
                scheme,
                f"{plain:.1f}",
                f"{recovered:.1f}",
                f"{100 * (1 - recovered / plain):.0f}%" if plain else "-",
            ]
        )
    print(
        common.banner(
            f"E15: one hop-by-hop retransmission per link "
            f"({RECOVERY_WEEKS:g}-week trace)"
        )
    )
    print(
        render_table(
            ("scheme", "unavail s (plain)", "unavail s (recovery)", "removed"),
            rows,
        )
    )
    print(
        "  (recovery helps every scheme; the redundancy ordering -- and the\n"
        "   case for targeted graphs -- survives, and the two compose)\n"
        "  note: flooding's recovery number is a conservative bound --\n"
        "  windows with more simultaneously lossy links than the ternary\n"
        "  enumeration cap fall back to no-recovery accounting, which only\n"
        "  affects the largest (flooding) graphs"
    )
