"""E6 -- Delivery-latency distribution per scheme (claim C1).

Packet-level simulation of a window around a problem episode: the CDF of
one-way delivery latency per scheme, plus loss fractions.  The paper's
timeliness point: the overlay keeps delivered packets well inside the
65 ms one-way budget -- redundancy changes *whether* a packet arrives,
not how fast the surviving copy is.
"""

from __future__ import annotations

import common

from repro.analysis.casestudy import find_episode
from repro.analysis.cdf import cdf_at, latency_profile
from repro.routing.registry import STANDARD_SCHEME_NAMES, make_policy
from repro.simulation.packet_sim import simulate_packets
from repro.simulation.results import ReplayConfig

PROBE_POINTS_MS = (30.0, 40.0, 50.0, 65.0)


def test_e6_latency_cdf(benchmark):
    events, timeline = common.trace()
    found = find_episode(events, common.flows(), min_duration_s=60.0)
    assert found is not None
    event, flow = found
    window = (
        max(0.0, event.start_s - 30.0),
        min(timeline.duration_s, event.end_s + 30.0),
    )
    config = ReplayConfig(detection_delay_s=common.DETECTION_DELAY_S)

    def profiles():
        result = {}
        for name in STANDARD_SCHEME_NAMES:
            outcome = simulate_packets(
                common.topology(),
                timeline,
                flow,
                common.service(),
                make_policy(name),
                window[0],
                window[1],
                seed=common.BENCH_SEED,
                config=config,
            )
            result[name] = latency_profile(outcome)
        return result

    result = benchmark.pedantic(profiles, rounds=1, iterations=1)
    print(
        common.banner(
            f"E6: delivery-latency distribution, flow {flow.name}, window "
            f"around the {event.location} episode"
        )
    )
    header = (
        f"{'scheme':22s} {'lost%':>6s} {'p50':>7s} {'p99':>7s} {'p99.9':>7s}"
        + "".join(f"  <={int(p)}ms" for p in PROBE_POINTS_MS)
    )
    print(header)
    for name, profile in result.items():
        row = (
            f"{name:22s} {100 * profile.lost_fraction:6.2f} "
            f"{profile.p50_ms:7.2f} {profile.p99_ms:7.2f} {profile.p999_ms:7.2f}"
        )
        for point in PROBE_POINTS_MS:
            row += f"  {100 * cdf_at(profile, point):5.1f}%"
        print(row)
    print("(percentiles over delivered packets; <=Xms columns are CDF points)")
