"""E13 -- The redundancy spectrum: "just add another path" vs targeted.

The obvious alternative to targeted redundancy is a third (fourth, ...)
disjoint path.  This bench compares k = 1, 2, 3 disjoint paths against
targeted redundancy and flooding on the same trace: more paths help, but
(a) the topology rarely has three fully disjoint transcontinental paths
where they are needed, and (b) uniform redundancy pays its cost all the
time, while targeted redundancy concentrates spending on the problem.
"""

from __future__ import annotations

import common

from repro.analysis.metrics import gap_coverage
from repro.netmodel.scenarios import WEEK_S, Scenario, generate_timeline
from repro.simulation.interval import run_replay
from repro.simulation.results import ReplayConfig
from repro.util.tables import render_table

SPECTRUM_WEEKS = 1.0
SCHEMES = (
    "dynamic-single",
    "static-two-disjoint",
    "dynamic-two-disjoint",
    "static-three-disjoint",
    "dynamic-three-disjoint",
    "targeted",
    "flooding",
)


def test_e13_redundancy_spectrum(benchmark):
    _events, timeline = generate_timeline(
        common.topology(),
        Scenario(duration_s=SPECTRUM_WEEKS * WEEK_S),
        seed=common.BENCH_SEED,
    )

    def sweep():
        return run_replay(
            common.topology(),
            timeline,
            common.flows(),
            common.service(),
            scheme_names=SCHEMES,
            config=ReplayConfig(detection_delay_s=common.DETECTION_DELAY_S),
        )

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for scheme in SCHEMES:
        totals = result.totals(scheme)
        coverage = (
            "-"
            if scheme in ("dynamic-single", "flooding")
            else f"{100 * gap_coverage(result, scheme):.1f}"
        )
        rows.append(
            [
                scheme,
                f"{totals.unavailable_s:.1f}",
                coverage,
                f"{totals.average_cost_messages:.2f}",
            ]
        )
    print(
        common.banner(
            f"E13: redundancy spectrum ({SPECTRUM_WEEKS:g}-week trace)"
        )
    )
    print(render_table(("scheme", "unavail s", "gap cov %", "msgs/pkt"), rows))
    print(
        "  (targeted beats even three uniform disjoint paths at a fraction "
        "of their extra cost)"
    )
