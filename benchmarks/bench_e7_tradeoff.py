"""E7 -- The cost/benefit frontier.

One line per scheme: unavailability against message cost.  The paper's
pitch in one table: targeted redundancy sits at flooding-level
reliability at two-disjoint-level cost.
"""

from __future__ import annotations

import common

from repro.analysis.metrics import scheme_performance_rows
from repro.util.tables import render_table


def test_e7_tradeoff(benchmark):
    result = common.headline_replay()
    rows = benchmark(scheme_performance_rows, result)
    flooding = next(r for r in rows if r["scheme"] == "flooding")
    table_rows = []
    for row in rows:
        relative_unavailability = (
            row["unavailable_s"] / flooding["unavailable_s"]
            if flooding["unavailable_s"]
            else float("nan")
        )
        relative_cost = row["cost_messages"] / flooding["cost_messages"]
        table_rows.append(
            [
                row["scheme"],
                f"{row['unavailable_s']:.1f}",
                f"{relative_unavailability:.2f}x",
                f"{row['cost_messages']:.2f}",
                f"{100 * relative_cost:.0f}%",
            ]
        )
    print(common.banner("E7: reliability/cost frontier (flooding = reference)"))
    print(
        render_table(
            ("scheme", "unavail s", "vs optimal", "msgs/pkt", "cost vs flood"),
            table_rows,
        )
    )
