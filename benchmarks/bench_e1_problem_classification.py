"""E1 -- Problem classification (paper's network-data analysis, claim C3).

Regenerates two tables:

1. the distribution of potential problems per flow perspective, and
2. the *unavailability attribution* of two disjoint paths: among the time
   the paper's baseline redundant scheme fails, which problem type was
   active.  The paper's finding: failures concentrate around sources and
   destinations.
"""

from __future__ import annotations

from collections import Counter

import common

from repro.analysis.classify import (
    attribute_unavailability,
    classification_distribution,
    classify_events_for_flows,
)
from repro.analysis.reporting import format_classification_table
from repro.simulation.interval import run_replay
from repro.simulation.results import ReplayConfig


def classify():
    events, _timeline = common.trace()
    return classify_events_for_flows(
        common.topology(), common.flows(), events, common.service().deadline_ms
    )


def test_e1_event_classification(benchmark):
    problems = benchmark(classify)
    counts = Counter(problem.category for problem in problems)
    print(common.banner("E1a: potential problems per flow perspective"))
    print(
        format_classification_table(
            classification_distribution(problems), counts
        )
    )


def test_e1_unavailability_attribution(benchmark):
    events, timeline = common.trace()

    def attribute():
        result = run_replay(
            common.topology(),
            timeline,
            common.flows(),
            common.service(),
            scheme_names=("static-two-disjoint",),
            config=ReplayConfig(
                detection_delay_s=common.DETECTION_DELAY_S, collect_windows=True
            ),
        )
        return attribute_unavailability(common.topology(), timeline, result)

    attribution = benchmark.pedantic(attribute, rounds=1, iterations=1)
    total = sum(attribution.values())
    print(common.banner("E1b: two-disjoint unavailability by problem location"))
    for category in ("destination", "source", "source+destination", "middle", "none"):
        seconds = attribution[category]
        share = 100 * seconds / total if total else 0.0
        print(f"  {category:20s} {seconds:10.1f} s   {share:5.1f}%")
    endpoint = total - attribution["middle"] - attribution["none"]
    print(
        f"  => {100 * endpoint / total:.1f}% of two-disjoint failures involve "
        "a source/destination problem (paper: 'typically')"
    )
