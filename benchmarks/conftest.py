"""Benchmark suite configuration.

Each bench regenerates one of the paper's tables/figures and prints it, so
``pytest benchmarks/ --benchmark-only -s`` reproduces the evaluation
section end to end.  The printed output is the artifact; the timing
numbers additionally document the cost of each pipeline stage.

Every bench test also leaves a machine-readable ``BENCH_<exp>.json``
(run manifest + staged headline metrics) in ``$REPRO_BENCH_OUT``
(default ``bench-out``) -- see ``common.flush_bench_json``.
"""

import sys
from pathlib import Path

import pytest

# Make `import common` work regardless of invocation directory.
sys.path.insert(0, str(Path(__file__).parent))


@pytest.fixture(autouse=True)
def _bench_artifact(request):
    """Write ``BENCH_<exp>.json`` after every bench test, pass or fail."""
    import common

    common.begin_bench()
    yield
    exp = request.node.module.__name__.removeprefix("bench_")
    common.stage_metrics(test=request.node.name)
    common.flush_bench_json(exp)


def pytest_sessionfinish(session, exitstatus):
    """Print the execution engine's aggregate telemetry for the session."""
    try:
        from repro.exec.telemetry import session_summary
    except ImportError:  # repro not importable: nothing ran through the engine
        return
    summary = session_summary()
    if summary:
        print("\n" + summary)
