"""Benchmark suite configuration.

Each bench regenerates one of the paper's tables/figures and prints it, so
``pytest benchmarks/ --benchmark-only -s`` reproduces the evaluation
section end to end.  The printed output is the artifact; the timing
numbers additionally document the cost of each pipeline stage.
"""

import sys
from pathlib import Path

# Make `import common` work regardless of invocation directory.
sys.path.insert(0, str(Path(__file__).parent))
