"""Benchmark suite configuration.

Each bench regenerates one of the paper's tables/figures and prints it, so
``pytest benchmarks/ --benchmark-only -s`` reproduces the evaluation
section end to end.  The printed output is the artifact; the timing
numbers additionally document the cost of each pipeline stage.
"""

import sys
from pathlib import Path

# Make `import common` work regardless of invocation directory.
sys.path.insert(0, str(Path(__file__).parent))


def pytest_sessionfinish(session, exitstatus):
    """Print the execution engine's aggregate telemetry for the session."""
    try:
        from repro.exec.telemetry import session_summary
    except ImportError:  # repro not importable: nothing ran through the engine
        return
    summary = session_summary()
    if summary:
        print("\n" + summary)
