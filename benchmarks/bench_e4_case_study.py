"""E4 -- Case-study timeline: one destination problem, packet by packet.

The paper illustrates its approach with a delivery timeline around a real
destination problem.  This bench finds a destination-problem episode in
the benchmark trace, replays every packet around it under each scheme
(packet-level engine, common random numbers), and prints the per-window
on-time delivery series.
"""

from __future__ import annotations

import common

from repro.analysis.casestudy import bucketed_delivery, find_episode, run_case_study
from repro.routing.registry import STANDARD_SCHEME_NAMES
from repro.simulation.results import ReplayConfig


def test_e4_case_study(benchmark):
    events, timeline = common.trace()
    found = find_episode(events, common.flows(), min_duration_s=90.0)
    assert found is not None, "benchmark trace contains no destination episode"
    event, flow = found

    def study():
        return run_case_study(
            common.topology(),
            timeline,
            flow,
            event,
            common.service(),
            scheme_names=STANDARD_SCHEME_NAMES,
            config=ReplayConfig(detection_delay_s=common.DETECTION_DELAY_S),
            seed=common.BENCH_SEED,
        )

    result = benchmark.pedantic(study, rounds=1, iterations=1)
    print(
        common.banner(
            f"E4: destination problem at {event.location} "
            f"(t={event.start_s:.0f}s, {event.duration_s:.0f}s), flow {flow.name}"
        )
    )
    series = {
        name: dict(bucketed_delivery(outcome, bucket_s=10.0))
        for name, outcome in result.outcomes.items()
    }
    buckets = sorted(next(iter(series.values())).keys())
    print("t(s)     " + "  ".join(f"{name[:12]:>12s}" for name in series))
    for bucket in buckets:
        active = event.start_s <= bucket < event.end_s
        marker = "*" if active else " "
        row = f"{bucket:7.0f}{marker} " + "  ".join(
            f"{series[name].get(bucket, float('nan')):12.3f}" for name in series
        )
        print(row)
    print("(* = episode active; 1.000 = every packet on time)")
    print("\nwhole-window totals:")
    for name, outcome in result.outcomes.items():
        print(
            f"  {name:22s} on-time {outcome.delivered_on_time:5d}/{outcome.packets}"
            f"  lost {outcome.lost:4d}  late {outcome.late:3d}"
            f"  msgs/pkt {outcome.total_messages / outcome.packets:5.2f}"
        )
