"""E17 -- Robustness across condition regimes.

The calibrated default scenario reproduces the paper's numbers; this
bench reruns the comparison under deliberately different regimes
(calm / stormy / endpoint-heavy / middle-heavy) to show which parts of
the result are regime-dependent and which are not:

* the *ordering* (single < two disjoint < targeted <= flooding) holds in
  every regime;
* targeted's near-optimal coverage holds wherever endpoint problems
  exist at all;
* in the middle-heavy regime two disjoint paths are already
  near-optimal -- exactly the paper's point about *where* extra
  redundancy pays.
"""

from __future__ import annotations

import common

from repro.analysis.metrics import gap_coverage
from repro.netmodel.presets import preset_scenario
from repro.netmodel.scenarios import WEEK_S, generate_timeline
from repro.simulation.interval import run_replay
from repro.simulation.results import ReplayConfig
from repro.util.tables import render_table

REGIME_WEEKS = 0.5
PRESETS = ("calm", "default", "stormy", "endpoint-heavy", "middle-heavy")
SCHEMES = (
    "dynamic-single",
    "static-two-disjoint",
    "dynamic-two-disjoint",
    "targeted",
    "flooding",
)


def test_e17_scenario_regimes(benchmark):
    def sweep():
        rows = []
        for preset in PRESETS:
            scenario = preset_scenario(preset, duration_s=REGIME_WEEKS * WEEK_S)
            _events, timeline = generate_timeline(
                common.topology(), scenario, seed=common.BENCH_SEED
            )
            result = run_replay(
                common.topology(),
                timeline,
                common.flows(),
                common.service(),
                scheme_names=SCHEMES,
                config=ReplayConfig(detection_delay_s=common.DETECTION_DELAY_S),
            )
            gap = (
                result.totals("dynamic-single").unavailable_s
                - result.totals("flooding").unavailable_s
            )
            if gap <= 0:
                rows.append([preset, "-", "-", "-", "(trace too quiet)"])
                continue
            rows.append(
                [
                    preset,
                    f"{100 * gap_coverage(result, 'static-two-disjoint'):.1f}",
                    f"{100 * gap_coverage(result, 'dynamic-two-disjoint'):.1f}",
                    f"{100 * gap_coverage(result, 'targeted'):.1f}",
                    f"{100 * result.totals('targeted').availability:.4f}%",
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(
        common.banner(
            f"E17: gap coverage across condition regimes "
            f"({REGIME_WEEKS:g}-week traces)"
        )
    )
    print(
        render_table(
            ("regime", "static-2 %", "dynamic-2 %", "targeted %", "targeted avail"),
            rows,
        )
    )
    print(
        "  (ordering holds everywhere; in middle-heavy regimes two paths\n"
        "   are already near-optimal -- redundancy pays at endpoints)"
    )
