"""E14 -- Where does each scheme still fail?

For every scheme, the residual unavailable seconds attributed to the
problem type active at the time.  This is the paper's mechanism made
visible: single-path schemes bleed everywhere; two disjoint paths are
already clean in the middle but keep bleeding at endpoints; targeted
redundancy removes most of the endpoint bleeding; flooding's residue is
the irreducible part (every relevant link dead at once).
"""

from __future__ import annotations

import common

from repro.analysis.classify import attribution_matrix
from repro.analysis.reporting import format_attribution_matrix
from repro.netmodel.scenarios import WEEK_S, Scenario, generate_timeline
from repro.simulation.interval import run_replay
from repro.simulation.results import ReplayConfig

MATRIX_WEEKS = 1.0
SCHEMES = (
    "static-single",
    "dynamic-single",
    "static-two-disjoint",
    "dynamic-two-disjoint",
    "targeted",
    "flooding",
)


def test_e14_benefit_by_category(benchmark):
    _events, timeline = generate_timeline(
        common.topology(),
        Scenario(duration_s=MATRIX_WEEKS * WEEK_S),
        seed=common.BENCH_SEED,
    )

    def build_matrix():
        result = run_replay(
            common.topology(),
            timeline,
            common.flows(),
            common.service(),
            scheme_names=SCHEMES,
            config=ReplayConfig(
                detection_delay_s=common.DETECTION_DELAY_S, collect_windows=True
            ),
        )
        return attribution_matrix(common.topology(), timeline, result, SCHEMES)

    matrix = benchmark.pedantic(build_matrix, rounds=1, iterations=1)
    print(
        common.banner(
            f"E14: residual unavailability by problem location "
            f"({MATRIX_WEEKS:g}-week trace)"
        )
    )
    print(format_attribution_matrix(matrix))
    two_disjoint_endpoint = (
        matrix["static-two-disjoint"]["destination"]
        + matrix["static-two-disjoint"]["source"]
        + matrix["static-two-disjoint"]["source+destination"]
    )
    targeted_endpoint = (
        matrix["targeted"]["destination"]
        + matrix["targeted"]["source"]
        + matrix["targeted"]["source+destination"]
    )
    print(
        f"\n  endpoint-problem unavailability: two-disjoint "
        f"{two_disjoint_endpoint:.0f}s -> targeted {targeted_endpoint:.0f}s "
        f"({100 * (1 - targeted_endpoint / two_disjoint_endpoint):.0f}% removed)"
    )
