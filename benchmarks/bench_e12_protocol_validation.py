"""E12 -- Protocol-level cross-validation.

Two checks that the *deployable system* delivers what the analysis
promises:

a. the full protocol stack (daemons, monitoring, link-state, forwarding)
   reproduces the scheme ordering on a controlled destination problem;
b. a trace *measured by the overlay's own monitoring* (the paper's data
   pipeline), replayed through the analytic engine, yields conclusions
   consistent with replaying the ground truth.
"""

from __future__ import annotations

import common

from repro.netmodel.conditions import ConditionTimeline, Contribution, LinkState
from repro.netmodel.topology import FlowSpec
from repro.overlay.collect import collect_measured_trace
from repro.overlay.runner import run_protocol_evaluation
from repro.routing.registry import make_policy
from repro.simulation.interval import replay_flow
from repro.util.tables import render_table

FLOW = FlowSpec("NYC", "SJC")
RUN_S = 150.0
EPISODE = (30.0, 120.0)


def destination_problem(topology):
    return [
        Contribution(edge, EPISODE[0], EPISODE[1], LinkState(loss_rate=0.6))
        for edge in topology.adjacent_edges("SJC")
    ]


def test_e12a_protocol_stack_ordering(benchmark):
    topology = common.topology()
    timeline = ConditionTimeline(topology, RUN_S, destination_problem(topology))

    def run():
        return run_protocol_evaluation(
            topology,
            timeline,
            [FLOW],
            common.service(),
            scheme_names=(
                "static-single",
                "static-two-disjoint",
                "targeted",
                "flooding",
            ),
            duration_s=RUN_S - 10.0,
            seed=common.BENCH_SEED,
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [
            scheme,
            outcome.sent,
            f"{100 * outcome.on_time_fraction:.2f}%",
            f"{outcome.data_messages_per_packet:.2f}",
            outcome.graph_switches,
        ]
        for scheme, outcome in results.items()
    ]
    print(common.banner("E12a: full protocol stack, destination problem at SJC"))
    print(
        render_table(
            ("scheme", "packets", "on-time", "msgs/pkt", "switches"), rows
        )
    )
    ordering = [results[s].on_time_fraction for s in (
        "static-single", "static-two-disjoint", "targeted"
    )]
    assert ordering == sorted(ordering), "protocol stack broke the scheme ordering"


def test_e12b_measured_trace_replay(benchmark):
    topology = common.topology()
    truth = ConditionTimeline(topology, RUN_S, destination_problem(topology))

    def collect_and_replay():
        measured, _samples = collect_measured_trace(
            topology, truth, seed=common.BENCH_SEED
        )
        rows = []
        for timeline, label in ((truth, "ground truth"), (measured, "measured")):
            stats = replay_flow(
                topology,
                timeline,
                FLOW,
                common.service(),
                make_policy("static-two-disjoint"),
            )
            rows.append([label, f"{stats.unavailable_s:.1f}"])
        return rows

    rows = benchmark.pedantic(collect_and_replay, rounds=1, iterations=1)
    print(common.banner("E12b: replaying overlay-measured vs ground-truth trace"))
    print(render_table(("trace", "two-disjoint unavail s"), rows))
    truth_unavailable = float(rows[0][1])
    measured_unavailable = float(rows[1][1])
    assert measured_unavailable > 0.4 * truth_unavailable
    assert measured_unavailable < 2.5 * truth_unavailable
