"""E9 -- Micro-benchmarks of the routing algorithms.

Not a paper artifact; documents that every graph computation is far below
the routing daemon's decision cadence (sub-millisecond on a 12-node
overlay), which is what makes precomputation plus dynamic recomputation
practical.
"""

from __future__ import annotations

import common

from repro.core.algorithms import adjacency_from_topology, disjoint_paths, shortest_path
from repro.core.builders import (
    destination_problem_graph,
    time_constrained_flooding_graph,
    two_disjoint_paths_graph,
)
from repro.core.encoding import decode_graph, encode_graph


def test_e9_shortest_path(benchmark):
    adjacency = adjacency_from_topology(common.topology())
    result = benchmark(shortest_path, adjacency, "NYC", "SJC")
    assert result[0][0] == "NYC"


def test_e9_two_disjoint_paths(benchmark):
    adjacency = adjacency_from_topology(common.topology())
    result = benchmark(disjoint_paths, adjacency, "NYC", "SJC", 2)
    assert len(result) == 2


def test_e9_two_disjoint_graph_builder(benchmark):
    graph = benchmark(
        two_disjoint_paths_graph, common.topology(), "NYC", "SJC"
    )
    assert graph.connects()


def test_e9_flooding_builder(benchmark):
    graph = benchmark(
        time_constrained_flooding_graph, common.topology(), "NYC", "SJC", 65.0
    )
    assert graph.num_edges > 20


def test_e9_destination_problem_builder(benchmark):
    graph = benchmark(
        destination_problem_graph,
        common.topology(),
        "NYC",
        "SJC",
        None,
        65.0,
    )
    assert graph.connects()


def test_e9_graph_encoding_round_trip(benchmark):
    topology = common.topology()
    graph = time_constrained_flooding_graph(topology, "NYC", "SJC", 65.0)

    def round_trip():
        return decode_graph(topology, encode_graph(topology, graph))

    decoded = benchmark(round_trip)
    assert decoded.edges == graph.edges
