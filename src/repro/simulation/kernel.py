"""Probability-accumulation kernel: pure-Python and numpy backends.

The exact reliability engines (:mod:`repro.simulation.reliability`)
split every computation into a loss-value-independent *classification*
(which enumeration cases deliver on time / at all -- one Dijkstra per
case) and a cheap *accumulation* (weight each case by the current loss
values and sum per outcome).  The classification is cached per canonical
graph; the accumulation runs once per distinct loss vector and is the
replay engine's arithmetic inner loop.  This module owns that inner
loop and selects between two interchangeable implementations:

* ``pure`` -- the historical per-mask Python loop, kept bitwise-identical
  to the seed implementation (same multiply order, same summation order,
  same zero-probability skip).  Always available.
* ``numpy`` -- the same weights built as one outer-product cascade
  (``2^L`` binary masks, ``3^L`` ternary recovery states) and summed per
  outcome class with vectorized reductions.  Selected automatically when
  :mod:`numpy` is importable (``pip install repro[fast]``); per-value
  results agree with ``pure`` up to floating-point *reassociation* only
  (identical multiplications, different summation tree), which is the
  documented tolerance contract (DESIGN.md S25).

Backend choice is process-wide and sticky: ``$REPRO_KERNEL`` (``auto`` /
``numpy`` / ``pure``) or :func:`set_backend` pin it, otherwise ``auto``
resolves to ``numpy`` when importable.  Two determinism rules keep the
engine's exact-merge contracts intact regardless of call shape:

* the vector path only engages for classifications with at least
  :data:`VECTOR_MIN_CASES` enumeration cases -- a property of the
  *classification*, never of the batch size -- so a given
  ``(classification, losses)`` pair always takes the same code path and
  yields the same bits whether it is computed alone, inside a batch, in
  a pool worker, or in a time shard;
* a batched row is computed with row-independent array operations, so
  ``batch(rows)[i]`` is bitwise-equal to the single-row vector call on
  ``rows[i]``.

Per-backend call/row/time counters feed exec telemetry and the
``replay.kernel.*`` observability metrics.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Iterator, Sequence

__all__ = [
    "KERNEL_ENV",
    "VECTOR_MIN_CASES",
    "active_backend",
    "counters",
    "counters_delta",
    "describe",
    "force_backend",
    "mask_totals",
    "mask_totals_batch",
    "numpy_available",
    "recovery_totals",
    "recovery_totals_batch",
    "set_backend",
]

#: Backend override: ``auto`` (default), ``numpy``, or ``pure``.
KERNEL_ENV = "REPRO_KERNEL"

#: Minimum number of enumeration cases (``len(classes)``) before the
#: vector backend engages.  Below this the per-call numpy overhead
#: exceeds the loop it replaces; above it the outer-product cascade wins
#: by orders of magnitude.  The threshold depends only on the
#: classification, never on how many rows ride in one call, so every
#: ``(classification, losses)`` pair is deterministic across call shapes
#: (see module docstring).
VECTOR_MIN_CASES = 64

#: Outcome codes, mirrored from :mod:`repro.simulation.reliability`
#: (redeclared here to keep this module import-light and cycle-free).
_MASK_LOST = 0
_MASK_LATE = 1
_MASK_ON_TIME = 2

_BACKENDS = ("auto", "numpy", "pure")


def numpy_available() -> bool:
    """True when the numpy vector backend can be imported."""
    return _numpy() is not None


_NUMPY_UNSET: object = object()
_numpy_module: object = _NUMPY_UNSET


def _numpy():
    """The :mod:`numpy` module, or ``None`` (cached after first probe)."""
    global _numpy_module
    if _numpy_module is _NUMPY_UNSET:
        try:
            import numpy
        except ImportError:
            numpy = None
        _numpy_module = numpy
    return _numpy_module


_backend_override: str | None = None


def set_backend(name: str) -> str:
    """Pin the backend for this process (and, via the env, pool workers).

    ``auto`` restores the default selection.  Returns the *resolved*
    backend.  Raises ``ValueError`` for unknown names or for ``numpy``
    when numpy is not importable, so a forced vector run fails loudly
    instead of silently degrading.
    """
    global _backend_override
    if name not in _BACKENDS:
        raise ValueError(
            f"unknown kernel backend {name!r} (choose from "
            f"{', '.join(_BACKENDS)})"
        )
    if name == "numpy" and not numpy_available():
        raise ValueError(
            "kernel backend 'numpy' requested but numpy is not importable "
            "(pip install repro[fast])"
        )
    _backend_override = None if name == "auto" else name
    # Export the choice so ProcessPoolExecutor workers -- fresh
    # interpreters under the spawn start method -- resolve identically.
    os.environ[KERNEL_ENV] = name
    return active_backend()


def active_backend() -> str:
    """The backend accumulate calls resolve to: ``numpy`` or ``pure``."""
    if _backend_override is not None:
        return _backend_override
    env = os.environ.get(KERNEL_ENV, "auto")
    if env == "pure":
        return "pure"
    if env == "numpy":
        if not numpy_available():
            raise ValueError(
                f"{KERNEL_ENV}=numpy but numpy is not importable "
                "(pip install repro[fast])"
            )
        return "numpy"
    return "numpy" if numpy_available() else "pure"


@contextmanager
def force_backend(name: str) -> Iterator[str]:
    """Temporarily pin the backend (tests and dual-path benchmarks)."""
    global _backend_override
    previous_override = _backend_override
    previous_env = os.environ.get(KERNEL_ENV)
    try:
        yield set_backend(name)
    finally:
        _backend_override = previous_override
        if previous_env is None:
            os.environ.pop(KERNEL_ENV, None)
        else:
            os.environ[KERNEL_ENV] = previous_env


def describe() -> dict[str, object]:
    """Identity of the kernel in force (manifests, serve, bench JSON)."""
    return {
        "backend": active_backend(),
        "numpy_available": numpy_available(),
        "vector_min_cases": VECTOR_MIN_CASES,
    }


# -- counters ----------------------------------------------------------------------

_counter_lock = threading.Lock()
_counters = {
    "vector_calls": 0,
    "pure_calls": 0,
    "vector_rows": 0,
    "pure_rows": 0,
    "vector_s": 0.0,
    "pure_s": 0.0,
}


def counters() -> dict[str, float]:
    """Snapshot of per-backend call/row/time counters (process-wide)."""
    with _counter_lock:
        return dict(_counters)


def counters_delta(
    before: dict[str, float], after: dict[str, float]
) -> dict[str, float]:
    """``after - before``, key by key (telemetry fold helper)."""
    return {name: after[name] - before[name] for name in after}


def _charge(backend: str, rows: int, elapsed: float) -> None:
    with _counter_lock:
        _counters[f"{backend}_calls"] += 1
        _counters[f"{backend}_rows"] += rows
        _counters[f"{backend}_s"] += elapsed


# -- binary (2^L) mask accumulation ------------------------------------------------


def _mask_totals_pure(
    classes: bytes, losses: Sequence[float]
) -> tuple[float, float]:
    """The historical fused accumulation loop, bit for bit.

    Multiply order (bit 0 first), mask order, the zero-probability skip
    and the interleaved on-time/eventually additions all match the seed
    implementation -- this is the bitwise reference the numpy path is
    measured against.
    """
    on_time_total = 0.0
    eventually_total = 0.0
    for mask in range(len(classes)):
        probability = 1.0
        for bit, loss in enumerate(losses):
            if mask >> bit & 1:
                probability *= 1.0 - loss
            else:
                probability *= loss
        if probability == 0.0:
            continue
        outcome = classes[mask]
        if outcome == _MASK_ON_TIME:
            on_time_total += probability
            eventually_total += probability
        elif outcome == _MASK_LATE:
            eventually_total += probability
    return on_time_total, eventually_total


def _mask_weights_vector(np, losses_rows):
    """``(rows, 2^L)`` per-mask weights via an outer-product cascade.

    Column ``m`` of row ``r`` is ``prod_b (1 - loss[r][b] if bit b of m
    else loss[r][b])`` -- the same factors in the same (bit-ascending)
    multiply order as the pure loop, built with row-independent array
    operations so batching does not change any row's bits.
    """
    rows = len(losses_rows)
    loss_matrix = np.asarray(losses_rows, dtype=np.float64).reshape(rows, -1)
    weights = np.ones((rows, 1), dtype=np.float64)
    for bit in range(loss_matrix.shape[1]):
        column = loss_matrix[:, bit : bit + 1]
        weights = np.concatenate(
            (weights * column, weights * (1.0 - column)), axis=1
        )
    return weights


def _class_sums_vector(np, classes: bytes, weights):
    """Per-row ``(on_time, eventually)`` from a ``(rows, cases)`` matrix.

    Shared by the single-row and batched entry points, so a single call
    is literally the one-row special case of a batch -- bitwise, not
    just numerically.  The column selection is forced C-contiguous
    before reducing: advanced indexing hands back an F-ordered copy for
    multi-row inputs, and summing that along axis 1 interleaves rows in
    the reduction order, shifting results by an ulp relative to the
    one-row call.  Contiguous rows reduce independently, keeping the
    batch contract bitwise.
    """
    codes = np.frombuffer(classes, dtype=np.uint8)
    on_columns = np.ascontiguousarray(weights[:, codes == _MASK_ON_TIME])
    late_columns = np.ascontiguousarray(weights[:, codes == _MASK_LATE])
    on_sums = on_columns.sum(axis=1)
    late_sums = late_columns.sum(axis=1)
    return [
        (float(on), float(on) + float(late))
        for on, late in zip(on_sums, late_sums)
    ]


def mask_totals(
    classes: bytes, losses: Sequence[float]
) -> tuple[float, float]:
    """Raw ``(on_time, eventually)`` sums for one loss vector.

    ``classes[m]`` is the outcome code of enumeration case ``m`` (bit
    ``b`` of ``m`` = lossy edge ``b`` survives).  Final clamping and the
    best-case hygiene zeroing stay with the caller
    (:func:`repro.simulation.reliability.accumulate_mask_probabilities`),
    so both backends feed the identical finalization.
    """
    started = time.perf_counter()
    if active_backend() == "numpy" and len(classes) >= VECTOR_MIN_CASES:
        np = _numpy()
        weights = _mask_weights_vector(np, [list(losses)])
        totals = _class_sums_vector(np, classes, weights)[0]
        _charge("vector", 1, time.perf_counter() - started)
        return totals
    totals = _mask_totals_pure(classes, losses)
    _charge("pure", 1, time.perf_counter() - started)
    return totals


def mask_totals_batch(
    classes: bytes, losses_rows: Sequence[Sequence[float]]
) -> list[tuple[float, float]]:
    """:func:`mask_totals` for many loss vectors of one classification.

    One vector call builds the whole ``(rows, 2^L)`` weight matrix, so a
    run of loss-only windows amortizes the per-call overhead; row ``i``
    of the result is bitwise-equal to ``mask_totals(classes, rows[i])``
    because every array operation is row-independent and the vector
    threshold depends only on ``len(classes)``.
    """
    if not losses_rows:
        return []
    started = time.perf_counter()
    if active_backend() == "numpy" and len(classes) >= VECTOR_MIN_CASES:
        np = _numpy()
        weights = _mask_weights_vector(np, losses_rows)
        totals = _class_sums_vector(np, classes, weights)
        _charge("vector", len(losses_rows), time.perf_counter() - started)
        return totals
    totals = [_mask_totals_pure(classes, row) for row in losses_rows]
    _charge("pure", len(losses_rows), time.perf_counter() - started)
    return totals


# -- ternary (3^L) recovery accumulation -------------------------------------------


def _recovery_totals_pure(
    classes: bytes, losses: Sequence[float]
) -> tuple[float, float]:
    """The historical ternary loop: state codes in base-3 digit order."""
    on_time_total = 0.0
    eventually_total = 0.0
    for code in range(len(classes)):
        probability = 1.0
        value = code
        for loss in losses:
            state = value % 3
            value //= 3
            if state == 0:
                probability *= 1.0 - loss
            elif state == 1:
                probability *= loss * (1.0 - loss)
            else:
                probability *= loss * loss
        if probability == 0.0:
            continue
        outcome = classes[code]
        if outcome == _MASK_ON_TIME:
            on_time_total += probability
            eventually_total += probability
        elif outcome == _MASK_LATE:
            eventually_total += probability
    return on_time_total, eventually_total


def _recovery_weights_vector(np, losses_rows):
    """``(rows, 3^L)`` per-state weights; digit ``p`` of a state code is
    lossy edge ``p``'s outcome (0 fast, 1 recovered, 2 dead)."""
    rows = len(losses_rows)
    loss_matrix = np.asarray(losses_rows, dtype=np.float64).reshape(rows, -1)
    weights = np.ones((rows, 1), dtype=np.float64)
    for position in range(loss_matrix.shape[1]):
        column = loss_matrix[:, position : position + 1]
        weights = np.concatenate(
            (
                weights * (1.0 - column),
                weights * (column * (1.0 - column)),
                weights * (column * column),
            ),
            axis=1,
        )
    return weights


def recovery_totals(
    classes: bytes, losses: Sequence[float]
) -> tuple[float, float]:
    """Raw ``(on_time, eventually)`` sums over ternary recovery states."""
    started = time.perf_counter()
    if active_backend() == "numpy" and len(classes) >= VECTOR_MIN_CASES:
        np = _numpy()
        weights = _recovery_weights_vector(np, [list(losses)])
        totals = _class_sums_vector(np, classes, weights)[0]
        _charge("vector", 1, time.perf_counter() - started)
        return totals
    totals = _recovery_totals_pure(classes, losses)
    _charge("pure", 1, time.perf_counter() - started)
    return totals


def recovery_totals_batch(
    classes: bytes, losses_rows: Sequence[Sequence[float]]
) -> list[tuple[float, float]]:
    """:func:`recovery_totals` for many loss vectors (one classification)."""
    if not losses_rows:
        return []
    started = time.perf_counter()
    if active_backend() == "numpy" and len(classes) >= VECTOR_MIN_CASES:
        np = _numpy()
        weights = _recovery_weights_vector(np, losses_rows)
        totals = _class_sums_vector(np, classes, weights)
        _charge("vector", len(losses_rows), time.perf_counter() - started)
        return totals
    totals = [_recovery_totals_pure(classes, row) for row in losses_rows]
    _charge("pure", len(losses_rows), time.perf_counter() - started)
    return totals
