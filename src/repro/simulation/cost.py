"""Cost accounting across schemes (experiment E3).

Cost is measured as the paper does: messages sent per packet, i.e. the
number of edges of the installed dissemination graph, time-averaged over
the replay.  The targeted scheme's headline property (claim C6) is that
its *average* cost stays within a couple of percent of two disjoint paths,
because the expensive problem graphs are installed only during the rare
problem intervals.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulation.results import ReplayResult
from repro.util.validation import require

__all__ = ["SchemeCost", "cost_comparison"]


@dataclass(frozen=True)
class SchemeCost:
    """One scheme's message cost, absolute and relative to a baseline."""

    scheme: str
    average_messages_per_packet: float
    overhead_vs_baseline: float  # e.g. 0.02 == +2% over the baseline

    @property
    def overhead_percent(self) -> float:
        """Overhead as a percentage (+2.0 == two percent more)."""
        return 100.0 * self.overhead_vs_baseline


def cost_comparison(
    result: ReplayResult, baseline_scheme: str = "static-two-disjoint"
) -> list[SchemeCost]:
    """Per-scheme average cost, with overhead relative to ``baseline_scheme``."""
    require(
        baseline_scheme in result.schemes,
        f"baseline scheme {baseline_scheme!r} not in results",
    )
    baseline_cost = result.totals(baseline_scheme).average_cost_messages
    require(baseline_cost > 0, "baseline scheme has zero cost")
    comparison = []
    for scheme in result.schemes:
        average = result.totals(scheme).average_cost_messages
        comparison.append(
            SchemeCost(
                scheme=scheme,
                average_messages_per_packet=average,
                overhead_vs_baseline=(average - baseline_cost) / baseline_cost,
            )
        )
    return comparison
