"""Exact on-time delivery probability for a dissemination graph.

Within a constant-conditions window, each edge of a graph independently
delivers a given packet copy with probability ``1 - loss``.  The packet is
delivered on time iff the surviving subgraph contains a source->destination
path whose latency (current effective latencies) is within the deadline.

The computation conditions on the *uncertain* edges only: edges with zero
loss always survive, edges with 100% loss never do, and the remaining
``L`` lossy edges are enumerated (``2^L`` cases).  Real problem episodes
degrade a handful of links, so ``L`` stays small; a hard cap protects
against pathological inputs.

``delivery_probabilities`` returns both the on-time probability and the
delivered-eventually probability, which the result layer splits into
*lost* (never delivered) versus *late* (delivered past the deadline).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.core.dgraph import DisseminationGraph
from repro.core.graph import Edge, NodeId
from repro.util.validation import require

__all__ = [
    "DeliveryProbabilities",
    "ReliabilityLimitError",
    "delivery_probabilities",
    "delivery_probabilities_with_recovery",
    "on_time_probability",
]

_INF = float("inf")

#: Maximum number of uncertain edges enumerated exactly.  2^20 subgraph
#: evaluations on a <50-edge graph is ~1s of CPU; anything beyond signals
#: a scenario far denser than real traces and is rejected loudly.
MAX_EXACT_LOSSY_EDGES = 20


class ReliabilityLimitError(RuntimeError):
    """Too many simultaneously lossy edges for exact enumeration."""


@dataclass(frozen=True)
class DeliveryProbabilities:
    """Per-packet delivery probabilities during one constant window."""

    on_time: float
    eventually: float

    def __post_init__(self) -> None:
        require(
            -1e-9 <= self.on_time <= self.eventually + 1e-9,
            f"inconsistent probabilities: on_time={self.on_time}, "
            f"eventually={self.eventually}",
        )

    @property
    def late(self) -> float:
        """Delivered, but past the deadline."""
        return max(0.0, self.eventually - self.on_time)

    @property
    def lost(self) -> float:
        """Never delivered at all."""
        return max(0.0, 1.0 - self.eventually)


def _earliest_arrival(
    source: NodeId,
    destination: NodeId,
    adjacency: Mapping[NodeId, dict[NodeId, float]],
    present: Mapping[Edge, bool],
) -> float:
    """Dijkstra over the edges marked present; returns arrival or inf."""
    best: dict[NodeId, float] = {source: 0.0}
    heap: list[tuple[float, NodeId]] = [(0.0, source)]
    while heap:
        time_now, node = heapq.heappop(heap)
        if node == destination:
            return time_now
        if time_now > best.get(node, _INF):
            continue
        for neighbor, latency in adjacency.get(node, {}).items():
            if not present[(node, neighbor)]:
                continue
            candidate = time_now + latency
            if candidate < best.get(neighbor, _INF):
                best[neighbor] = candidate
                heapq.heappush(heap, (candidate, neighbor))
    return best.get(destination, _INF)


def delivery_probabilities_with_recovery(
    graph: DisseminationGraph,
    deadline_ms: float,
    latency_of: Callable[[Edge], float],
    loss_of: Callable[[Edge], float],
    recovery_latency_of: Callable[[Edge], float],
    max_lossy_edges: int = 11,
) -> DeliveryProbabilities:
    """Delivery probabilities with one hop-by-hop retransmission per link.

    With link-level recovery each lossy edge has three outcomes instead
    of two: the copy arrives at the edge's normal latency with
    probability ``1 - p``; the first copy is lost but the retransmission
    arrives at ``recovery_latency_of(edge)`` with probability
    ``p * (1 - p)``; both are lost with probability ``p^2``.  The exact
    computation therefore enumerates ternary edge states (``3^L``), which
    is why the lossy-edge cap is lower than the plain engine's.

    ``recovery_latency_of`` should return the *total* latency of a
    recovered copy across the edge -- typically ack-timeout plus the
    retransmission's flight time, on the order of three link latencies.
    """
    require(deadline_ms > 0, f"deadline must be positive, got {deadline_ms}")
    adjacency: dict[NodeId, dict[NodeId, float]] = {}
    certain: dict[Edge, bool] = {}
    lossy: list[tuple[Edge, float]] = []
    for edge in graph.sorted_edges():
        loss = loss_of(edge)
        require(0.0 <= loss <= 1.0, f"loss out of range on {edge!r}: {loss}")
        adjacency.setdefault(edge[0], {})[edge[1]] = latency_of(edge)
        if loss <= 0.0:
            certain[edge] = True
        elif loss >= 1.0:
            # Even the retransmission is lost: permanently dead.
            certain[edge] = False
        else:
            certain[edge] = False
            lossy.append((edge, loss))
    if len(lossy) > max_lossy_edges:
        raise ReliabilityLimitError(
            f"{len(lossy)} lossy edges exceed the recovery-enumeration cap "
            f"({max_lossy_edges})"
        )
    source, destination = graph.source, graph.destination
    baseline = _earliest_arrival(source, destination, adjacency, certain)
    if baseline <= deadline_ms:
        return DeliveryProbabilities(on_time=1.0, eventually=1.0)
    if not lossy:
        eventually = 1.0 if baseline < _INF else 0.0
        return DeliveryProbabilities(on_time=0.0, eventually=eventually)

    on_time_total = 0.0
    eventually_total = 0.0
    count = len(lossy)
    present = dict(certain)
    slow_latency = {edge: recovery_latency_of(edge) for edge, _loss in lossy}
    base_latency = {edge: latency_of(edge) for edge, _loss in lossy}
    # Edge states: 0 = fast, 1 = recovered (slow), 2 = dead.
    total_states = 3**count
    for code in range(total_states):
        probability = 1.0
        value = code
        for edge, loss in lossy:
            state = value % 3
            value //= 3
            if state == 0:
                probability *= 1.0 - loss
                adjacency[edge[0]][edge[1]] = base_latency[edge]
                present[edge] = True
            elif state == 1:
                probability *= loss * (1.0 - loss)
                adjacency[edge[0]][edge[1]] = slow_latency[edge]
                present[edge] = True
            else:
                probability *= loss * loss
                present[edge] = False
        if probability == 0.0:
            continue
        arrival = _earliest_arrival(source, destination, adjacency, present)
        if arrival <= deadline_ms:
            on_time_total += probability
            eventually_total += probability
        elif arrival < _INF:
            eventually_total += probability
    # Restore base latencies for callers sharing the adjacency view.
    for edge, _loss in lossy:
        adjacency[edge[0]][edge[1]] = base_latency[edge]
    return DeliveryProbabilities(
        on_time=min(1.0, on_time_total), eventually=min(1.0, eventually_total)
    )


def delivery_probabilities(
    graph: DisseminationGraph,
    deadline_ms: float,
    latency_of: Callable[[Edge], float],
    loss_of: Callable[[Edge], float],
    max_lossy_edges: int = MAX_EXACT_LOSSY_EDGES,
) -> DeliveryProbabilities:
    """Exact delivery probabilities for one packet on ``graph``.

    ``latency_of`` / ``loss_of`` give each edge's current effective
    latency and loss rate.  Raises :class:`ReliabilityLimitError` when the
    graph contains more than ``max_lossy_edges`` edges with fractional
    loss.
    """
    require(deadline_ms > 0, f"deadline must be positive, got {deadline_ms}")
    adjacency: dict[NodeId, dict[NodeId, float]] = {}
    certain: dict[Edge, bool] = {}
    lossy: list[tuple[Edge, float]] = []
    for edge in graph.sorted_edges():
        loss = loss_of(edge)
        require(0.0 <= loss <= 1.0, f"loss out of range on {edge!r}: {loss}")
        latency = latency_of(edge)
        require(latency >= 0.0, f"negative latency on {edge!r}: {latency}")
        adjacency.setdefault(edge[0], {})[edge[1]] = latency
        if loss <= 0.0:
            certain[edge] = True
        elif loss >= 1.0:
            certain[edge] = False
        else:
            certain[edge] = False  # toggled during enumeration
            lossy.append((edge, loss))
    if len(lossy) > max_lossy_edges:
        raise ReliabilityLimitError(
            f"{len(lossy)} lossy edges exceed the exact-enumeration cap "
            f"({max_lossy_edges})"
        )

    source, destination = graph.source, graph.destination

    # Fast path: all certain edges surviving already decides both outcomes.
    baseline = _earliest_arrival(source, destination, adjacency, certain)
    if baseline <= deadline_ms:
        return DeliveryProbabilities(on_time=1.0, eventually=1.0)
    if not lossy:
        on_time = 1.0 if baseline <= deadline_ms else 0.0
        eventually = 1.0 if baseline < _INF else 0.0
        return DeliveryProbabilities(on_time=on_time, eventually=eventually)

    # Fast path the other way: even with every lossy edge surviving the
    # packet cannot arrive (e.g. deadline impossible) -- probability 0.
    present = dict(certain)
    for edge, _loss in lossy:
        present[edge] = True
    best_case = _earliest_arrival(source, destination, adjacency, present)
    best_on_time = best_case <= deadline_ms
    best_eventually = best_case < _INF
    if not best_eventually:
        return DeliveryProbabilities(on_time=0.0, eventually=0.0)

    on_time_total = 0.0
    eventually_total = 0.0
    count = len(lossy)
    for mask in range(1 << count):
        probability = 1.0
        for bit, (edge, loss) in enumerate(lossy):
            if mask >> bit & 1:
                present[edge] = True
                probability *= 1.0 - loss
            else:
                present[edge] = False
                probability *= loss
        if probability == 0.0:
            continue
        arrival = _earliest_arrival(source, destination, adjacency, present)
        if arrival <= deadline_ms:
            on_time_total += probability
            eventually_total += probability
        elif arrival < _INF:
            eventually_total += probability
    if not best_on_time:
        on_time_total = 0.0  # numerical hygiene: cannot exceed best case
    return DeliveryProbabilities(
        on_time=min(1.0, on_time_total), eventually=min(1.0, eventually_total)
    )


def on_time_probability(
    graph: DisseminationGraph,
    deadline_ms: float,
    latency_of: Callable[[Edge], float],
    loss_of: Callable[[Edge], float],
    max_lossy_edges: int = MAX_EXACT_LOSSY_EDGES,
) -> float:
    """Convenience wrapper returning only the on-time probability."""
    return delivery_probabilities(
        graph, deadline_ms, latency_of, loss_of, max_lossy_edges
    ).on_time
