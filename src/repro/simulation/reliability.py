"""Exact on-time delivery probability for a dissemination graph.

Within a constant-conditions window, each edge of a graph independently
delivers a given packet copy with probability ``1 - loss``.  The packet is
delivered on time iff the surviving subgraph contains a source->destination
path whose latency (current effective latencies) is within the deadline.

The computation conditions on the *uncertain* edges only: edges with zero
loss always survive, edges with 100% loss never do, and the remaining
``L`` lossy edges are enumerated (``2^L`` cases).  Real problem episodes
degrade a handful of links, so ``L`` stays small; a hard cap protects
against pathological inputs.

``delivery_probabilities`` returns both the on-time probability and the
delivered-eventually probability, which the result layer splits into
*lost* (never delivered) versus *late* (delivered past the deadline).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.dgraph import DisseminationGraph
from repro.core.graph import Edge, NodeId
from repro.simulation import kernel
from repro.util.validation import require

__all__ = [
    "DeliveryProbabilities",
    "MaskClassification",
    "RecoveryClassification",
    "ReliabilityLimitError",
    "accumulate_mask_probabilities",
    "accumulate_mask_probabilities_batch",
    "accumulate_recovery_probabilities",
    "accumulate_recovery_probabilities_batch",
    "classify_delivery_masks",
    "classify_recovery_states",
    "delivery_probabilities",
    "delivery_probabilities_with_recovery",
    "on_time_probability",
]

_INF = float("inf")

#: Maximum number of uncertain edges enumerated exactly.  2^20 subgraph
#: evaluations on a <50-edge graph is ~1s of CPU; anything beyond signals
#: a scenario far denser than real traces and is rejected loudly.
MAX_EXACT_LOSSY_EDGES = 20


class ReliabilityLimitError(RuntimeError):
    """Too many simultaneously lossy edges for exact enumeration."""


@dataclass(frozen=True)
class DeliveryProbabilities:
    """Per-packet delivery probabilities during one constant window."""

    on_time: float
    eventually: float

    def __post_init__(self) -> None:
        require(
            -1e-9 <= self.on_time <= self.eventually + 1e-9,
            f"inconsistent probabilities: on_time={self.on_time}, "
            f"eventually={self.eventually}",
        )

    @property
    def late(self) -> float:
        """Delivered, but past the deadline."""
        return max(0.0, self.eventually - self.on_time)

    @property
    def lost(self) -> float:
        """Never delivered at all."""
        return max(0.0, 1.0 - self.eventually)


#: Per-mask outcome codes in :attr:`MaskClassification.classes`.
_MASK_LOST = 0
_MASK_LATE = 1
_MASK_ON_TIME = 2


@dataclass(frozen=True)
class MaskClassification:
    """The loss-value-independent core of :func:`delivery_probabilities`.

    Which enumeration cases arrive on time / at all depends only on the
    graph structure, the effective latencies and *which* edges are lossy
    (or dead) -- never on the fractional loss values themselves, which
    only weight the cases.  Splitting the computation lets the replay
    engine reuse one classification across every window that differs
    only in loss rates (the dominant kind of condition change in real
    traces), skipping the entire ``2^L`` Dijkstra enumeration.

    ``certain`` short-circuits the fast paths whose outcome is decided
    regardless of the lossy edges' loss values; otherwise ``classes[m]``
    holds the outcome code of enumeration case ``m`` (bit ``b`` of ``m``
    = lossy edge ``lossy_slots[b]`` survives) and ``best_on_time``
    records whether the all-survive case met the deadline (the numerical
    hygiene cap of the accumulation).
    """

    certain: DeliveryProbabilities | None
    lossy_slots: tuple[int, ...] = ()
    classes: bytes = b""
    best_on_time: bool = False


def classify_delivery_masks(
    graph: DisseminationGraph,
    deadline_ms: float,
    latency_of: Callable[[Edge], float],
    loss_of: Callable[[Edge], float],
    max_lossy_edges: int = MAX_EXACT_LOSSY_EDGES,
) -> tuple[MaskClassification, list[float]]:
    """Classify every lossy-edge enumeration case of ``graph``.

    Returns the classification plus the loss values read for the lossy
    slots (in slot order), so :func:`accumulate_mask_probabilities` can
    finish the computation without consulting ``loss_of`` again.
    """
    require(deadline_ms > 0, f"deadline must be positive, got {deadline_ms}")
    edges, rank, adjacency = _index_graph(graph)
    latencies: list[float] = []
    present: list[bool] = []
    lossy_slots: list[int] = []
    losses: list[float] = []
    for slot, edge in enumerate(edges):
        loss = loss_of(edge)
        require(0.0 <= loss <= 1.0, f"loss out of range on {edge!r}: {loss}")
        latency = latency_of(edge)
        require(latency >= 0.0, f"negative latency on {edge!r}: {latency}")
        latencies.append(latency)
        # Certain edges: zero loss always survives, total loss never does;
        # fractional-loss slots are toggled during enumeration.
        present.append(loss <= 0.0)
        if 0.0 < loss < 1.0:
            lossy_slots.append(slot)
            losses.append(loss)
    if len(lossy_slots) > max_lossy_edges:
        raise ReliabilityLimitError(
            f"{len(lossy_slots)} lossy edges exceed the exact-enumeration cap "
            f"({max_lossy_edges})"
        )

    source, destination = rank[graph.source], rank[graph.destination]

    # Fast path: all certain edges surviving already decides both outcomes.
    baseline = _earliest_arrival_indexed(
        source, destination, adjacency, latencies, present
    )
    if baseline <= deadline_ms:
        certain = DeliveryProbabilities(on_time=1.0, eventually=1.0)
        return MaskClassification(certain=certain), losses
    if not lossy_slots:
        # Past the fast-path return above, ``baseline > deadline_ms``
        # always holds: the certain subgraph delivers late or never.
        eventually = 1.0 if baseline < _INF else 0.0
        certain = DeliveryProbabilities(on_time=0.0, eventually=eventually)
        return MaskClassification(certain=certain), losses

    # Fast path the other way: even with every lossy edge surviving the
    # packet cannot arrive (e.g. deadline impossible) -- probability 0.
    for slot in lossy_slots:
        present[slot] = True
    best_case = _earliest_arrival_indexed(
        source, destination, adjacency, latencies, present
    )
    if not best_case < _INF:
        certain = DeliveryProbabilities(on_time=0.0, eventually=0.0)
        return MaskClassification(certain=certain), losses
    best_on_time = best_case <= deadline_ms

    count = len(lossy_slots)
    classes = bytearray(1 << count)
    for mask in range(1 << count):
        for bit, slot in enumerate(lossy_slots):
            present[slot] = bool(mask >> bit & 1)
        arrival = _earliest_arrival_indexed(
            source, destination, adjacency, latencies, present
        )
        if arrival <= deadline_ms:
            classes[mask] = _MASK_ON_TIME
        elif arrival < _INF:
            classes[mask] = _MASK_LATE
    classification = MaskClassification(
        certain=None,
        lossy_slots=tuple(lossy_slots),
        classes=bytes(classes),
        best_on_time=best_on_time,
    )
    return classification, losses


def _finalize_mask_totals(
    classification: MaskClassification, totals: tuple[float, float]
) -> DeliveryProbabilities:
    """Shared finalization: best-case hygiene zeroing plus the clamps."""
    on_time_total, eventually_total = totals
    if not classification.best_on_time:
        on_time_total = 0.0  # numerical hygiene: cannot exceed best case
    return DeliveryProbabilities(
        on_time=min(1.0, on_time_total), eventually=min(1.0, eventually_total)
    )


def accumulate_mask_probabilities(
    classification: MaskClassification, losses: list[float]
) -> DeliveryProbabilities:
    """Weight a classification by the lossy edges' current loss values.

    ``losses`` aligns with ``classification.lossy_slots``.  The
    arithmetic runs on the active :mod:`repro.simulation.kernel`
    backend: the pure path performs the identical float-operation
    sequence as the historical fused loop (same per-mask multiply order,
    same mask order, same final clamps), so reusing a cached
    classification is bitwise-exact; the numpy path agrees up to
    summation reassociation (see the kernel module docstring).
    """
    if classification.certain is not None:
        return classification.certain
    return _finalize_mask_totals(
        classification, kernel.mask_totals(classification.classes, losses)
    )


def accumulate_mask_probabilities_batch(
    classification: MaskClassification, losses_rows: Sequence[Sequence[float]]
) -> list[DeliveryProbabilities]:
    """One accumulation call for many loss vectors of one classification.

    The replay engine feeds whole runs of loss-only windows through this
    entry point so the vector backend builds a single weight matrix for
    the run; row ``i`` equals ``accumulate_mask_probabilities(c,
    rows[i])`` bitwise on either backend (the kernel's batch contract).
    """
    if classification.certain is not None:
        return [classification.certain] * len(losses_rows)
    return [
        _finalize_mask_totals(classification, totals)
        for totals in kernel.mask_totals_batch(
            classification.classes, losses_rows
        )
    ]


def _index_graph(
    graph: DisseminationGraph,
) -> tuple[tuple[Edge, ...], dict[NodeId, int], list[list[tuple[int, int]]]]:
    """Compile a graph to rank-indexed adjacency lists for the enumeration.

    Nodes are relabeled to their rank in sorted-name order; edges keep
    their :meth:`DisseminationGraph.sorted_edges` position as a *slot*
    into parallel latency/presence arrays.  Because the relabeling is
    monotone in node-name order, the enumeration below performs the very
    same float operations in the very same order as the historical
    name-keyed dictionaries did (edge iteration order and Dijkstra heap
    tie-breaks both follow the sort order) -- only the interpreter-level
    cost of hashing strings is gone.  This is the replay engine's single
    hottest code path.
    """
    edges = graph.sorted_edges()
    rank = {node: position for position, node in enumerate(sorted(graph.nodes))}
    adjacency: list[list[tuple[int, int]]] = [[] for _ in rank]
    for slot, (u, v) in enumerate(edges):
        adjacency[rank[u]].append((rank[v], slot))
    return edges, rank, adjacency


def _earliest_arrival_indexed(
    source: int,
    destination: int,
    adjacency: list[list[tuple[int, int]]],
    latency: list[float],
    present: list[bool],
) -> float:
    """Dijkstra over the slots marked present; returns arrival or inf.

    Bitwise-equal to the historical name-keyed-dictionary Dijkstra: the
    rank relabeling preserves heap tie-break order, so the arithmetic is
    literally the same sequence of float additions and comparisons.
    """
    best = [_INF] * len(adjacency)
    best[source] = 0.0
    heap = [(0.0, source)]
    pop = heapq.heappop
    push = heapq.heappush
    while heap:
        time_now, node = pop(heap)
        if node == destination:
            return time_now
        if time_now > best[node]:
            continue
        for neighbor, slot in adjacency[node]:
            if not present[slot]:
                continue
            candidate = time_now + latency[slot]
            if candidate < best[neighbor]:
                best[neighbor] = candidate
                push(heap, (candidate, neighbor))
    return best[destination]


@dataclass(frozen=True)
class RecoveryClassification:
    """Loss-value-independent core of the hop-recovery engine.

    The ternary analogue of :class:`MaskClassification`: ``classes[c]``
    holds the outcome code of recovery state ``c``, whose base-3 digit
    ``p`` (least significant first) is the state of lossy edge
    ``lossy_slots[p]`` -- 0 fast, 1 recovered (slow copy), 2 dead.
    Which states deliver on time depends only on the graph structure and
    the fast/slow latencies, so the replay engine caches this across
    loss-only condition changes exactly like the binary engine.
    """

    certain: DeliveryProbabilities | None
    lossy_slots: tuple[int, ...] = ()
    classes: bytes = b""


def classify_recovery_states(
    graph: DisseminationGraph,
    deadline_ms: float,
    latency_of: Callable[[Edge], float],
    loss_of: Callable[[Edge], float],
    recovery_latency_of: Callable[[Edge], float],
    max_lossy_edges: int = 11,
) -> tuple[RecoveryClassification, list[float]]:
    """Classify every ternary recovery state of ``graph``.

    Returns the classification plus the lossy slots' loss values (in
    slot order) so :func:`accumulate_recovery_probabilities` can finish
    without consulting ``loss_of`` again.
    """
    require(deadline_ms > 0, f"deadline must be positive, got {deadline_ms}")
    edges, rank, adjacency = _index_graph(graph)
    latency: list[float] = []
    present: list[bool] = []
    lossy: list[tuple[int, float]] = []
    for slot, edge in enumerate(edges):
        loss = loss_of(edge)
        require(0.0 <= loss <= 1.0, f"loss out of range on {edge!r}: {loss}")
        latency.append(latency_of(edge))
        # Zero loss always survives; total loss never does (even the
        # retransmission is lost: permanently dead).
        present.append(loss <= 0.0)
        if 0.0 < loss < 1.0:
            lossy.append((slot, loss))
    if len(lossy) > max_lossy_edges:
        raise ReliabilityLimitError(
            f"{len(lossy)} lossy edges exceed the recovery-enumeration cap "
            f"({max_lossy_edges})"
        )
    source, destination = rank[graph.source], rank[graph.destination]
    baseline = _earliest_arrival_indexed(
        source, destination, adjacency, latency, present
    )
    losses = [loss for _slot, loss in lossy]
    if baseline <= deadline_ms:
        certain = DeliveryProbabilities(on_time=1.0, eventually=1.0)
        return RecoveryClassification(certain=certain), losses
    if not lossy:
        eventually = 1.0 if baseline < _INF else 0.0
        certain = DeliveryProbabilities(on_time=0.0, eventually=eventually)
        return RecoveryClassification(certain=certain), losses

    count = len(lossy)
    slow_latency = [recovery_latency_of(edges[slot]) for slot, _loss in lossy]
    # The normal latencies were already read into ``latency`` above; the
    # callback must not be invoked a second time per edge (a non-pure
    # callable would silently diverge between the two reads).
    base_latency = [latency[slot] for slot, _loss in lossy]
    # Edge states: 0 = fast, 1 = recovered (slow), 2 = dead.
    total_states = 3**count
    classes = bytearray(total_states)
    for code in range(total_states):
        value = code
        for position, (slot, _loss) in enumerate(lossy):
            state = value % 3
            value //= 3
            if state == 0:
                latency[slot] = base_latency[position]
                present[slot] = True
            elif state == 1:
                latency[slot] = slow_latency[position]
                present[slot] = True
            else:
                present[slot] = False
        arrival = _earliest_arrival_indexed(
            source, destination, adjacency, latency, present
        )
        if arrival <= deadline_ms:
            classes[code] = _MASK_ON_TIME
        elif arrival < _INF:
            classes[code] = _MASK_LATE
    classification = RecoveryClassification(
        certain=None,
        lossy_slots=tuple(slot for slot, _loss in lossy),
        classes=bytes(classes),
    )
    return classification, losses


def _finalize_recovery_totals(
    totals: tuple[float, float],
) -> DeliveryProbabilities:
    on_time_total, eventually_total = totals
    return DeliveryProbabilities(
        on_time=min(1.0, on_time_total), eventually=min(1.0, eventually_total)
    )


def accumulate_recovery_probabilities(
    classification: RecoveryClassification, losses: list[float]
) -> DeliveryProbabilities:
    """Weight a recovery classification by the current loss values.

    ``losses`` aligns with ``classification.lossy_slots``; the state
    weights are ``1 - p`` (fast), ``p * (1 - p)`` (recovered) and
    ``p * p`` (dead) per edge, multiplied in base-3 digit order -- on
    the pure backend this is the historical ``3^L`` loop bit for bit.
    """
    if classification.certain is not None:
        return classification.certain
    return _finalize_recovery_totals(
        kernel.recovery_totals(classification.classes, losses)
    )


def accumulate_recovery_probabilities_batch(
    classification: RecoveryClassification,
    losses_rows: Sequence[Sequence[float]],
) -> list[DeliveryProbabilities]:
    """Batched :func:`accumulate_recovery_probabilities` (one vector call)."""
    if classification.certain is not None:
        return [classification.certain] * len(losses_rows)
    return [
        _finalize_recovery_totals(totals)
        for totals in kernel.recovery_totals_batch(
            classification.classes, losses_rows
        )
    ]


def delivery_probabilities_with_recovery(
    graph: DisseminationGraph,
    deadline_ms: float,
    latency_of: Callable[[Edge], float],
    loss_of: Callable[[Edge], float],
    recovery_latency_of: Callable[[Edge], float],
    max_lossy_edges: int = 11,
) -> DeliveryProbabilities:
    """Delivery probabilities with one hop-by-hop retransmission per link.

    With link-level recovery each lossy edge has three outcomes instead
    of two: the copy arrives at the edge's normal latency with
    probability ``1 - p``; the first copy is lost but the retransmission
    arrives at ``recovery_latency_of(edge)`` with probability
    ``p * (1 - p)``; both are lost with probability ``p^2``.  The exact
    computation therefore enumerates ternary edge states (``3^L``), which
    is why the lossy-edge cap is lower than the plain engine's.

    ``recovery_latency_of`` should return the *total* latency of a
    recovered copy across the edge -- typically ack-timeout plus the
    retransmission's flight time, on the order of three link latencies.

    Implemented as :func:`classify_recovery_states` followed by
    :func:`accumulate_recovery_probabilities`, mirroring the plain
    engine's split so the replay engine can cache the classification.
    """
    classification, losses = classify_recovery_states(
        graph,
        deadline_ms,
        latency_of,
        loss_of,
        recovery_latency_of,
        max_lossy_edges,
    )
    return accumulate_recovery_probabilities(classification, losses)


def delivery_probabilities(
    graph: DisseminationGraph,
    deadline_ms: float,
    latency_of: Callable[[Edge], float],
    loss_of: Callable[[Edge], float],
    max_lossy_edges: int = MAX_EXACT_LOSSY_EDGES,
) -> DeliveryProbabilities:
    """Exact delivery probabilities for one packet on ``graph``.

    ``latency_of`` / ``loss_of`` give each edge's current effective
    latency and loss rate.  Raises :class:`ReliabilityLimitError` when the
    graph contains more than ``max_lossy_edges`` edges with fractional
    loss.

    Implemented as :func:`classify_delivery_masks` (the Dijkstra
    enumeration) followed by :func:`accumulate_mask_probabilities` (the
    loss-value weighting); callers that see repeated loss-only condition
    changes can cache the classification and skip the first phase.
    """
    classification, losses = classify_delivery_masks(
        graph, deadline_ms, latency_of, loss_of, max_lossy_edges
    )
    return accumulate_mask_probabilities(classification, losses)


def on_time_probability(
    graph: DisseminationGraph,
    deadline_ms: float,
    latency_of: Callable[[Edge], float],
    loss_of: Callable[[Edge], float],
    max_lossy_edges: int = MAX_EXACT_LOSSY_EDGES,
) -> float:
    """Convenience wrapper returning only the on-time probability."""
    return delivery_probabilities(
        graph, deadline_ms, latency_of, loss_of, max_lossy_edges
    ).on_time
