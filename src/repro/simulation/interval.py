"""The analytic interval replay engine.

Replays a whole condition trace against routing policies without touching
individual packets: within every window where (a) all link conditions and
(b) every scheme's installed graph are constant, the per-packet outcome
distribution is identical for every packet, so one exact probability
computation (:mod:`repro.simulation.reliability`) covers the window.

Two layers of reuse keep multi-week replays fast:

* the merged boundary list and per-boundary observed views are computed
  once per replay and shared across all (flow, scheme) pairs;
* probability computations are memoised on ``(graph edge set, relevant
  conditions)`` -- the same outage evaluated for the same graph across
  adjacent windows (or different flows) is computed once.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.dgraph import DisseminationGraph
from repro.core.graph import Edge, Topology
from repro.netmodel.conditions import ConditionTimeline, LinkState
from repro.netmodel.topology import FlowSpec, ServiceSpec
from repro.routing.base import RoutingPolicy
from repro.routing.registry import STANDARD_SCHEME_NAMES, make_policy
from repro.simulation.reliability import (
    DeliveryProbabilities,
    ReliabilityLimitError,
    delivery_probabilities,
    delivery_probabilities_with_recovery,
)
from repro.simulation.results import FlowSchemeStats, ReplayConfig, ReplayResult
from repro.simulation.timeline import (
    DecisionSpan,
    build_decision_timeline,
    decision_boundaries,
    observed_view,
)
from repro.util.validation import require

__all__ = ["replay_flow", "run_replay"]


class _ProbabilityCache:
    """Memoises delivery probabilities across windows, flows and schemes."""

    def __init__(
        self,
        deadline_ms: float,
        max_lossy_edges: int,
        hop_recovery: bool = False,
        recovery_extra_ms: float = 10.0,
        max_recovery_lossy_edges: int = 11,
    ) -> None:
        self.deadline_ms = deadline_ms
        self.max_lossy_edges = max_lossy_edges
        self.hop_recovery = hop_recovery
        self.recovery_extra_ms = recovery_extra_ms
        self.max_recovery_lossy_edges = max_recovery_lossy_edges
        self._cache: dict[object, DeliveryProbabilities] = {}
        self._clean_cache: dict[object, DeliveryProbabilities] = {}
        self.hits = 0
        self.misses = 0
        self.recovery_fallbacks = 0

    def _clean_probabilities(
        self, topology: Topology, graph: DisseminationGraph
    ) -> DeliveryProbabilities:
        """Outcome under base conditions (no loss, base latencies)."""
        key = (graph.edges, graph.source, graph.destination)
        cached = self._clean_cache.get(key)
        if cached is None:
            cached = delivery_probabilities(
                graph,
                self.deadline_ms,
                lambda edge: topology.latency(*edge),
                lambda edge: 0.0,
                max_lossy_edges=self.max_lossy_edges,
            )
            self._clean_cache[key] = cached
        return cached

    def probabilities(
        self,
        topology: Topology,
        graph: DisseminationGraph,
        degraded: dict[Edge, LinkState],
    ) -> DeliveryProbabilities:
        """Delivery probabilities for ``graph`` under ``degraded`` conditions."""
        relevant = tuple(
            (edge, degraded[edge]) for edge in graph.sorted_edges() if edge in degraded
        )
        if not relevant:
            # Clean graph: outcome depends only on base latencies.
            return self._clean_probabilities(topology, graph)
        key = (graph.edges, graph.source, graph.destination, relevant)
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1

        def latency_of(edge: Edge) -> float:
            state = degraded.get(edge)
            extra = state.extra_latency_ms if state is not None else 0.0
            return topology.latency(*edge) + extra

        def loss_of(edge: Edge) -> float:
            state = degraded.get(edge)
            return state.loss_rate if state is not None else 0.0

        if self.hop_recovery:

            def recovery_latency_of(edge: Edge) -> float:
                # Ack timeout (~2x link latency + slack) + retransmission
                # flight time.
                return 3.0 * latency_of(edge) + self.recovery_extra_ms

            try:
                result = delivery_probabilities_with_recovery(
                    graph,
                    self.deadline_ms,
                    latency_of,
                    loss_of,
                    recovery_latency_of,
                    max_lossy_edges=self.max_recovery_lossy_edges,
                )
            except ReliabilityLimitError:
                # Too many simultaneously lossy edges for ternary
                # enumeration: fall back to the no-recovery computation,
                # a conservative lower bound on delivery.
                self.recovery_fallbacks += 1
                result = delivery_probabilities(
                    graph,
                    self.deadline_ms,
                    latency_of,
                    loss_of,
                    max_lossy_edges=self.max_lossy_edges,
                )
        else:
            result = delivery_probabilities(
                graph,
                self.deadline_ms,
                latency_of,
                loss_of,
                max_lossy_edges=self.max_lossy_edges,
            )
        self._cache[key] = result
        return result


def _iter_windows(
    boundaries: Sequence[float], spans: Sequence[DecisionSpan]
) -> Iterable[tuple[float, float, DisseminationGraph]]:
    """Intersect boundary windows with (merged) decision spans."""
    span_index = 0
    for start, end in zip(boundaries, boundaries[1:]):
        if end <= start:
            continue
        while spans[span_index].end_s <= start:
            span_index += 1
        span = spans[span_index]
        assert span.start_s <= start and end <= span.end_s + 1e-9
        yield start, end, span.graph


def replay_flow(
    topology: Topology,
    timeline: ConditionTimeline,
    flow: FlowSpec,
    service: ServiceSpec,
    policy: RoutingPolicy,
    config: ReplayConfig = ReplayConfig(),
    boundaries: Sequence[float] | None = None,
    observed_views: Sequence[dict] | None = None,
    actual_views: Sequence[dict] | None = None,
    cache: _ProbabilityCache | None = None,
) -> FlowSchemeStats:
    """Replay one flow under one policy over the whole trace."""
    if boundaries is None:
        boundaries = decision_boundaries(timeline, config.detection_delay_s)
    if observed_views is None:
        observed_views = [
            observed_view(timeline, b, config.detection_delay_s)
            for b in boundaries[:-1]
        ]
    if actual_views is None:
        actual_views = [timeline.degraded_at(b) for b in boundaries[:-1]]
    if cache is None:
        cache = _ProbabilityCache(
            service.deadline_ms,
            config.max_lossy_edges,
            hop_recovery=config.hop_recovery,
            recovery_extra_ms=config.recovery_extra_ms,
            max_recovery_lossy_edges=config.max_recovery_lossy_edges,
        )
    spans = build_decision_timeline(
        topology,
        timeline,
        flow,
        service,
        policy,
        detection_delay_s=config.detection_delay_s,
        boundaries=list(boundaries),
        observed_views=list(observed_views),
    )
    stats = FlowSchemeStats(flow=flow, scheme=policy.name)
    stats.decision_changes = len(spans) - 1
    for index, (start, end, graph) in enumerate(
        _iter_windows(boundaries, spans)
    ):
        degraded = actual_views[index]
        probabilities = cache.probabilities(topology, graph, degraded)
        stats.add_window(
            start,
            end,
            graph.name,
            graph.num_edges,
            probabilities.on_time,
            probabilities.lost,
            probabilities.late,
            collect=config.collect_windows,
        )
    return stats


def run_replay(
    topology: Topology,
    timeline: ConditionTimeline,
    flows: Sequence[FlowSpec],
    service: ServiceSpec,
    scheme_names: Sequence[str] = STANDARD_SCHEME_NAMES,
    config: ReplayConfig = ReplayConfig(),
    *,
    parallel: bool = False,
    max_workers: int | None = None,
    time_shards: int = 1,
    use_cache: bool = False,
) -> ReplayResult:
    """Replay every flow under every scheme; the evaluation workhorse.

    ``parallel=True`` (or an explicit ``max_workers``/``time_shards``)
    routes through :func:`repro.exec.engine.run_replay_parallel`; the
    sharded result is exactly equal to the serial one.  ``use_cache``
    additionally serves shards from the content-addressed disk cache.
    """
    if parallel or max_workers is not None or time_shards > 1 or use_cache:
        from repro.exec.engine import run_replay_parallel

        result, _telemetry = run_replay_parallel(
            topology,
            timeline,
            flows,
            service,
            scheme_names,
            config,
            max_workers=max_workers,
            time_shards=time_shards,
            use_cache=use_cache,
        )
        return result
    require(bool(flows), "need at least one flow")
    require(bool(scheme_names), "need at least one scheme")
    boundaries = decision_boundaries(timeline, config.detection_delay_s)
    observed_views = [
        observed_view(timeline, b, config.detection_delay_s) for b in boundaries[:-1]
    ]
    actual_views = [timeline.degraded_at(b) for b in boundaries[:-1]]
    cache = _ProbabilityCache(
        service.deadline_ms,
        config.max_lossy_edges,
        hop_recovery=config.hop_recovery,
        recovery_extra_ms=config.recovery_extra_ms,
        max_recovery_lossy_edges=config.max_recovery_lossy_edges,
    )
    result = ReplayResult(service, config)
    for scheme_name in scheme_names:
        for flow in flows:
            policy = make_policy(scheme_name)
            stats = replay_flow(
                topology,
                timeline,
                flow,
                service,
                policy,
                config,
                boundaries=boundaries,
                observed_views=observed_views,
                actual_views=actual_views,
                cache=cache,
            )
            result.add(stats)
    return result
