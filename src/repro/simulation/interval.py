"""The analytic interval replay engine.

Replays a whole condition trace against routing policies without touching
individual packets: within every window where (a) all link conditions and
(b) every scheme's installed graph are constant, the per-packet outcome
distribution is identical for every packet, so one exact probability
computation (:mod:`repro.simulation.reliability`) covers the window.

Three layers of reuse keep multi-week replays fast:

* the merged boundary list and the per-boundary observed/actual views are
  computed once per replay (by one incremental delta walk each) and
  shared across all (flow, scheme) pairs; the changed-edge deltas let
  policies and the window loop skip boundaries that cannot affect them;
* probability computations are memoised on a *canonical* key -- the
  graph relabeled to a deterministic node order plus its effective
  per-edge latency/loss vectors -- so congruent graphs under congruent
  conditions share one entry across windows, flows, schemes and time
  shards;
* the memo is LRU-bounded (``$REPRO_PROB_CACHE_MAX_BYTES``) so pool
  workers cannot creep without limit on multi-week replays.

Every layer preserves bitwise-identical output: a canonical-key hit is
only possible between computations whose float-operation sequences are
provably identical (the relabeling is monotone in node-name order), and
a skipped window reuses the exact object a fresh lookup would return.
"""

from __future__ import annotations

import os
import threading
from typing import Iterable, Sequence

from repro.core.dgraph import DisseminationGraph
from repro.core.graph import Edge, Topology
from repro.netmodel.conditions import ConditionTimeline, LinkState
from repro.netmodel.topology import FlowSpec, ServiceSpec
from repro.routing.base import RoutingPolicy
from repro.routing.registry import STANDARD_SCHEME_NAMES, make_policy
from repro.simulation.reliability import (
    DeliveryProbabilities,
    MaskClassification,
    RecoveryClassification,
    ReliabilityLimitError,
    accumulate_mask_probabilities_batch,
    accumulate_recovery_probabilities_batch,
    classify_delivery_masks,
    classify_recovery_states,
    delivery_probabilities,
)
from repro.simulation.results import FlowSchemeStats, ReplayConfig, ReplayResult
from repro.simulation.timeline import (
    DecisionSpan,
    build_decision_timeline,
    decision_boundaries,
    observed_views_with_deltas,
)
from repro.util.validation import require

__all__ = [
    "PROB_CACHE_MAX_BYTES_ENV",
    "PROB_CANONICAL_MAX_ENTRIES_ENV",
    "default_prob_cache_max_bytes",
    "default_prob_canonical_max_entries",
    "replay_flow",
    "run_replay",
]

#: Byte cap for the in-memory probability memo (mirrors the disk cache's
#: ``REPRO_EXEC_CACHE_MAX_BYTES``).  ``0`` means unlimited.
PROB_CACHE_MAX_BYTES_ENV = "REPRO_PROB_CACHE_MAX_BYTES"

#: Default cap: generous for multi-week replays (hundreds of thousands of
#: entries) while bounding pool-worker memory creep.
DEFAULT_PROB_CACHE_MAX_BYTES = 64 * 1024 * 1024

#: Entry cap for the per-graph canonical-form memo.  On the reference
#: overlay distinct graphs per replay number in the hundreds, but dynamic
#: schemes on generated 500-node meshes can mint a fresh reroute graph
#: per decision boundary, so the memo needs its own bound.  ``0`` means
#: unlimited.
PROB_CANONICAL_MAX_ENTRIES_ENV = "REPRO_PROB_CANONICAL_MAX_ENTRIES"

#: Default canonical-memo cap: far above any reference-overlay replay
#: (so tier-1 behavior is untouched) while holding a 500-node dynamic
#: replay to a few thousand retained edge lists.
DEFAULT_PROB_CANONICAL_MAX_ENTRIES = 4096

# Deterministic per-entry footprint estimate: a fixed overhead for the
# dict slot, key/value tuples and the result object, plus a per-edge cost
# for the canonical structure and latency/loss vectors.  An estimate (not
# sys.getsizeof) so eviction order is identical across platforms.
_ENTRY_OVERHEAD_BYTES = 160
_PER_EDGE_BYTES = 120

_UNSET: object = object()


def _limit_error_with_context(
    error: ReliabilityLimitError,
    graph: DisseminationGraph,
    context: str | None,
) -> ReliabilityLimitError:
    """Re-raiseable limit error naming the graph (and window) that tripped.

    The engine-level message only counts lossy edges; a failing N=500
    replay is diagnosable only if the error also names which flow's
    installed graph, between which endpoints, in which window hit the
    cap.
    """
    detail = f"graph {graph.name!r} ({graph.source} -> {graph.destination})"
    if context:
        detail = f"{detail}; {context}"
    return ReliabilityLimitError(f"{error} [{detail}]")


def default_prob_cache_max_bytes() -> int | None:
    """Cap from ``$REPRO_PROB_CACHE_MAX_BYTES``; ``None`` = unlimited."""
    raw = os.environ.get(PROB_CACHE_MAX_BYTES_ENV)
    if not raw:
        return DEFAULT_PROB_CACHE_MAX_BYTES
    try:
        value = int(raw)
    except ValueError as error:
        raise ValueError(
            f"{PROB_CACHE_MAX_BYTES_ENV} must be an integer byte count, "
            f"got {raw!r}"
        ) from error
    if value < 0:
        raise ValueError(f"{PROB_CACHE_MAX_BYTES_ENV} must be >= 0, got {value}")
    return value or None


def default_prob_canonical_max_entries() -> int | None:
    """Cap from ``$REPRO_PROB_CANONICAL_MAX_ENTRIES``; ``None`` = unlimited."""
    raw = os.environ.get(PROB_CANONICAL_MAX_ENTRIES_ENV)
    if not raw:
        return DEFAULT_PROB_CANONICAL_MAX_ENTRIES
    try:
        value = int(raw)
    except ValueError as error:
        raise ValueError(
            f"{PROB_CANONICAL_MAX_ENTRIES_ENV} must be an integer entry "
            f"count, got {raw!r}"
        ) from error
    if value < 0:
        raise ValueError(
            f"{PROB_CANONICAL_MAX_ENTRIES_ENV} must be >= 0, got {value}"
        )
    return value or None


class _ProbabilityCache:
    """Memoises delivery probabilities across windows, flows and schemes.

    Keys are *canonical*: the graph's nodes are relabeled to their rank in
    sorted-name order and the conditions are reduced to per-slot effective
    latency and loss vectors.  Two congruent situations -- the same shape
    under an order-preserving node relabeling, with identical effective
    latencies and losses -- therefore share one entry across flows,
    schemes and time shards, where the historical raw key (edge set +
    endpoints + conditions) could never hit across endpoint pairs.

    Sharing is bitwise-safe: the probability computation consumes the
    graph only through its sorted-edge order, per-edge latency/loss
    values, endpoint identity and node-name comparisons (Dijkstra heap
    tie-breaks), all of which are preserved by a monotone relabeling, so
    every computation that maps to the same canonical key performs the
    identical float-operation sequence.

    A second-level *classification* cache (see
    :class:`~repro.simulation.reliability.MaskClassification`) is keyed
    without the loss values: windows that differ only in loss rates --
    the dominant kind of condition change -- skip the whole Dijkstra
    enumeration and redo only the cheap probability weighting, which is
    bitwise-identical by construction.

    Entries are LRU-evicted once the estimated footprint exceeds
    ``max_bytes`` (default ``$REPRO_PROB_CACHE_MAX_BYTES`` or 64 MiB;
    ``None`` = unlimited), bounding worker memory on multi-week replays.

    The cache is thread-safe: one lock guards every lookup, insert,
    eviction, and counter update, so concurrent replays (the ``repro
    serve`` daemon shares one warm cache across requests) cannot corrupt
    the store or the hit/miss/eviction telemetry.  The expensive
    probability computation itself runs outside the lock; two threads
    missing on the same key may both compute it, but the values are
    deterministic and the duplicate store replaces the first entry
    without double-counting its footprint.
    Counters: ``hits``/``misses`` cover degraded-window lookups (as they
    always have), ``shared_hits`` counts the subset of those hits served
    from an entry first computed for a *different* ``group`` (the
    cross-pair sharing raw per-flow keys could not express -- so
    ``(hits - shared_hits) / (hits + misses)`` is the rate per-group keys
    would have achieved), ``mask_hits`` counts misses whose
    Dijkstra enumeration was skipped via a cached classification, and
    ``evictions`` counts entries dropped by the byte bound.
    """

    def __init__(
        self,
        deadline_ms: float,
        max_lossy_edges: int,
        hop_recovery: bool = False,
        recovery_extra_ms: float = 10.0,
        max_recovery_lossy_edges: int = 11,
        max_bytes: int | None = _UNSET,  # type: ignore[assignment]
    ) -> None:
        self.deadline_ms = deadline_ms
        self.max_lossy_edges = max_lossy_edges
        self.hop_recovery = hop_recovery
        self.recovery_extra_ms = recovery_extra_ms
        self.max_recovery_lossy_edges = max_recovery_lossy_edges
        if max_bytes is _UNSET:
            max_bytes = default_prob_cache_max_bytes()
        self.max_bytes = max_bytes
        # One insertion-ordered store for clean, degraded and
        # classification entries (the key shapes differ, so they cannot
        # collide); insertion order doubles as recency order for LRU
        # eviction.
        self._entries: dict[
            tuple,
            tuple[DeliveryProbabilities | MaskClassification, str | None, int],
        ] = {}
        self._bytes = 0
        # Per-graph canonical forms, keyed by the graph value itself and
        # excluded from the byte cap.  On the reference overlay distinct
        # graphs per replay number in the hundreds; dynamic schemes on
        # generated large meshes can mint one per decision boundary, so
        # the memo carries its own LRU entry cap (insertion order doubles
        # as recency order, exactly like ``_entries``).  Eviction is safe:
        # entries are pure functions of (topology, graph), so a re-computed
        # entry is identical to the evicted one.
        self._canonical: dict[
            DisseminationGraph,
            tuple[tuple[Edge, ...], tuple, tuple[float, ...], dict[Edge, int]],
        ] = {}
        self.max_canonical_entries = default_prob_canonical_max_entries()
        self.hits = 0
        self.misses = 0
        self.shared_hits = 0
        self.mask_hits = 0
        self.evictions = 0
        self.canonical_evictions = 0
        self.recovery_fallbacks = 0
        # Single lock around lookup/insert/evict and counter updates; see
        # the class docstring for the concurrency contract.
        self._lock = threading.Lock()

    def counters(self) -> dict[str, int]:
        """Snapshot of the health counters (for telemetry deltas)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "shared_hits": self.shared_hits,
                "mask_hits": self.mask_hits,
                "evictions": self.evictions,
                "canonical_evictions": self.canonical_evictions,
                "recovery_fallbacks": self.recovery_fallbacks,
            }

    def _canonical_graph(
        self, topology: Topology, graph: DisseminationGraph
    ) -> tuple[tuple[Edge, ...], tuple, tuple[float, ...], dict[Edge, int]]:
        """``(sorted edges, structure, base latencies, edge->slot)``.

        ``structure`` is the graph with every node replaced by its rank in
        sorted-name order: relabeled edge list (in sorted-edge order) plus
        the endpoint ranks.  The relabeling is monotone, which is what
        makes canonical-key sharing bitwise-exact (see class docstring).
        """
        with self._lock:
            entry = self._canonical.pop(graph, None)
            if entry is None:
                edges = graph.sorted_edges()
                rank = {
                    node: position
                    for position, node in enumerate(sorted(graph.nodes))
                }
                structure = (
                    tuple((rank[u], rank[v]) for u, v in edges),
                    rank[graph.source],
                    rank[graph.destination],
                )
                base_latency = tuple(topology.latency(u, v) for u, v in edges)
                slot_of = {edge: slot for slot, edge in enumerate(edges)}
                entry = (edges, structure, base_latency, slot_of)
            self._canonical[graph] = entry  # (re-)insert: most recently used
            cap = self.max_canonical_entries
            if cap is not None:
                while len(self._canonical) > cap:
                    oldest = next(iter(self._canonical))
                    del self._canonical[oldest]
                    self.canonical_evictions += 1
            return entry

    def _lookup(
        self, key: tuple, group: str | None, count: bool = False
    ) -> DeliveryProbabilities | None:
        """One locked lookup; ``count`` feeds the hit/miss counters."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                if count:
                    self.misses += 1
                return None
            self._entries[key] = entry  # re-insert: most recently used
            result, owner, _cost = entry
            if count:
                self.hits += 1
            if owner is not None and group is not None and owner != group:
                self.shared_hits += 1
            return result

    def _store(
        self,
        key: tuple,
        result: DeliveryProbabilities | MaskClassification,
        group: str | None,
        edge_count: int,
        extra_bytes: int = 0,
    ) -> None:
        cost = _ENTRY_OVERHEAD_BYTES + _PER_EDGE_BYTES * edge_count + extra_bytes
        with self._lock:
            # A concurrent thread may have stored this key between our
            # miss and this store: replace without double-counting.
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._bytes -= previous[2]
            self._entries[key] = (result, group, cost)
            self._bytes += cost
            if self.max_bytes is None:
                return
            while self._bytes > self.max_bytes and self._entries:
                oldest = next(iter(self._entries))
                _result, _owner, old_cost = self._entries.pop(oldest)
                self._bytes -= old_cost
                self.evictions += 1

    def _clean_probabilities(
        self,
        topology: Topology,
        graph: DisseminationGraph,
        group: str | None = None,
    ) -> DeliveryProbabilities:
        """Outcome under base conditions (no loss, base latencies)."""
        edges, structure, base_latency, _slot_of = self._canonical_graph(
            topology, graph
        )
        key = (structure, base_latency)
        # Clean lookups stay outside the hit/miss counters (as they always
        # have), so they must not feed ``shared_hits`` either -- the
        # counters would otherwise stop being comparable as rates.
        cached = self._lookup(key, None)
        if cached is None:
            cached = delivery_probabilities(
                graph,
                self.deadline_ms,
                lambda edge: topology.latency(*edge),
                lambda edge: 0.0,
                max_lossy_edges=self.max_lossy_edges,
            )
            self._store(key, cached, group, len(edges))
        return cached

    def probabilities(
        self,
        topology: Topology,
        graph: DisseminationGraph,
        degraded: dict[Edge, LinkState],
        group: str | None = None,
        context: str | None = None,
    ) -> DeliveryProbabilities:
        """Delivery probabilities for ``graph`` under ``degraded`` conditions.

        ``group`` labels the caller (one ``scheme/flow`` pair); it only
        feeds the ``shared_hits`` counter, never the key.  ``context``
        (e.g. the window being replayed) is attached to any
        :class:`ReliabilityLimitError` so the failure is diagnosable.

        A thin wrapper over :meth:`probabilities_batch` -- one window is
        the one-row special case of a run, taking the identical code
        path so the result and every counter are the same either way.
        """
        contexts = None if context is None else [context]
        return self.probabilities_batch(
            topology, graph, [degraded], group, contexts
        )[0]

    def probabilities_batch(
        self,
        topology: Topology,
        graph: DisseminationGraph,
        degraded_list: Sequence[dict[Edge, LinkState]],
        group: str | None = None,
        contexts: Sequence[str | None] | None = None,
    ) -> list[DeliveryProbabilities]:
        """Probabilities for one graph under a run of condition views.

        Semantically a per-view :meth:`probabilities` loop, but misses
        that share one cached classification are weighted in a single
        batched kernel call, so a run of loss-only windows costs one
        vector operation instead of one Python loop per window.  Counter
        semantics are preserved exactly: a view whose key was already
        missed earlier in the same batch counts as the hit it would have
        been sequentially, and classification reuse feeds ``mask_hits``
        per window as before.
        """
        if not degraded_list:
            return []
        edges, structure, base_latency, slot_of = self._canonical_graph(
            topology, graph
        )
        results: list[DeliveryProbabilities | None] = [None] * len(degraded_list)
        first_miss: dict[tuple, int] = {}
        aliases: list[tuple[int, tuple]] = []
        misses: list[tuple[tuple, tuple[float, ...], list[float], int]] = []
        for position, degraded in enumerate(degraded_list):
            effective_latency = list(base_latency)
            loss_vector = [0.0] * len(edges)
            relevant = False
            for edge, state in degraded.items():
                slot = slot_of.get(edge)
                if slot is None:
                    continue
                relevant = True
                effective_latency[slot] = (
                    base_latency[slot] + state.extra_latency_ms
                )
                loss_vector[slot] = state.loss_rate
            if not relevant:
                # Clean graph: outcome depends only on base latencies.
                results[position] = self._clean_probabilities(
                    topology, graph, group
                )
                continue
            key = (structure, tuple(effective_latency), tuple(loss_vector))
            if key in first_miss:
                # Sequentially this lookup would hit the entry the
                # earlier miss in this batch had already stored.
                with self._lock:
                    self.hits += 1
                aliases.append((position, key))
                continue
            cached = self._lookup(key, group, count=True)
            if cached is not None:
                results[position] = cached
                continue
            first_miss[key] = position
            misses.append((key, tuple(effective_latency), loss_vector, position))
        if misses:
            if self.hop_recovery:
                computed = self._resolve_recovery_misses(
                    graph, edges, slot_of, structure, misses, group, contexts
                )
            else:
                computed = self._resolve_mask_misses(
                    graph, edges, slot_of, structure, misses, group, contexts
                )
            computed.sort(key=lambda item: item[0])
            by_key: dict[tuple, DeliveryProbabilities] = {}
            for position, key, result in computed:
                results[position] = result
                self._store(key, result, group, len(edges))
                by_key[key] = result
            for position, key in aliases:
                results[position] = by_key[key]
        return results  # type: ignore[return-value]

    def _mask_classification(
        self,
        graph: DisseminationGraph,
        edges: tuple[Edge, ...],
        slot_of: dict[Edge, int],
        mask_key: tuple,
        effective_latency: tuple[float, ...],
        loss_vector: list[float],
        group: str | None,
        context: str | None,
    ) -> MaskClassification:
        """Cached delivery-mask classification (one locked LRU touch)."""
        with self._lock:
            entry = self._entries.pop(mask_key, None)
            if entry is not None:
                self._entries[mask_key] = entry  # most recently used
                self.mask_hits += 1
        if entry is not None:
            classification = entry[0]
            assert isinstance(classification, MaskClassification)
            return classification
        try:
            classification, _losses = classify_delivery_masks(
                graph,
                self.deadline_ms,
                lambda edge: effective_latency[slot_of[edge]],
                lambda edge: loss_vector[slot_of[edge]],
                max_lossy_edges=self.max_lossy_edges,
            )
        except ReliabilityLimitError as error:
            raise _limit_error_with_context(error, graph, context) from error
        self._store(
            mask_key,
            classification,
            group,
            len(edges),
            extra_bytes=len(classification.classes),
        )
        return classification

    def _resolve_mask_misses(
        self,
        graph: DisseminationGraph,
        edges: tuple[Edge, ...],
        slot_of: dict[Edge, int],
        structure: tuple,
        misses: list[tuple[tuple, tuple[float, ...], list[float], int]],
        group: str | None,
        contexts: Sequence[str | None] | None,
    ) -> list[tuple[int, tuple, DeliveryProbabilities]]:
        """Compute every missed view, batching rows per classification.

        Loss values weight the enumeration cases but never change which
        cases deliver: the classification is cached on a key that keeps
        only each slot's *category* (clean / fractional / dead), so
        loss-only condition changes skip the Dijkstra enumeration
        entirely and their loss rows ride one kernel batch call.
        """
        grouped: dict[
            tuple, tuple[MaskClassification, list[tuple[int, tuple, list[float]]]]
        ] = {}
        order: list[tuple] = []
        for key, effective_latency, loss_vector, position in misses:
            context = contexts[position] if contexts is not None else None
            categories = bytes(
                0 if loss <= 0.0 else 2 if loss >= 1.0 else 1
                for loss in loss_vector
            )
            mask_key = ("masks", structure, effective_latency, categories)
            classification = self._mask_classification(
                graph, edges, slot_of, mask_key, effective_latency,
                loss_vector, group, context,
            )
            entry = grouped.get(mask_key)
            if entry is None:
                entry = (classification, [])
                grouped[mask_key] = entry
                order.append(mask_key)
            losses = [loss_vector[slot] for slot in classification.lossy_slots]
            entry[1].append((position, key, losses))
        computed: list[tuple[int, tuple, DeliveryProbabilities]] = []
        for mask_key in order:
            classification, items = grouped[mask_key]
            rows = [losses for _position, _key, losses in items]
            values = accumulate_mask_probabilities_batch(classification, rows)
            computed.extend(
                (position, key, value)
                for (position, key, _losses), value in zip(items, values)
            )
        return computed

    def _recovery_classification(
        self,
        graph: DisseminationGraph,
        edges: tuple[Edge, ...],
        slot_of: dict[Edge, int],
        recovery_key: tuple,
        effective_latency: tuple[float, ...],
        loss_vector: list[float],
        group: str | None,
    ) -> RecoveryClassification:
        """Cached ternary recovery classification (raises on the cap)."""
        with self._lock:
            entry = self._entries.pop(recovery_key, None)
            if entry is not None:
                self._entries[recovery_key] = entry  # most recently used
                self.mask_hits += 1
        if entry is not None:
            classification = entry[0]
            assert isinstance(classification, RecoveryClassification)
            return classification

        def latency_of(edge: Edge) -> float:
            return effective_latency[slot_of[edge]]

        def recovery_latency_of(edge: Edge) -> float:
            # Ack timeout (~2x link latency + slack) + retransmission
            # flight time.
            return 3.0 * latency_of(edge) + self.recovery_extra_ms

        classification, _losses = classify_recovery_states(
            graph,
            self.deadline_ms,
            latency_of,
            lambda edge: loss_vector[slot_of[edge]],
            recovery_latency_of,
            max_lossy_edges=self.max_recovery_lossy_edges,
        )
        self._store(
            recovery_key,
            classification,
            group,
            len(edges),
            extra_bytes=len(classification.classes),
        )
        return classification

    def _resolve_recovery_misses(
        self,
        graph: DisseminationGraph,
        edges: tuple[Edge, ...],
        slot_of: dict[Edge, int],
        structure: tuple,
        misses: list[tuple[tuple, tuple[float, ...], list[float], int]],
        group: str | None,
        contexts: Sequence[str | None] | None,
    ) -> list[tuple[int, tuple, DeliveryProbabilities]]:
        """Recovery-engine analogue of :meth:`_resolve_mask_misses`.

        The ternary (3^L) classification is cached just like the binary
        one; a view with too many lossy edges for ternary enumeration
        falls back to the no-recovery computation, a conservative lower
        bound on delivery (as the fused engine always has).
        """
        grouped: dict[
            tuple,
            tuple[RecoveryClassification, list[tuple[int, tuple, list[float]]]],
        ] = {}
        order: list[tuple] = []
        computed: list[tuple[int, tuple, DeliveryProbabilities]] = []
        for key, effective_latency, loss_vector, position in misses:
            context = contexts[position] if contexts is not None else None
            categories = bytes(
                0 if loss <= 0.0 else 2 if loss >= 1.0 else 1
                for loss in loss_vector
            )
            recovery_key = ("rstates", structure, effective_latency, categories)
            try:
                classification = self._recovery_classification(
                    graph, edges, slot_of, recovery_key, effective_latency,
                    loss_vector, group,
                )
            except ReliabilityLimitError:
                with self._lock:
                    self.recovery_fallbacks += 1
                try:
                    result = delivery_probabilities(
                        graph,
                        self.deadline_ms,
                        lambda edge: effective_latency[slot_of[edge]],
                        lambda edge: loss_vector[slot_of[edge]],
                        max_lossy_edges=self.max_lossy_edges,
                    )
                except ReliabilityLimitError as error:
                    raise _limit_error_with_context(
                        error, graph, context
                    ) from error
                computed.append((position, key, result))
                continue
            entry = grouped.get(recovery_key)
            if entry is None:
                entry = (classification, [])
                grouped[recovery_key] = entry
                order.append(recovery_key)
            losses = [loss_vector[slot] for slot in classification.lossy_slots]
            entry[1].append((position, key, losses))
        for recovery_key in order:
            classification, items = grouped[recovery_key]
            rows = [losses for _position, _key, losses in items]
            values = accumulate_recovery_probabilities_batch(
                classification, rows
            )
            computed.extend(
                (position, key, value)
                for (position, key, _losses), value in zip(items, values)
            )
        return computed


def _iter_windows(
    boundaries: Sequence[float], spans: Sequence[DecisionSpan]
) -> Iterable[tuple[float, float, DisseminationGraph]]:
    """Intersect boundary windows with (merged) decision spans.

    Boundaries are strictly increasing (``build_decision_timeline``
    enforces it), so window ``i`` is exactly ``boundaries[i:i + 2]`` --
    callers index per-boundary views by the enumeration position.
    """
    span_index = 0
    for start, end in zip(boundaries, boundaries[1:]):
        while spans[span_index].end_s <= start:
            span_index += 1
        span = spans[span_index]
        assert span.start_s <= start and end <= span.end_s + 1e-9
        yield start, end, span.graph


def _replay_windows(
    stats: FlowSchemeStats,
    cache: _ProbabilityCache,
    topology: Topology,
    boundaries: Sequence[float],
    spans: Sequence[DecisionSpan],
    actual_views: Sequence[dict],
    actual_deltas: Sequence[frozenset[Edge]] | None,
    group: str,
    collect: bool,
    shard_range: tuple[float, float] | None = None,
) -> None:
    """The engine's window loop, shared by serial replay and shards.

    Walks the boundary windows in order, accumulating each into
    ``stats``.  Maximal runs of consecutive windows under the same
    installed graph are resolved with one :meth:`probabilities_batch`
    call: within a run only the first window and the windows whose
    changed-edge delta touches the graph need computation (the rest
    reuse the previous window's probabilities, exactly as the sequential
    loop did), and those computed windows ride a single batched cache
    call so loss-only runs hit the vector kernel once.

    ``shard_range`` restricts accumulation to windows overlapping
    ``[start, end)``; a skipped window breaks the delta chain (the held
    probabilities no longer describe the previous window), so the next
    accumulated window starts a fresh run.
    """
    run: list[tuple[int, float, float, DisseminationGraph]] = []

    def flush() -> None:
        if not run:
            return
        graph = run[0][3]
        if actual_deltas is None:
            compute_at = list(range(len(run)))
        else:
            # The first window of a run always computes: a run starts at
            # a graph change, a shard skip, or the trace start, all of
            # which break the reuse chain.
            compute_at = [0]
            for offset in range(1, len(run)):
                index = run[offset][0]
                if any(edge in graph.edges for edge in actual_deltas[index]):
                    compute_at.append(offset)
        views = [actual_views[run[offset][0]] for offset in compute_at]
        contexts = [
            f"pair {group}, window [{run[offset][1]:g}s, {run[offset][2]:g}s)"
            for offset in compute_at
        ]
        computed = cache.probabilities_batch(
            topology, graph, views, group, contexts
        )
        probabilities: DeliveryProbabilities | None = None
        next_computed = 0
        for offset, (_index, start, end, window_graph) in enumerate(run):
            if (
                next_computed < len(compute_at)
                and compute_at[next_computed] == offset
            ):
                probabilities = computed[next_computed]
                next_computed += 1
            stats.add_window(
                start,
                end,
                window_graph.name,
                window_graph.num_edges,
                probabilities.on_time,
                probabilities.lost,
                probabilities.late,
                collect=collect,
            )
        run.clear()

    for index, (start, end, graph) in enumerate(_iter_windows(boundaries, spans)):
        if shard_range is not None and (
            end <= shard_range[0] or start >= shard_range[1]
        ):
            flush()
            continue
        if run and graph != run[0][3]:
            flush()
        run.append((index, start, end, graph))
    flush()


def replay_flow(
    topology: Topology,
    timeline: ConditionTimeline,
    flow: FlowSpec,
    service: ServiceSpec,
    policy: RoutingPolicy,
    config: ReplayConfig = ReplayConfig(),
    boundaries: Sequence[float] | None = None,
    observed_views: Sequence[dict] | None = None,
    actual_views: Sequence[dict] | None = None,
    cache: _ProbabilityCache | None = None,
    observed_deltas: Sequence[frozenset[Edge]] | None = None,
    actual_deltas: Sequence[frozenset[Edge]] | None = None,
) -> FlowSchemeStats:
    """Replay one flow under one policy over the whole trace.

    ``observed_deltas``/``actual_deltas`` are per-boundary changed-edge
    sets aligned with the views (see
    :meth:`ConditionTimeline.degraded_views`); when available, boundaries
    whose changes cannot touch this flow's installed graph reuse the
    previous window's probabilities without a cache lookup.
    """
    if boundaries is None:
        boundaries = decision_boundaries(timeline, config.detection_delay_s)
    if observed_views is None:
        observed_views, observed_deltas = observed_views_with_deltas(
            timeline, boundaries, config.detection_delay_s
        )
    if actual_views is None:
        actual_views, actual_deltas = timeline.degraded_views(
            list(boundaries[:-1])
        )
    if cache is None:
        cache = _ProbabilityCache(
            service.deadline_ms,
            config.max_lossy_edges,
            hop_recovery=config.hop_recovery,
            recovery_extra_ms=config.recovery_extra_ms,
            max_recovery_lossy_edges=config.max_recovery_lossy_edges,
        )
    spans = build_decision_timeline(
        topology,
        timeline,
        flow,
        service,
        policy,
        detection_delay_s=config.detection_delay_s,
        boundaries=list(boundaries),
        observed_views=list(observed_views),
        observed_deltas=observed_deltas,
    )
    group = f"{policy.name}/{flow.name}"
    stats = FlowSchemeStats(flow=flow, scheme=policy.name)
    stats.decision_changes = len(spans) - 1
    _replay_windows(
        stats,
        cache,
        topology,
        boundaries,
        spans,
        actual_views,
        actual_deltas,
        group,
        config.collect_windows,
    )
    return stats


def run_replay(
    topology: Topology,
    timeline: ConditionTimeline,
    flows: Sequence[FlowSpec],
    service: ServiceSpec,
    scheme_names: Sequence[str] = STANDARD_SCHEME_NAMES,
    config: ReplayConfig = ReplayConfig(),
    *,
    parallel: bool = False,
    max_workers: int | None = None,
    time_shards: int = 1,
    use_cache: bool = False,
) -> ReplayResult:
    """Replay every flow under every scheme; the evaluation workhorse.

    ``parallel=True`` (or an explicit ``max_workers``/``time_shards``)
    routes through :func:`repro.exec.engine.run_replay_parallel`; the
    sharded result is exactly equal to the serial one.  ``use_cache``
    additionally serves shards from the content-addressed disk cache.
    """
    if parallel or max_workers is not None or time_shards > 1 or use_cache:
        from repro.exec.engine import run_replay_parallel

        result, _telemetry = run_replay_parallel(
            topology,
            timeline,
            flows,
            service,
            scheme_names,
            config,
            max_workers=max_workers,
            time_shards=time_shards,
            use_cache=use_cache,
        )
        return result
    require(bool(flows), "need at least one flow")
    require(bool(scheme_names), "need at least one scheme")
    boundaries = decision_boundaries(timeline, config.detection_delay_s)
    observed_views, observed_deltas = observed_views_with_deltas(
        timeline, boundaries, config.detection_delay_s
    )
    actual_views, actual_deltas = timeline.degraded_views(list(boundaries[:-1]))
    cache = _ProbabilityCache(
        service.deadline_ms,
        config.max_lossy_edges,
        hop_recovery=config.hop_recovery,
        recovery_extra_ms=config.recovery_extra_ms,
        max_recovery_lossy_edges=config.max_recovery_lossy_edges,
    )
    result = ReplayResult(service, config)
    for scheme_name in scheme_names:
        for flow in flows:
            policy = make_policy(scheme_name)
            stats = replay_flow(
                topology,
                timeline,
                flow,
                service,
                policy,
                config,
                boundaries=boundaries,
                observed_views=observed_views,
                actual_views=actual_views,
                cache=cache,
                observed_deltas=observed_deltas,
                actual_deltas=actual_deltas,
            )
            result.add(stats)
    return result
