"""Per-packet Monte-Carlo replay with common random numbers.

For case studies and validation we replay individual packets: each packet
copy on each edge survives or drops according to the edge's current loss
rate, drawn as a pure function of ``(seed, flow, edge, sequence number)``
(:func:`repro.util.rng.hash_uniform`).  Because the draw does not depend
on the scheme, every scheme is evaluated against the *identical* network
behaviour -- the Monte-Carlo analogue of the paper replaying all schemes
over the same recorded data.

Latency jitter: each traversed edge adds a small keyed jitter on top of
its current effective latency, so delivery-time CDFs (experiment E6) show
realistic spread rather than discrete spikes.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.dgraph import DisseminationGraph
from repro.core.graph import Edge, NodeId, Topology
from repro.netmodel.conditions import ConditionTimeline
from repro.netmodel.topology import FlowSpec, ServiceSpec
from repro.routing.base import RoutingPolicy
from repro.simulation.results import ReplayConfig
from repro.simulation.timeline import DecisionSpan, build_decision_timeline
from repro.util.rng import hash_uniform
from repro.util.validation import require

__all__ = ["PacketRecord", "PacketSimOutcome", "simulate_packets"]

_INF = float("inf")

#: Maximum per-edge latency jitter (milliseconds, uniform).
DEFAULT_JITTER_MS = 0.3


@dataclass(frozen=True)
class PacketRecord:
    """Outcome of one packet under one scheme."""

    sequence: int
    send_time_s: float
    arrival_ms: float | None  # one-way delivery latency; None = lost
    on_time: bool
    messages_sent: int
    graph_name: str

    @property
    def lost(self) -> bool:
        """True when the packet was never delivered."""
        return self.arrival_ms is None

    @property
    def late(self) -> bool:
        """True when delivered past the deadline."""
        return self.arrival_ms is not None and not self.on_time


@dataclass
class PacketSimOutcome:
    """All packets of one (flow, scheme) simulation window."""

    flow: FlowSpec
    scheme: str
    records: list[PacketRecord]

    @property
    def packets(self) -> int:
        """Number of packets simulated."""
        return len(self.records)

    @property
    def delivered_on_time(self) -> int:
        """Packets delivered within the deadline."""
        return sum(1 for r in self.records if r.on_time)

    @property
    def lost(self) -> int:
        """True when the packet was never delivered."""
        return sum(1 for r in self.records if r.lost)

    @property
    def late(self) -> int:
        """True when delivered past the deadline."""
        return sum(1 for r in self.records if r.late)

    @property
    def on_time_fraction(self) -> float:
        """Fraction of packets delivered on time."""
        if not self.records:
            return 1.0
        return self.delivered_on_time / len(self.records)

    @property
    def total_messages(self) -> int:
        """Total overlay transmissions across all packets."""
        return sum(r.messages_sent for r in self.records)

    def latencies_ms(self) -> list[float]:
        """One-way latencies of all delivered packets."""
        return [r.arrival_ms for r in self.records if r.arrival_ms is not None]


def _deliver_packet(
    graph: DisseminationGraph,
    timeline: ConditionTimeline,
    send_time_s: float,
    seed: int,
    flow_name: str,
    sequence: int,
    jitter_ms: float,
) -> tuple[float, int]:
    """One packet's flood: returns ``(arrival_ms_or_inf, messages_sent)``.

    Conditions are sampled at the send time (a packet's flight is
    milliseconds; condition windows are seconds).  A copy is transmitted on
    every graph edge whose tail node received the packet -- that is the
    message cost actually incurred -- and survives with ``1 - loss``.
    """
    adjacency: dict[NodeId, list[Edge]] = {}
    for edge in graph.sorted_edges():
        adjacency.setdefault(edge[0], []).append(edge)
    best: dict[NodeId, float] = {graph.source: 0.0}
    heap: list[tuple[float, NodeId]] = [(0.0, graph.source)]
    messages = 0
    transmitted: set[Edge] = set()
    while heap:
        time_now, node = heapq.heappop(heap)
        if time_now > best.get(node, _INF):
            continue
        for edge in adjacency.get(node, ()):
            if edge in transmitted:
                continue
            transmitted.add(edge)
            messages += 1
            state = timeline.state_at(edge, send_time_s)
            if state.loss_rate > 0.0:
                draw = hash_uniform(seed, "drop", flow_name, edge, sequence)
                if draw < state.loss_rate:
                    continue  # copy lost on this edge
            latency = timeline.topology.latency(*edge) + state.extra_latency_ms
            if jitter_ms > 0.0:
                latency += jitter_ms * hash_uniform(
                    seed, "jitter", flow_name, edge, sequence
                )
            candidate = time_now + latency
            neighbor = edge[1]
            if candidate < best.get(neighbor, _INF):
                best[neighbor] = candidate
                heapq.heappush(heap, (candidate, neighbor))
    return best.get(graph.destination, _INF), messages


def simulate_packets(
    topology: Topology,
    timeline: ConditionTimeline,
    flow: FlowSpec,
    service: ServiceSpec,
    policy: RoutingPolicy,
    start_s: float,
    end_s: float,
    seed: int = 0,
    config: ReplayConfig = ReplayConfig(),
    jitter_ms: float = DEFAULT_JITTER_MS,
    spans: Sequence[DecisionSpan] | None = None,
) -> PacketSimOutcome:
    """Simulate every packet of ``flow`` sent in ``[start_s, end_s)``.

    ``spans`` may supply a precomputed decision timeline (it must cover the
    window); otherwise the policy is stepped through the whole trace first.
    """
    require(0.0 <= start_s < end_s <= timeline.duration_s, "bad window")
    if spans is None:
        spans = build_decision_timeline(
            topology,
            timeline,
            flow,
            service,
            policy,
            detection_delay_s=config.detection_delay_s,
        )
    interval_s = service.send_interval_ms / 1000.0
    first_sequence = math.ceil(start_s / interval_s - 1e-9)
    records: list[PacketRecord] = []
    span_index = 0
    sequence = first_sequence
    while True:
        send_time = sequence * interval_s
        if send_time >= end_s:
            break
        while spans[span_index].end_s <= send_time:
            span_index += 1
        graph = spans[span_index].graph
        arrival, messages = _deliver_packet(
            graph, timeline, send_time, seed, flow.name, sequence, jitter_ms
        )
        if arrival == _INF:
            records.append(
                PacketRecord(sequence, send_time, None, False, messages, graph.name)
            )
        else:
            records.append(
                PacketRecord(
                    sequence,
                    send_time,
                    arrival,
                    arrival <= service.deadline_ms,
                    messages,
                    graph.name,
                )
            )
        sequence += 1
    return PacketSimOutcome(flow=flow, scheme=policy.name, records=records)
