"""Replay configuration and result containers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.netmodel.topology import FlowSpec, ServiceSpec
from repro.util.validation import require, require_non_negative

__all__ = [
    "ReplayConfig",
    "WindowRecord",
    "FlowSchemeStats",
    "SchemeTotals",
    "ReplayResult",
]


@dataclass(frozen=True)
class ReplayConfig:
    """Knobs shared by both replay engines.

    ``detection_delay_s`` models the end-to-end reaction latency of the
    monitoring + link-state machinery: a condition change becomes visible
    to routing decisions that much later.  The paper's overlay reacts
    within a couple of seconds; the E8 ablation sweeps this.
    """

    detection_delay_s: float = 1.0
    max_lossy_edges: int = 20
    collect_windows: bool = False
    #: Model one hop-by-hop retransmission per overlay link (the Spines
    #: link-layer recovery extension).  A recovered copy crosses an edge
    #: at ack-timeout (~2x link latency + ``recovery_extra_ms``) plus the
    #: retransmission's flight time, i.e. ~3x latency + extra.
    hop_recovery: bool = False
    recovery_extra_ms: float = 10.0
    #: Ternary enumeration cap when hop_recovery is on (3^L states).
    max_recovery_lossy_edges: int = 11

    def __post_init__(self) -> None:
        require_non_negative(self.detection_delay_s, "detection_delay_s")
        require(self.max_lossy_edges >= 1, "max_lossy_edges must be >= 1")
        require_non_negative(self.recovery_extra_ms, "recovery_extra_ms")
        require(
            self.max_recovery_lossy_edges >= 1,
            "max_recovery_lossy_edges must be >= 1",
        )


@dataclass(frozen=True)
class WindowRecord:
    """One constant-conditions window of one (flow, scheme) replay."""

    start_s: float
    end_s: float
    graph_name: str
    graph_edges: int
    on_time_probability: float
    lost_probability: float
    late_probability: float

    @property
    def duration_s(self) -> float:
        """Window length in seconds."""
        return self.end_s - self.start_s


@dataclass
class FlowSchemeStats:
    """Accumulated replay outcome for one flow under one scheme.

    *Unavailable seconds* follows the paper's framing: the expected total
    time during which a packet sent would not arrive within the deadline.
    ``lost`` (never delivered) and ``late`` (delivered past deadline) are
    its two components.
    """

    flow: FlowSpec
    scheme: str
    duration_s: float = 0.0
    unavailable_s: float = 0.0
    lost_s: float = 0.0
    late_s: float = 0.0
    message_seconds: float = 0.0  # integral of (graph edges) over time
    decision_changes: int = 0
    windows: list[WindowRecord] = field(default_factory=list)

    def add_window(
        self,
        start_s: float,
        end_s: float,
        graph_name: str,
        graph_edges: int,
        on_time: float,
        lost: float,
        late: float,
        collect: bool = False,
    ) -> None:
        """Accumulate one constant-conditions window into the totals."""
        duration = end_s - start_s
        require(duration >= 0, "window duration must be >= 0")
        self.duration_s += duration
        self.unavailable_s += (1.0 - on_time) * duration
        self.lost_s += lost * duration
        self.late_s += late * duration
        self.message_seconds += graph_edges * duration
        if collect:
            self.windows.append(
                WindowRecord(start_s, end_s, graph_name, graph_edges, on_time, lost, late)
            )

    # -- derived metrics --------------------------------------------------------

    @property
    def availability(self) -> float:
        """Fraction of time a packet sent would arrive on time."""
        if self.duration_s == 0:
            return 1.0
        return 1.0 - self.unavailable_s / self.duration_s

    @property
    def average_cost_messages(self) -> float:
        """Time-weighted average messages sent per packet."""
        if self.duration_s == 0:
            return 0.0
        return self.message_seconds / self.duration_s

    def expected_bad_packets(self, service: ServiceSpec) -> float:
        """Expected number of lost-or-late packets over the replay."""
        return self.unavailable_s * service.packets_per_second


@dataclass(frozen=True)
class SchemeTotals:
    """One scheme's results aggregated over all flows."""

    scheme: str
    flows: int
    duration_s: float
    unavailable_s: float
    lost_s: float
    late_s: float
    average_cost_messages: float

    @property
    def availability(self) -> float:
        """Fraction of time a packet sent would arrive on time."""
        if self.duration_s == 0:
            return 1.0
        return 1.0 - self.unavailable_s / self.duration_s

    def expected_bad_packets(self, service: ServiceSpec) -> float:
        """Expected lost-or-late packets over the replay."""
        return self.unavailable_s * service.packets_per_second


class ReplayResult:
    """All (flow, scheme) stats of one replay, with aggregation helpers."""

    def __init__(self, service: ServiceSpec, config: ReplayConfig) -> None:
        self.service = service
        self.config = config
        self._stats: dict[tuple[str, str], FlowSchemeStats] = {}

    def add(self, stats: FlowSchemeStats) -> None:
        """Record one (flow, scheme) stats object (duplicates rejected)."""
        key = (stats.flow.name, stats.scheme)
        require(key not in self._stats, f"duplicate stats for {key}")
        self._stats[key] = stats

    def get(self, flow: FlowSpec | str, scheme: str) -> FlowSchemeStats:
        """Stats for one (flow, scheme) pair (raises if absent)."""
        flow_name = flow if isinstance(flow, str) else flow.name
        key = (flow_name, scheme)
        require(key in self._stats, f"no stats recorded for {key}")
        return self._stats[key]

    @property
    def schemes(self) -> tuple[str, ...]:
        """Scheme names in insertion order."""
        seen: dict[str, None] = {}
        for _flow, scheme in self._stats:
            seen.setdefault(scheme, None)
        return tuple(seen)

    @property
    def flow_names(self) -> tuple[str, ...]:
        """Flow names in insertion order."""
        seen: dict[str, None] = {}
        for flow, _scheme in self._stats:
            seen.setdefault(flow, None)
        return tuple(seen)

    def per_flow(self, scheme: str) -> Mapping[str, FlowSchemeStats]:
        """Mapping of flow name to stats for one scheme."""
        return {
            flow: stats
            for (flow, stats_scheme), stats in self._stats.items()
            if stats_scheme == scheme
        }

    def totals(self, scheme: str) -> SchemeTotals:
        """One scheme's results aggregated over all flows."""
        entries = list(self.per_flow(scheme).values())
        require(bool(entries), f"no stats for scheme {scheme!r}")
        duration = sum(e.duration_s for e in entries)
        message_seconds = sum(e.message_seconds for e in entries)
        return SchemeTotals(
            scheme=scheme,
            flows=len(entries),
            duration_s=duration,
            unavailable_s=sum(e.unavailable_s for e in entries),
            lost_s=sum(e.lost_s for e in entries),
            late_s=sum(e.late_s for e in entries),
            average_cost_messages=message_seconds / duration if duration else 0.0,
        )

    def all_totals(self) -> list[SchemeTotals]:
        """Aggregated totals for every scheme."""
        return [self.totals(scheme) for scheme in self.schemes]

    def __iter__(self) -> Iterable[FlowSchemeStats]:
        return iter(self._stats.values())
