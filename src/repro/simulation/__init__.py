"""Trace replay engines.

The paper's methodology: replay recorded per-link conditions and compute,
for every packet and every routing scheme, whether it would have arrived
within the deadline, and at what cost.  Two engines implement this:

* :mod:`repro.simulation.interval` -- the *analytic* engine.  Within a
  window where all conditions are constant, the on-time delivery
  probability of a dissemination graph is computed exactly
  (:mod:`repro.simulation.reliability`), so multi-week traces reduce to a
  few thousand window computations instead of hundreds of millions of
  per-packet draws.  This powers the headline tables.

* :mod:`repro.simulation.packet_sim` -- the *per-packet Monte-Carlo*
  engine with common random numbers across schemes (every scheme sees the
  identical network behaviour).  This powers case-study timelines and
  cross-validates the analytic engine in tests.

Both consume the same per-flow *decision timeline*
(:mod:`repro.simulation.timeline`): the sequence of dissemination graphs a
policy installs as it observes (with detection delay) the changing
network.
"""

from repro.simulation.interval import replay_flow, run_replay
from repro.simulation.packet_sim import simulate_packets
from repro.simulation.reliability import delivery_probabilities, on_time_probability
from repro.simulation.results import FlowSchemeStats, ReplayConfig, ReplayResult
from repro.simulation.timeline import DecisionSpan, build_decision_timeline
from repro.simulation.validation import EngineComparison, compare_engines

__all__ = [
    "DecisionSpan",
    "EngineComparison",
    "compare_engines",
    "FlowSchemeStats",
    "ReplayConfig",
    "ReplayResult",
    "build_decision_timeline",
    "delivery_probabilities",
    "on_time_probability",
    "replay_flow",
    "run_replay",
    "simulate_packets",
]
