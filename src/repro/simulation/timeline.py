"""Per-flow decision timelines: which graph is installed when.

A routing policy's decisions depend on its *observed* view of the network,
which lags reality by the detection delay (loss-rate estimation windows
plus link-state propagation).  Conditions change at the trace's change
times; the policy's view therefore changes at those times *shifted* by the
delay.  Between consecutive boundaries of the merged set, both the real
conditions and every scheme's installed graph are constant -- the unit of
work for the analytic engine, and the schedule the packet engine follows.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Sequence

from repro.core.dgraph import DisseminationGraph
from repro.core.graph import Edge, Topology
from repro.netmodel.conditions import ConditionTimeline, LinkState
from repro.netmodel.topology import FlowSpec, ServiceSpec
from repro.routing.base import RoutingPolicy
from repro.util.validation import require, require_non_negative

__all__ = [
    "DecisionSpan",
    "build_decision_timeline",
    "decision_boundaries",
    "observed_views_with_deltas",
]

#: Boundaries closer than this are merged into one.  Detection-delay
#: echoes (``change + delay``) can land within float noise of another
#: change time; without the tolerance the merged boundary list contains
#: near-duplicate entries that turn into zero-width accumulation windows.
_BOUNDARY_EPS = 1e-9


@dataclass(frozen=True)
class DecisionSpan:
    """One interval during which a scheme keeps one graph installed."""

    start_s: float
    end_s: float
    graph: DisseminationGraph

    def __post_init__(self) -> None:
        require(self.end_s > self.start_s, "span must have positive length")

    @property
    def duration_s(self) -> float:
        """Span length in seconds."""
        return self.end_s - self.start_s


def decision_boundaries(
    timeline: ConditionTimeline, detection_delay_s: float
) -> list[float]:
    """Merged boundary set: condition changes and their delayed echoes."""
    require_non_negative(detection_delay_s, "detection_delay_s")
    boundaries = set(timeline.change_times)
    if detection_delay_s > 0:
        for change in timeline.change_times:
            echoed = change + detection_delay_s
            if echoed < timeline.duration_s:
                boundaries.add(echoed)
    boundaries.add(0.0)
    boundaries.add(timeline.duration_s)
    ordered = sorted(b for b in boundaries if 0.0 <= b <= timeline.duration_s)
    return _dedupe_boundaries(ordered, timeline.duration_s)


def _dedupe_boundaries(ordered: list[float], duration_s: float) -> list[float]:
    """Collapse boundaries within :data:`_BOUNDARY_EPS` of each other.

    Each near-duplicate cluster keeps its first (smallest) member, except
    that an exact ``duration_s`` always survives so the trace keeps its
    closing boundary.  Boundary lists without near-duplicates -- every
    reference trace -- pass through unchanged.
    """
    deduped: list[float] = []
    for boundary in ordered:
        if not deduped or boundary - deduped[-1] > _BOUNDARY_EPS:
            deduped.append(boundary)
        elif boundary == duration_s:
            if deduped[-1] == 0.0:  # degenerate sub-epsilon trace
                deduped.append(boundary)
            else:
                deduped[-1] = boundary
    return deduped


def observed_view(
    timeline: ConditionTimeline, now_s: float, detection_delay_s: float
) -> dict:
    """The network view a daemon holds at ``now_s``: reality at ``now - delay``."""
    observed_time = now_s - detection_delay_s
    if observed_time < 0.0:
        return {}
    return timeline.degraded_at(observed_time)


def observed_views_with_deltas(
    timeline: ConditionTimeline,
    boundaries: Sequence[float],
    detection_delay_s: float,
) -> tuple[list[dict], list[frozenset[Edge]]]:
    """Per-boundary observed views plus changed-edge sets, in one walk.

    Equivalent to ``[observed_view(timeline, b, delay) for b in
    boundaries[:-1]]`` but computed incrementally by a single delta walk
    over the compiled condition segments instead of a full per-boundary
    edge scan.  ``deltas[i]`` names the edges whose observed state
    differs from boundary ``i - 1``'s view (``deltas[0]`` is relative to
    an empty view), the hint :func:`build_decision_timeline` forwards to
    the policies.
    """
    require_non_negative(detection_delay_s, "detection_delay_s")
    query_times = [b - detection_delay_s for b in boundaries[:-1]]
    return timeline.degraded_views(query_times)


def build_decision_timeline(
    topology: Topology,
    timeline: ConditionTimeline,
    flow: FlowSpec,
    service: ServiceSpec,
    policy: RoutingPolicy,
    detection_delay_s: float = 1.0,
    boundaries: list[float] | None = None,
    observed_views: list[dict] | None = None,
    observed_deltas: Sequence[frozenset[Edge]] | None = None,
) -> list[DecisionSpan]:
    """Step ``policy`` through the trace; return its installed-graph spans.

    The policy must be attached to ``(topology, flow, service)`` already,
    or unattached (it will be attached here).  Consecutive spans with the
    same graph are merged, so static schemes yield a single span (they
    are stepped exactly once: ``is_dynamic`` is False means the decision
    cannot depend on conditions or time).

    ``boundaries``/``observed_views``/``observed_deltas`` let callers
    precompute the merged boundary list and the per-boundary observed
    views once and share them across the many (flow, scheme) pairs of a
    full replay.  ``observed_deltas[i]`` must name exactly the edges
    whose state differs between views ``i - 1`` and ``i`` (see
    :func:`observed_views_with_deltas`); it is forwarded to
    ``policy.update`` so caching policies can skip irrelevant changes.
    Boundaries must be strictly increasing -- zero-width windows are a
    build error, not something to skip silently.
    """
    if policy._topology is None:  # noqa: SLF001 - attach-once convenience
        policy.attach(topology, flow, service)
    if boundaries is None:
        boundaries = decision_boundaries(timeline, detection_delay_s)
    require(len(boundaries) >= 2, "need at least two decision boundaries")
    for left, right in zip(boundaries, boundaries[1:]):
        require(
            right > left,
            f"boundaries must be strictly increasing ({right} after {left})",
        )
    if observed_views is None:
        observed_views, observed_deltas = observed_views_with_deltas(
            timeline, boundaries, detection_delay_s
        )
    require(
        len(observed_views) == len(boundaries) - 1,
        "observed_views must align with boundaries",
    )
    require(
        observed_deltas is None or len(observed_deltas) == len(observed_views),
        "observed_deltas must align with observed_views",
    )
    if not policy.is_dynamic:
        graph = policy.update(boundaries[0], observed_views[0])
        return [DecisionSpan(boundaries[0], boundaries[-1], graph)]
    spans: list[DecisionSpan] = []
    for index in range(len(boundaries) - 1):
        start, end = boundaries[index], boundaries[index + 1]
        changed = None if observed_deltas is None else observed_deltas[index]
        graph = policy.update(start, observed_views[index], changed=changed)
        if spans and spans[-1].graph == graph:
            spans[-1] = DecisionSpan(spans[-1].start_s, end, graph)
        else:
            spans.append(DecisionSpan(start, end, graph))
    return spans


def graph_at(spans: list[DecisionSpan], time_s: float) -> DisseminationGraph:
    """The graph installed at ``time_s`` (spans must be contiguous)."""
    require(bool(spans), "empty decision timeline")
    starts = [span.start_s for span in spans]
    index = bisect_right(starts, time_s) - 1
    index = max(0, index)
    span = spans[index]
    require(
        span.start_s <= time_s < span.end_s or time_s == spans[-1].end_s,
        f"time {time_s} outside decision timeline",
    )
    return span.graph
