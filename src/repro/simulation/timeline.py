"""Per-flow decision timelines: which graph is installed when.

A routing policy's decisions depend on its *observed* view of the network,
which lags reality by the detection delay (loss-rate estimation windows
plus link-state propagation).  Conditions change at the trace's change
times; the policy's view therefore changes at those times *shifted* by the
delay.  Between consecutive boundaries of the merged set, both the real
conditions and every scheme's installed graph are constant -- the unit of
work for the analytic engine, and the schedule the packet engine follows.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from repro.core.dgraph import DisseminationGraph
from repro.core.graph import Topology
from repro.netmodel.conditions import ConditionTimeline, LinkState
from repro.netmodel.topology import FlowSpec, ServiceSpec
from repro.routing.base import RoutingPolicy
from repro.util.validation import require, require_non_negative

__all__ = ["DecisionSpan", "build_decision_timeline", "decision_boundaries"]


@dataclass(frozen=True)
class DecisionSpan:
    """One interval during which a scheme keeps one graph installed."""

    start_s: float
    end_s: float
    graph: DisseminationGraph

    def __post_init__(self) -> None:
        require(self.end_s > self.start_s, "span must have positive length")

    @property
    def duration_s(self) -> float:
        """Span length in seconds."""
        return self.end_s - self.start_s


def decision_boundaries(
    timeline: ConditionTimeline, detection_delay_s: float
) -> list[float]:
    """Merged boundary set: condition changes and their delayed echoes."""
    require_non_negative(detection_delay_s, "detection_delay_s")
    boundaries = set(timeline.change_times)
    if detection_delay_s > 0:
        for change in timeline.change_times:
            echoed = change + detection_delay_s
            if echoed < timeline.duration_s:
                boundaries.add(echoed)
    boundaries.add(0.0)
    boundaries.add(timeline.duration_s)
    return sorted(b for b in boundaries if 0.0 <= b <= timeline.duration_s)


def observed_view(
    timeline: ConditionTimeline, now_s: float, detection_delay_s: float
) -> dict:
    """The network view a daemon holds at ``now_s``: reality at ``now - delay``."""
    observed_time = now_s - detection_delay_s
    if observed_time < 0.0:
        return {}
    return timeline.degraded_at(observed_time)


def build_decision_timeline(
    topology: Topology,
    timeline: ConditionTimeline,
    flow: FlowSpec,
    service: ServiceSpec,
    policy: RoutingPolicy,
    detection_delay_s: float = 1.0,
    boundaries: list[float] | None = None,
    observed_views: list[dict] | None = None,
) -> list[DecisionSpan]:
    """Step ``policy`` through the trace; return its installed-graph spans.

    The policy must be attached to ``(topology, flow, service)`` already,
    or unattached (it will be attached here).  Consecutive spans with the
    same graph are merged, so static schemes yield a single span.

    ``boundaries``/``observed_views`` let callers precompute the merged
    boundary list and the per-boundary observed views once and share them
    across the many (flow, scheme) pairs of a full replay.
    """
    if policy._topology is None:  # noqa: SLF001 - attach-once convenience
        policy.attach(topology, flow, service)
    if boundaries is None:
        boundaries = decision_boundaries(timeline, detection_delay_s)
    if observed_views is None:
        observed_views = [
            observed_view(timeline, b, detection_delay_s) for b in boundaries[:-1]
        ]
    require(
        len(observed_views) == len(boundaries) - 1,
        "observed_views must align with boundaries",
    )
    spans: list[DecisionSpan] = []
    for index in range(len(boundaries) - 1):
        start, end = boundaries[index], boundaries[index + 1]
        if end <= start:
            continue
        graph = policy.update(start, observed_views[index])
        if spans and spans[-1].graph == graph:
            spans[-1] = DecisionSpan(spans[-1].start_s, end, graph)
        else:
            spans.append(DecisionSpan(start, end, graph))
    return spans


def graph_at(spans: list[DecisionSpan], time_s: float) -> DisseminationGraph:
    """The graph installed at ``time_s`` (spans must be contiguous)."""
    require(bool(spans), "empty decision timeline")
    starts = [span.start_s for span in spans]
    index = bisect_right(starts, time_s) - 1
    index = max(0, index)
    span = spans[index]
    require(
        span.start_s <= time_s < span.end_s or time_s == spans[-1].end_s,
        f"time {time_s} outside decision timeline",
    )
    return span.graph
