"""Cross-engine validation utilities.

The analytic interval engine and the packet-level Monte-Carlo engine
compute the same quantity two completely different ways; agreement
between them is the strongest internal-consistency check the replay
pipeline has.  This module packages that comparison for tests, benches,
and users replaying their own traces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.graph import Topology
from repro.netmodel.conditions import ConditionTimeline
from repro.netmodel.topology import FlowSpec, ServiceSpec
from repro.routing.registry import make_policy
from repro.simulation.interval import replay_flow
from repro.simulation.packet_sim import simulate_packets
from repro.simulation.results import ReplayConfig

__all__ = ["EngineComparison", "compare_engines"]


@dataclass(frozen=True)
class EngineComparison:
    """One (flow, scheme) comparison between the two replay engines."""

    flow: FlowSpec
    scheme: str
    window_s: tuple[float, float]
    analytic_on_time_fraction: float
    packet_on_time_fraction: float
    packets: int

    @property
    def difference(self) -> float:
        """Absolute disagreement between the two engines."""
        return abs(self.analytic_on_time_fraction - self.packet_on_time_fraction)

    @property
    def tolerance(self) -> float:
        """Three-sigma binomial sampling tolerance for this sample size.

        The packet engine samples ``packets`` Bernoulli outcomes whose
        mean the analytic engine computes exactly, so the difference
        should stay within ~3 standard errors (plus a small allowance for
        boundary quantisation of the packet grid).
        """
        p = min(max(self.analytic_on_time_fraction, 1e-6), 1 - 1e-6)
        sigma = math.sqrt(p * (1 - p) / max(self.packets, 1))
        return 3.0 * sigma + 0.002

    @property
    def consistent(self) -> bool:
        """True when the engines agree within sampling tolerance."""
        return self.difference <= self.tolerance


def compare_engines(
    topology: Topology,
    timeline: ConditionTimeline,
    flow: FlowSpec,
    service: ServiceSpec,
    scheme_names: Sequence[str],
    window: tuple[float, float] | None = None,
    seed: int = 0,
    config: ReplayConfig = ReplayConfig(),
) -> list[EngineComparison]:
    """Compare both engines for one flow across schemes.

    The analytic fraction is computed over the same window as the packet
    simulation by replaying a timeline trimmed to it.
    """
    if window is None:
        window = (0.0, timeline.duration_s)
    start, end = window
    comparisons = []
    for scheme in scheme_names:
        analytic = replay_flow(
            topology, timeline, flow, service, make_policy(scheme), config
        )
        # Restrict the analytic result to the window using its windows? we
        # instead recompute over the full trace and require the window to
        # be the whole trace, or use per-window records.
        if (start, end) == (0.0, timeline.duration_s):
            analytic_fraction = 1.0 - analytic.unavailable_s / analytic.duration_s
        else:
            windowed = replay_flow(
                topology,
                timeline,
                flow,
                service,
                make_policy(scheme),
                ReplayConfig(
                    detection_delay_s=config.detection_delay_s,
                    max_lossy_edges=config.max_lossy_edges,
                    collect_windows=True,
                ),
            )
            covered = 0.0
            on_time_weighted = 0.0
            for record in windowed.windows:
                overlap = min(end, record.end_s) - max(start, record.start_s)
                if overlap <= 0:
                    continue
                covered += overlap
                on_time_weighted += record.on_time_probability * overlap
            analytic_fraction = on_time_weighted / covered if covered else 1.0
        outcome = simulate_packets(
            topology,
            timeline,
            flow,
            service,
            make_policy(scheme),
            start,
            end,
            seed=seed,
            config=config,
            jitter_ms=0.0,
        )
        comparisons.append(
            EngineComparison(
                flow=flow,
                scheme=scheme,
                window_s=(start, end),
                analytic_on_time_fraction=analytic_fraction,
                packet_on_time_fraction=outcome.on_time_fraction,
                packets=outcome.packets,
            )
        )
    return comparisons
