"""Timely, reliable, cost-effective Internet transport via dissemination graphs.

A from-scratch Python reproduction of *"Timely, Reliable, and
Cost-Effective Internet Transport Service Using Dissemination Graphs"*
(Babay, Wagner, Dinitz, Amir -- IEEE ICDCS 2017).

Quick tour (see ``examples/quickstart.py`` for runnable code)::

    from repro import (
        build_reference_topology, reference_flows, ServiceSpec,
        Scenario, generate_timeline, run_replay,
    )

    topology = build_reference_topology()
    events, timeline = generate_timeline(topology, Scenario(), seed=7)
    result = run_replay(
        topology, timeline, reference_flows(), ServiceSpec()
    )
    for totals in result.all_totals():
        print(totals.scheme, totals.availability)

Subpackages:

* :mod:`repro.core` -- dissemination graphs, builders, algorithms,
  problem detection, wire encoding;
* :mod:`repro.routing` -- the six routing schemes;
* :mod:`repro.netmodel` -- topology, conditions, scenario generation,
  trace persistence;
* :mod:`repro.simulation` -- analytic and packet-level replay engines;
* :mod:`repro.exec` -- parallel execution engine with result caching;
* :mod:`repro.analysis` -- metrics, classification, tables;
* :mod:`repro.overlay` -- the message-level overlay-network substrate.
"""

from repro.core.dgraph import DisseminationGraph
from repro.core.graph import Topology
from repro.exec.engine import run_replay_parallel
from repro.netmodel.scenarios import Scenario, generate_timeline
from repro.netmodel.topology import (
    FlowSpec,
    ServiceSpec,
    build_reference_topology,
    reference_flows,
)
from repro.routing.registry import STANDARD_SCHEME_NAMES, make_policy
from repro.simulation.interval import run_replay
from repro.simulation.results import ReplayConfig

__version__ = "1.0.0"

__all__ = [
    "DisseminationGraph",
    "FlowSpec",
    "ReplayConfig",
    "STANDARD_SCHEME_NAMES",
    "Scenario",
    "ServiceSpec",
    "Topology",
    "__version__",
    "build_reference_topology",
    "generate_timeline",
    "make_policy",
    "reference_flows",
    "run_replay",
    "run_replay_parallel",
]
