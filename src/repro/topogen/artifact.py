"""The canonical artifact of one generated topology.

A :class:`GeneratedTopology` is the *description* of a generated overlay:
family, seed, size, the family's parameters, every site with its
coordinates and tier, and every undirected link with its latency.  The
description has one canonical JSON form (sorted keys, no whitespace),
and its SHA-256 over that form is the artifact's content digest -- the
same stable-identity pattern ``CompiledScenario`` uses for scenarios.

Byte identity is the contract: generating the same ``(family, size,
seed)`` in any process yields the identical JSON document, and a file
written by ``repro topology generate`` round-trips exactly (link
latencies are stored, not recomputed, so the loaded
:class:`~repro.core.graph.Topology` equals the generated one
fingerprint-for-fingerprint).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.graph import NodeId, Topology
from repro.util.validation import require

__all__ = ["ARTIFACT_VERSION", "GeneratedTopology", "TIER_RANK"]

#: Bumped whenever the description schema or any generator's output
#: changes -- a digest only identifies a topology *within* one version.
ARTIFACT_VERSION = 1

#: Numeric rank stored as the ``tier`` node attribute (topology node
#: attributes are numeric); lower = closer to the core.
TIER_RANK = {"core": 0, "region": 1, "edge": 2, "site": 1}

#: One node: ``(id, lat, lon, tier)``.
NodeRow = tuple[NodeId, float, float, str]

#: One undirected link: ``(a, b, latency_ms)`` with ``a < b``.
LinkRow = tuple[NodeId, NodeId, float]


def _canonical_json(document: dict) -> str:
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class GeneratedTopology:
    """One generated overlay, as canonical data (see module docstring)."""

    family: str
    seed: int
    size: int
    params: tuple[tuple[str, object], ...]  # sorted (name, value) pairs
    nodes: tuple[NodeRow, ...]  # sorted by node id
    links: tuple[LinkRow, ...]  # sorted, each with a < b
    version: int = ARTIFACT_VERSION
    _topology: list = field(
        default_factory=list, repr=False, compare=False
    )  # one-element memo of the built Topology

    def __post_init__(self) -> None:
        require(self.size == len(self.nodes), "size must match the node count")
        require(len(self.nodes) >= 2, "a topology needs at least 2 nodes")
        ids = [row[0] for row in self.nodes]
        require(ids == sorted(ids) and len(set(ids)) == len(ids),
                "nodes must be sorted and unique")
        for a, b, latency in self.links:
            require(a < b, f"link endpoints must be ordered, got {a!r}, {b!r}")
            require(latency > 0.0, f"link {a}->{b} latency must be positive")

    # -- identity ------------------------------------------------------------

    def describe(self) -> dict:
        """The canonical description (digest excluded)."""
        return {
            "version": self.version,
            "family": self.family,
            "seed": self.seed,
            "size": self.size,
            "params": {name: value for name, value in self.params},
            "nodes": [list(row) for row in self.nodes],
            "links": [list(row) for row in self.links],
        }

    @property
    def digest(self) -> str:
        """SHA-256 of the canonical description JSON."""
        text = _canonical_json(self.describe())
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def to_json(self) -> str:
        """The artifact document: description + digest, one canonical line."""
        return _canonical_json({**self.describe(), "digest": self.digest}) + "\n"

    @property
    def name(self) -> str:
        """Topology name; carries the generation triple for telemetry."""
        return f"topogen-{self.family}-{self.size}-s{self.seed}"

    def param(self, name: str) -> object:
        """One generation parameter by name (one-line error if absent)."""
        for key, value in self.params:
            if key == name:
                return value
        raise ValueError(
            f"unknown topogen param {name!r}; "
            f"known: {', '.join(key for key, _ in self.params)}"
        )

    # -- materialisation ----------------------------------------------------

    def topology(self) -> Topology:
        """The frozen :class:`Topology` this artifact describes (memoised)."""
        if self._topology:
            return self._topology[0]
        topology = Topology(name=self.name)
        for node, lat, lon, tier in self.nodes:
            topology.add_node(node, lat=lat, lon=lon, tier=TIER_RANK[tier])
        for a, b, latency in self.links:
            topology.add_link(a, b, latency)
        topology.freeze()
        topology.validate()
        self._topology.append(topology)
        return topology

    # -- persistence ---------------------------------------------------------

    @classmethod
    def from_description(cls, document: object) -> "GeneratedTopology":
        """Validate one parsed JSON document into an artifact.

        Raises :class:`~repro.util.validation.ValidationError` with a
        one-line message on any malformed input; a present ``digest``
        field must match the description's recomputed digest.
        """
        require(isinstance(document, dict), "topology document must be a JSON object")
        assert isinstance(document, dict)
        version = document.get("version")
        require(
            version == ARTIFACT_VERSION,
            f"unsupported topology artifact version {version!r} "
            f"(this build reads version {ARTIFACT_VERSION})",
        )
        missing = sorted(
            {"family", "seed", "size", "params", "nodes", "links"} - set(document)
        )
        require(not missing, f"topology document missing field(s): {', '.join(missing)}")
        family, seed, size = document["family"], document["seed"], document["size"]
        require(isinstance(family, str), "family must be a string")
        require(isinstance(seed, int) and not isinstance(seed, bool),
                "seed must be an integer")
        require(isinstance(size, int) and not isinstance(size, bool),
                "size must be an integer")
        params = document["params"]
        require(isinstance(params, dict), "params must be an object")
        nodes: list[NodeRow] = []
        for row in document["nodes"]:
            require(
                isinstance(row, list) and len(row) == 4
                and isinstance(row[0], str) and isinstance(row[3], str),
                f"malformed node row {row!r} (want [id, lat, lon, tier])",
            )
            require(row[3] in TIER_RANK,
                    f"unknown tier {row[3]!r}; known: {', '.join(sorted(TIER_RANK))}")
            nodes.append((row[0], float(row[1]), float(row[2]), row[3]))
        links: list[LinkRow] = []
        for row in document["links"]:
            require(
                isinstance(row, list) and len(row) == 3
                and isinstance(row[0], str) and isinstance(row[1], str),
                f"malformed link row {row!r} (want [a, b, latency_ms])",
            )
            links.append((row[0], row[1], float(row[2])))
        artifact = cls(
            family=family,
            seed=seed,
            size=size,
            params=tuple(sorted(params.items())),
            nodes=tuple(nodes),
            links=tuple(links),
        )
        declared = document.get("digest")
        if declared is not None:
            require(
                declared == artifact.digest,
                f"topology digest mismatch: file says {declared!r}, "
                f"content is {artifact.digest!r} (corrupt or hand-edited)",
            )
        return artifact

    @classmethod
    def loads(cls, text: str) -> "GeneratedTopology":
        """Parse one artifact JSON document from a string."""
        try:
            document = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValueError(f"topology document is not valid JSON: {error}") from error
        return cls.from_description(document)

    @classmethod
    def load(cls, path: str | Path) -> "GeneratedTopology":
        """Read one artifact file (one-line error on unreadable/bad input)."""
        return cls.loads(Path(path).read_text())

    def dump(self, path: str | Path) -> Path:
        """Write the canonical artifact document to ``path``."""
        target = Path(path)
        target.write_text(self.to_json())
        return target
