"""Topology family constructors: random-geometric, Waxman, ISP tiers.

All families share one construction discipline:

1. **Place** sites geographically (a continental-US-ish bounding box),
   with every coordinate rounded to six decimals *before* any geometry,
   so the stored artifact and the in-memory graph are computed from
   identical numbers.
2. **Link** per the family's model, with latency from great-circle
   distance via :func:`repro.netmodel.geo.fiber_latency_ms`.
3. **Patch** the mesh up to the biconnectivity every redundant routing
   scheme needs: connect components with the shortest cross link, then
   repeatedly bridge around articulation points (found with one
   iterative Tarjan pass per round, so patching stays near-linear where
   the legacy generator's per-site reachability scan was quadratic).

Determinism: every random draw is keyed on stable names through a
:class:`~repro.util.rng.DeterministicStream`, every iteration is over
sorted sequences, and no draw depends on a prior draw's acceptance --
so ``(family, size, seed)`` fixes the artifact byte for byte.

Scale envelope: N=50 is instant, N=1000 (the registry's cap) costs a
few seconds, dominated by the pairwise great-circle pass.  The declared
``latency_ms`` bounds in each artifact's params are the per-hop floor
(:mod:`repro.netmodel.geo`'s fixed overhead) and the box-diagonal
latency; property tests hold every emitted link inside them.
"""

from __future__ import annotations

import math

from repro.core.graph import NodeId
from repro.netmodel.geo import fiber_latency_ms, great_circle_km
from repro.util.rng import DeterministicStream
from repro.util.validation import require

__all__ = [
    "build_random_geometric",
    "build_waxman",
    "build_isp_hierarchy",
    "build_continental",
]

# Continental-US-ish bounding box shared by the new families (the legacy
# continental generator keeps its own, recorded in its params).
_BOX = (25.0, 49.0, -124.0, -67.0)  # lat_min, lat_max, lon_min, lon_max

_KM_PER_DEG = 111.32  # mean km per degree of latitude

Position = tuple[float, float]
Adjacency = dict[NodeId, set[NodeId]]


def _box_span_km(box: tuple[float, float, float, float]) -> tuple[float, float]:
    """(north-south, east-west) extent of the box in km."""
    lat_min, lat_max, lon_min, lon_max = box
    mid_lat = math.radians((lat_min + lat_max) / 2.0)
    ns = (lat_max - lat_min) * _KM_PER_DEG
    ew = (lon_max - lon_min) * _KM_PER_DEG * math.cos(mid_lat)
    return ns, ew


def _latency_bounds(box: tuple[float, float, float, float]) -> tuple[float, float]:
    """Declared (min, max) link latency: hop floor to box diagonal."""
    lat_min, lat_max, lon_min, lon_max = box
    return (
        fiber_latency_ms(lat_min, lon_min, lat_min, lon_min),
        fiber_latency_ms(lat_min, lon_min, lat_max, lon_max),
    )


def _round_position(lat: float, lon: float) -> Position:
    return (round(lat, 6), round(lon, 6))


def _uniform_positions(
    stream: DeterministicStream,
    names: list[NodeId],
    box: tuple[float, float, float, float],
) -> dict[NodeId, Position]:
    lat_min, lat_max, lon_min, lon_max = box
    return {
        name: _round_position(
            stream.uniform_between(lat_min, lat_max, "lat", name),
            stream.uniform_between(lon_min, lon_max, "lon", name),
        )
        for name in names
    }


def _node_names(prefix: str, count: int) -> list[NodeId]:
    width = max(2, len(str(count - 1)))
    return [f"{prefix}{index:0{width}d}" for index in range(count)]


def _distance(positions: dict[NodeId, Position], a: NodeId, b: NodeId) -> float:
    return great_circle_km(*positions[a], *positions[b])


def _add_link(adjacency: Adjacency, a: NodeId, b: NodeId) -> None:
    adjacency[a].add(b)
    adjacency[b].add(a)


# -- biconnectivity patching (shared) ---------------------------------------------


def _components(adjacency: Adjacency, removed: NodeId | None) -> list[list[NodeId]]:
    """Connected components of the graph minus ``removed``, each sorted;
    components ordered by (size, first node) so patching is deterministic."""
    seen: set[NodeId] = set()
    components: list[list[NodeId]] = []
    for start in sorted(adjacency):
        if start == removed or start in seen:
            continue
        component = [start]
        seen.add(start)
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for neighbor in adjacency[node]:
                if neighbor != removed and neighbor not in seen:
                    seen.add(neighbor)
                    component.append(neighbor)
                    frontier.append(neighbor)
        components.append(sorted(component))
    components.sort(key=lambda component: (len(component), component[0]))
    return components


def _articulation_points(adjacency: Adjacency) -> list[NodeId]:
    """Cut vertices via one iterative Tarjan DFS pass, sorted.

    O(V + E) per call, which is what lets patching scale to N=1000 --
    the legacy generator's check ran a full reachability scan per site.
    """
    index: dict[NodeId, int] = {}
    low: dict[NodeId, int] = {}
    cuts: set[NodeId] = set()
    counter = 0
    for root in sorted(adjacency):
        if root in index:
            continue
        # Stack entries: (node, parent, iterator over sorted neighbors).
        index[root] = low[root] = counter
        counter += 1
        root_children = 0
        stack = [(root, None, iter(sorted(adjacency[root])))]
        while stack:
            node, parent, neighbors = stack[-1]
            advanced = False
            for neighbor in neighbors:
                if neighbor == parent:
                    continue
                if neighbor in index:
                    low[node] = min(low[node], index[neighbor])
                    continue
                index[neighbor] = low[neighbor] = counter
                counter += 1
                if node == root:
                    root_children += 1
                stack.append((neighbor, node, iter(sorted(adjacency[neighbor]))))
                advanced = True
                break
            if advanced:
                continue
            stack.pop()
            if parent is not None:
                low[parent] = min(low[parent], low[node])
                if parent != root and low[node] >= index[parent]:
                    cuts.add(parent)
        if root_children >= 2:
            cuts.add(root)
    return sorted(cuts)


def _shortest_cross_link(
    positions: dict[NodeId, Position],
    adjacency: Adjacency,
    group_a: list[NodeId],
    group_b: list[NodeId],
) -> tuple[NodeId, NodeId]:
    best: tuple[NodeId, NodeId] | None = None
    best_km = float("inf")
    for a in group_a:
        for b in group_b:
            if b in adjacency[a]:
                continue
            km = _distance(positions, a, b)
            if km < best_km or (km == best_km and best is not None and (a, b) < best):
                best_km = km
                best = (a, b)
    require(best is not None, "no cross link available")
    assert best is not None
    return best


def _patch_biconnected(
    positions: dict[NodeId, Position], adjacency: Adjacency
) -> int:
    """Add shortest links until the graph is biconnected; returns the count.

    First joins disconnected components, then, while any articulation
    point remains, bridges that point's smallest split-off component to
    the rest.  Every added link merges two components of some cut, so
    the loop terminates; on the sparse meshes the families emit it runs
    a handful of rounds.
    """
    added = 0
    components = _components(adjacency, removed=None)
    while len(components) > 1:
        rest = sorted(node for component in components[1:] for node in component)
        _add_link(
            adjacency,
            *_shortest_cross_link(positions, adjacency, components[0], rest),
        )
        added += 1
        components = _components(adjacency, removed=None)
    while True:
        cuts = _articulation_points(adjacency)
        if not cuts:
            return added
        cut = cuts[0]
        split = _components(adjacency, removed=cut)
        rest = sorted(node for component in split[1:] for node in component)
        _add_link(
            adjacency,
            *_shortest_cross_link(positions, adjacency, split[0], rest),
        )
        added += 1


# -- artifact assembly -------------------------------------------------------------


def _assemble(
    family: str,
    seed: int,
    positions: dict[NodeId, Position],
    adjacency: Adjacency,
    tiers: dict[NodeId, str],
    params: dict[str, object],
    box: tuple[float, float, float, float],
):
    from repro.topogen.artifact import GeneratedTopology

    patched = _patch_biconnected(positions, adjacency)
    low, high = _latency_bounds(box)
    nodes = tuple(
        (node, positions[node][0], positions[node][1], tiers[node])
        for node in sorted(positions)
    )
    links = []
    for a in sorted(adjacency):
        for b in sorted(adjacency[a]):
            if a < b:
                links.append((a, b, fiber_latency_ms(*positions[a], *positions[b])))
    return GeneratedTopology(
        family=family,
        seed=seed,
        size=len(nodes),
        params=tuple(
            sorted(
                {
                    **params,
                    "box": list(box),
                    "patched_links": patched,
                    "latency_ms_min": low,
                    "latency_ms_max": high,
                }.items()
            )
        ),
        nodes=nodes,
        links=tuple(sorted(links)),
    )


# -- family: random geometric ------------------------------------------------------


def build_random_geometric(size: int, seed: int):
    """Uniform sites; link every pair within the degree-calibrated radius.

    The radius is solved from the box area so the *expected* degree stays
    near the target as N grows (r^2 ~ 1/N), the classic scaling that
    keeps random-geometric graphs connected without going dense.
    """
    target_degree = 6.0
    stream = DeterministicStream(seed, "topogen", "random-geo")
    names = _node_names("G", size)
    positions = _uniform_positions(stream, names, _BOX)
    ns, ew = _box_span_km(_BOX)
    radius_km = math.sqrt(target_degree * ns * ew / (math.pi * size))
    adjacency: Adjacency = {name: set() for name in names}
    for index, a in enumerate(names):
        for b in names[index + 1 :]:
            if _distance(positions, a, b) <= radius_km:
                _add_link(adjacency, a, b)
    return _assemble(
        "random-geo",
        seed,
        positions,
        adjacency,
        dict.fromkeys(names, "site"),
        {"target_degree": target_degree, "radius_km": round(radius_km, 3)},
        _BOX,
    )


# -- family: Waxman ----------------------------------------------------------------


def build_waxman(size: int, seed: int):
    """Waxman random graph: link probability decays with distance.

    ``P(u, v) = alpha * exp(-d(u, v) / (beta * L))`` with ``L`` the
    longest pairwise distance.  ``alpha`` is calibrated against the
    realised distance distribution so the expected degree matches the
    target at every N -- the standard fixed-alpha form densifies
    quadratically and would be unusable at N=1000.
    """
    target_degree = 6.0
    beta = 0.3
    stream = DeterministicStream(seed, "topogen", "waxman")
    names = _node_names("W", size)
    positions = _uniform_positions(stream, names, _BOX)
    pairs: list[tuple[NodeId, NodeId, float]] = []
    longest = 0.0
    for index, a in enumerate(names):
        for b in names[index + 1 :]:
            km = _distance(positions, a, b)
            longest = max(longest, km)
            pairs.append((a, b, km))
    weight_sum = 0.0
    weights = []
    for a, b, km in pairs:
        weight = math.exp(-km / (beta * longest))
        weights.append(weight)
        weight_sum += weight
    alpha = min(1.0, (target_degree * size / 2.0) / weight_sum)
    adjacency: Adjacency = {name: set() for name in names}
    for (a, b, _km), weight in zip(pairs, weights):
        if stream.uniform("link", a, b) < alpha * weight:
            _add_link(adjacency, a, b)
    return _assemble(
        "waxman",
        seed,
        positions,
        adjacency,
        dict.fromkeys(names, "site"),
        {
            "target_degree": target_degree,
            "beta": beta,
            "alpha": round(alpha, 6),
        },
        _BOX,
    )


# -- family: ISP hierarchy ---------------------------------------------------------


def _farthest_point_cores(
    stream: DeterministicStream, names: list[NodeId], count: int
) -> dict[NodeId, Position]:
    """Spread cores with greedy farthest-point selection over a candidate
    pool -- deterministic, and it reproduces the even backbone spacing of
    real core POPs better than plain uniform draws."""
    pool = [
        _round_position(
            stream.uniform_between(_BOX[0], _BOX[1], "core-lat", index),
            stream.uniform_between(_BOX[2], _BOX[3], "core-lon", index),
        )
        for index in range(max(8 * count, 32))
    ]
    chosen = [pool[0]]
    remaining = pool[1:]
    while len(chosen) < count:
        best_index = 0
        best_score = -1.0
        for index, candidate in enumerate(remaining):
            score = min(great_circle_km(*candidate, *point) for point in chosen)
            if score > best_score:
                best_score = score
                best_index = index
        chosen.append(remaining.pop(best_index))
    return dict(zip(names, chosen))


def _nearest(
    positions: dict[NodeId, Position],
    candidates: list[NodeId],
    target: Position,
    count: int,
) -> list[NodeId]:
    ranked = sorted(
        candidates,
        key=lambda node: (great_circle_km(*target, *positions[node]), node),
    )
    return ranked[:count]


def build_isp_hierarchy(size: int, seed: int):
    """Three-tier ISP-like mesh: core backbone, dual-homed regions, edges.

    * **core** (~N/25, min 4): farthest-point-spread POPs on a ring (by
      longitude) plus nearest-core chords -- a low-diameter backbone;
    * **region** (~N/5): uniform metro sites, each homed to its two
      nearest cores;
    * **edge**: each placed 30-250 km from a parent region chosen
      uniformly, linked to that parent and to its second-nearest region.

    Degree falls off with tier (cores and popular regions accumulate
    children) and link latency falls out of the geography -- short edge
    tails, metro-to-core hauls, long backbone spans.
    """
    stream = DeterministicStream(seed, "topogen", "isp-hier")
    num_core = max(4, size // 25)
    num_region = max(num_core, size // 5)
    num_edge = size - num_core - num_region
    require(
        num_edge >= 1,
        f"isp-hier needs at least {num_core + num_region + 1} sites "
        f"for its tiers, got {size}",
    )
    cores = _node_names("C", num_core)
    regions = _node_names("R", num_region)
    edges = _node_names("E", num_edge)
    positions = _farthest_point_cores(stream, cores, num_core)
    positions.update(_uniform_positions(stream, regions, _BOX))
    adjacency: Adjacency = {
        name: set() for name in cores + regions + edges
    }
    # Core backbone: longitude ring + one nearest-core chord each.
    ring = sorted(cores, key=lambda core: (positions[core][1], core))
    for a, b in zip(ring, ring[1:] + ring[:1]):
        if a != b:
            _add_link(adjacency, a, b)
    for core in cores:
        others = [other for other in cores if other != core]
        nearest = _nearest(positions, others, positions[core], 1)
        for other in nearest:
            _add_link(adjacency, core, other)
    # Regions dual-home to their two nearest cores.
    for region in regions:
        for core in _nearest(positions, cores, positions[region], 2):
            _add_link(adjacency, region, core)
    # Edge sites hang off a parent region, dual-homed to a second region.
    lat_min, lat_max, lon_min, lon_max = _BOX
    for edge in edges:
        parent = regions[stream.randint(len(regions), "parent", edge)]
        distance_km = stream.uniform_between(30.0, 250.0, "edge-km", edge)
        bearing = stream.uniform_between(0.0, 2.0 * math.pi, "edge-dir", edge)
        parent_lat, parent_lon = positions[parent]
        dlat = (distance_km * math.cos(bearing)) / _KM_PER_DEG
        dlon = (distance_km * math.sin(bearing)) / (
            _KM_PER_DEG * math.cos(math.radians(parent_lat))
        )
        positions[edge] = _round_position(
            min(lat_max, max(lat_min, parent_lat + dlat)),
            min(lon_max, max(lon_min, parent_lon + dlon)),
        )
        _add_link(adjacency, edge, parent)
        others = [other for other in regions if other != parent]
        for backup in _nearest(positions, others, positions[edge], 1):
            _add_link(adjacency, edge, backup)
    tiers = {
        **dict.fromkeys(cores, "core"),
        **dict.fromkeys(regions, "region"),
        **dict.fromkeys(edges, "edge"),
    }
    return _assemble(
        "isp-hier",
        seed,
        positions,
        adjacency,
        tiers,
        {"cores": num_core, "regions": num_region, "edges": num_edge},
        _BOX,
    )


# -- family: legacy continental generator ------------------------------------------


def build_continental(size: int, seed: int):
    """The original nearest-neighbour continental generator, as an artifact.

    Wraps :func:`repro.netmodel.topologies.synthetic_continental_topology`
    so the small overlays the early scaling benches used resolve through
    the same registry and artifact format as the new families.  Its
    250 km minimum site separation caps it at a few dozen sites -- the
    registry enforces that bound.
    """
    from repro.netmodel.topologies import synthetic_continental_topology
    from repro.topogen.artifact import GeneratedTopology

    topology = synthetic_continental_topology(size, seed=seed)
    box = (29.0, 47.0, -122.0, -72.0)  # the legacy generator's ranges
    low, high = _latency_bounds(box)
    nodes = tuple(
        (
            node,
            round(topology.node_attributes(node)["lat"], 6),
            round(topology.node_attributes(node)["lon"], 6),
            "site",
        )
        for node in topology.nodes
    )
    links = tuple(
        sorted(
            (link.source, link.target, link.latency_ms)
            for link in topology.iter_links()
            if link.source < link.target
        )
    )
    return GeneratedTopology(
        family="continental",
        seed=seed,
        size=len(nodes),
        params=tuple(
            sorted(
                {
                    "min_degree": 3,
                    "min_separation_km": 250.0,
                    "box": list(box),
                    "latency_ms_min": low,
                    "latency_ms_max": high,
                }.items()
            )
        ),
        nodes=nodes,
        links=links,
    )
