"""Family registry and the single topology-resolution path.

Every subsystem that needs "a topology plus its flow table" -- the CLI's
``evaluate``/``chaos``/``generate-trace``, the serve daemon, the
benchmarks -- resolves it here, so unknown names fail with the same
one-line error everywhere and the paper's 12-site reference overlay is
just one more name (``"reference"``) rather than a hard-coded default
scattered across call sites.

``resolve_workload`` memoises per ``(family, size, seed, flow_count)``:
topologies are frozen and flow tuples immutable, so sharing one built
instance across requests is safe, and the exec layer's content-addressed
context key (which fingerprints the full node/link set) keeps shard
caches and the serve warm-context LRU exact without any extra keying.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable

from repro.core.graph import Topology
from repro.netmodel.topology import FlowSpec, build_reference_topology, reference_flows
from repro.topogen.artifact import GeneratedTopology
from repro.topogen.generators import (
    build_continental,
    build_isp_hierarchy,
    build_random_geometric,
    build_waxman,
)
from repro.util.validation import require

__all__ = [
    "FamilyInfo",
    "REFERENCE_NAME",
    "Workload",
    "family_info",
    "family_names",
    "generate_topology",
    "resolve_workload",
    "topology_names",
]

#: The paper's 12-site overlay, addressable through the same registry.
REFERENCE_NAME = "reference"

#: Default flow count for generated topologies (the reference overlay
#: keeps its 16 measured flows).
DEFAULT_FLOW_COUNT = 8


@dataclass(frozen=True)
class FamilyInfo:
    """One generator family: name, size envelope, constructor."""

    name: str
    min_size: int
    max_size: int
    build: Callable[[int, int], GeneratedTopology]
    summary: str


_FAMILIES: dict[str, FamilyInfo] = {
    info.name: info
    for info in (
        FamilyInfo(
            "random-geo",
            8,
            1000,
            build_random_geometric,
            "uniform sites, links within a degree-calibrated radius",
        ),
        FamilyInfo(
            "waxman",
            8,
            1000,
            build_waxman,
            "link probability decays with distance (calibrated alpha)",
        ),
        FamilyInfo(
            "isp-hier",
            16,
            1000,
            build_isp_hierarchy,
            "core/region/edge tiers with realistic degree distribution",
        ),
        FamilyInfo(
            "continental",
            4,
            48,
            build_continental,
            "legacy nearest-neighbour generator (250 km site separation)",
        ),
    )
}


def family_names() -> tuple[str, ...]:
    """Registered generator families, sorted."""
    return tuple(sorted(_FAMILIES))


def topology_names() -> tuple[str, ...]:
    """Every resolvable topology name: the reference plus the families."""
    return (REFERENCE_NAME,) + family_names()


def family_info(family: str) -> FamilyInfo:
    """Registry entry for ``family`` (one-line error on unknown names)."""
    require(
        family in _FAMILIES,
        f"unknown topology family {family!r}; "
        f"known: {', '.join(topology_names())}",
    )
    return _FAMILIES[family]


@functools.lru_cache(maxsize=16)
def generate_topology(family: str, size: int, seed: int) -> GeneratedTopology:
    """Generate (and memoise) the artifact for one ``(family, size, seed)``."""
    info = family_info(family)
    require(
        info.min_size <= size <= info.max_size,
        f"family {family!r} supports sizes "
        f"{info.min_size}..{info.max_size}, got {size}",
    )
    return info.build(size, seed)


@dataclass(frozen=True)
class Workload:
    """A resolved topology plus its default flow table."""

    topology: Topology
    flows: tuple[FlowSpec, ...]
    generated: GeneratedTopology | None  # None for the reference overlay

    @property
    def label(self) -> str:
        return self.topology.name

    def select_flows(
        self,
        names: tuple[str, ...] | None,
        default: tuple[FlowSpec, ...] | None = None,
    ) -> list[FlowSpec]:
        """Resolve flow names against this workload's table (one-line error)."""
        if names is None:
            return list(default if default is not None else self.flows)
        by_name = {flow.name: flow for flow in self.flows}
        unknown = sorted(set(names) - set(by_name))
        require(
            not unknown,
            f"unknown flow(s) {', '.join(unknown)} for topology "
            f"{self.topology.name}; known: {', '.join(sorted(by_name))}",
        )
        return [by_name[name] for name in names]


@functools.lru_cache(maxsize=16)
def _resolved(
    family: str | None, size: int | None, seed: int, flow_count: int
) -> Workload:
    if family is None:
        return Workload(
            topology=build_reference_topology(),
            flows=tuple(reference_flows()),
            generated=None,
        )
    assert size is not None
    generated = generate_topology(family, size, seed)
    topology = generated.topology()
    from repro.netmodel.topologies import coast_to_coast_flows

    return Workload(
        topology=topology,
        flows=tuple(coast_to_coast_flows(topology, flow_count)),
        generated=generated,
    )


def resolve_workload(
    family: str | None = None,
    size: int | None = None,
    seed: int | None = None,
    flow_count: int = DEFAULT_FLOW_COUNT,
) -> Workload:
    """The one resolution path from CLI/serve knobs to (topology, flows).

    ``family=None`` (or ``"reference"``) selects the paper's reference
    overlay; size/seed must then be omitted.  A generator family needs
    an explicit size; the seed defaults to 0.  All failures are one-line
    :class:`ValueError`\\ s naming the known alternatives.
    """
    if family in (None, REFERENCE_NAME):
        require(
            size is None and seed is None,
            "topology size/seed apply only to generator families; "
            f"the {REFERENCE_NAME!r} topology is fixed",
        )
        return _resolved(None, None, 0, 0)
    assert family is not None
    family_info(family)  # unknown names fail before size checks
    require(
        size is not None,
        f"topology family {family!r} needs an explicit size "
        f"(--topology-size)",
    )
    assert size is not None
    return _resolved(family, size, 0 if seed is None else seed, flow_count)
