"""Seeded, byte-reproducible overlay topology generation at scale.

The paper evaluates a 12-site commercial overlay; the scaling work needs
meshes two orders of magnitude larger.  This package generates them:

* :mod:`repro.topogen.generators` -- the family constructors
  (random-geometric, Waxman, ISP-like hierarchical tiers, plus the
  legacy continental generator), all placing sites geographically and
  deriving link latency from great-circle distance via
  :mod:`repro.netmodel.geo`;
* :mod:`repro.topogen.artifact` -- :class:`GeneratedTopology`, the
  canonical JSON description + content digest of one generated
  topology (the :class:`~repro.scenarios.families.CompiledScenario`
  pattern applied to topologies);
* :mod:`repro.topogen.registry` -- the family registry with one-line
  unknown-name errors, and :func:`resolve_workload`, the single
  topology-resolution path shared by ``evaluate``/``chaos``/``serve``
  (``"reference"`` selects the paper's 12-site overlay).

Reproducibility contract: ``(family, size, seed)`` fully determines the
artifact, byte for byte, across processes and platforms -- every random
draw is a keyed SHA-256 stream (:class:`repro.util.rng.DeterministicStream`)
and every iteration order is sorted.  The content digest is the identity
the exec shard cache and the serve warm-context LRU key on (via the full
topology fingerprint inside the exec context key), so two requests for
the same triple share caches and two different triples never collide.
"""

from repro.topogen.artifact import ARTIFACT_VERSION, GeneratedTopology
from repro.topogen.registry import (
    REFERENCE_NAME,
    Workload,
    family_names,
    generate_topology,
    resolve_workload,
    topology_names,
)

__all__ = [
    "ARTIFACT_VERSION",
    "GeneratedTopology",
    "REFERENCE_NAME",
    "Workload",
    "family_names",
    "generate_topology",
    "resolve_workload",
    "topology_names",
]
