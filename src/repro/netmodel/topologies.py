"""Synthetic overlay topology generation.

The paper's overlay has 12 sites; to check that the dissemination-graph
results are properties of the *approach* rather than of one topology,
the scaling experiments generate synthetic continental overlays of
arbitrary size: sites scattered over a bounding box with fiber-realistic
link latencies, each site connected to its nearest neighbours, and the
whole graph patched up to the biconnectivity every redundant routing
scheme needs (two node-disjoint paths between any pair).
"""

from __future__ import annotations

from repro.core.graph import NodeId, Topology
from repro.netmodel.geo import fiber_latency_ms, great_circle_km
from repro.netmodel.topology import FlowSpec
from repro.util.rng import DeterministicStream
from repro.util.validation import require

__all__ = ["synthetic_continental_topology", "coast_to_coast_flows"]

# Continental-US-ish bounding box.
_LAT_RANGE = (29.0, 47.0)
_LON_RANGE = (-122.0, -72.0)


def _site_positions(
    num_sites: int, seed: int
) -> dict[NodeId, tuple[float, float]]:
    """Scatter sites with a minimum separation so links are meaningful."""
    stream = DeterministicStream(seed, "topo-gen")
    positions: dict[NodeId, tuple[float, float]] = {}
    min_separation_km = 250.0
    attempt = 0
    while len(positions) < num_sites:
        attempt += 1
        require(
            attempt < num_sites * 200,
            "could not place sites with the required separation; "
            "reduce num_sites",
        )
        lat = stream.uniform_between(*_LAT_RANGE, "lat", attempt)
        lon = stream.uniform_between(*_LON_RANGE, "lon", attempt)
        if all(
            great_circle_km(lat, lon, p_lat, p_lon) >= min_separation_km
            for p_lat, p_lon in positions.values()
        ):
            positions[f"S{len(positions):02d}"] = (lat, lon)
    return positions


def _nearest_neighbors(
    positions: dict[NodeId, tuple[float, float]], site: NodeId
) -> list[NodeId]:
    lat, lon = positions[site]
    others = [other for other in positions if other != site]
    others.sort(
        key=lambda other: (
            great_circle_km(lat, lon, *positions[other]),
            other,
        )
    )
    return others


def _connected_without(
    adjacency: dict[NodeId, set[NodeId]], removed: NodeId | None
) -> bool:
    nodes = [node for node in adjacency if node != removed]
    if not nodes:
        return True
    seen = {nodes[0]}
    frontier = [nodes[0]]
    while frontier:
        node = frontier.pop()
        for neighbor in adjacency[node]:
            if neighbor != removed and neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    return len(seen) == len(nodes)


def _component_of(
    adjacency: dict[NodeId, set[NodeId]], start: NodeId, removed: NodeId
) -> set[NodeId]:
    seen = {start}
    frontier = [start]
    while frontier:
        node = frontier.pop()
        for neighbor in adjacency[node]:
            if neighbor != removed and neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    return seen


def synthetic_continental_topology(
    num_sites: int = 20, seed: int = 0, min_degree: int = 3
) -> Topology:
    """Generate a biconnected continental overlay of ``num_sites`` sites.

    Construction: nearest-neighbour links up to ``min_degree`` per site,
    then additional shortest patch links until removing any single site
    leaves the rest connected (node biconnectivity), which guarantees two
    node-disjoint paths between every pair (Menger).  Deterministic in
    ``seed``.
    """
    require(num_sites >= 4, f"need at least 4 sites, got {num_sites}")
    require(min_degree >= 2, f"min_degree must be >= 2, got {min_degree}")
    positions = _site_positions(num_sites, seed)
    adjacency: dict[NodeId, set[NodeId]] = {site: set() for site in positions}

    def add_link(a: NodeId, b: NodeId) -> None:
        adjacency[a].add(b)
        adjacency[b].add(a)

    # Phase 1: nearest neighbours.
    for site in sorted(positions):
        for neighbor in _nearest_neighbors(positions, site):
            if len(adjacency[site]) >= min_degree:
                break
            add_link(site, neighbor)

    # Phase 2: connectivity patching -- join components with the shortest
    # available cross link.
    def shortest_cross_link(
        group_a: set[NodeId], group_b: set[NodeId]
    ) -> tuple[NodeId, NodeId]:
        best = None
        best_km = float("inf")
        for a in sorted(group_a):
            for b in sorted(group_b):
                if b in adjacency[a]:
                    continue
                km = great_circle_km(*positions[a], *positions[b])
                if km < best_km:
                    best_km = km
                    best = (a, b)
        require(best is not None, "no cross link available")
        assert best is not None
        return best

    while not _connected_without(adjacency, None):
        start = sorted(positions)[0]
        component = _component_of(adjacency, start, removed="\x00")
        rest = set(positions) - component
        add_link(*shortest_cross_link(component, rest))

    # Phase 3: biconnectivity patching -- for every articulation point,
    # bridge two of the components its removal creates.
    changed = True
    while changed:
        changed = False
        for site in sorted(positions):
            if _connected_without(adjacency, site):
                continue
            remaining = sorted(set(positions) - {site})
            first = _component_of(adjacency, remaining[0], removed=site)
            rest = set(remaining) - first
            add_link(*shortest_cross_link(first, rest))
            changed = True
            break

    topology = Topology(name=f"synthetic-{num_sites}-seed{seed}")
    for site, (lat, lon) in positions.items():
        topology.add_node(site, lat=lat, lon=lon)
    added: set[frozenset[NodeId]] = set()
    for site in sorted(adjacency):
        for neighbor in sorted(adjacency[site]):
            key = frozenset((site, neighbor))
            if key in added:
                continue
            added.add(key)
            topology.add_link(
                site,
                neighbor,
                fiber_latency_ms(*positions[site], *positions[neighbor]),
            )
    topology.freeze()
    topology.validate()
    return topology


def coast_to_coast_flows(topology: Topology, count: int = 8) -> tuple[FlowSpec, ...]:
    """East-to-west flows between the extreme sites of a topology.

    Picks the ``count/2``-ish eastern-most sources and western-most
    destinations by longitude and pairs them round-robin.
    """
    require(count >= 1, "count must be >= 1")
    by_longitude = sorted(
        topology.nodes, key=lambda node: topology.node_attributes(node)["lon"]
    )
    half = max(1, min(len(by_longitude) // 2, (count + 1) // 2))
    west = by_longitude[:half]
    east = by_longitude[-half:]
    flows = []
    index = 0
    while len(flows) < count and index < count * 4:
        source = east[index % len(east)]
        destination = west[(index // len(east)) % len(west)]
        index += 1
        if source == destination:
            continue
        flow = FlowSpec(source, destination)
        if flow not in flows:
            flows.append(flow)
    return tuple(flows[:count])
