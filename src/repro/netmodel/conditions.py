"""Piecewise-constant per-link condition timelines.

The paper's data set records, for every overlay link, its loss rate and
latency over time.  :class:`ConditionTimeline` is that recording: for each
directed edge, a sequence of constant-condition segments.  It is built
from *contributions* (possibly overlapping degradation intervals emitted
by the scenario generator or read from a trace file) and compiled into a
non-overlapping segment list per edge:

* overlapping loss rates combine as independent drops,
  ``1 - (1-p1)(1-p2)``;
* overlapping extra latencies combine as their maximum.

The replay engines rely on two access patterns: point queries
(``state_at``) and the global list of change times, between which *every*
link's conditions are constant -- the unit of work for the analytic
interval engine.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.core.graph import Edge, Topology
from repro.util.validation import require, require_non_negative, require_probability

__all__ = ["LinkState", "Contribution", "ConditionTimeline", "CLEAN"]


@dataclass(frozen=True)
class LinkState:
    """Conditions on one directed edge during one segment."""

    loss_rate: float = 0.0
    extra_latency_ms: float = 0.0

    def __post_init__(self) -> None:
        require_probability(self.loss_rate, "loss_rate")
        require_non_negative(self.extra_latency_ms, "extra_latency_ms")

    @property
    def clean(self) -> bool:
        """True when the state carries no loss and no latency inflation."""
        return self.loss_rate == 0.0 and self.extra_latency_ms == 0.0

    def combine(self, other: "LinkState") -> "LinkState":
        """Compose two overlapping degradations on the same edge."""
        loss = 1.0 - (1.0 - self.loss_rate) * (1.0 - other.loss_rate)
        extra = max(self.extra_latency_ms, other.extra_latency_ms)
        return LinkState(loss, extra)


CLEAN = LinkState()


@dataclass(frozen=True)
class Contribution:
    """One degradation interval on one directed edge."""

    edge: Edge
    start_s: float
    end_s: float
    state: LinkState

    def __post_init__(self) -> None:
        require(self.end_s > self.start_s, "contribution must have positive length")
        require_non_negative(self.start_s, "start_s")


class ConditionTimeline:
    """Compiled, queryable network conditions over ``[0, duration_s)``."""

    def __init__(
        self,
        topology: Topology,
        duration_s: float,
        contributions: Iterable[Contribution] = (),
    ) -> None:
        require(duration_s > 0, "duration must be positive")
        self.topology = topology
        self.duration_s = float(duration_s)
        per_edge: dict[Edge, list[Contribution]] = {}
        for contribution in contributions:
            require(
                topology.has_edge(*contribution.edge),
                f"contribution references unknown edge {contribution.edge!r}",
            )
            clipped = self._clip(contribution)
            if clipped is not None:
                per_edge.setdefault(clipped.edge, []).append(clipped)
        # Compiled form: per edge, parallel arrays (segment starts, states).
        self._times: dict[Edge, list[float]] = {}
        self._states: dict[Edge, list[LinkState]] = {}
        for edge, edge_contributions in per_edge.items():
            times, states = self._compile_edge(edge_contributions)
            self._times[edge] = times
            self._states[edge] = states
        self._change_times = self._global_change_times()

    def _clip(self, contribution: Contribution) -> Contribution | None:
        start = max(0.0, contribution.start_s)
        end = min(self.duration_s, contribution.end_s)
        if end <= start:
            return None
        if start == contribution.start_s and end == contribution.end_s:
            return contribution
        return Contribution(contribution.edge, start, end, contribution.state)

    @staticmethod
    def _compile_edge(
        contributions: list[Contribution],
    ) -> tuple[list[float], list[LinkState]]:
        boundaries = sorted(
            {0.0}
            | {c.start_s for c in contributions}
            | {c.end_s for c in contributions}
        )
        times: list[float] = []
        states: list[LinkState] = []
        for index, start in enumerate(boundaries):
            if index + 1 < len(boundaries):
                midpoint = (start + boundaries[index + 1]) / 2.0
            else:
                midpoint = start
            state = CLEAN
            for contribution in contributions:
                if contribution.start_s <= midpoint < contribution.end_s:
                    state = state.combine(contribution.state)
            if states and states[-1] == state:
                continue  # merge identical adjacent segments
            times.append(start)
            states.append(state)
        if not times or times[0] != 0.0:
            times.insert(0, 0.0)
            states.insert(0, CLEAN)
        return times, states

    def _global_change_times(self) -> list[float]:
        times = {0.0, self.duration_s}
        for edge_times in self._times.values():
            times.update(edge_times)
        return sorted(t for t in times if 0.0 <= t <= self.duration_s)

    # -- queries ---------------------------------------------------------------

    def state_at(self, edge: Edge, time_s: float) -> LinkState:
        """Conditions on ``edge`` at ``time_s`` (clean outside any record)."""
        require(
            0.0 <= time_s <= self.duration_s,
            f"time {time_s} outside [0, {self.duration_s}]",
        )
        times = self._times.get(edge)
        if times is None:
            return CLEAN
        index = bisect.bisect_right(times, time_s) - 1
        return self._states[edge][index]

    def latency_at(self, edge: Edge, time_s: float) -> float:
        """Effective one-way latency (base + inflation) in milliseconds."""
        return (
            self.topology.latency(*edge) + self.state_at(edge, time_s).extra_latency_ms
        )

    def loss_at(self, edge: Edge, time_s: float) -> float:
        """Loss rate on ``edge`` at ``time_s``."""
        return self.state_at(edge, time_s).loss_rate

    def degraded_at(self, time_s: float) -> dict[Edge, LinkState]:
        """All edges with non-clean conditions at ``time_s``."""
        result: dict[Edge, LinkState] = {}
        for edge in self._times:
            state = self.state_at(edge, time_s)
            if not state.clean:
                result[edge] = state
        return result

    def degraded_views(
        self, times: Iterable[float]
    ) -> tuple[list[dict[Edge, LinkState]], list[frozenset[Edge]]]:
        """Degraded views of many query times in one incremental walk.

        For non-decreasing ``times``, returns ``(views, deltas)`` where
        ``views[i]`` equals :meth:`degraded_at` at ``times[i]`` (an empty
        view for times before the trace starts) and ``deltas[i]`` is the
        set of edges whose state differs between ``views[i - 1]`` and
        ``views[i]`` (``deltas[0]`` is relative to an empty view).  The
        replay engines call this once per boundary list instead of
        rescanning every edge at every boundary, and feed the deltas to
        policies and caches so untouched decisions can be skipped.
        """
        events: list[tuple[float, Edge, LinkState]] = []
        for edge, edge_times in self._times.items():
            states = self._states[edge]
            for segment_start, state in zip(edge_times, states):
                events.append((segment_start, edge, state))
        events.sort(key=lambda event: event[0])
        views: list[dict[Edge, LinkState]] = []
        deltas: list[frozenset[Edge]] = []
        current: dict[Edge, LinkState] = {}
        pending: dict[Edge, LinkState] = {}
        cursor = 0
        previous_time = float("-inf")
        for time_s in times:
            require(
                time_s >= previous_time,
                f"view query times must be non-decreasing "
                f"({time_s} after {previous_time})",
            )
            previous_time = time_s
            # Drain every segment start up to the query time; per edge only
            # the latest one matters, which the dict overwrite keeps.
            while cursor < len(events) and events[cursor][0] <= time_s:
                _start, edge, state = events[cursor]
                pending[edge] = state
                cursor += 1
            changed: set[Edge] = set()
            for edge, state in pending.items():
                if state.clean:
                    if current.pop(edge, None) is not None:
                        changed.add(edge)
                elif current.get(edge) != state:
                    current[edge] = state
                    changed.add(edge)
            pending.clear()
            # Share the previous view object across unchanged boundaries:
            # long replays on large topologies have many boundaries whose
            # delta is empty for this timeline, and consumers treat views
            # as read-only snapshots.
            if changed or not views:
                views.append(dict(current))
            else:
                views.append(views[-1])
            deltas.append(frozenset(changed))
        return views, deltas

    def loss_rates_at(self, time_s: float) -> dict[Edge, float]:
        """Loss rate per degraded edge at ``time_s`` (clean edges omitted)."""
        return {
            edge: state.loss_rate
            for edge, state in self.degraded_at(time_s).items()
            if state.loss_rate > 0.0
        }

    @property
    def change_times(self) -> tuple[float, ...]:
        """Times at which any edge's conditions change (incl. 0 and end)."""
        return tuple(self._change_times)

    def segments(self) -> Iterator[tuple[float, float]]:
        """Consecutive ``(start, end)`` windows of globally constant conditions."""
        for start, end in zip(self._change_times, self._change_times[1:]):
            if end > start:
                yield (start, end)

    def edge_segments(self, edge: Edge) -> list[tuple[float, float, LinkState]]:
        """Per-edge compiled segments as ``(start, end, state)``."""
        times = self._times.get(edge)
        if times is None:
            return [(0.0, self.duration_s, CLEAN)]
        states = self._states[edge]
        result = []
        for index, start in enumerate(times):
            end = times[index + 1] if index + 1 < len(times) else self.duration_s
            if end > start:
                result.append((start, end, states[index]))
        return result

    def recorded_edges(self) -> tuple[Edge, ...]:
        """Edges that have at least one non-clean segment."""
        return tuple(
            sorted(
                edge
                for edge, states in self._states.items()
                if any(not state.clean for state in states)
            )
        )

    def to_contributions(self) -> list[Contribution]:
        """Export the compiled non-clean segments (for trace persistence)."""
        result = []
        for edge in sorted(self._times):
            for start, end, state in self.edge_segments(edge):
                if not state.clean:
                    result.append(Contribution(edge, start, end, state))
        return result

    # -- views -------------------------------------------------------------------

    def latency_fn_at(self, time_s: float):
        """A ``latency(u, v)`` callable frozen at ``time_s``.

        Suitable for :meth:`DisseminationGraph.arrival_times`.
        """

        def latency(u: str, v: str) -> float:
            return self.latency_at((u, v), time_s)

        return latency

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ConditionTimeline(duration={self.duration_s:g}s, "
            f"{len(self._change_times)} change points, "
            f"{len(self.recorded_edges())} degraded edges)"
        )
