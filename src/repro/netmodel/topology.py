"""The reference overlay topology, flows, and service specification.

The paper evaluates on a 12-node commercial overlay spanning the
continental US plus trans-Atlantic sites, with 16 transcontinental flows
**[R: exact sites reconstructed]**.  We model 10 North-American sites and
two European ones, ~22 bidirectional overlay links, and the 16 flows from
the four eastern sites to the four western ones.  Link latencies come from
:func:`repro.netmodel.geo.fiber_latency_ms` applied to real city
coordinates, giving the ~30-35 ms one-way coast-to-coast structure the
130 ms round-trip budget (claim C1) is built around.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.graph import NodeId, Topology
from repro.netmodel.geo import fiber_latency_ms
from repro.util.validation import require, require_positive

__all__ = [
    "SITES",
    "OVERLAY_LINKS",
    "EAST_SITES",
    "WEST_SITES",
    "FlowSpec",
    "ServiceSpec",
    "build_reference_topology",
    "reference_flows",
]

# Site id -> (latitude, longitude).
SITES: dict[str, tuple[float, float]] = {
    "NYC": (40.71, -74.01),  # New York
    "JHU": (39.30, -76.61),  # Baltimore (Johns Hopkins)
    "WAS": (38.90, -77.04),  # Washington, DC
    "ATL": (33.75, -84.39),  # Atlanta
    "CHI": (41.88, -87.63),  # Chicago
    "DFW": (32.78, -96.80),  # Dallas
    "DEN": (39.74, -104.99),  # Denver
    "LAX": (34.05, -118.24),  # Los Angeles
    "SJC": (37.34, -121.89),  # San Jose
    "SEA": (47.61, -122.33),  # Seattle
    "LON": (51.51, -0.13),  # London
    "FRA": (50.11, 8.68),  # Frankfurt
}

# Bidirectional overlay links (order within a pair is not significant).
OVERLAY_LINKS: tuple[tuple[str, str], ...] = (
    ("NYC", "JHU"),
    ("NYC", "WAS"),
    ("NYC", "CHI"),
    ("NYC", "LON"),
    ("NYC", "FRA"),
    ("JHU", "WAS"),
    ("JHU", "CHI"),
    ("WAS", "ATL"),
    ("WAS", "LON"),
    ("ATL", "DFW"),
    ("ATL", "LAX"),
    ("CHI", "DEN"),
    ("CHI", "DFW"),
    ("CHI", "SEA"),
    ("DFW", "DEN"),
    ("DFW", "LAX"),
    ("DEN", "SJC"),
    ("DEN", "LAX"),
    ("DEN", "SEA"),
    ("SJC", "LAX"),
    ("SJC", "SEA"),
    ("LON", "FRA"),
)

# The 16 transcontinental flows: every eastern site to every western site.
EAST_SITES: tuple[str, ...] = ("NYC", "JHU", "WAS", "ATL")
WEST_SITES: tuple[str, ...] = ("DEN", "LAX", "SJC", "SEA")


@dataclass(frozen=True)
class FlowSpec:
    """One unidirectional application flow between overlay sites."""

    source: NodeId
    destination: NodeId

    def __post_init__(self) -> None:
        require(self.source != self.destination, "flow endpoints must differ")

    @property
    def name(self) -> str:
        """Canonical flow name, e.g. ``"NYC->SJC"``."""
        return f"{self.source}->{self.destination}"

    def as_tuple(self) -> tuple[NodeId, NodeId]:
        """The flow as a ``(source, destination)`` pair."""
        return (self.source, self.destination)


@dataclass(frozen=True)
class ServiceSpec:
    """The timeliness/reliability service the transport must provide.

    Defaults follow the paper's motivating application (remote robotic
    surgery): 130 ms round trip across the US, i.e. a 65 ms one-way
    delivery deadline, with a packet sent every 10 ms per flow.
    """

    deadline_ms: float = 65.0
    send_interval_ms: float = 10.0
    rtt_budget_ms: float = 130.0

    def __post_init__(self) -> None:
        require_positive(self.deadline_ms, "deadline_ms")
        require_positive(self.send_interval_ms, "send_interval_ms")
        require_positive(self.rtt_budget_ms, "rtt_budget_ms")
        require(
            self.deadline_ms <= self.rtt_budget_ms,
            "one-way deadline cannot exceed the round-trip budget",
        )

    @property
    def packets_per_second(self) -> float:
        """Sending rate implied by the send interval."""
        return 1000.0 / self.send_interval_ms


def build_reference_topology(name: str = "reference-overlay") -> Topology:
    """Build and freeze the 12-node reference overlay."""
    topology = Topology(name=name)
    for site, (lat, lon) in SITES.items():
        topology.add_node(site, lat=lat, lon=lon)
    for a, b in OVERLAY_LINKS:
        lat_a, lon_a = SITES[a]
        lat_b, lon_b = SITES[b]
        topology.add_link(a, b, fiber_latency_ms(lat_a, lon_a, lat_b, lon_b))
    topology.freeze()
    topology.validate()
    return topology


def reference_flows() -> tuple[FlowSpec, ...]:
    """The 16 transcontinental flows (east -> west)."""
    return tuple(
        FlowSpec(east, west) for east in EAST_SITES for west in WEST_SITES
    )
