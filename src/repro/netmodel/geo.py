"""Great-circle geometry and fiber propagation latency.

Overlay link latencies in the reference topology are derived from site
coordinates: light in fiber travels at roughly two thirds of c, and real
fiber routes are longer than great circles, so we apply a route-stretch
factor plus a small fixed per-hop overhead (forwarding, serialisation).
The resulting city-to-city latencies land within a few milliseconds of
published RTT measurements, which is all the reproduction needs -- the
paper's conclusions depend on latency *structure* (east-west circa
30-35 ms one way), not on exact values.
"""

from __future__ import annotations

import math

from repro.util.validation import require

__all__ = ["great_circle_km", "fiber_latency_ms", "EARTH_RADIUS_KM"]

EARTH_RADIUS_KM = 6371.0

# Speed of light in vacuum, km per millisecond.
_LIGHT_KM_PER_MS = 299.792458

# Refractive-index slowdown in fiber (~1/1.468).
_FIBER_SPEED_FACTOR = 2.0 / 3.0

# Real fiber paths follow roads/rails/sea routes, not great circles.
_ROUTE_STRETCH = 1.2

# Per-hop forwarding/serialisation overhead in milliseconds.
_HOP_OVERHEAD_MS = 0.5


def great_circle_km(
    lat1_deg: float, lon1_deg: float, lat2_deg: float, lon2_deg: float
) -> float:
    """Haversine great-circle distance between two coordinates, in km."""
    for name, value in (
        ("lat1", lat1_deg),
        ("lat2", lat2_deg),
    ):
        require(-90.0 <= value <= 90.0, f"{name} out of range: {value}")
    for name, value in (
        ("lon1", lon1_deg),
        ("lon2", lon2_deg),
    ):
        require(-180.0 <= value <= 180.0, f"{name} out of range: {value}")
    lat1 = math.radians(lat1_deg)
    lon1 = math.radians(lon1_deg)
    lat2 = math.radians(lat2_deg)
    lon2 = math.radians(lon2_deg)
    sin_dlat = math.sin((lat2 - lat1) / 2.0)
    sin_dlon = math.sin((lon2 - lon1) / 2.0)
    h = sin_dlat**2 + math.cos(lat1) * math.cos(lat2) * sin_dlon**2
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))


def fiber_latency_ms(
    lat1_deg: float, lon1_deg: float, lat2_deg: float, lon2_deg: float
) -> float:
    """One-way fiber latency estimate between two coordinates, in ms."""
    distance_km = great_circle_km(lat1_deg, lon1_deg, lat2_deg, lon2_deg)
    propagation = (distance_km * _ROUTE_STRETCH) / (
        _LIGHT_KM_PER_MS * _FIBER_SPEED_FACTOR
    )
    return round(propagation + _HOP_OVERHEAD_MS, 2)
