"""Named scenario presets.

The calibrated default scenario reproduces the paper's regime; the other
presets are used by ablation benches and stress tests to check that the
schemes' *ordering* is a property of the approach, not of one parameter
point:

* ``default``        -- the calibrated reproduction scenario;
* ``calm``           -- few, short, mild problems (availability
  differences shrink; everything is multi-nines);
* ``stormy``         -- frequent, long, severe problems (stress test);
* ``endpoint-heavy`` -- almost all trouble at nodes (maximises the
  targeted scheme's advantage);
* ``middle-heavy``   -- almost all trouble on middle links (re-routing
  territory: two disjoint paths already near-optimal);
* ``latency-heavy``  -- congestion-dominated: inflated latencies rather
  than loss (exercises the late-vs-lost accounting).
"""

from __future__ import annotations

from repro.netmodel.scenarios import WEEK_S, Scenario
from repro.util.validation import require

__all__ = ["SCENARIO_PRESETS", "preset_scenario", "preset_names"]


def _preset(**overrides) -> Scenario:
    return Scenario(**overrides)


SCENARIO_PRESETS: dict[str, Scenario] = {
    "default": _preset(),
    "calm": _preset(
        node_event_rate_per_day=1.5,
        link_event_rate_per_day=2.0,
        latency_event_rate_per_day=1.0,
        background_event_rate_per_day=6.0,
        event_duration_median_s=45.0,
        event_duration_cap_s=600.0,
        blackout_probability=0.15,
        sustained_blackout_probability=0.05,
    ),
    "stormy": _preset(
        node_event_rate_per_day=12.0,
        link_event_rate_per_day=14.0,
        latency_event_rate_per_day=6.0,
        background_event_rate_per_day=30.0,
        event_duration_median_s=240.0,
        event_duration_cap_s=3600.0,
        blackout_probability=0.45,
        sustained_blackout_probability=0.20,
    ),
    "endpoint-heavy": _preset(
        node_event_rate_per_day=10.0,
        link_event_rate_per_day=1.0,
        latency_event_rate_per_day=1.0,
    ),
    "middle-heavy": _preset(
        node_event_rate_per_day=1.0,
        link_event_rate_per_day=12.0,
        latency_event_rate_per_day=4.0,
    ),
    "latency-heavy": _preset(
        node_event_rate_per_day=1.5,
        link_event_rate_per_day=2.0,
        latency_event_rate_per_day=12.0,
        latency_inflation_low_ms=25.0,
        latency_inflation_high_ms=120.0,
    ),
}


def preset_names() -> tuple[str, ...]:
    """Sorted names of the available presets."""
    return tuple(sorted(SCENARIO_PRESETS))


def preset_scenario(name: str, duration_s: float = 4 * WEEK_S) -> Scenario:
    """A preset scenario with the requested duration."""
    require(
        name in SCENARIO_PRESETS,
        f"unknown scenario preset {name!r}; known: {', '.join(preset_names())}",
    )
    base = SCENARIO_PRESETS[name]
    if base.duration_s == duration_s:
        return base
    # Dataclasses are frozen: rebuild with the new duration.
    from dataclasses import replace

    return replace(base, duration_s=duration_s)
