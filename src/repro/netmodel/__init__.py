"""Network environment model.

The paper's evaluation replays routing schemes over months of per-link
latency/loss data recorded on a 12-node commercial overlay.  That data is
proprietary, so this package supplies the closest synthetic equivalent:

* :mod:`repro.netmodel.geo` -- great-circle geometry and fiber latency;
* :mod:`repro.netmodel.topology` -- a 12-node North-America +
  trans-Atlantic overlay with fiber-realistic latencies, the 16
  transcontinental flows, and the timeliness service specification;
* :mod:`repro.netmodel.conditions` -- piecewise-constant per-link
  condition timelines (loss rate, extra latency), the paper's recording
  format;
* :mod:`repro.netmodel.scenarios` -- a calibrated problem-event generator
  reproducing the paper's observed failure geometry (problems concentrate
  around nodes, i.e. flow sources and destinations);
* :mod:`repro.netmodel.trace` -- JSONL trace persistence.
"""

from repro.netmodel.calibration import evaluate_scenario, fit_error
from repro.netmodel.conditions import ConditionTimeline, LinkState
from repro.netmodel.presets import preset_names, preset_scenario
from repro.netmodel.scenarios import Scenario, generate_events, generate_timeline
from repro.netmodel.topologies import (
    coast_to_coast_flows,
    synthetic_continental_topology,
)
from repro.netmodel.topology import (
    FlowSpec,
    ServiceSpec,
    build_reference_topology,
    reference_flows,
)

__all__ = [
    "ConditionTimeline",
    "coast_to_coast_flows",
    "evaluate_scenario",
    "fit_error",
    "preset_names",
    "preset_scenario",
    "synthetic_continental_topology",
    "FlowSpec",
    "LinkState",
    "Scenario",
    "ServiceSpec",
    "build_reference_topology",
    "generate_events",
    "generate_timeline",
    "reference_flows",
]
