"""Scenario calibration against the paper's headline bands.

The synthetic condition model stands in for the paper's recorded data;
its defaults were chosen so the six-scheme comparison lands on the
abstract's quantified claims (static two disjoint ~45 %, dynamic ~70 %,
targeted > 99 % gap coverage, ~+2 % cost).  This module packages that
calibration loop so the fit can be re-checked after any model change,
and so users adapting the generator to their own network can measure
how far a candidate parameterisation sits from a target band.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.metrics import gap_coverage
from repro.core.graph import Topology
from repro.netmodel.scenarios import Scenario, generate_timeline
from repro.netmodel.topology import FlowSpec, ServiceSpec
from repro.simulation.cost import cost_comparison
from repro.simulation.interval import run_replay
from repro.simulation.results import ReplayConfig
from repro.util.stats import mean
from repro.util.validation import require

__all__ = [
    "CalibrationPoint",
    "CalibrationTarget",
    "PAPER_TARGET",
    "evaluate_scenario",
    "fit_error",
]


@dataclass(frozen=True)
class CalibrationPoint:
    """Headline metrics of one scenario parameterisation."""

    static_two_coverage: float
    dynamic_two_coverage: float
    targeted_coverage: float
    targeted_cost_overhead: float
    seeds: int

    def as_percentages(self) -> dict[str, float]:
        """The metrics as human-readable percentage values."""
        return {
            "static-two-disjoint": 100 * self.static_two_coverage,
            "dynamic-two-disjoint": 100 * self.dynamic_two_coverage,
            "targeted": 100 * self.targeted_coverage,
            "cost-overhead": 100 * self.targeted_cost_overhead,
        }


@dataclass(frozen=True)
class CalibrationTarget:
    """The band a calibrated model should land in (fractions)."""

    static_two_coverage: float
    dynamic_two_coverage: float
    targeted_coverage_min: float
    cost_overhead_max: float


#: The abstract's claims C4-C6 as a calibration target.
PAPER_TARGET = CalibrationTarget(
    static_two_coverage=0.45,
    dynamic_two_coverage=0.70,
    targeted_coverage_min=0.99,
    cost_overhead_max=0.04,
)

_SCHEMES = (
    "dynamic-single",
    "static-two-disjoint",
    "dynamic-two-disjoint",
    "targeted",
    "flooding",
)


def evaluate_scenario(
    topology: Topology,
    scenario: Scenario,
    flows: Sequence[FlowSpec],
    service: ServiceSpec,
    seeds: Sequence[int] = (7,),
    config: ReplayConfig = ReplayConfig(),
) -> CalibrationPoint:
    """Measure one scenario's headline metrics, averaged over seeds."""
    require(bool(seeds), "need at least one seed")
    static_two, dynamic_two, targeted, overhead = [], [], [], []
    for seed in seeds:
        _events, timeline = generate_timeline(topology, scenario, seed=seed)
        result = run_replay(
            topology, timeline, flows, service, scheme_names=_SCHEMES, config=config
        )
        static_two.append(gap_coverage(result, "static-two-disjoint"))
        dynamic_two.append(gap_coverage(result, "dynamic-two-disjoint"))
        targeted.append(gap_coverage(result, "targeted"))
        comparison = {c.scheme: c for c in cost_comparison(result)}
        overhead.append(comparison["targeted"].overhead_vs_baseline)
    return CalibrationPoint(
        static_two_coverage=mean(static_two),
        dynamic_two_coverage=mean(dynamic_two),
        targeted_coverage=mean(targeted),
        targeted_cost_overhead=mean(overhead),
        seeds=len(seeds),
    )


def fit_error(point: CalibrationPoint, target: CalibrationTarget = PAPER_TARGET) -> float:
    """Distance from the target band (0.0 = fully inside).

    Band coverages contribute their absolute deviation; the targeted
    coverage and cost overhead contribute only when they violate their
    one-sided bounds.  Units are coverage fractions, so an error of 0.05
    reads as "five coverage points off".
    """
    error = abs(point.static_two_coverage - target.static_two_coverage)
    error += abs(point.dynamic_two_coverage - target.dynamic_two_coverage)
    error += max(0.0, target.targeted_coverage_min - point.targeted_coverage)
    error += max(0.0, point.targeted_cost_overhead - target.cost_overhead_max)
    return error
