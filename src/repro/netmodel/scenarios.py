"""Calibrated synthetic problem-event generation.

The paper replayed routing schemes over recorded real-world conditions and
*observed* that (a) loss problems are bursty episodes lasting seconds to
minutes, with loss coming and going within an episode, and (b) the
episodes that defeat two disjoint paths cluster around nodes -- i.e.
around flow sources and destinations (claim C3).  Lacking the proprietary
recording, this module generates traces with that structure:

* **node events** degrade a site's adjacent links (the situations only
  targeted redundancy handles, when the site is a flow endpoint); which
  adjacent links are hit, and how badly, is re-drawn for every burst, so a
  reactive scheme that just re-routed onto a clean adjacent link can be
  hit again by the next burst;
* **link events** degrade a single overlay link (classic middle problems:
  re-routing or a second disjoint path suffices);
* **latency events** inflate a single link's latency past usefulness
  (steady congestion: one burst spanning the episode);
* **background events** add light sub-threshold loss.

Event arrivals are Poisson per kind; episode durations are log-normal
(heavy-tailed); within an episode, loss bursts alternate with clean gaps,
both exponential.  Everything is driven by
:class:`~repro.util.rng.DeterministicStream`, so a scenario plus a seed
fully determines the trace.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.graph import Edge, NodeId, Topology
from repro.netmodel.conditions import ConditionTimeline, LinkState
from repro.netmodel.events import Burst, EventKind, LinkDegradation, ProblemEvent
from repro.util.rng import DeterministicStream
from repro.util.validation import require, require_positive, require_probability

__all__ = ["Scenario", "generate_events", "generate_timeline", "DAY_S", "WEEK_S"]

DAY_S = 86_400.0
WEEK_S = 7 * DAY_S


@dataclass(frozen=True)
class Scenario:
    """Parameters of a synthetic multi-week condition trace.

    Rates are network-wide events per day.  Defaults are calibrated so the
    reproduction lands in the paper's regime: overall availability well
    above 99.9% on any scheme, with the residual gap distributed across
    problem types as the paper observed (destination/source-heavy).
    """

    duration_s: float = 4 * WEEK_S
    node_event_rate_per_day: float = 5.0
    link_event_rate_per_day: float = 6.0
    latency_event_rate_per_day: float = 3.0
    background_event_rate_per_day: float = 18.0

    # Episode durations: log-normal, median seconds, heavy tail, hard cap.
    event_duration_median_s: float = 120.0
    event_duration_sigma: float = 1.0
    event_duration_cap_s: float = 1800.0

    # Burst structure within an episode (exponential lengths).
    burst_mean_s: float = 5.0
    gap_mean_s: float = 8.0

    # Node events come in two flavours, per the two failure shapes real
    # traces show around a site:
    #
    # * *sustained*: every adjacent link carries partial loss for the whole
    #   episode (severity re-drawn per phase).  No reroute escapes --
    #   only the breadth of redundancy (how many adjacent links carry
    #   copies) determines delivery, which is the regime that separates
    #   targeted redundancy from two disjoint paths.
    # * *flapping*: a shifting subset of adjacent links goes fully bad in
    #   bursts with clean gaps -- the regime where reaction speed matters.
    node_sustained_probability: float = 0.6
    sustained_phase_mean_s: float = 20.0
    sustained_edge_clean_probability: float = 0.05
    sustained_blackout_probability: float = 0.10
    sustained_loss_low: float = 0.45
    sustained_loss_high: float = 0.85

    # Flapping node events: probability each adjacent directed edge is hit
    # in a given burst, and the severity mix for a hit edge.
    node_edge_hit_probability: float = 0.75
    blackout_probability: float = 0.30
    partial_loss_low: float = 0.25
    partial_loss_high: float = 0.95

    # Link events: per-direction hit probability per burst.
    link_direction_hit_probability: float = 0.8

    # Latency events: inflation range (milliseconds).
    latency_inflation_low_ms: float = 15.0
    latency_inflation_high_ms: float = 80.0

    # Background loss range (kept below typical detection thresholds).
    background_loss_low: float = 0.003
    background_loss_high: float = 0.015

    def __post_init__(self) -> None:
        require_positive(self.duration_s, "duration_s")
        for name in (
            "node_event_rate_per_day",
            "link_event_rate_per_day",
            "latency_event_rate_per_day",
            "background_event_rate_per_day",
        ):
            require(getattr(self, name) >= 0, f"{name} must be >= 0")
        require_positive(self.event_duration_median_s, "event_duration_median_s")
        require_positive(self.event_duration_cap_s, "event_duration_cap_s")
        require_positive(self.burst_mean_s, "burst_mean_s")
        require_positive(self.gap_mean_s, "gap_mean_s")
        require_probability(
            self.node_sustained_probability, "node_sustained_probability"
        )
        require_positive(self.sustained_phase_mean_s, "sustained_phase_mean_s")
        require_probability(
            self.sustained_edge_clean_probability,
            "sustained_edge_clean_probability",
        )
        require_probability(
            self.sustained_blackout_probability, "sustained_blackout_probability"
        )
        require(
            0.0 < self.sustained_loss_low <= self.sustained_loss_high <= 1.0,
            "sustained loss range must satisfy 0 < low <= high <= 1",
        )
        require_probability(self.node_edge_hit_probability, "node_edge_hit_probability")
        require_probability(self.blackout_probability, "blackout_probability")
        require_probability(
            self.link_direction_hit_probability, "link_direction_hit_probability"
        )
        require(
            0.0 < self.partial_loss_low <= self.partial_loss_high <= 1.0,
            "partial loss range must satisfy 0 < low <= high <= 1",
        )

    @property
    def duration_days(self) -> float:
        """Trace length in days."""
        return self.duration_s / DAY_S


def _event_times(
    stream: DeterministicStream, rate_per_day: float, duration_s: float, kind: str
) -> list[float]:
    """Poisson arrival times over ``[0, duration_s)`` for one event kind."""
    if rate_per_day <= 0:
        return []
    mean_gap_s = DAY_S / rate_per_day
    times: list[float] = []
    clock = 0.0
    index = 0
    while True:
        clock += stream.exponential(mean_gap_s, kind, "gap", index)
        if clock >= duration_s:
            return times
        times.append(clock)
        index += 1


def _event_duration(
    stream: DeterministicStream, scenario: Scenario, kind: str, index: int
) -> float:
    duration = stream.lognormal(
        scenario.event_duration_median_s,
        scenario.event_duration_sigma,
        kind,
        "duration",
        index,
    )
    return min(duration, scenario.event_duration_cap_s)


def _burst_windows(
    stream: DeterministicStream,
    scenario: Scenario,
    start_s: float,
    duration_s: float,
    kind: str,
    index: int,
) -> list[tuple[float, float]]:
    """Alternating burst/gap windows covering the episode span."""
    windows: list[tuple[float, float]] = []
    clock = start_s
    end = start_s + duration_s
    burst_index = 0
    while clock < end:
        burst_length = stream.exponential(
            scenario.burst_mean_s, kind, index, "burst", burst_index
        )
        burst_end = min(clock + max(burst_length, 0.5), end)
        windows.append((clock, burst_end))
        gap = stream.exponential(
            scenario.gap_mean_s, kind, index, "pause", burst_index
        )
        clock = burst_end + max(gap, 0.5)
        burst_index += 1
    return windows


def _loss_severity(
    stream: DeterministicStream, scenario: Scenario, *key: object
) -> float:
    if stream.bernoulli(scenario.blackout_probability, *key, "blackout"):
        return 1.0
    return stream.uniform_between(
        scenario.partial_loss_low, scenario.partial_loss_high, *key, "partial"
    )


def _phase_windows(
    stream: DeterministicStream,
    scenario: Scenario,
    start_s: float,
    duration_s: float,
    kind: str,
    index: int,
) -> list[tuple[float, float]]:
    """Contiguous severity phases covering the episode span."""
    windows: list[tuple[float, float]] = []
    clock = start_s
    end = start_s + duration_s
    phase_index = 0
    while clock < end:
        length = stream.exponential(
            scenario.sustained_phase_mean_s, kind, index, "phase", phase_index
        )
        phase_end = min(clock + max(length, 1.0), end)
        windows.append((clock, phase_end))
        clock = phase_end
        phase_index += 1
    return windows


def _sustained_node_event(
    topology: Topology,
    scenario: Scenario,
    stream: DeterministicStream,
    node: NodeId,
    start_s: float,
    duration: float,
    index: int,
) -> ProblemEvent | None:
    """All adjacent links at partial loss for the whole episode."""
    adjacent = topology.adjacent_edges(node)
    bursts: list[Burst] = []
    for phase_number, (phase_start, phase_end) in enumerate(
        _phase_windows(stream, scenario, start_s, duration, "node", index)
    ):
        degradations: list[LinkDegradation] = []
        for edge in adjacent:
            if stream.bernoulli(
                scenario.sustained_edge_clean_probability,
                "node", index, "clean", phase_number, edge,
            ):
                continue
            if stream.bernoulli(
                scenario.sustained_blackout_probability,
                "node", index, "sblack", phase_number, edge,
            ):
                loss = 1.0
            else:
                loss = stream.uniform_between(
                    scenario.sustained_loss_low,
                    scenario.sustained_loss_high,
                    "node", index, "sloss", phase_number, edge,
                )
            degradations.append(LinkDegradation(edge, LinkState(loss_rate=loss)))
        if degradations:
            bursts.append(
                Burst(phase_start, phase_end - phase_start, tuple(degradations))
            )
    if not bursts:
        return None
    return ProblemEvent(EventKind.NODE, node, start_s, duration, tuple(bursts))


def _node_event(
    topology: Topology,
    scenario: Scenario,
    stream: DeterministicStream,
    start_s: float,
    index: int,
) -> ProblemEvent | None:
    node: NodeId = stream.choice(list(topology.nodes), "node", index, "site")
    duration = _event_duration(stream, scenario, "node", index)
    if stream.bernoulli(
        scenario.node_sustained_probability, "node", index, "mode"
    ):
        return _sustained_node_event(
            topology, scenario, stream, node, start_s, duration, index
        )
    adjacent = topology.adjacent_edges(node)
    bursts: list[Burst] = []
    for burst_number, (burst_start, burst_end) in enumerate(
        _burst_windows(stream, scenario, start_s, duration, "node", index)
    ):
        degradations: list[LinkDegradation] = []
        for edge in adjacent:
            if not stream.bernoulli(
                scenario.node_edge_hit_probability,
                "node", index, "hit", burst_number, edge,
            ):
                continue
            loss = _loss_severity(
                stream, scenario, "node", index, "sev", burst_number, edge
            )
            degradations.append(LinkDegradation(edge, LinkState(loss_rate=loss)))
        if degradations:
            bursts.append(
                Burst(burst_start, burst_end - burst_start, tuple(degradations))
            )
    if not bursts:
        return None
    return ProblemEvent(EventKind.NODE, node, start_s, duration, tuple(bursts))


def _pick_physical_link(
    topology: Topology, stream: DeterministicStream, *key: object
) -> tuple[Edge, Edge]:
    """Pick an undirected overlay link; return its two directed edges."""
    physical = sorted({tuple(sorted(edge)) for edge in topology.edges})
    a, b = stream.choice(physical, *key)
    return (a, b), (b, a)


def _link_event(
    topology: Topology,
    scenario: Scenario,
    stream: DeterministicStream,
    start_s: float,
    index: int,
) -> ProblemEvent | None:
    forward, backward = _pick_physical_link(topology, stream, "link", index, "pick")
    duration = _event_duration(stream, scenario, "link", index)
    bursts: list[Burst] = []
    for burst_number, (burst_start, burst_end) in enumerate(
        _burst_windows(stream, scenario, start_s, duration, "link", index)
    ):
        degradations: list[LinkDegradation] = []
        for edge in (forward, backward):
            if stream.bernoulli(
                scenario.link_direction_hit_probability,
                "link", index, "hit", burst_number, edge,
            ):
                loss = _loss_severity(
                    stream, scenario, "link", index, "sev", burst_number, edge
                )
                degradations.append(LinkDegradation(edge, LinkState(loss_rate=loss)))
        if degradations:
            bursts.append(
                Burst(burst_start, burst_end - burst_start, tuple(degradations))
            )
    if not bursts:
        return None
    return ProblemEvent(EventKind.LINK, forward, start_s, duration, tuple(bursts))


def _latency_event(
    topology: Topology,
    scenario: Scenario,
    stream: DeterministicStream,
    start_s: float,
    index: int,
) -> ProblemEvent:
    forward, backward = _pick_physical_link(topology, stream, "lat", index, "pick")
    duration = _event_duration(stream, scenario, "lat", index)
    inflation = stream.uniform_between(
        scenario.latency_inflation_low_ms,
        scenario.latency_inflation_high_ms,
        "lat",
        index,
        "amount",
    )
    state = LinkState(extra_latency_ms=inflation)
    burst = Burst(
        start_s,
        duration,
        (LinkDegradation(forward, state), LinkDegradation(backward, state)),
    )
    return ProblemEvent(EventKind.LATENCY, forward, start_s, duration, (burst,))


def _background_event(
    topology: Topology,
    scenario: Scenario,
    stream: DeterministicStream,
    start_s: float,
    index: int,
) -> ProblemEvent:
    edge: Edge = stream.choice(list(topology.edges), "bg", index, "pick")
    duration = _event_duration(stream, scenario, "bg", index)
    loss = stream.uniform_between(
        scenario.background_loss_low,
        scenario.background_loss_high,
        "bg",
        index,
        "amount",
    )
    burst = Burst(
        start_s, duration, (LinkDegradation(edge, LinkState(loss_rate=loss)),)
    )
    return ProblemEvent(EventKind.BACKGROUND, edge, start_s, duration, (burst,))


def generate_events(
    topology: Topology, scenario: Scenario, seed: int
) -> list[ProblemEvent]:
    """Generate the full event list for one trace, sorted by start time."""
    require(topology.frozen, "scenario generation requires a frozen topology")
    stream = DeterministicStream(seed, "scenario")
    events: list[ProblemEvent] = []
    makers = (
        ("node", scenario.node_event_rate_per_day, _node_event),
        ("link", scenario.link_event_rate_per_day, _link_event),
        ("lat", scenario.latency_event_rate_per_day, _latency_event),
        ("bg", scenario.background_event_rate_per_day, _background_event),
    )
    for kind, rate, maker in makers:
        for index, start in enumerate(
            _event_times(stream, rate, scenario.duration_s, kind)
        ):
            event = maker(topology, scenario, stream, start, index)
            if event is not None:
                events.append(event)
    events.sort(key=lambda event: (event.start_s, event.kind.value, repr(event.location)))
    return events


def generate_timeline(
    topology: Topology, scenario: Scenario, seed: int
) -> tuple[list[ProblemEvent], ConditionTimeline]:
    """Generate events and compile them into a condition timeline."""
    events = generate_events(topology, scenario, seed)
    contributions = [c for event in events for c in event.contributions()]
    timeline = ConditionTimeline(topology, scenario.duration_s, contributions)
    return events, timeline
