"""Problem-event types emitted by the scenario generator.

An *event* (episode) is the generator's unit of ground truth: something
went wrong somewhere for some time.  Real overlay outages are **bursty**:
within an episode, loss comes and goes in sub-minute bursts, and the set
of affected links shifts between bursts.  Burstiness is what separates the
routing philosophies -- a reactive scheme re-routes only after it detects
a burst (usually too late), while a redundant scheme is already protected
when the next burst lands.  Each event therefore carries a sequence of
:class:`Burst` records; each burst expands into per-edge
:class:`~repro.netmodel.conditions.Contribution` records.

Keeping events as first-class objects (rather than only their compiled
contributions) lets the analysis layer compare per-flow classification
against the generator's ground truth (experiment E1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable

from repro.core.graph import Edge, NodeId
from repro.netmodel.conditions import Contribution, LinkState
from repro.util.validation import require

__all__ = [
    "EventKind",
    "LinkDegradation",
    "Burst",
    "ProblemEvent",
    "net_states",
    "net_contributions",
]


class EventKind(enum.Enum):
    """What kind of trouble an event models."""

    NODE = "node"  # a site's connectivity degrades: loss on adjacent links
    LINK = "link"  # a single overlay link experiences loss
    LATENCY = "latency"  # a single overlay link's latency inflates
    BACKGROUND = "background"  # light, sub-threshold background loss
    CRASH = "crash"  # a site's daemon stops responding entirely (chaos)
    PARTITION = "partition"  # a node group is cut off from the rest (chaos)


@dataclass(frozen=True)
class LinkDegradation:
    """One directed edge's conditions during one burst."""

    edge: Edge
    state: LinkState


@dataclass(frozen=True)
class Burst:
    """One contiguous stretch of degradation within an event."""

    start_s: float
    duration_s: float
    degradations: tuple[LinkDegradation, ...]

    def __post_init__(self) -> None:
        require(self.duration_s > 0, "burst duration must be positive")
        require(self.start_s >= 0, "burst start must be >= 0")

    @property
    def end_s(self) -> float:
        """End of the time span (start + duration)."""
        return self.start_s + self.duration_s


@dataclass(frozen=True)
class ProblemEvent:
    """One generated episode: kind, location, time span, bursts."""

    kind: EventKind
    location: NodeId | Edge
    start_s: float
    duration_s: float
    bursts: tuple[Burst, ...]

    def __post_init__(self) -> None:
        require(self.duration_s > 0, "event duration must be positive")
        require(self.start_s >= 0, "event start must be >= 0")
        require(bool(self.bursts), "an event needs at least one burst")
        for burst in self.bursts:
            require(
                self.start_s <= burst.start_s
                and burst.end_s <= self.end_s + 1e-9,
                "bursts must lie within the event span",
            )

    @property
    def end_s(self) -> float:
        """End of the time span (start + duration)."""
        return self.start_s + self.duration_s

    @property
    def affected_edges(self) -> frozenset[Edge]:
        """Every directed edge any burst degrades."""
        return frozenset(
            d.edge for burst in self.bursts for d in burst.degradations
        )

    @property
    def affected_nodes(self) -> frozenset[NodeId]:
        """Every node touched by an affected edge."""
        nodes: set[NodeId] = set()
        for edge in self.affected_edges:
            nodes.update(edge)
        return frozenset(nodes)

    def contributions(self) -> list[Contribution]:
        """Expand into condition-timeline contributions."""
        return [
            Contribution(d.edge, burst.start_s, burst.end_s, d.state)
            for burst in self.bursts
            for d in burst.degradations
        ]

    def overlaps(self, start_s: float, end_s: float) -> bool:
        """Does the event intersect the half-open window ``[start, end)``?"""
        return self.start_s < end_s and start_s < self.end_s


# -- same-cause netting -------------------------------------------------------------
#
# When one physical cause produces several overlapping degradation windows
# on the *same* directed edge (a congestion storm's primary wave plus its
# echo, the staggered legs of one shared-risk cut), the windows are not
# independent trials and must not be composed with the timeline's
# independent-drop rule.  The documented same-cause policy is:
#
# * **loss nets as the maximum** -- a link cut twice by the same backhoe is
#   still just cut; re-counting the cut as two independent drop chances
#   would understate survivors on partially lossy links and (harmlessly but
#   misleadingly) re-derive 1.0 for full loss;
# * **extra latency nets additively** -- overlapping surges feed the same
#   queue, so their queueing delays stack.
#
# Cross-event composition inside :class:`ConditionTimeline` keeps the
# independent-drop / max-latency rule (distinct events are distinct
# causes).  Generators therefore net their own overlapping windows with
# :func:`net_contributions` *before* emitting bursts, so the timeline only
# ever composes across causes.  A naive generator that instead emitted
# overlapping same-cause windows raw would get last-writer-wins or
# independent-drop semantics by accident -- the latent bug class this
# helper closes.


def net_states(states: Iterable[LinkState]) -> LinkState:
    """Net simultaneous same-cause degradations: max loss, additive latency."""
    loss = 0.0
    extra = 0.0
    for state in states:
        loss = max(loss, state.loss_rate)
        extra += state.extra_latency_ms
    return LinkState(loss_rate=loss, extra_latency_ms=extra)


def net_contributions(
    contributions: Iterable[Contribution],
) -> list[Contribution]:
    """Replace overlapping same-edge windows by equivalent disjoint ones.

    Per directed edge the result is a set of non-overlapping contributions
    whose state at every instant is the :func:`net_states` netting of all
    input windows covering that instant.  Zero-gap back-to-back windows
    with an identical net state merge into one window (the boundary is not
    observable); windows that merely abut with *different* states stay
    separate.  Output is sorted by ``(edge, start)`` and is deterministic
    in the input set (order-independent).
    """
    per_edge: dict[Edge, list[Contribution]] = {}
    for contribution in contributions:
        per_edge.setdefault(contribution.edge, []).append(contribution)
    result: list[Contribution] = []
    for edge in sorted(per_edge):
        windows = per_edge[edge]
        boundaries = sorted({w.start_s for w in windows} | {w.end_s for w in windows})
        merged: list[Contribution] = []
        for start, end in zip(boundaries, boundaries[1:]):
            midpoint = (start + end) / 2.0
            active = [w.state for w in windows if w.start_s <= midpoint < w.end_s]
            if not active:
                continue
            state = net_states(active)
            if merged and merged[-1].end_s == start and merged[-1].state == state:
                merged[-1] = Contribution(edge, merged[-1].start_s, end, state)
            else:
                merged.append(Contribution(edge, start, end, state))
        result.extend(merged)
    return result
