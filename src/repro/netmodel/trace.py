"""JSONL persistence for condition traces.

A trace file is a header line followed by one JSON object per problem
event.  Storing *events* (rather than compiled per-edge segments) keeps
the ground truth available to the analysis layer; the condition timeline
is recompiled on load.  The format is line-oriented so multi-week traces
can be streamed and inspected with standard tools.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.core.graph import Topology
from repro.netmodel.conditions import ConditionTimeline, LinkState
from repro.netmodel.events import Burst, EventKind, LinkDegradation, ProblemEvent
from repro.util.validation import require

__all__ = ["write_trace", "read_trace", "load_timeline", "TRACE_FORMAT_VERSION"]

TRACE_FORMAT_VERSION = 1


def _event_to_json(event: ProblemEvent) -> dict:
    location = (
        list(event.location) if isinstance(event.location, tuple) else event.location
    )
    return {
        "kind": event.kind.value,
        "location": location,
        "start_s": event.start_s,
        "duration_s": event.duration_s,
        "bursts": [
            {
                "start_s": burst.start_s,
                "duration_s": burst.duration_s,
                "degradations": [
                    {
                        "edge": list(d.edge),
                        "loss_rate": d.state.loss_rate,
                        "extra_latency_ms": d.state.extra_latency_ms,
                    }
                    for d in burst.degradations
                ],
            }
            for burst in event.bursts
        ],
    }


def _event_from_json(payload: dict) -> ProblemEvent:
    location = payload["location"]
    if isinstance(location, list):
        location = tuple(location)
    bursts = tuple(
        Burst(
            burst["start_s"],
            burst["duration_s"],
            tuple(
                LinkDegradation(
                    tuple(item["edge"]),
                    LinkState(
                        loss_rate=item["loss_rate"],
                        extra_latency_ms=item["extra_latency_ms"],
                    ),
                )
                for item in burst["degradations"]
            ),
        )
        for burst in payload["bursts"]
    )
    return ProblemEvent(
        EventKind(payload["kind"]),
        location,
        payload["start_s"],
        payload["duration_s"],
        bursts,
    )


def write_trace(
    path: str | Path,
    topology: Topology,
    duration_s: float,
    events: Iterable[ProblemEvent],
) -> None:
    """Write a trace file (header + one event per line)."""
    require(duration_s > 0, "duration must be positive")
    header = {
        "format": "repro-dgraphs-trace",
        "version": TRACE_FORMAT_VERSION,
        "topology": topology.name,
        "nodes": list(topology.nodes),
        "duration_s": duration_s,
    }
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(header) + "\n")
        for event in events:
            handle.write(json.dumps(_event_to_json(event)) + "\n")


def read_trace(
    path: str | Path, topology: Topology
) -> tuple[float, list[ProblemEvent]]:
    """Read a trace file, validating it against ``topology``.

    Returns ``(duration_s, events)``.  Raises ``ValueError`` on format or
    topology mismatches rather than silently replaying the wrong network.
    """
    with open(path, "r", encoding="utf-8") as handle:
        header_line = handle.readline()
        if not header_line:
            raise ValueError(f"trace file {path} is empty")
        header = json.loads(header_line)
        if header.get("format") != "repro-dgraphs-trace":
            raise ValueError(f"{path} is not a repro-dgraphs trace file")
        if header.get("version") != TRACE_FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace version {header.get('version')!r}; "
                f"this build reads version {TRACE_FORMAT_VERSION}"
            )
        if header.get("nodes") != list(topology.nodes):
            raise ValueError(
                "trace was recorded on a different topology "
                f"({header.get('topology')!r}); refusing to replay"
            )
        duration_s = float(header["duration_s"])
        events = []
        for line_number, line in enumerate(handle, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(_event_from_json(json.loads(line)))
            except (KeyError, ValueError) as error:
                raise ValueError(
                    f"{path}:{line_number}: malformed event record: {error}"
                ) from error
    for event in events:
        for edge in event.affected_edges:
            if not topology.has_edge(*edge):
                raise ValueError(
                    f"trace references edge {edge!r} absent from the topology"
                )
    return duration_s, events


def load_timeline(
    path: str | Path, topology: Topology
) -> tuple[list[ProblemEvent], ConditionTimeline]:
    """Read a trace and compile its condition timeline."""
    duration_s, events = read_trace(path, topology)
    contributions = [c for event in events for c in event.contributions()]
    return events, ConditionTimeline(topology, duration_s, contributions)
