"""Dissemination graphs -- the paper's unified routing abstraction.

A *dissemination graph* for a flow ``(source, destination)`` is a set of
directed overlay edges.  The forwarding rule is constrained flooding: when
a node receives a packet of the flow for the first time, it forwards a copy
on every outgoing edge of the graph.  A single path, two disjoint paths,
k disjoint paths, and full (time-constrained) flooding are all instances of
the same abstraction, which is what lets one forwarding engine support the
whole spectrum of routing schemes.

The *cost* of a dissemination graph is the number of edges it contains:
each edge carries exactly one copy of each packet, so edges == messages
sent per packet (Section III of the paper).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from repro.core.graph import Edge, NodeId
from repro.util.validation import require

__all__ = ["DisseminationGraph"]

_INF = float("inf")


@dataclass(frozen=True)
class DisseminationGraph:
    """An immutable dissemination graph for a single flow.

    Instances are value objects: equality and hashing consider the flow
    endpoints and the edge set, so graphs can be deduplicated, cached, and
    used as dict keys by the routing policies.
    """

    source: NodeId
    destination: NodeId
    edges: frozenset[Edge]
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        require(self.source != self.destination, "source must differ from destination")
        for edge in self.edges:
            require(
                isinstance(edge, tuple) and len(edge) == 2,
                f"edge must be a (source, target) pair, got {edge!r}",
            )
            require(edge[0] != edge[1], f"self-loop edge {edge!r}")

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_path(
        cls, path: Iterable[NodeId], name: str = ""
    ) -> "DisseminationGraph":
        """Build a single-path graph from a node sequence."""
        nodes = list(path)
        require(len(nodes) >= 2, "a path needs at least two nodes")
        require(len(set(nodes)) == len(nodes), f"path revisits a node: {nodes!r}")
        edges = frozenset(zip(nodes, nodes[1:]))
        return cls(nodes[0], nodes[-1], edges, name=name)

    @classmethod
    def from_paths(
        cls, paths: Iterable[Iterable[NodeId]], name: str = ""
    ) -> "DisseminationGraph":
        """Build the union graph of several paths sharing endpoints."""
        materialised = [list(path) for path in paths]
        require(bool(materialised), "need at least one path")
        source = materialised[0][0]
        destination = materialised[0][-1]
        edges: set[Edge] = set()
        for nodes in materialised:
            require(len(nodes) >= 2, "a path needs at least two nodes")
            require(
                nodes[0] == source and nodes[-1] == destination,
                "all paths must share the same endpoints",
            )
            edges.update(zip(nodes, nodes[1:]))
        return cls(source, destination, frozenset(edges), name=name)

    @classmethod
    def empty(
        cls, source: NodeId, destination: NodeId, name: str = ""
    ) -> "DisseminationGraph":
        """An edgeless graph (delivers nothing; useful as a unit element)."""
        return cls(source, destination, frozenset(), name=name)

    # -- basic properties ------------------------------------------------------

    @property
    def num_edges(self) -> int:
        """Cost of the graph: one message per edge per packet."""
        return len(self.edges)

    @property
    def nodes(self) -> frozenset[NodeId]:
        """Every node touched by an edge, plus the flow endpoints."""
        touched: set[NodeId] = {self.source, self.destination}
        for u, v in self.edges:
            touched.add(u)
            touched.add(v)
        return frozenset(touched)

    def has_edge(self, source: NodeId, target: NodeId) -> bool:
        """True when the directed edge is part of the graph."""
        return (source, target) in self.edges

    def out_neighbors(self, node: NodeId) -> tuple[NodeId, ...]:
        """Forwarding targets for ``node`` under constrained flooding."""
        return tuple(sorted(v for (u, v) in self.edges if u == node))

    def in_neighbors(self, node: NodeId) -> tuple[NodeId, ...]:
        """Nodes with an edge into ``node``, sorted."""
        return tuple(sorted(u for (u, v) in self.edges if v == node))

    def sorted_edges(self) -> tuple[Edge, ...]:
        """The edge set as a deterministic sorted tuple."""
        return tuple(sorted(self.edges))

    # -- algebra ---------------------------------------------------------------

    def union(self, other: "DisseminationGraph", name: str = "") -> "DisseminationGraph":
        """Edge-union of two graphs for the same flow."""
        require(
            self.source == other.source and self.destination == other.destination,
            "can only union graphs of the same flow",
        )
        return DisseminationGraph(
            self.source,
            self.destination,
            self.edges | other.edges,
            name=name or f"{self.name}+{other.name}",
        )

    def restrict(self, surviving: Iterable[Edge]) -> "DisseminationGraph":
        """The subgraph induced by ``surviving`` edges (e.g. after losses)."""
        keep = self.edges & frozenset(surviving)
        return DisseminationGraph(self.source, self.destination, keep, name=self.name)

    def without_node(self, node: NodeId) -> "DisseminationGraph":
        """Drop every edge touching ``node`` (models a crashed daemon)."""
        require(
            node not in (self.source, self.destination),
            "cannot remove a flow endpoint",
        )
        keep = frozenset(e for e in self.edges if node not in e)
        return DisseminationGraph(self.source, self.destination, keep, name=self.name)

    # -- reachability -----------------------------------------------------------

    def reachable_from_source(self) -> frozenset[NodeId]:
        """Nodes a packet reaches when every edge delivers."""
        adjacency: dict[NodeId, list[NodeId]] = {}
        for u, v in self.edges:
            adjacency.setdefault(u, []).append(v)
        seen = {self.source}
        frontier = [self.source]
        while frontier:
            node = frontier.pop()
            for neighbor in adjacency.get(node, ()):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return frozenset(seen)

    def connects(self) -> bool:
        """True when the graph can deliver source -> destination loss-free."""
        return self.destination in self.reachable_from_source()

    def arrival_times(
        self, latency: Callable[[NodeId, NodeId], float]
    ) -> Mapping[NodeId, float]:
        """Earliest arrival time (ms) at every reachable node.

        Under constrained flooding a packet traverses every edge it can, so
        the earliest copy to reach a node follows the shortest path within
        the graph: a Dijkstra run restricted to the graph's edges.
        ``latency(u, v)`` supplies the current per-edge one-way latency.
        """
        adjacency: dict[NodeId, list[NodeId]] = {}
        for u, v in self.edges:
            adjacency.setdefault(u, []).append(v)
        best: dict[NodeId, float] = {self.source: 0.0}
        heap: list[tuple[float, NodeId]] = [(0.0, self.source)]
        while heap:
            time_now, node = heapq.heappop(heap)
            if time_now > best.get(node, _INF):
                continue
            for neighbor in adjacency.get(node, ()):
                candidate = time_now + latency(node, neighbor)
                if candidate < best.get(neighbor, _INF):
                    best[neighbor] = candidate
                    heapq.heappush(heap, (candidate, neighbor))
        return best

    def delivery_latency(
        self, latency: Callable[[NodeId, NodeId], float]
    ) -> float | None:
        """Earliest arrival at the destination, or None if unreachable."""
        return self.arrival_times(latency).get(self.destination)

    def delivers_within(
        self, latency: Callable[[NodeId, NodeId], float], deadline_ms: float
    ) -> bool:
        """True when the earliest copy arrives within the deadline."""
        arrival = self.delivery_latency(latency)
        return arrival is not None and arrival <= deadline_ms

    # -- pruning ------------------------------------------------------------------

    def pruned(self, name: str = "") -> "DisseminationGraph":
        """Remove edges that can never carry a useful copy.

        An edge is useful only if its tail is reachable from the source and
        its head can still reach the destination within the graph.  Builders
        call this so reported costs never count dead edges.
        """
        forward = self.reachable_from_source()
        reverse_adjacency: dict[NodeId, list[NodeId]] = {}
        for u, v in self.edges:
            reverse_adjacency.setdefault(v, []).append(u)
        reaches_destination = {self.destination}
        frontier = [self.destination]
        while frontier:
            node = frontier.pop()
            for upstream in reverse_adjacency.get(node, ()):
                if upstream not in reaches_destination:
                    reaches_destination.add(upstream)
                    frontier.append(upstream)
        keep = frozenset(
            (u, v)
            for (u, v) in self.edges
            if u in forward and v in reaches_destination
        )
        return DisseminationGraph(
            self.source, self.destination, keep, name=name or self.name
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" {self.name!r}" if self.name else ""
        return (
            f"DisseminationGraph({self.source}->{self.destination}{label}, "
            f"{self.num_edges} edges)"
        )
