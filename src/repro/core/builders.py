"""Constructors for every dissemination-graph family the paper evaluates.

Four families (paper Sections III and V):

* **single path** -- lowest-latency path (the traditional approach);
* **k disjoint paths** -- minimum-total-latency set of node-disjoint paths;
* **time-constrained flooding** -- every edge that can still be useful
  within the latency budget: the *optimal* scheme (no graph delivers a
  packet on time if flooding does not) but prohibitively expensive;
* **targeted redundancy** -- the paper's contribution: the two disjoint
  paths plus extra redundancy concentrated around a problematic source or
  destination, constructed so a packet enters (leaves) the problem area
  over *all* available adjacent links.

All builders require a frozen topology and return pruned graphs (dead
edges removed) so the reported cost counts only edges that can carry a
useful copy.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.algorithms import (
    NoPathError,
    adjacency_from_topology,
    disjoint_paths,
    shortest_path,
    single_source_distances,
    steiner_arborescence,
)
from repro.core.algorithms.adjacency import reverse_adjacency
from repro.core.dgraph import DisseminationGraph
from repro.core.graph import Edge, NodeId, Topology
from repro.util.validation import require

__all__ = [
    "single_path_graph",
    "k_disjoint_paths_graph",
    "two_disjoint_paths_graph",
    "time_constrained_flooding_graph",
    "source_problem_graph",
    "destination_problem_graph",
    "robust_source_destination_graph",
    "overlay_flooding_graph",
]


def _check_flow(topology: Topology, source: NodeId, destination: NodeId) -> None:
    require(topology.frozen, "builders require a frozen topology")
    require(topology.has_node(source), f"unknown source {source!r}")
    require(topology.has_node(destination), f"unknown destination {destination!r}")
    require(source != destination, "source must differ from destination")


def single_path_graph(
    topology: Topology,
    source: NodeId,
    destination: NodeId,
    exclude_edges: Iterable[Edge] = (),
    name: str = "single-path",
) -> DisseminationGraph:
    """Lowest-latency single path (raises ``NoPathError`` if disconnected)."""
    _check_flow(topology, source, destination)
    adjacency = adjacency_from_topology(topology, exclude_edges=exclude_edges)
    path, _latency = shortest_path(adjacency, source, destination)
    return DisseminationGraph.from_path(path, name=name)


def k_disjoint_paths_graph(
    topology: Topology,
    source: NodeId,
    destination: NodeId,
    k: int = 2,
    exclude_edges: Iterable[Edge] = (),
    node_disjoint: bool = True,
    name: str = "",
) -> DisseminationGraph:
    """Minimum-total-latency set of up to ``k`` disjoint paths.

    Falls back gracefully: if fewer than ``k`` disjoint paths exist under
    the exclusions, the graph contains as many as do; if the destination is
    unreachable, raises :class:`NoPathError`.
    """
    _check_flow(topology, source, destination)
    require(k >= 1, f"k must be >= 1, got {k}")
    adjacency = adjacency_from_topology(topology, exclude_edges=exclude_edges)
    paths = disjoint_paths(
        adjacency, source, destination, k=k, node_disjoint=node_disjoint
    )
    if not paths:
        raise NoPathError(source, destination)
    return DisseminationGraph.from_paths(paths, name=name or f"{k}-disjoint-paths")


def two_disjoint_paths_graph(
    topology: Topology,
    source: NodeId,
    destination: NodeId,
    exclude_edges: Iterable[Edge] = (),
    name: str = "two-disjoint-paths",
) -> DisseminationGraph:
    """The paper's baseline redundant scheme: two node-disjoint paths."""
    return k_disjoint_paths_graph(
        topology,
        source,
        destination,
        k=2,
        exclude_edges=exclude_edges,
        name=name,
    )


def time_constrained_flooding_graph(
    topology: Topology,
    source: NodeId,
    destination: NodeId,
    deadline_ms: float,
    name: str = "",
) -> DisseminationGraph:
    """Optimal-but-expensive scheme: flood on every potentially useful edge.

    An edge ``(u, v)`` is included when a copy travelling
    ``source ->* u -> v ->* destination`` at base latencies can still meet
    the deadline: ``dist(s, u) + lat(u, v) + dist(v, d) <= deadline``.
    This graph delivers a packet on time whenever *any* dissemination graph
    could, making it the upper bound ("optimal") in the evaluation.
    """
    _check_flow(topology, source, destination)
    require(deadline_ms > 0, f"deadline must be positive, got {deadline_ms}")
    adjacency = adjacency_from_topology(topology)
    from_source = single_source_distances(adjacency, source)
    to_destination = single_source_distances(
        reverse_adjacency(adjacency), destination
    )
    edges = set()
    for link in topology.iter_links():
        head_distance = from_source.get(link.source)
        tail_distance = to_destination.get(link.target)
        if head_distance is None or tail_distance is None:
            continue
        if head_distance + link.latency_ms + tail_distance <= deadline_ms:
            edges.add(link.edge)
    graph = DisseminationGraph(
        source,
        destination,
        frozenset(edges),
        name=name or f"flooding-{deadline_ms:g}ms",
    )
    return graph.pruned()


def overlay_flooding_graph(
    topology: Topology, source: NodeId, destination: NodeId, name: str = "flooding"
) -> DisseminationGraph:
    """Unconstrained flooding: every edge of the overlay (reference only)."""
    _check_flow(topology, source, destination)
    return DisseminationGraph(
        source, destination, frozenset(topology.edges), name=name
    ).pruned()


def _select_entry_nodes(
    topology: Topology,
    endpoint: NodeId,
    neighbors: Sequence[NodeId],
    other_end: NodeId,
    limit: int | None,
    detour_budget_ms: float | None,
    entry_side: bool,
) -> list[NodeId]:
    """Pick which of ``endpoint``'s neighbours the problem graph covers.

    With no limit every *useful* neighbour is used (maximum protection);
    ``detour_budget_ms`` drops neighbours through which no copy can reach
    the destination within the deadline -- redundancy that can only
    produce late copies is pure cost.  With a limit, the neighbours
    offering the fastest detour are preferred.

    ``entry_side`` selects the direction: True for the destination's
    in-neighbours (detour = source ->* n -> destination), False for the
    source's out-neighbours (detour = source -> n ->* destination).
    """
    candidates = [n for n in neighbors if n != other_end]
    adjacency = adjacency_from_topology(topology)
    if entry_side:
        distances = single_source_distances(adjacency, other_end)

        def detour_ms(n: NodeId) -> float:
            upstream = distances.get(n, float("inf"))
            return upstream + topology.latency(n, endpoint)

    else:
        distances = single_source_distances(reverse_adjacency(adjacency), other_end)

        def detour_ms(n: NodeId) -> float:
            downstream = distances.get(n, float("inf"))
            return topology.latency(endpoint, n) + downstream

    if detour_budget_ms is not None:
        candidates = [n for n in candidates if detour_ms(n) <= detour_budget_ms]
    if limit is None or limit >= len(candidates):
        return sorted(candidates)
    candidates.sort(key=lambda n: (detour_ms(n), n))
    return sorted(candidates[:limit])


def _deadline_prune(
    topology: Topology,
    graph: DisseminationGraph,
    deadline_ms: float | None,
    name: str,
) -> DisseminationGraph:
    """Drop edges that can never carry an on-time copy.

    Uses the time-constrained-flooding criterion (a necessary condition
    for usefulness), so only certainly-useless edges are removed.  If
    pruning would disconnect the flow (deadline tighter than the shortest
    path) the unpruned graph is kept -- best effort beats nothing.
    """
    if deadline_ms is None:
        return graph.pruned(name=name)
    flooding = time_constrained_flooding_graph(
        topology, graph.source, graph.destination, deadline_ms
    )
    candidate = graph.restrict(flooding.edges).pruned(name=name)
    if candidate.connects():
        return candidate
    return graph.pruned(name=name)


def destination_problem_graph(
    topology: Topology,
    source: NodeId,
    destination: NodeId,
    max_entry_links: int | None = None,
    deadline_ms: float | None = None,
    name: str = "destination-problem",
) -> DisseminationGraph:
    """Targeted redundancy around a problematic destination.

    The graph delivers each packet to the destination over **all** (or the
    best ``max_entry_links``) of its usable incoming overlay links: a
    cheap Steiner arborescence carries the packet from the source to each
    of the destination's neighbours (never routing *through* the
    destination), and each neighbour forwards to the destination.  The
    two-disjoint-paths graph is unioned in as the base so the problem
    graph is never worse than normal operation.  With ``deadline_ms``,
    neighbours and edges that could only yield late copies are excluded.
    """
    _check_flow(topology, source, destination)
    base = two_disjoint_paths_graph(topology, source, destination)
    entries = _select_entry_nodes(
        topology,
        destination,
        topology.in_neighbors(destination),
        source,
        max_entry_links,
        deadline_ms,
        entry_side=True,
    )
    adjacency = adjacency_from_topology(topology, exclude_nodes=(destination,))
    tree_edges = steiner_arborescence(adjacency, source, entries)
    edges = set(base.edges) | tree_edges
    for entry in entries:
        if topology.has_edge(entry, destination):
            edges.add((entry, destination))
    graph = DisseminationGraph(source, destination, frozenset(edges), name=name)
    return _deadline_prune(topology, graph, deadline_ms, name)


def source_problem_graph(
    topology: Topology,
    source: NodeId,
    destination: NodeId,
    max_exit_links: int | None = None,
    deadline_ms: float | None = None,
    name: str = "source-problem",
) -> DisseminationGraph:
    """Targeted redundancy around a problematic source (mirror image).

    The source sends on **all** (or the best ``max_exit_links``) of its
    usable outgoing overlay links, and a reverse Steiner arborescence
    funnels the copies from those neighbours to the destination without
    routing back through the source.
    """
    _check_flow(topology, source, destination)
    base = two_disjoint_paths_graph(topology, source, destination)
    exits = _select_entry_nodes(
        topology,
        source,
        topology.out_neighbors(source),
        destination,
        max_exit_links,
        deadline_ms,
        entry_side=False,
    )
    adjacency = adjacency_from_topology(topology, exclude_nodes=(source,))
    # Arborescence *into* the destination: build on the reversed graph
    # rooted at the destination, then flip the edges back.
    reversed_tree = steiner_arborescence(
        reverse_adjacency(adjacency), destination, exits
    )
    edges = set(base.edges)
    edges.update((v, u) for (u, v) in reversed_tree)
    for exit_node in exits:
        if topology.has_edge(source, exit_node):
            edges.add((source, exit_node))
    graph = DisseminationGraph(source, destination, frozenset(edges), name=name)
    return _deadline_prune(topology, graph, deadline_ms, name)


def robust_source_destination_graph(
    topology: Topology,
    source: NodeId,
    destination: NodeId,
    max_entry_links: int | None = None,
    max_exit_links: int | None = None,
    deadline_ms: float | None = None,
    name: str = "robust-source-destination",
) -> DisseminationGraph:
    """Union of the source-problem and destination-problem graphs.

    Used when problems are detected at both endpoints simultaneously (or
    when the classifier cannot localise the problem to one endpoint).
    """
    destination_graph = destination_problem_graph(
        topology,
        source,
        destination,
        max_entry_links=max_entry_links,
        deadline_ms=deadline_ms,
    )
    source_graph = source_problem_graph(
        topology,
        source,
        destination,
        max_exit_links=max_exit_links,
        deadline_ms=deadline_ms,
    )
    union = destination_graph.union(source_graph, name=name)
    return _deadline_prune(topology, union, deadline_ms, name)
