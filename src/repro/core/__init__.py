"""Core dissemination-graph abstractions and routing algorithms.

This package implements the paper's primary contribution:

* :mod:`repro.core.graph` -- the overlay topology substrate.
* :mod:`repro.core.dgraph` -- dissemination graphs, the unified framework
  for specifying routing schemes from a single path to arbitrary graphs.
* :mod:`repro.core.algorithms` -- from-scratch graph algorithms (shortest
  paths, disjoint path pairs, flows, Steiner arborescences).
* :mod:`repro.core.builders` -- constructors for every dissemination-graph
  family the paper evaluates (single path, k disjoint paths,
  time-constrained flooding, targeted source/destination-problem graphs).
* :mod:`repro.core.detection` -- problem detection and classification that
  drives graph switching.
* :mod:`repro.core.encoding` -- compact wire encoding of dissemination
  graphs as edge bitmasks (how graphs travel in packet headers).
"""

from repro.core.dgraph import DisseminationGraph
from repro.core.graph import Link, Topology

__all__ = ["DisseminationGraph", "Link", "Topology"]
