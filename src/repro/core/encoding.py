"""Compact wire encoding of dissemination graphs.

In the deployed system each data packet carries (or references) the
dissemination graph it should be flooded on, so intermediate daemons can
forward without per-flow installed state.  With the overlay's modest size
a graph fits in a fixed-width *edge bitmask* over the topology's stable
edge index: bit ``i`` set means "forward on edge ``i``".

The encoding is: 2-byte source node index, 2-byte destination node index,
then ``ceil(num_edges / 8)`` bytes of little-endian bitmask.  Both sides
must share the same frozen topology (the link-state protocol keeps them
agreeing on membership; a topology fingerprint guards against skew).
"""

from __future__ import annotations

import hashlib
import struct

from repro.core.dgraph import DisseminationGraph
from repro.core.graph import Topology
from repro.util.validation import require

__all__ = [
    "encode_graph",
    "decode_graph",
    "encoded_size",
    "topology_fingerprint",
]

_HEADER = struct.Struct("<HH")


def topology_fingerprint(topology: Topology) -> bytes:
    """8-byte digest of the topology's node and edge sets.

    Peers include this in hello messages; a mismatch means their views of
    the overlay membership diverge and bitmasks must not be trusted.
    """
    require(topology.frozen, "fingerprint requires a frozen topology")
    hasher = hashlib.sha256()
    for node in topology.nodes:
        hasher.update(node.encode("utf-8"))
        hasher.update(b"\x00")
    hasher.update(b"|")
    for edge in topology.edges:
        hasher.update(f"{edge[0]}->{edge[1]}".encode("utf-8"))
        hasher.update(b"\x00")
    return hasher.digest()[:8]


def encoded_size(topology: Topology) -> int:
    """Bytes needed to encode any dissemination graph on this topology."""
    require(topology.frozen, "encoding requires a frozen topology")
    return _HEADER.size + (topology.num_edges + 7) // 8


def encode_graph(topology: Topology, graph: DisseminationGraph) -> bytes:
    """Encode ``graph`` as a fixed-width header + edge bitmask."""
    require(topology.frozen, "encoding requires a frozen topology")
    nodes = topology.nodes
    node_index = {node: index for index, node in enumerate(nodes)}
    require(graph.source in node_index, f"source {graph.source!r} not in topology")
    require(
        graph.destination in node_index,
        f"destination {graph.destination!r} not in topology",
    )
    edge_index = topology.edge_index
    mask = 0
    for edge in graph.edges:
        index = edge_index.get(edge)
        require(index is not None, f"edge {edge!r} not in topology")
        mask |= 1 << index
    header = _HEADER.pack(node_index[graph.source], node_index[graph.destination])
    body = mask.to_bytes((topology.num_edges + 7) // 8, "little")
    return header + body


def decode_graph(topology: Topology, payload: bytes) -> DisseminationGraph:
    """Inverse of :func:`encode_graph`.

    Raises ``ValueError`` on truncated payloads or bits beyond the
    topology's edge count (a sign of topology-view skew between peers).
    """
    require(topology.frozen, "decoding requires a frozen topology")
    expected = encoded_size(topology)
    if len(payload) != expected:
        raise ValueError(
            f"encoded graph must be {expected} bytes, got {len(payload)}"
        )
    source_index, destination_index = _HEADER.unpack_from(payload)
    nodes = topology.nodes
    if source_index >= len(nodes) or destination_index >= len(nodes):
        raise ValueError("node index out of range for this topology")
    mask = int.from_bytes(payload[_HEADER.size :], "little")
    if mask >> topology.num_edges:
        raise ValueError("bitmask has bits set beyond the topology's edges")
    edges = []
    edge_list = topology.edges
    index = 0
    while mask:
        if mask & 1:
            edges.append(edge_list[index])
        mask >>= 1
        index += 1
    return DisseminationGraph(
        nodes[source_index], nodes[destination_index], frozenset(edges)
    )
