"""Overlay topology substrate.

The overlay network is a graph of overlay nodes (daemons running at
data-center sites) connected by *overlay links* (UDP paths between
neighbouring sites).  Links are physically bidirectional but conditions can
be asymmetric, so the topology is stored as **directed** edges; the common
case of a symmetric link is added with one call to :meth:`Topology.add_link`.

Each directed edge carries its *base* propagation latency in milliseconds.
Time-varying conditions (loss, inflated latency) are deliberately not part
of the topology -- they live in :mod:`repro.netmodel.conditions` -- so that
a single immutable topology can be shared by every scheme and every replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.util.validation import require

__all__ = ["NodeId", "Edge", "Link", "Topology"]

NodeId = str
Edge = tuple[NodeId, NodeId]


@dataclass(frozen=True)
class Link:
    """A directed overlay link with its static base latency.

    ``latency_ms`` is the one-way propagation latency under normal
    conditions.  ``cost`` is the per-message cost of sending on the link;
    the paper counts cost as messages sent per packet, so the default cost
    of 1.0 makes graph cost equal edge count.
    """

    source: NodeId
    target: NodeId
    latency_ms: float
    cost: float = 1.0

    def __post_init__(self) -> None:
        require(self.source != self.target, "self-loop links are not allowed")
        require(self.latency_ms >= 0, f"latency must be >= 0, got {self.latency_ms}")
        require(self.cost >= 0, f"cost must be >= 0, got {self.cost}")

    @property
    def edge(self) -> Edge:
        """The directed ``(source, target)`` pair."""
        return (self.source, self.target)


class Topology:
    """An immutable-after-construction overlay topology.

    Build with :meth:`add_node` / :meth:`add_link`, then call
    :meth:`freeze`.  All read accessors work before and after freezing, but
    routing code should only ever see frozen topologies (the builders
    enforce this), which guarantees the edge index used for wire encoding
    is stable.
    """

    def __init__(self, name: str = "overlay") -> None:
        self.name = name
        self._nodes: dict[NodeId, dict[str, float]] = {}
        self._links: dict[Edge, Link] = {}
        self._out: dict[NodeId, list[NodeId]] = {}
        self._in: dict[NodeId, list[NodeId]] = {}
        self._frozen = False
        self._edge_index: dict[Edge, int] | None = None

    # -- construction ------------------------------------------------------

    def add_node(self, node: NodeId, **attributes: float) -> None:
        """Add a node; ``attributes`` typically hold ``lat``/``lon``."""
        self._check_mutable()
        require(bool(node), "node id must be a non-empty string")
        require(node not in self._nodes, f"duplicate node {node!r}")
        self._nodes[node] = dict(attributes)
        self._out[node] = []
        self._in[node] = []

    def add_link(
        self,
        source: NodeId,
        target: NodeId,
        latency_ms: float,
        cost: float = 1.0,
        bidirectional: bool = True,
    ) -> None:
        """Add a link (both directions by default)."""
        self._check_mutable()
        self._add_directed(Link(source, target, latency_ms, cost))
        if bidirectional:
            self._add_directed(Link(target, source, latency_ms, cost))

    def _add_directed(self, link: Link) -> None:
        require(link.source in self._nodes, f"unknown node {link.source!r}")
        require(link.target in self._nodes, f"unknown node {link.target!r}")
        require(link.edge not in self._links, f"duplicate link {link.edge!r}")
        self._links[link.edge] = link
        self._out[link.source].append(link.target)
        self._in[link.target].append(link.source)

    def freeze(self) -> "Topology":
        """Make the topology immutable and assign the stable edge index.

        Returns ``self`` for chaining.  Freezing an already-frozen topology
        is a no-op.
        """
        if not self._frozen:
            self._frozen = True
            ordered = sorted(self._links)
            self._edge_index = {edge: index for index, edge in enumerate(ordered)}
            for neighbors in self._out.values():
                neighbors.sort()
            for neighbors in self._in.values():
                neighbors.sort()
        return self

    def _check_mutable(self) -> None:
        require(not self._frozen, "topology is frozen and cannot be modified")

    # -- read access -------------------------------------------------------

    @property
    def frozen(self) -> bool:
        """True once :meth:`freeze` has been called."""
        return self._frozen

    @property
    def nodes(self) -> tuple[NodeId, ...]:
        """All node ids, sorted."""
        return tuple(sorted(self._nodes))

    @property
    def edges(self) -> tuple[Edge, ...]:
        """All directed edges, sorted."""
        return tuple(sorted(self._links))

    def node_attributes(self, node: NodeId) -> Mapping[str, float]:
        """A copy of the node's attribute mapping (e.g. lat/lon)."""
        require(node in self._nodes, f"unknown node {node!r}")
        return dict(self._nodes[node])

    def has_node(self, node: NodeId) -> bool:
        """True when ``node`` exists in the topology."""
        return node in self._nodes

    def has_edge(self, source: NodeId, target: NodeId) -> bool:
        """True when the directed edge exists."""
        return (source, target) in self._links

    def link(self, source: NodeId, target: NodeId) -> Link:
        """The :class:`Link` for a directed edge (raises if absent)."""
        require((source, target) in self._links, f"no link {(source, target)!r}")
        return self._links[(source, target)]

    def latency(self, source: NodeId, target: NodeId) -> float:
        """Base one-way latency of the directed edge in milliseconds."""
        return self.link(source, target).latency_ms

    def cost(self, source: NodeId, target: NodeId) -> float:
        """Per-message cost of the directed edge."""
        return self.link(source, target).cost

    def out_neighbors(self, node: NodeId) -> tuple[NodeId, ...]:
        """Targets of the node's outgoing edges, sorted."""
        require(node in self._nodes, f"unknown node {node!r}")
        return tuple(self._out[node])

    def in_neighbors(self, node: NodeId) -> tuple[NodeId, ...]:
        """Sources of the node's incoming edges, sorted."""
        require(node in self._nodes, f"unknown node {node!r}")
        return tuple(self._in[node])

    def adjacent_edges(self, node: NodeId) -> tuple[Edge, ...]:
        """All directed edges touching ``node`` (either endpoint)."""
        require(node in self._nodes, f"unknown node {node!r}")
        incident = [(node, neighbor) for neighbor in self._out[node]]
        incident += [(neighbor, node) for neighbor in self._in[node]]
        return tuple(sorted(incident))

    def iter_links(self) -> Iterator[Link]:
        """Iterate all links in sorted edge order."""
        for edge in sorted(self._links):
            yield self._links[edge]

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return len(self._links)

    # -- wire-encoding support ----------------------------------------------

    @property
    def edge_index(self) -> Mapping[Edge, int]:
        """Stable ``edge -> bit position`` mapping (frozen topologies only)."""
        require(self._frozen, "edge_index requires a frozen topology")
        assert self._edge_index is not None
        return self._edge_index

    def edge_at(self, index: int) -> Edge:
        """Inverse of :attr:`edge_index`."""
        edges = self.edges
        require(0 <= index < len(edges), f"edge index {index} out of range")
        return edges[index]

    # -- structural queries --------------------------------------------------

    def is_connected(self) -> bool:
        """True when every node reaches every other (treating edges as given)."""
        if not self._nodes:
            return True
        for start in self._nodes:
            if len(self._reachable_from(start)) != len(self._nodes):
                return False
        return True

    def _reachable_from(self, start: NodeId) -> set[NodeId]:
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for neighbor in self._out[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return seen

    def validate(self) -> None:
        """Check structural invariants, raising on violation.

        Currently: the topology must be strongly connected, which the
        routing layer assumes (every flow between overlay sites must be
        routable under normal conditions).
        """
        require(self.num_nodes >= 2, "topology needs at least two nodes")
        require(self.is_connected(), "topology must be strongly connected")

    # -- misc ---------------------------------------------------------------

    def subgraph_edges(self, edges: Iterable[Edge]) -> tuple[Edge, ...]:
        """Validate that every edge exists and return them sorted."""
        result = []
        for edge in edges:
            require(edge in self._links, f"edge {edge!r} not in topology")
            result.append(edge)
        return tuple(sorted(result))

    def __contains__(self, node: NodeId) -> bool:
        return node in self._nodes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology(name={self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges}, frozen={self._frozen})"
        )
