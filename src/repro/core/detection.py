"""Problem detection and classification.

The paper's data analysis found that the cases where two disjoint paths do
not perform well "typically involve problems around a source or
destination" (abstract claim C3).  The targeted-redundancy scheme therefore
classifies the current loss pattern, *per flow*, into:

* ``SOURCE`` -- several of the source's adjacent links are degraded;
* ``DESTINATION`` -- several of the destination's adjacent links are;
* ``SOURCE_AND_DESTINATION`` -- both at once;
* ``MIDDLE`` -- degradation elsewhere in the network (handled by
  re-routing, not by adding redundancy);
* ``NONE`` -- clean network.

:class:`ProblemClassifier` is the pure, stateless rule;
:class:`ProblemDetector` adds the temporal behaviour a deployed system
needs: detection only sees conditions that have already propagated through
link-state flooding, and a *hold-down* keeps a problem graph installed for
a minimum time so short gaps in a bursty outage do not cause flapping.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

from repro.core.graph import Edge, NodeId, Topology
from repro.util.validation import require, require_non_negative, require_probability

__all__ = [
    "ProblemType",
    "ProblemAssessment",
    "ProblemClassifier",
    "ProblemDetector",
]


class ProblemType(enum.Enum):
    """Where the current loss pattern is concentrated, for one flow."""

    NONE = "none"
    SOURCE = "source"
    DESTINATION = "destination"
    SOURCE_AND_DESTINATION = "source+destination"
    MIDDLE = "middle"


@dataclass(frozen=True)
class ProblemAssessment:
    """Result of classifying one flow's view of the network."""

    problem_type: ProblemType
    degraded_source_links: tuple[Edge, ...]
    degraded_destination_links: tuple[Edge, ...]
    degraded_middle_edges: tuple[Edge, ...]

    @property
    def any_problem(self) -> bool:
        """True unless the network looks clean."""
        return self.problem_type is not ProblemType.NONE

    @property
    def endpoint_problem(self) -> bool:
        """True when the problem involves the source or destination."""
        return self.problem_type in (
            ProblemType.SOURCE,
            ProblemType.DESTINATION,
            ProblemType.SOURCE_AND_DESTINATION,
        )


@dataclass(frozen=True)
class ProblemClassifier:
    """Stateless loss-pattern classifier for a flow.

    ``loss_threshold`` is the per-link loss rate above which a link counts
    as degraded.  ``endpoint_link_threshold`` is how many degraded adjacent
    links make an endpoint problem: with the default of 2, a single bad
    link near an endpoint is treated as a middle problem (routing around it
    suffices -- two disjoint paths still have a clean way in), while two or
    more degraded adjacent links mean path selection alone is running out
    of clean options and targeted redundancy pays off.
    """

    loss_threshold: float = 0.02
    endpoint_link_threshold: int = 2

    def __post_init__(self) -> None:
        require_probability(self.loss_threshold, "loss_threshold")
        require(
            self.endpoint_link_threshold >= 1,
            "endpoint_link_threshold must be >= 1",
        )

    def degraded_edges(self, loss_rates: Mapping[Edge, float]) -> set[Edge]:
        """Edges whose loss rate is at or above the degradation threshold."""
        return {
            edge
            for edge, loss in loss_rates.items()
            if loss >= self.loss_threshold
        }

    def classify(
        self,
        topology: Topology,
        source: NodeId,
        destination: NodeId,
        loss_rates: Mapping[Edge, float],
    ) -> ProblemAssessment:
        """Classify the loss pattern as seen by flow ``source->destination``."""
        require(topology.has_node(source), f"unknown source {source!r}")
        require(topology.has_node(destination), f"unknown destination {destination!r}")
        degraded = self.degraded_edges(loss_rates)
        source_links = tuple(
            sorted(e for e in degraded if source in e)
        )
        destination_links = tuple(
            sorted(e for e in degraded if destination in e)
        )
        middle = tuple(
            sorted(e for e in degraded if source not in e and destination not in e)
        )
        # Count degraded *physical* links at the endpoint: an overlay link
        # degraded in both directions is one problem, not two.
        source_physical = {frozenset(e) for e in source_links}
        destination_physical = {frozenset(e) for e in destination_links}
        source_problem = len(source_physical) >= self.endpoint_link_threshold
        destination_problem = (
            len(destination_physical) >= self.endpoint_link_threshold
        )
        if source_problem and destination_problem:
            problem = ProblemType.SOURCE_AND_DESTINATION
        elif source_problem:
            problem = ProblemType.SOURCE
        elif destination_problem:
            problem = ProblemType.DESTINATION
        elif degraded:
            problem = ProblemType.MIDDLE
        else:
            problem = ProblemType.NONE
        return ProblemAssessment(problem, source_links, destination_links, middle)


@dataclass
class ProblemDetector:
    """Stateful per-flow detector with hold-down.

    ``update(now, loss_rates)`` returns the problem type the routing policy
    should act on at time ``now`` (seconds).  A newly observed problem
    takes effect immediately (the caller is responsible for feeding in a
    *delayed* view of conditions to model detection/propagation latency);
    once active, an endpoint problem type is held for at least
    ``hold_down_s`` after the pattern clears, modelling the paper's
    observation that outages are bursty and reverting instantly causes the
    very losses the redundancy is meant to mask.
    """

    topology: Topology
    source: NodeId
    destination: NodeId
    classifier: ProblemClassifier = field(default_factory=ProblemClassifier)
    hold_down_s: float = 10.0

    _active_type: ProblemType = field(default=ProblemType.NONE, init=False)
    _last_seen_s: float = field(default=float("-inf"), init=False)
    _last_update_s: float = field(default=float("-inf"), init=False)

    def __post_init__(self) -> None:
        require_non_negative(self.hold_down_s, "hold_down_s")

    @property
    def active_type(self) -> ProblemType:
        """The problem type currently in effect (including hold-down)."""
        return self._active_type

    def update(self, now_s: float, loss_rates: Mapping[Edge, float]) -> ProblemType:
        """Feed the current (already-propagated) loss view; get the decision."""
        require(
            now_s >= self._last_update_s,
            f"time went backwards: {now_s} < {self._last_update_s}",
        )
        self._last_update_s = now_s
        assessment = self.classifier.classify(
            self.topology, self.source, self.destination, loss_rates
        )
        observed = assessment.problem_type
        if observed is not ProblemType.NONE:
            # Escalate or switch immediately; merge endpoint problems.
            self._active_type = _merge_problem(self._active_type, observed, now_s,
                                               self._last_seen_s, self.hold_down_s)
            self._last_seen_s = now_s
        elif self._active_type is not ProblemType.NONE:
            if now_s - self._last_seen_s >= self.hold_down_s:
                self._active_type = ProblemType.NONE
        return self._active_type


def _merge_problem(
    active: ProblemType,
    observed: ProblemType,
    now_s: float,
    last_seen_s: float,
    hold_down_s: float,
) -> ProblemType:
    """Combine a newly observed problem with a held one.

    While a held endpoint problem is still within its hold-down, observing
    the *other* endpoint's problem escalates to SOURCE_AND_DESTINATION
    rather than dropping the existing protection.
    """
    if active is ProblemType.NONE or now_s - last_seen_s >= hold_down_s:
        return observed
    endpoint = {
        ProblemType.SOURCE,
        ProblemType.DESTINATION,
        ProblemType.SOURCE_AND_DESTINATION,
    }
    if active in endpoint and observed in endpoint and active is not observed:
        return ProblemType.SOURCE_AND_DESTINATION
    if active in endpoint and observed is ProblemType.MIDDLE:
        return active  # keep endpoint protection; re-routing handles middle
    return observed
