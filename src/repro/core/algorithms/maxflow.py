"""Edmonds-Karp maximum flow for disjoint-path counting.

Used to answer "how many node-disjoint (edge-disjoint) paths exist between
this flow's endpoints?", which the targeted-redundancy builders use to
bound how much redundancy is even available, and which tests use to
cross-check the min-cost-flow solver (by Menger's theorem the counts must
agree).
"""

from __future__ import annotations

from collections import deque
from typing import Hashable

from repro.core.algorithms.adjacency import Adjacency, split_nodes

__all__ = ["max_flow_unit_capacities", "max_disjoint_path_count"]

Node = Hashable


def max_flow_unit_capacities(adjacency: Adjacency, source: Node, sink: Node) -> int:
    """Maximum flow with every edge at capacity 1 (Edmonds-Karp / BFS)."""
    if source not in adjacency or sink not in adjacency:
        raise KeyError("source or sink not in adjacency")
    if source == sink:
        raise ValueError("source and sink must differ")
    # Residual capacities; original edges get 1, reverse residuals start 0.
    residual: dict[Node, dict[Node, int]] = {node: {} for node in adjacency}
    for node, neighbors in adjacency.items():
        for neighbor in neighbors:
            residual[node][neighbor] = residual[node].get(neighbor, 0) + 1
            residual.setdefault(neighbor, {}).setdefault(node, 0)
    flow = 0
    while True:
        # BFS for a shortest augmenting path.
        parent: dict[Node, Node] = {source: source}
        queue = deque([source])
        while queue and sink not in parent:
            node = queue.popleft()
            for neighbor, capacity in residual[node].items():
                if capacity > 0 and neighbor not in parent:
                    parent[neighbor] = node
                    queue.append(neighbor)
        if sink not in parent:
            return flow
        # Augment by 1 (unit capacities).
        node = sink
        while node != source:
            previous = parent[node]
            residual[previous][node] -= 1
            residual[node][previous] = residual[node].get(previous, 0) + 1
            node = previous
        flow += 1


def max_disjoint_path_count(
    adjacency: Adjacency, source: Node, sink: Node, node_disjoint: bool = True
) -> int:
    """Number of pairwise disjoint paths from ``source`` to ``sink``."""
    if node_disjoint:
        work = split_nodes(adjacency, keep_whole=(source, sink))
        return max_flow_unit_capacities(work, (source, "both"), (sink, "both"))
    return max_flow_unit_capacities(adjacency, source, sink)
