"""Minimum-cost flow via successive shortest paths with potentials.

Unit-capacity min-cost flow is the general formulation behind
Suurballe's / Bhandari's disjoint-path algorithms: sending ``k`` units from
source to sink over arcs of capacity 1 yields the minimum-total-weight set
of ``k`` edge-disjoint paths, and node splitting extends this to
node-disjointness.  Implementing the flow once keeps the disjoint-path
logic small and correct in the presence of antiparallel overlay links.

Costs must be non-negative when arcs are added; Johnson potentials keep
reduced costs non-negative so every augmentation is a plain Dijkstra.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Hashable

__all__ = ["MinCostFlow", "Arc"]

Node = Hashable
_INF = float("inf")


@dataclass
class Arc:
    """One directed arc plus its residual twin (paired by index)."""

    source: Node
    target: Node
    capacity: int
    cost: float
    flow: int = 0
    is_reverse: bool = False

    @property
    def residual_capacity(self) -> int:
        """Capacity still available on this arc."""
        return self.capacity - self.flow


class MinCostFlow:
    """A small successive-shortest-paths min-cost-flow solver.

    Arcs are added with :meth:`add_arc`; each call also creates the
    zero-capacity reverse arc used for residual updates.  Parallel arcs are
    supported (each ``add_arc`` is independent), which is what makes
    antiparallel overlay links safe.
    """

    def __init__(self) -> None:
        self._arcs: list[Arc] = []
        self._incident: dict[Node, list[int]] = {}

    def add_node(self, node: Node) -> None:
        """Register a node with no arcs (safe to call repeatedly)."""
        self._incident.setdefault(node, [])

    def add_arc(self, source: Node, target: Node, capacity: int, cost: float) -> int:
        """Add a forward arc and its residual twin; returns the arc index."""
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        if cost < 0:
            raise ValueError(f"cost must be >= 0, got {cost}")
        index = len(self._arcs)
        self._arcs.append(Arc(source, target, capacity, cost))
        self._arcs.append(Arc(target, source, 0, -cost, is_reverse=True))
        self._incident.setdefault(source, []).append(index)
        self._incident.setdefault(target, []).append(index + 1)
        return index

    # -- solving -------------------------------------------------------------

    def send(self, source: Node, sink: Node, max_units: int) -> tuple[int, float]:
        """Send up to ``max_units`` of flow; returns ``(units_sent, cost)``.

        Stops early when the sink becomes unreachable (max flow reached).
        Calling ``send`` again continues from the current flow state.
        """
        if source not in self._incident or sink not in self._incident:
            raise KeyError("source or sink not present in the flow network")
        if max_units < 0:
            raise ValueError(f"max_units must be >= 0, got {max_units}")
        potentials: dict[Node, float] = {node: 0.0 for node in self._incident}
        sent = 0
        total_cost = 0.0
        while sent < max_units:
            distances, predecessor_arc = self._dijkstra(source, potentials)
            if sink not in distances:
                break
            for node, distance in distances.items():
                potentials[node] += distance
            # Unit capacities: each augmentation pushes exactly one unit.
            path_cost = 0.0
            node = sink
            while node != source:
                arc_index = predecessor_arc[node]
                arc = self._arcs[arc_index]
                twin = self._arcs[arc_index ^ 1]
                arc.flow += 1
                twin.flow -= 1
                path_cost += arc.cost
                node = arc.source
            total_cost += path_cost
            sent += 1
        return sent, total_cost

    def _dijkstra(
        self, source: Node, potentials: dict[Node, float]
    ) -> tuple[dict[Node, float], dict[Node, int]]:
        distances: dict[Node, float] = {source: 0.0}
        predecessor_arc: dict[Node, int] = {}
        heap: list[tuple[float, int, Node]] = [(0.0, 0, source)]
        counter = 1
        while heap:
            distance, _tie, node = heapq.heappop(heap)
            if distance > distances.get(node, _INF):
                continue
            for arc_index in self._incident[node]:
                arc = self._arcs[arc_index]
                if arc.residual_capacity <= 0:
                    continue
                reduced = arc.cost + potentials[node] - potentials[arc.target]
                # Reduced costs are >= 0 up to float error; clamp the noise.
                if reduced < 0:
                    reduced = 0.0
                candidate = distance + reduced
                if candidate < distances.get(arc.target, _INF) - 1e-15:
                    distances[arc.target] = candidate
                    predecessor_arc[arc.target] = arc_index
                    heapq.heappush(heap, (candidate, counter, arc.target))
                    counter += 1
        return distances, predecessor_arc

    # -- results ---------------------------------------------------------------

    def flow_arcs(self) -> list[tuple[Node, Node]]:
        """Original arcs carrying positive flow, in insertion order."""
        return [
            (arc.source, arc.target)
            for arc in self._arcs
            if not arc.is_reverse and arc.flow > 0
        ]

    def decompose_paths(self, source: Node, sink: Node) -> list[list[Node]]:
        """Decompose the current integral flow into source->sink paths.

        With unit capacities each path carries one unit.  Leftover zero-cost
        cycles (possible only when some arcs cost 0) are ignored.
        """
        remaining: dict[Node, list[tuple[Node, int]]] = {}
        for index, arc in enumerate(self._arcs):
            if not arc.is_reverse and arc.flow > 0:
                for _ in range(arc.flow):
                    remaining.setdefault(arc.source, []).append((arc.target, index))
        for successors in remaining.values():
            successors.sort(key=lambda item: repr(item[0]))
        paths: list[list[Node]] = []
        while remaining.get(source):
            path = [source]
            node = source
            while node != sink:
                successors = remaining.get(node)
                if not successors:
                    raise RuntimeError(
                        f"flow decomposition stuck at {node!r}; "
                        "flow conservation violated"
                    )
                node, _arc_index = successors.pop(0)
                path.append(node)
            paths.append(path)
        return paths
